//! # SMASH — hierarchical-bitmap sparse matrix compression with
//! hardware-accelerated indexing
//!
//! This is the facade crate of a full reproduction of
//! *SMASH: Co-designing Software Compression and Hardware-Accelerated
//! Indexing for Efficient Sparse Matrix Operations* (Kanellopoulos et al.,
//! MICRO-52, 2019). It re-exports the workspace crates:
//!
//! * [`matrix`] — sparse-matrix formats (dense/COO/CSR/CSC/BCSR) and
//!   workload generators,
//! * [`encoding`] — the SMASH hierarchical-bitmap encoding (the paper's
//!   software contribution),
//! * [`sim`] — a cycle-approximate out-of-order CPU + memory-hierarchy
//!   simulator (the zsim substitute),
//! * [`bmu`] — the Bitmap Management Unit hardware model and the five-
//!   instruction SMASH ISA (the paper's hardware contribution),
//! * [`kernels`] — SpMV/SpMM/SpAdd kernels for every mechanism the paper
//!   evaluates — including the batched sparse × dense SpMM
//!   (`spmm_dense_*`, column-tiled so one pass serves many right-hand
//!   sides) — all generic over [`matrix::Scalar`] (`f64` and `f32`),
//!   plus the [`Executor`]: one `spmv`/`spmm`/`spmm_dense` entry point
//!   over *format × precision × serial/parallel*,
//! * [`parallel`] — a scoped thread pool plus multi-threaded variants of
//!   the native kernels, bit-identical to the serial ones at every thread
//!   count (`SMASH_THREADS` overrides the worker count),
//! * [`graph`] — PageRank (including batched personalized PageRank: one
//!   `Dense` of personalization vectors per pass) and Betweenness
//!   Centrality built on the kernels, generic over precision through
//!   `Graph<T>`.
//!
//! Mutating workloads keep their matrix in a [`DynamicMatrix`] — an
//! immutable base tier (CSR or SMASH-compressed) plus a delta overlay of
//! pending `set`/`add`/`delete` mutations. Kernels read the merged view
//! directly (the overlay is a first-class executor operand,
//! bit-identical to a from-scratch rebuild), explicit
//! [`Executor::compact`] folds the overlay back into a fresh base, and
//! `graph::IncrementalPageRank` builds warm-started dynamic-graph
//! PageRank on top.
//!
//! For untrusted input, the executor's `try_*` tier ([`Executor::try_spmv`]
//! and friends) validates operands up front, reports every failure mode
//! through the unified [`SmashError`], and degrades gracefully — worker
//! panics retry serially, over-budget SpGEMM can stream in row chunks
//! under a [`MemoryBudget`] — always returning either a typed error or a
//! bit-identical result.
//!
//! The repository's `docs/` directory holds the long-form guides:
//! `docs/ARCHITECTURE.md` (crate map and the data flow of one SpMV),
//! `docs/DISPATCH.md` (the measured cost-model planner behind
//! [`Executor::auto`]), `docs/SIMD.md` (the runtime-dispatched vector
//! kernel bodies and the lane-striped accumulation contract),
//! `docs/DYNAMIC.md` (the delta-overlay dynamic-matrix layer and
//! incremental PageRank), `docs/BENCHMARKS.md` (what every perf
//! snapshot asserts), and `docs/ROBUSTNESS.md` (the error taxonomy,
//! the degradation ladder, and the fault-injection suite). Their code
//! snippets compile as doctests of this crate.
//!
//! # Quickstart
//!
//! ```
//! use smash::encoding::{SmashConfig, SmashMatrix};
//! use smash::matrix::generators;
//! use smash::Executor;
//!
//! // A random sparse matrix, compressed with a 3-level bitmap hierarchy.
//! let a = generators::uniform(256, 256, 2048, 42);
//! let cfg = SmashConfig::row_major(&[2, 4, 16]).unwrap();
//! let sm = SmashMatrix::encode(&a, cfg);
//!
//! // The encoding is lossless...
//! assert_eq!(sm.decode(), a);
//! // ...and the non-zero values array stores whole blocks (paper §4.1).
//! assert_eq!(sm.nza().len() % 2, 0);
//!
//! // Compute runs through the executor: same entry point for CSR and the
//! // compressed form, serial/parallel picked automatically. For a given
//! // format the result is bit-identical whichever mode runs.
//! let exec = Executor::auto();
//! let x = vec![1.0f64; 256];
//! let (mut y_auto, mut y_serial) = (vec![0.0; 256], vec![0.0; 256]);
//! exec.spmv(&sm, &x, &mut y_auto);
//! Executor::serial().spmv(&sm, &x, &mut y_serial);
//! assert_eq!(y_auto, y_serial);
//! ```

#![deny(missing_docs)]

pub use smash_bmu as bmu;
pub use smash_core as encoding;
pub use smash_graph as graph;
pub use smash_kernels as kernels;
pub use smash_matrix as matrix;
pub use smash_parallel as parallel;
pub use smash_sim as sim;

pub use smash_core::{Delta, DeltaOverlay, DynamicBase, DynamicMatrix};
pub use smash_kernels::{
    Degradation, ExecMode, ExecReport, Executor, MemoryBudget, NonFinitePolicy, SmashError,
    SpmvOperand,
};

// Compile-check every Rust snippet in the README and the `docs/` guides
// as doctests: `cargo test --doc` fails if a guide drifts from the API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub struct ArchitectureDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/DISPATCH.md")]
pub struct DispatchDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/SIMD.md")]
pub struct SimdDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/DYNAMIC.md")]
pub struct DynamicDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/BENCHMARKS.md")]
pub struct BenchmarksDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/ROBUSTNESS.md")]
pub struct RobustnessDoctests;
