//! The batched sparse × dense SpMM ("SpMDM") subsystem must be exactly a
//! batch of SpMVs: column `j` of every `spmm_dense_*` kernel is pinned to
//! the per-column SpMV oracle with exact `==`, parallel output is
//! bit-identical to serial at threads {1, 2, 8}, the `f32` pipeline tracks
//! the `f64` oracle within `f32::TOLERANCE`, and the executor's `Auto`
//! dispatch is pinned bit-for-bit to the explicit modes.

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::native;
use smash::matrix::{generators, Bcsr, Coo, Csr, Dense, Scalar};
use smash::parallel::{par_spmm_dense_bcsr, par_spmm_dense_csr, par_spmm_dense_smash, ThreadPool};
use smash::Executor;

/// The thread counts every bit-identity assertion runs under.
const THREADS: [usize; 3] = [1, 2, 8];

fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..48, 1usize..48)
        .prop_flat_map(|(r, c)| {
            let entries =
                proptest::collection::vec((0..r, 0..c, 1u32..1000u32), 0..(r * c).min(160));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

/// A deterministic dense batch whose `f32` instantiation is the entry-wise
/// truncation of the `f64` one, so mixed-precision checks compare like
/// against like.
fn batch<T: Scalar>(rows: usize, cols: usize) -> Dense<T> {
    generators::dense_batch(rows, cols, 5)
}

/// Pins all three `spmm_dense_*` kernels to the per-column SpMV oracle
/// (exact `==`) and their parallel twins to the serial output (exact `==`)
/// at every [`THREADS`] count, across batch widths that exercise the
/// 8-tile, 4-tile and scalar remainders.
fn assert_spmdm_equals_spmv_batch(a: &Csr<f64>) {
    let bcsr = Bcsr::from_csr(a, 2, 2).expect("valid 2x2 blocking");
    let sm = SmashMatrix::encode(a, SmashConfig::row_major(&[2, 4]).expect("valid config"));
    for n in [1usize, 5, 8, 11] {
        let b = batch::<f64>(a.cols(), n);
        let mut c = Dense::zeros(a.rows(), n);
        let mut y = vec![0.0; a.rows()];

        native::spmm_dense_csr(a, &b, &mut c);
        for j in 0..n {
            native::spmv_csr(a, &b.col(j), &mut y);
            assert_eq!(c.col(j), y, "csr column {j} of {n}");
        }
        let want = c.clone();
        for t in THREADS {
            c.as_mut_slice().fill(f64::NAN);
            par_spmm_dense_csr(&ThreadPool::new(t), a, &b, &mut c);
            assert_eq!(c, want, "par csr, {t} threads, {n} rhs");
        }

        native::spmm_dense_bcsr(&bcsr, &b, &mut c);
        for j in 0..n {
            native::spmv_bcsr(&bcsr, &b.col(j), &mut y);
            assert_eq!(c.col(j), y, "bcsr column {j} of {n}");
        }
        let want = c.clone();
        for t in THREADS {
            c.as_mut_slice().fill(f64::NAN);
            par_spmm_dense_bcsr(&ThreadPool::new(t), &bcsr, &b, &mut c);
            assert_eq!(c, want, "par bcsr, {t} threads, {n} rhs");
        }

        native::spmm_dense_smash(&sm, &b, &mut c);
        for j in 0..n {
            native::spmv_smash(&sm, &b.col(j), &mut y);
            assert_eq!(c.col(j), y, "smash column {j} of {n}");
        }
        let want = c.clone();
        for t in THREADS {
            c.as_mut_slice().fill(f64::NAN);
            par_spmm_dense_smash(&ThreadPool::new(t), &sm, &b, &mut c);
            assert_eq!(c, want, "par smash, {t} threads, {n} rhs");
        }
    }
}

/// The `f32` SpMDM must track the `f64` oracle within `f32::TOLERANCE` —
/// same kernels, monomorphized at half precision.
fn assert_f32_tracks_f64_oracle(a64: &Csr<f64>) -> Result<(), TestCaseError> {
    let a32 = a64.cast::<f32>();
    let b64 = batch::<f64>(a64.cols(), 8);
    let b32 = batch::<f32>(a64.cols(), 8);
    let mut want = Dense::zeros(a64.rows(), 8);
    native::spmm_dense_csr(a64, &b64, &mut want);
    let mut got = Dense::zeros(a64.rows(), 8);
    native::spmm_dense_csr(&a32, &b32, &mut got);
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        prop_assert!(g.approx_eq(f32::from_f64(*w), f32::TOLERANCE), "{g} vs {w}");
    }
    // And the f32 parallel paths stay bit-identical to f32 serial.
    for t in THREADS {
        let mut par = Dense::zeros(a64.rows(), 8);
        par_spmm_dense_csr(&ThreadPool::new(t), &a32, &b32, &mut par);
        prop_assert_eq!(&par, &got, "f32 par csr, {} threads", t);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spmm_dense_is_a_batch_of_spmvs(a in arb_matrix()) {
        assert_spmdm_equals_spmv_batch(&a);
    }

    #[test]
    fn f32_spmm_dense_tracks_f64_oracle(a in arb_matrix()) {
        assert_f32_tracks_f64_oracle(&a)?;
    }
}

#[test]
fn adversarial_shapes_are_batches_of_spmvs() {
    // Empty matrix, single element, skinny and short extremes.
    assert_spmdm_equals_spmv_batch(&Csr::from_coo(&Coo::new(33, 17)));
    assert_spmdm_equals_spmv_batch(&generators::uniform(1, 1, 1, 7));
    assert_spmdm_equals_spmv_batch(&generators::uniform(200, 3, 150, 5));
    assert_spmdm_equals_spmv_batch(&generators::uniform(3, 200, 150, 9));
    // One dense row among empties.
    let mut coo = Coo::new(48, 48);
    for j in 0..48 {
        coo.push(20, j, (j + 1) as f64 * 0.25);
    }
    assert_spmdm_equals_spmv_batch(&Csr::from_coo(&coo));
}

#[test]
fn executor_auto_is_pinned_to_explicit_modes() {
    // Large enough that Auto's batched-work heuristic crosses the parallel
    // threshold (nnz * rhs >= AUTO_PARALLEL_NNZ) while one SpMV would not.
    let a = generators::clustered(512, 512, 10_000, 5, 3);
    let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
    let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
    let b = batch::<f64>(512, 8);
    let mut want = Dense::zeros(512, 8);
    let mut got = Dense::zeros(512, 8);
    for fmt in ["csr", "bcsr", "smash"] {
        match fmt {
            "csr" => Executor::serial().spmm_dense(&a, &b, &mut want),
            "bcsr" => Executor::serial().spmm_dense(&bcsr, &b, &mut want),
            _ => Executor::serial().spmm_dense(&sm, &b, &mut want),
        }
        for exec in [
            Executor::auto(),
            Executor::parallel(),
            Executor::with_threads(2),
            Executor::with_threads(8),
            Executor::default(),
        ] {
            got.as_mut_slice().fill(f64::NAN);
            match fmt {
                "csr" => exec.spmm_dense(&a, &b, &mut got),
                "bcsr" => exec.spmm_dense(&bcsr, &b, &mut got),
                _ => exec.spmm_dense(&sm, &b, &mut got),
            }
            assert_eq!(
                got,
                want,
                "{fmt} via {:?}/{} threads",
                exec.mode(),
                exec.threads()
            );
        }
    }
}

#[test]
fn executor_spmm_dense_columns_equal_executor_spmv() {
    let a = generators::power_law(128, 96, 1_500, 1.3, 11);
    let b = batch::<f64>(96, 7);
    let exec = Executor::auto();
    let mut c = Dense::zeros(128, 7);
    exec.spmm_dense(&a, &b, &mut c);
    for j in 0..7 {
        let mut y = vec![0.0; 128];
        exec.spmv(&a, &b.col(j), &mut y);
        assert_eq!(c.col(j), y, "column {j}");
    }
}

#[test]
fn batched_pagerank_equals_query_loop_bitwise() {
    use smash::graph::{
        generators as graph_gen, personalized_pagerank, personalized_pagerank_batched, seed_batch,
        PageRankConfig,
    };
    let g = graph_gen::rmat(256, 2_000, 13);
    let cfg = PageRankConfig {
        iterations: 6,
        ..Default::default()
    };
    let seeds: Vec<usize> = (0..12).map(|i| (i * 21) % 256).collect();
    let p = seed_batch::<f64>(g.vertices(), &seeds);
    for exec in [
        Executor::serial(),
        Executor::auto(),
        Executor::with_threads(8),
    ] {
        let batched = personalized_pagerank_batched(&exec, &g, &cfg, &p);
        for j in 0..seeds.len() {
            let single = personalized_pagerank(&exec, &g, &cfg, &p.col(j));
            assert_eq!(batched.col(j), single, "query {j}");
        }
    }
}
