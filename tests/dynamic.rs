//! Dynamic-matrix exactness: the delta overlay, compaction, and the
//! incremental PageRank built on top of them.
//!
//! The contract under test is *bit-identity*: a [`DynamicMatrix`] with a
//! pending overlay must behave exactly like the matrix rebuilt from
//! scratch — same merged triplets, same SpMV/SpMM bits at every thread
//! count, same PageRank trajectory — and compaction must be invisible
//! to every observer except `overlay().is_empty()`.

use std::collections::BTreeMap;

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::graph::{pagerank_power, uniform_ranks, Graph, IncrementalPageRank};
use smash::kernels::native;
use smash::matrix::{spmm_dense_rows, spmv_rows, Coo, Csr, CsrBuilder, Dense};
use smash::parallel::{par_spmm_dense_rows, par_spmv_rows, ThreadPool};
use smash::{Delta, DynamicMatrix, Executor};

/// One overlay mutation, drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    Set(usize, usize, f64),
    Add(usize, usize, f64),
    Delete(usize, usize),
}

/// Arbitrary base matrix (integer-valued so sums are exact) plus a
/// mutation script against it.
fn arb_case() -> impl Strategy<Value = (Csr<f64>, Vec<Mutation>)> {
    (2usize..32, 2usize..32)
        .prop_flat_map(|(r, c)| {
            let entries = proptest::collection::vec((0..r, 0..c, -50i32..50), 0..(r * c).min(128));
            let muts = proptest::collection::vec((0..3u8, 0..r, 0..c, -50i32..50), 0..64);
            (Just(r), Just(c), entries, muts)
        })
        .prop_map(|(r, c, entries, muts)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                if v != 0 {
                    coo.push(i, j, v as f64);
                }
            }
            coo.compress();
            let muts = muts
                .into_iter()
                .map(|(kind, i, j, v)| match kind {
                    0 => Mutation::Set(i, j, v as f64),
                    1 => Mutation::Add(i, j, v as f64),
                    _ => Mutation::Delete(i, j),
                })
                .collect();
            (Csr::from_coo(&coo), muts)
        })
}

/// Applies the script to both the dynamic matrix and a map-based model,
/// returning the model rebuilt as a CSR — the from-scratch oracle.
fn apply(dm: &mut DynamicMatrix<f64>, base: &Csr<f64>, muts: &[Mutation]) -> Csr<f64> {
    let mut model: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for i in 0..base.rows() {
        let (cols, vals) = base.row(i);
        for (c, v) in cols.iter().zip(vals) {
            model.insert((i, *c as usize), *v);
        }
    }
    // The model applies the same cancellation rule as `merge_row`: an
    // overlay-affected value that lands on exact 0.0 is not stored.
    for &m in muts {
        match m {
            Mutation::Set(i, j, v) => {
                dm.set(i, j, v);
                if v == 0.0 {
                    model.remove(&(i, j));
                } else {
                    model.insert((i, j), v);
                }
            }
            Mutation::Add(i, j, d) => {
                dm.add(i, j, d);
                let v = model.get(&(i, j)).copied().unwrap_or(0.0) + d;
                if v == 0.0 {
                    model.remove(&(i, j));
                } else {
                    model.insert((i, j), v);
                }
            }
            Mutation::Delete(i, j) => {
                dm.delete(i, j);
                model.remove(&(i, j));
            }
        }
    }
    let mut out = CsrBuilder::with_capacity(base.cols(), base.rows(), model.len());
    let (mut cols, mut vals) = (Vec::new(), Vec::new());
    for i in 0..base.rows() {
        cols.clear();
        vals.clear();
        for ((_, j), v) in model.range((i, 0)..(i + 1, 0)) {
            cols.push(*j as u32);
            vals.push(*v);
        }
        out.push_row(&cols, &vals);
    }
    out.finish()
}

/// Both base tiers the overlay can sit on.
fn both_bases(base: &Csr<f64>) -> Vec<DynamicMatrix<f64>> {
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid ratios");
    vec![
        DynamicMatrix::from_csr(base.clone()),
        DynamicMatrix::from_smash(SmashMatrix::encode(base, cfg)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Overlaid SpMV and SpMM results are bit-identical to the rebuilt
    /// matrix, serial and at thread counts 1, 2, and 8, on both base
    /// tiers.
    #[test]
    fn overlay_kernels_match_rebuild_at_every_thread_count(
        case in arb_case(),
        seed in 0u64..1000,
    ) {
        let (base, muts) = case;
        for mut dm in both_bases(&base) {
            let rebuilt = apply(&mut dm, &base, &muts);
            prop_assert_eq!(&dm.merged_csr(), &rebuilt);
            prop_assert_eq!(dm.nnz(), rebuilt.nnz());

            let x: Vec<f64> = (0..base.cols())
                .map(|i| ((i as u64 * 2654435761 + seed) % 17) as f64 - 8.0)
                .collect();
            let mut want = vec![0.0; base.rows()];
            spmv_rows(&rebuilt, &x, &mut want);
            let mut got = vec![f64::NAN; base.rows()];
            spmv_rows(&dm, &x, &mut got);
            prop_assert_eq!(&got, &want);

            let mut b = Dense::zeros(base.cols(), 3);
            for i in 0..base.cols() {
                for j in 0..3 {
                    b.set(i, j, ((i + 7 * j) % 5) as f64 - 2.0);
                }
            }
            let mut cw = Dense::zeros(base.rows(), 3);
            spmm_dense_rows(&rebuilt, &b, &mut cw);
            let mut cg = Dense::zeros(base.rows(), 3);
            spmm_dense_rows(&dm, &b, &mut cg);
            prop_assert_eq!(&cg, &cw);

            for threads in [1usize, 2, 8] {
                let pool = ThreadPool::new(threads);
                got.fill(f64::NAN);
                par_spmv_rows(&pool, &dm, &x, &mut got);
                prop_assert_eq!(&got, &want, "spmv diverged at {} threads", threads);
                let mut cp = Dense::zeros(base.rows(), 3);
                par_spmm_dense_rows(&pool, &dm, &b, &mut cp);
                prop_assert_eq!(&cp, &cw, "spmm diverged at {} threads", threads);
            }
        }
    }

    /// Compaction folds the overlay into the base without changing any
    /// merged triplet, and the compacted base matches the parallel
    /// encoder exactly.
    #[test]
    fn compaction_round_trips_exactly(case in arb_case()) {
        let (base, muts) = case;
        for mut dm in both_bases(&base) {
            apply(&mut dm, &base, &muts);
            let before = dm.merged_csr();
            let mut via_exec = dm.clone();
            dm.compact();
            prop_assert!(dm.overlay().is_empty());
            prop_assert_eq!(&dm.merged_csr(), &before);

            // The executor's compact (which may route through the
            // parallel encoder) lands on the same base.
            Executor::auto().compact(&mut via_exec);
            prop_assert!(via_exec.overlay().is_empty());
            prop_assert_eq!(&via_exec.merged_csr(), &before);
        }
    }

    /// Native `spadd` against a dense oracle on adversarial integer
    /// values: exact sums, exact cancellations dropped, no explicit
    /// zeros stored.
    #[test]
    fn spadd_matches_dense_oracle_and_stores_no_zeros(case in arb_case()) {
        let (a, muts) = case;
        // Derive B from A's shape so dimensions agree; reuse the
        // mutation script as B's entry list for adversarial overlap
        // (equal-and-opposite values are common).
        let mut coo = Coo::new(a.rows(), a.cols());
        for &m in &muts {
            match m {
                Mutation::Set(i, j, v) | Mutation::Add(i, j, v) => {
                    if v != 0.0 {
                        coo.push(i, j, v);
                    }
                }
                Mutation::Delete(i, j) => {
                    // Cancel A's entry exactly, if present.
                    let (cols, vals) = a.row(i);
                    if let Ok(p) = cols.binary_search(&(j as u32)) {
                        coo.push(i, j, -vals[p]);
                    }
                }
            }
        }
        coo.compress();
        let b = Csr::from_coo(&coo);
        let sum = native::spadd(&a, &b);
        prop_assert_eq!(sum.rows(), a.rows());
        prop_assert_eq!(sum.cols(), a.cols());
        for i in 0..a.rows() {
            let mut dense = vec![0.0f64; a.cols()];
            let (ac, av) = a.row(i);
            for (c, v) in ac.iter().zip(av) {
                dense[*c as usize] += v;
            }
            let (bc, bv) = b.row(i);
            for (c, v) in bc.iter().zip(bv) {
                dense[*c as usize] += v;
            }
            let (sc, sv) = sum.row(i);
            let want: Vec<(u32, f64)> = dense
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(c, v)| (c as u32, *v))
                .collect();
            let got: Vec<(u32, f64)> = sc.iter().copied().zip(sv.iter().copied()).collect();
            prop_assert_eq!(got, want, "row {} mismatch", i);
            prop_assert!(sv.iter().all(|v| *v != 0.0), "explicit zero stored");
        }
    }
}

#[test]
fn overlay_semantics_are_last_write_wins() {
    let mut coo = Coo::new(3, 3);
    coo.push(0, 0, 2.0);
    coo.push(1, 1, 3.0);
    let base = Csr::from_coo(&coo);
    let mut dm = DynamicMatrix::from_csr(base);

    // set then delete: the key vanishes.
    dm.set(0, 0, 9.0);
    dm.delete(0, 0);
    // delete then add: Delete folds with Add(d) to Set(d).
    dm.delete(1, 1);
    dm.add(1, 1, 4.0);
    // add accumulates over the base value.
    dm.add(2, 2, 1.5);
    dm.add(2, 2, 2.5);
    // duplicate sets: last one wins.
    dm.set(0, 2, 7.0);
    dm.set(0, 2, 8.0);

    let m = dm.merged_csr();
    assert_eq!(m.row(0), (&[2u32][..], &[8.0][..]));
    assert_eq!(m.row(1), (&[1u32][..], &[4.0][..]));
    assert_eq!(m.row(2), (&[2u32][..], &[4.0][..]));
    assert!(matches!(
        dm.overlay().deltas().find(|(r, c, _)| *r == 1 && *c == 1),
        Some((_, _, Delta::Set(v))) if *v == 4.0
    ));
}

#[test]
fn incremental_pagerank_matches_from_scratch_bitwise() {
    let g = Graph::<f64>::from_edges(
        40,
        &(0..40u32)
            .flat_map(|u| [(u, (u + 1) % 40), (u, (u * 7 + 3) % 40)])
            .filter(|(u, v)| u != v)
            .collect::<Vec<_>>(),
    );
    let mut pr = IncrementalPageRank::new(&g, 0.85, 1e-12, 500);
    let cold_iters = pr.solve().iterations;
    let mut added = 0;
    for (u, v) in [(0usize, 20usize), (13, 37), (5, 28), (31, 2)] {
        added += pr.add_edge(u, v) as usize;
    }
    assert!(added >= 3, "probe edges mostly collided with the graph");

    // Bitwise: the dynamic transition matrix and the rebuilt one give
    // the same trajectory (ranks AND iteration count) from the same
    // starting vector.
    let rebuilt = pr.snapshot().transition_matrix();
    let r0 = uniform_ranks::<f64>(pr.vertices());
    let dynamic = pagerank_power(pr.matrix(), &r0, 0.85, 1e-12, 500);
    let oracle = pagerank_power(&rebuilt, &r0, 0.85, 1e-12, 500);
    assert_eq!(dynamic.ranks, oracle.ranks);
    assert_eq!(dynamic.iterations, oracle.iterations);

    // Warm start: no slower than cold, same fixed point up to tolerance.
    let warm = pr.solve();
    assert!(warm.iterations <= cold_iters.max(oracle.iterations));
    for (a, b) in warm.ranks.iter().zip(&oracle.ranks) {
        assert!((a - b).abs() < 2e-11, "{a} vs {b}");
    }
}
