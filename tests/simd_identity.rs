//! SIMD ↔ scalar exact bit-identity across the kernel stack.
//!
//! The `smash_matrix::simd` dispatch layer promises that every ISA tier —
//! AVX2, SSE4.2, and the portable scalar emulation — realizes one
//! lane-striped accumulation order, so the *same bits* come out of every
//! kernel whichever tier executes it, at every thread count. This suite
//! pins that promise with exact `==` for `f32` and `f64` across CSR, BCSR
//! and SMASH SpMV and the batched SpMDM, driven through the process-global
//! override (`smash::matrix::simd::set_override`, the in-process twin of
//! `SMASH_SIMD`), including ragged row lengths and every RHS tile
//! remainder `n % 8 ∈ {1..7}`.
//!
//! The override is process-global, so every test serializes through one
//! poison-tolerant mutex and restores `None` before releasing it.

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::native;
use smash::matrix::simd::{self, Isa};
use smash::matrix::{generators, Bcsr, Coo, Csr, Dense, Scalar};
use smash::parallel::{
    par_spmm_dense_bcsr, par_spmm_dense_csr, par_spmm_dense_smash, par_spmv_bcsr, par_spmv_csr,
    par_spmv_smash, ThreadPool,
};
use std::sync::{Mutex, OnceLock};

/// Serializes every use of the process-global ISA override.
fn isa_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with the dispatch layer forced onto `isa`, restoring the
/// default (env/detection) resolution afterwards even if `f` panics.
fn with_isa<R>(isa: Isa, f: impl FnOnce() -> R) -> R {
    let _guard = isa_lock().lock().unwrap_or_else(|e| e.into_inner());
    simd::set_override(Some(isa));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    simd::set_override(None);
    match out {
        Ok(r) => r,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// The vector tiers this CPU can run (empty on a scalar-only host, in
/// which case the suite still exercises the scalar emulation against
/// itself — trivially green, structurally identical).
fn vector_isas() -> Vec<Isa> {
    Isa::ALL
        .into_iter()
        .filter(|i| *i != Isa::Scalar && i.is_supported())
        .collect()
}

const THREADS: [usize; 3] = [1, 2, 8];

/// Every covered kernel's output on `a` (plus a width-`n` RHS batch),
/// under whatever ISA is currently forced: serial and parallel SpMV for
/// CSR/BCSR/SMASH, serial and parallel batched SpMDM for the same three
/// formats, at threads {1, 2, 8}. Returned flat so callers can `==` two
/// snapshots taken under different tiers.
fn snapshot<T: Scalar>(a: &Csr<T>, n: usize) -> Vec<Vec<T>> {
    let x: Vec<T> = (0..a.cols())
        .map(|c| T::from_f64(0.25 + (c % 7) as f64 * 0.125))
        .collect();
    let b = generators::dense_batch::<T>(a.cols(), n, 5);
    let bcsr = Bcsr::from_csr(a, 2, 2).expect("2x2 blocking");
    let sm = SmashMatrix::encode(a, SmashConfig::row_major(&[2, 4]).expect("ratios"));
    let mut out = Vec::new();

    let mut y = vec![T::ZERO; a.rows()];
    native::spmv_csr(a, &x, &mut y);
    out.push(y.clone());
    native::spmv_csr_opt(a, &x, &mut y);
    out.push(y.clone());
    native::spmv_bcsr(&bcsr, &x, &mut y);
    out.push(y.clone());
    native::spmv_smash(&sm, &x, &mut y);
    out.push(y.clone());

    let mut c = Dense::zeros(a.rows(), n);
    native::spmm_dense_csr(a, &b, &mut c);
    out.push(c.as_slice().to_vec());
    native::spmm_dense_bcsr(&bcsr, &b, &mut c);
    out.push(c.as_slice().to_vec());
    native::spmm_dense_smash(&sm, &b, &mut c);
    out.push(c.as_slice().to_vec());

    for t in THREADS {
        let pool = ThreadPool::new(t);
        par_spmv_csr(&pool, a, &x, &mut y);
        out.push(y.clone());
        par_spmv_bcsr(&pool, &bcsr, &x, &mut y);
        out.push(y.clone());
        par_spmv_smash(&pool, &sm, &x, &mut y);
        out.push(y.clone());
        par_spmm_dense_csr(&pool, a, &b, &mut c);
        out.push(c.as_slice().to_vec());
        par_spmm_dense_bcsr(&pool, &bcsr, &b, &mut c);
        out.push(c.as_slice().to_vec());
        par_spmm_dense_smash(&pool, &sm, &b, &mut c);
        out.push(c.as_slice().to_vec());
    }
    out
}

/// Asserts the full kernel snapshot is bit-identical between the forced
/// scalar emulation and every supported vector tier, for both precisions.
fn assert_isa_identity(a64: &Csr<f64>, n: usize) {
    let a32 = a64.cast::<f32>();
    let want64 = with_isa(Isa::Scalar, || snapshot(a64, n));
    let want32 = with_isa(Isa::Scalar, || snapshot(&a32, n));
    for isa in vector_isas() {
        let got64 = with_isa(isa, || snapshot(a64, n));
        assert!(
            got64 == want64,
            "f64 snapshot diverged between scalar and {} (rhs width {n})",
            isa.name()
        );
        let got32 = with_isa(isa, || snapshot(&a32, n));
        assert!(
            got32 == want32,
            "f32 snapshot diverged between scalar and {} (rhs width {n})",
            isa.name()
        );
    }
}

/// A matrix with adversarially ragged rows: row `i` holds `i % 13` + a
/// few long outliers, so every dot-product chunk remainder (len % 8 and
/// % 4) occurs, including empty rows.
fn ragged(rows: usize, cols: usize) -> Csr<f64> {
    let mut coo = Coo::new(rows, cols);
    for i in 0..rows {
        let len = if i % 17 == 3 { cols.min(67) } else { i % 13 };
        for k in 0..len {
            let c = (i * 31 + k * 7) % cols;
            coo.push(i, c, (i as f64 - 3.0) * 0.25 + k as f64 * 0.0625);
        }
    }
    coo.compress();
    Csr::from_coo(&coo)
}

#[test]
fn ragged_rows_identical_across_isas_at_every_tile_remainder() {
    let a = ragged(37, 41);
    // n % 8 ∈ {1..7} plus the pure-8 and 8+4 widths and a single column.
    for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16] {
        assert_isa_identity(&a, n);
    }
}

#[test]
fn structured_matrices_identical_across_isas() {
    for a in [
        generators::banded(48, 48, 2, 500, 3),
        generators::uniform(53, 29, 600, 9),
        generators::power_law(64, 64, 900, 1.2, 11),
    ] {
        assert_isa_identity(&a, 10);
    }
}

#[test]
fn empty_and_tiny_matrices_identical_across_isas() {
    assert_isa_identity(&Csr::from_coo(&Coo::new(3, 5)), 9);
    let mut coo = Coo::new(1, 1);
    coo.push(0, 0, -2.5);
    assert_isa_identity(&Csr::from_coo(&coo), 3);
}

#[test]
fn forced_scalar_equals_default_resolution_when_host_is_scalar_only() {
    // On a vector-capable host the default resolution is a vector tier and
    // this compares vector vs vector (trivially equal); on a scalar-only
    // host it pins that the `SMASH_SIMD=scalar` CI pass sees the same bits
    // as unforced runs. Either way the snapshot must be stable.
    let a = ragged(20, 23);
    let _guard = isa_lock().lock().unwrap_or_else(|e| e.into_inner());
    simd::set_override(None);
    let default_run = snapshot(&a, 7);
    drop(_guard);
    let forced = with_isa(simd::active(), || snapshot(&a, 7));
    assert!(
        forced == default_run,
        "forcing the active tier changed bits"
    );
}

/// Arbitrary sparse matrix (same strategy family as tests/properties.rs).
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..40, 1usize..40)
        .prop_flat_map(|(r, c)| {
            let entries =
                proptest::collection::vec((0..r, 0..c, 1u32..1000u32), 0..(r * c).min(160));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0 - 20.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_simd_scalar_identity(a in arb_matrix(), n in 1usize..18) {
        assert_isa_identity(&a, n);
    }
}
