//! Seeded generators must be pure functions of their arguments: the same
//! seed reproduces bit-identical output (experiments and CI depend on it),
//! and different seeds must actually change the sparsity pattern.

use smash::graph::generators as graph_gen;
use smash::matrix::generators as mat_gen;
use smash::matrix::Csr;

/// Column-index pattern of a CSR matrix, row by row.
fn pattern(a: &Csr<f64>) -> Vec<Vec<u32>> {
    (0..a.rows()).map(|r| a.row(r).0.to_vec()).collect()
}

/// One seeded closure per matrix generator, shared by both matrix tests so
/// new generators only need to be registered once.
type SeededGenerator = Box<dyn Fn(u64) -> Csr<f64>>;

fn matrix_generator_set() -> Vec<(&'static str, SeededGenerator)> {
    vec![
        ("uniform", Box::new(|s| mat_gen::uniform(64, 64, 512, s))),
        ("banded", Box::new(|s| mat_gen::banded(64, 64, 4, 400, s))),
        (
            "clustered",
            Box::new(|s| mat_gen::clustered(64, 64, 400, 6, s)),
        ),
        (
            "block_dense",
            Box::new(|s| mat_gen::block_dense(64, 64, 400, 4, s)),
        ),
        (
            "power_law",
            Box::new(|s| mat_gen::power_law(64, 64, 400, 1.5, s)),
        ),
    ]
}

#[test]
fn matrix_generators_reproduce_for_same_seed() {
    for (name, f) in &matrix_generator_set() {
        let a = f(42);
        let b = f(42);
        assert_eq!(a, b, "{name}: same seed must give an identical matrix");
    }
}

#[test]
fn matrix_generators_vary_across_seeds() {
    for (name, f) in &matrix_generator_set() {
        let a = f(1);
        let b = f(2);
        assert_ne!(
            pattern(&a),
            pattern(&b),
            "{name}: different seeds must change the nnz pattern"
        );
    }
}

#[test]
fn graph_generators_reproduce_for_same_seed() {
    assert_eq!(
        graph_gen::rmat(256, 1024, 7),
        graph_gen::rmat(256, 1024, 7),
        "rmat: same seed must give an identical graph"
    );
    assert_eq!(
        graph_gen::road_network(256, 512, 7),
        graph_gen::road_network(256, 512, 7),
        "road_network: same seed must give an identical graph"
    );
}

#[test]
fn graph_generators_vary_across_seeds() {
    let a = graph_gen::rmat(256, 1024, 1);
    let b = graph_gen::rmat(256, 1024, 2);
    assert_ne!(
        pattern(a.adjacency()),
        pattern(b.adjacency()),
        "rmat: different seeds must change the edge pattern"
    );

    let r1 = graph_gen::road_network(256, 512, 1);
    let r2 = graph_gen::road_network(256, 512, 2);
    assert_ne!(
        pattern(r1.adjacency()),
        pattern(r2.adjacency()),
        "road_network: different seeds must change the edge pattern"
    );
}

#[test]
fn paper_graph_suite_is_deterministic() {
    let a = graph_gen::generate_graphs(16, 5);
    let b = graph_gen::generate_graphs(16, 5);
    assert_eq!(a.len(), b.len());
    for ((spec_a, ga), (spec_b, gb)) in a.iter().zip(&b) {
        assert_eq!(spec_a.label(), spec_b.label());
        assert_eq!(
            ga,
            gb,
            "{}: suite generation must reproduce",
            spec_a.label()
        );
    }
}
