//! Adversarial Matrix Market corpus: every malformed stream must come
//! back as a typed [`MatrixError::Parse`] / [`MatrixError::Io`] — never a
//! panic, never an allocation trusted from a hostile header. The corpus
//! is deterministic (no generated cases) so a regression names the exact
//! input that broke.

use smash::matrix::market::read_coo;
use smash::matrix::MatrixError;

/// Every entry: (label, bytes, expected substring of the error display).
/// Bytes, not &str — some cases are deliberately invalid UTF-8.
fn corpus() -> Vec<(&'static str, Vec<u8>, &'static str)> {
    vec![
        ("empty stream", b"".to_vec(), "empty stream"),
        (
            "whitespace only",
            b"   \n  \n".to_vec(),
            "MatrixMarket header",
        ),
        (
            "truncated banner",
            b"%%MatrixM".to_vec(),
            "MatrixMarket header",
        ),
        (
            "wrong object word",
            b"%%MatrixMarket tensor coordinate real general\n1 1 0\n".to_vec(),
            "unsupported object/format",
        ),
        (
            "array format unsupported",
            b"%%MatrixMarket matrix array real general\n2 2\n1.0\n".to_vec(),
            "unsupported object/format",
        ),
        (
            "bogus field type",
            b"%%MatrixMarket matrix coordinate quaternion general\n1 1 0\n".to_vec(),
            "unsupported field type",
        ),
        (
            "bogus symmetry",
            b"%%MatrixMarket matrix coordinate real diagonal\n1 1 0\n".to_vec(),
            "unsupported symmetry",
        ),
        (
            "header only, no size line",
            b"%%MatrixMarket matrix coordinate real general\n% a comment\n".to_vec(),
            "missing size line",
        ),
        (
            "size line with two tokens",
            b"%%MatrixMarket matrix coordinate real general\n3 3\n".to_vec(),
            "rows cols nnz",
        ),
        (
            "size line with garbage integer",
            b"%%MatrixMarket matrix coordinate real general\n3 x 1\n1 1 1.0\n".to_vec(),
            "invalid integer",
        ),
        (
            "negative dimension",
            b"%%MatrixMarket matrix coordinate real general\n-3 3 1\n1 1 1.0\n".to_vec(),
            "invalid integer",
        ),
        (
            // The over-allocation guard: a 60-byte stream declaring
            // usize::MAX entries must fail fast on the impossible count,
            // not reserve memory for it.
            "declared nnz exceeds rows*cols",
            b"%%MatrixMarket matrix coordinate real general\n3 3 18446744073709551615\n".to_vec(),
            "exceed",
        ),
        (
            // Huge-but-plausible count with a tiny body: pre-allocation is
            // capped, and the truncation is still a typed error.
            "huge declared nnz, tiny body",
            b"%%MatrixMarket matrix coordinate real general\n1000000 1000000 999999999\n1 1 1.0\n"
                .to_vec(),
            "found 1",
        ),
        (
            "entry row out of bounds",
            b"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n".to_vec(),
            "outside",
        ),
        (
            "one-based index zero",
            b"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".to_vec(),
            "outside",
        ),
        (
            "entry with too few fields",
            b"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n".to_vec(),
            "expected 3 fields",
        ),
        (
            "entry with unparsable value",
            b"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 cheese\n".to_vec(),
            "invalid value",
        ),
        (
            "fewer entries than declared",
            b"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n".to_vec(),
            "declared 3 entries, found 1",
        ),
        (
            "more entries than declared",
            b"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n".to_vec(),
            "declared 1 entries, found 2",
        ),
        (
            "skew-symmetric explicit diagonal",
            b"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 1 1.0\n".to_vec(),
            "diagonal",
        ),
        (
            "non-utf8 bytes in header",
            [
                b"%%MatrixMarket matrix ".as_ref(),
                &[0xff, 0xfe, 0x80],
                b" real general\n",
            ]
            .concat(),
            "", // Io error from the line reader; display text is platform-worded
        ),
        (
            "non-utf8 bytes in an entry",
            [
                b"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 ".as_ref(),
                &[0xc3, 0x28],
                b"\n",
            ]
            .concat(),
            "",
        ),
    ]
}

#[test]
fn malformed_streams_fail_with_typed_errors_never_panic() {
    for (label, bytes, expect) in corpus() {
        let result = read_coo::<f64, _>(bytes.as_slice());
        let err = match result {
            Err(e) => e,
            Ok(m) => panic!(
                "{label}: parsed a malformed stream into {}x{}",
                m.rows(),
                m.cols()
            ),
        };
        assert!(
            matches!(err, MatrixError::Parse { .. } | MatrixError::Io(_)),
            "{label}: wrong error category: {err:?}"
        );
        let shown = err.to_string();
        assert!(
            shown.contains(expect),
            "{label}: error `{shown}` does not mention `{expect}`"
        );
    }
}

#[test]
fn parse_errors_carry_the_offending_line_number() {
    let text = b"%%MatrixMarket matrix coordinate real general\n% comment\n2 2 1\n1 1 oops\n";
    match read_coo::<f64, _>(text.as_slice()) {
        Err(MatrixError::Parse { line, .. }) => assert_eq!(line, 4),
        other => panic!("expected a Parse error with a line number, got {other:?}"),
    }
}

#[test]
fn a_valid_stream_still_parses_after_the_hardening() {
    let text = b"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
    let m = read_coo::<f64, _>(text.as_slice()).expect("valid stream");
    assert_eq!((m.rows(), m.cols()), (3, 3));
    assert_eq!(m.nnz(), 3); // the (3,2) entry mirrors to (2,3)
}
