//! Smoke tests for the experiment harness: every figure function runs at a
//! tiny scale and produces non-empty, well-formed tables with the paper
//! annotations attached.

use smash_experiments::{figs, ExpConfig};

fn tiny() -> ExpConfig {
    ExpConfig {
        scale_spmv: 128,
        scale_spmm: 256,
        scale_graph: 512,
        seed: 1,
        fast: true,
    }
}

#[test]
fn every_figure_produces_tables() {
    let cfg = tiny();
    let runs: Vec<(&str, Vec<smash_experiments::Table>)> = vec![
        ("table02", figs::tables::table02(&cfg)),
        ("table03", figs::tables::table03(&cfg)),
        ("table04", figs::tables::table04(&cfg)),
        ("fig03", figs::fig03::run(&cfg)),
        ("fig10_11", figs::fig10_13::run_spmv(&cfg)),
        ("fig12_13", figs::fig10_13::run_spmm(&cfg)),
        ("fig14_15", figs::fig14_15::run(&cfg)),
        ("fig16_17", figs::fig16_17::run(&cfg)),
        ("fig18", figs::fig18::run(&cfg)),
        ("fig19", figs::fig19::run(&cfg)),
        ("fig20", figs::fig20::run(&cfg)),
        ("area", figs::area::run(&cfg)),
    ];
    for (name, tables) in runs {
        assert!(!tables.is_empty(), "{name} produced no tables");
        for t in &tables {
            assert!(!t.rows.is_empty(), "{name}: table `{}` is empty", t.title);
            let rendered = t.to_string();
            assert!(rendered.contains("##"), "{name}: missing title");
            // Every row must be rectangular (push_row enforces it; this
            // guards the Display path).
            for row in &t.rows {
                assert_eq!(row.len(), t.headers.len(), "{name}: ragged row");
            }
        }
    }
}

#[test]
fn speedup_cells_parse_as_numbers() {
    let cfg = tiny();
    let tables = figs::fig10_13::run_spmv(&cfg);
    let speed = &tables[0];
    for row in &speed.rows {
        for cell in &row[2..] {
            let v: f64 = cell.parse().expect("numeric speedup cell");
            assert!(v > 0.0 && v < 100.0, "implausible speedup {v}");
        }
    }
}

#[test]
fn fig19_reports_both_regimes_at_full_suite() {
    let cfg = ExpConfig {
        fast: false,
        ..tiny()
    };
    let t = &figs::fig19::run(&cfg)[0];
    let ratios: Vec<f64> = t
        .rows
        .iter()
        .map(|r| r[3].parse().expect("numeric ratio"))
        .collect();
    assert!(
        ratios.iter().any(|&r| r < 1.0),
        "some sparse matrix must favour CSR"
    );
    assert!(
        ratios.iter().any(|&r| r > 1.0),
        "some dense matrix must favour SMASH"
    );
}
