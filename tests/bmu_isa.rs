//! The BMU hardware model must agree with the software cursor on every
//! workload, and the ISA-level costs must match the paper's accounting.

use smash::bmu::{AreaModel, Bmu, BmuBinding, BUFFER_BYTES, MAX_HW_LEVELS, NUM_GROUPS};
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::matrix::suite;
use smash::sim::{CountEngine, UopClass};

/// Drives the full Algorithm 1 ISA sequence and returns every (row, col).
fn scan_all(sm: &SmashMatrix<f64>) -> (Vec<(u64, u64)>, smash::sim::SimStats) {
    let mut e = CountEngine::new();
    let mut bmu = Bmu::new();
    let mut addrs = [0u64; MAX_HW_LEVELS];
    for (l, a) in addrs
        .iter_mut()
        .enumerate()
        .take(sm.hierarchy().num_levels())
    {
        *a = 0x10_0000 + (l as u64) * 0x10_0000;
    }
    let binding = BmuBinding {
        hierarchy: sm.hierarchy(),
        level_addrs: addrs,
    };
    bmu.matinfo(&mut e, 0, sm.rows() as u32, sm.cols() as u32);
    for (lvl, &r) in sm.config().ratios().iter().enumerate() {
        bmu.bmapinfo(&mut e, 0, lvl, r);
    }
    for lvl in (0..sm.hierarchy().num_levels()).rev() {
        bmu.rdbmap(&mut e, 0, lvl, addrs[lvl], &binding);
    }
    let mut out = Vec::new();
    while bmu.pbmap(&mut e, 0, &binding).block.is_some() {
        let ind = bmu.rdind(&mut e, 0);
        out.push((ind.row, ind.col));
    }
    (out, e.finish())
}

#[test]
fn bmu_indices_match_software_cursor_on_the_suite() {
    for (spec, a) in suite::generate_suite(64, 3) {
        let ratios = spec.bitmap_cfg.ratios_low_to_high();
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&ratios).expect("paper config"));
        let (got, _) = scan_all(&sm);
        let want: Vec<(u64, u64)> = sm
            .hierarchy()
            .blocks()
            .map(|b| {
                let (r, c) = sm.block_row_col(b);
                (r as u64, c as u64)
            })
            .collect();
        assert_eq!(got, want, "{} scan mismatch", spec.name);
    }
}

#[test]
fn isa_instruction_count_is_two_per_block_plus_setup() {
    let (spec, a) = &suite::generate_suite(64, 5)[5]; // ns3Da
    let ratios = spec.bitmap_cfg.ratios_low_to_high();
    let sm = SmashMatrix::encode(a, SmashConfig::row_major(&ratios).expect("paper config"));
    let (found, stats) = scan_all(&sm);
    assert_eq!(found.len(), sm.num_blocks());
    // Setup: 1 matinfo + 3 bmapinfo + 3 rdbmap; loop: pbmap + rdind per
    // block plus the final exhausted pbmap.
    let expected = 7 + 2 * sm.num_blocks() as u64 + 1;
    assert_eq!(stats.count(UopClass::Coproc), expected);
}

#[test]
fn hardware_constants_match_the_paper() {
    assert_eq!(NUM_GROUPS, 4);
    assert_eq!(MAX_HW_LEVELS, 3);
    assert_eq!(BUFFER_BYTES, 256);
    let area = AreaModel::paper_default();
    assert_eq!(area.sram_bytes(), 3 * 1024);
    assert_eq!(area.register_bytes(), 140);
    assert!(area.overhead_percent() <= 0.076 + 1e-3);
}

#[test]
fn max_supported_compression_ratio_matches_buffer_size() {
    // §4.2.1: with 256-byte buffers, ratios up to 256*8 = 2048:1.
    assert_eq!(smash::encoding::MAX_RATIO as usize, BUFFER_BYTES * 8);
    assert!(SmashConfig::row_major(&[2, 2048]).is_ok());
    assert!(SmashConfig::row_major(&[2, 4096]).is_err());
}
