//! Cross-crate round-trip tests: every format conversion path in the
//! workspace must be lossless for non-zero entries.

use smash::encoding::{Layout, SmashConfig, SmashMatrix};
use smash::matrix::{generators, market, suite, Bcsr, Csr};

#[test]
fn suite_matrices_roundtrip_through_smash_at_paper_configs() {
    for (spec, a) in suite::generate_suite(64, 7) {
        let ratios = spec.bitmap_cfg.ratios_low_to_high();
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&ratios).expect("paper config"));
        sm.validate().expect("valid encoding");
        assert_eq!(sm.decode(), a, "{} lost data", spec.name);
        assert_eq!(sm.nnz(), a.nnz(), "{} nnz mismatch", spec.name);
    }
}

#[test]
fn suite_matrices_roundtrip_through_all_formats() {
    for (spec, a) in suite::generate_suite(128, 11) {
        // CSR -> COO -> CSR
        assert_eq!(Csr::from_coo(&a.to_coo()), a, "{} via COO", spec.name);
        // CSR -> CSC -> CSR
        assert_eq!(a.to_csc().to_csr(), a, "{} via CSC", spec.name);
        // CSR -> dense -> CSR
        assert_eq!(Csr::from_dense(&a.to_dense()), a, "{} via dense", spec.name);
        // CSR -> BCSR -> CSR
        let b = Bcsr::from_csr(&a, 2, 2).expect("valid block");
        assert_eq!(b.to_csr(), a, "{} via BCSR", spec.name);
    }
}

#[test]
fn matrix_market_roundtrip_via_disk_format() {
    let a = generators::power_law(200, 150, 1500, 1.1, 13);
    let mut buf = Vec::new();
    market::write_coo(&mut buf, &a.to_coo()).expect("write");
    let back = market::read_coo::<f64, _>(&buf[..]).expect("read");
    assert_eq!(Csr::from_coo(&back), a);
}

#[test]
fn matrix_market_header_preserving_roundtrip_is_lossless() {
    // A symmetric pattern graph: parse, write back with its own header,
    // re-parse — the matrix is unchanged *and* the file never doubles or
    // fabricates values (same stored entry count, positions only).
    let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                5 5 4\n2 1\n3 2\n4 3\n5 5\n";
    let (m, header) = market::read_coo_with::<f64, _>(text.as_bytes()).expect("parse");
    assert_eq!(header.field, market::MarketField::Pattern);
    assert_eq!(header.symmetry, market::MarketSymmetry::Symmetric);
    assert_eq!(m.nnz(), 7); // 3 mirrored off-diagonals + 1 diagonal
    let mut buf = Vec::new();
    market::write_coo_as(&mut buf, &m, header).expect("write");
    assert_eq!(std::str::from_utf8(&buf).unwrap(), text);

    // Skew-symmetric integer stream: values mirror negated through the
    // round-trip.
    let skew = "%%MatrixMarket matrix coordinate integer skew-symmetric\n3 3 2\n2 1 4\n3 2 -9\n";
    let (m, header) = market::read_coo_with::<f64, _>(skew.as_bytes()).expect("parse");
    assert_eq!(m.to_dense().get(0, 1), -4.0);
    let mut buf = Vec::new();
    market::write_coo_as(&mut buf, &m, header).expect("write");
    let (back, _) = market::read_coo_with::<f64, _>(&buf[..]).expect("reparse");
    assert_eq!(back, m);
}

#[test]
fn col_major_and_row_major_encode_the_same_matrix() {
    let a = generators::clustered(96, 80, 700, 4, 17);
    let rm = SmashMatrix::encode(
        &a,
        SmashConfig::new(&[2, 4], Layout::RowMajor).expect("valid"),
    );
    let cm = SmashMatrix::encode(
        &a,
        SmashConfig::new(&[2, 4], Layout::ColMajor).expect("valid"),
    );
    assert_eq!(rm.decode(), cm.decode());
    assert_eq!(rm.nnz(), cm.nnz());
}

#[test]
fn transpose_encode_commutes_with_layout_swap() {
    // Encoding A col-major visits the same blocks as encoding A^T row-major.
    let a = generators::uniform(64, 48, 400, 19);
    let cm = SmashMatrix::encode(&a, SmashConfig::col_major(&[4]).expect("valid"));
    let t_rm = SmashMatrix::encode(&a.transpose(), SmashConfig::row_major(&[4]).expect("valid"));
    assert_eq!(cm.num_blocks(), t_rm.num_blocks());
    assert_eq!(cm.nza().values(), t_rm.nza().values());
}
