//! Every mechanism must compute bit-for-bit comparable results on every
//! workload family: the instrumented kernels, the native kernels and the
//! dense reference all agree.

use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::{harness, native, test_vector, Mechanism};
use smash::matrix::{generators, Csr};
use smash::sim::CountEngine;

fn families() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("uniform", generators::uniform(72, 64, 500, 1)),
        ("banded", generators::banded(64, 64, 4, 380, 2)),
        ("clustered", generators::clustered(60, 72, 450, 6, 3)),
        ("block_dense", generators::block_dense(64, 64, 512, 8, 4)),
        ("power_law", generators::power_law(64, 64, 480, 1.2, 5)),
        ("diagonal", generators::diagonal(64, 2.5)),
        ("empty", Csr::from_coo(&smash::matrix::Coo::new(32, 32))),
    ]
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + b.abs())
}

#[test]
fn spmv_all_mechanisms_match_dense_reference() {
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
    for (name, a) in families() {
        let x = test_vector(a.cols());
        let want = a.to_dense().spmv(&x);
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let y = harness::run_spmv(&mut e, mech, &a, &cfg);
            for (g, w) in y.iter().zip(&want) {
                assert!(close(*g, *w), "{name}/{mech}: {g} vs {w}");
            }
        }
    }
}

#[test]
fn spmm_all_mechanisms_match_dense_reference() {
    let cfg = SmashConfig::row_major(&[2]).expect("valid");
    for (name, a) in families() {
        if a.nnz() == 0 {
            continue;
        }
        let b = generators::uniform(a.cols(), 40, 300, 9);
        let want = a.to_dense().matmul(&b.to_dense()).expect("conforming dims");
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let c = harness::run_spmm(&mut e, mech, &a, &b, &cfg).to_dense();
            for i in 0..want.rows() {
                for j in 0..want.cols() {
                    assert!(
                        close(c.get(i, j), want.get(i, j)),
                        "{name}/{mech} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn native_kernels_match_instrumented_kernels() {
    for (name, a) in families() {
        let x = test_vector(a.cols());
        let want = a.spmv(&x);
        let mut y = vec![0.0; a.rows()];
        native::spmv_csr(&a, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!(close(*g, *w), "{name} native csr");
        }
        native::spmv_csr_opt(&a, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!(close(*g, *w), "{name} native csr_opt");
        }
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).expect("valid"));
        native::spmv_smash(&sm, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!(close(*g, *w), "{name} native smash");
        }
    }
}

#[test]
fn spmv_instruction_ordering_matches_paper_ranking() {
    // On a mid-density clustered matrix the paper's Fig. 11 ordering holds:
    // SMASH < BCSR/SW-SMASH < CSR in executed instructions.
    let a = generators::clustered(256, 256, 4000, 6, 21);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
    let csr = harness::count_spmv(Mechanism::TacoCsr, &a, &cfg).instructions();
    let smash = harness::count_spmv(Mechanism::Smash, &a, &cfg).instructions();
    let sw = harness::count_spmv(Mechanism::SwSmash, &a, &cfg).instructions();
    let ideal = harness::count_spmv(Mechanism::IdealCsr, &a, &cfg).instructions();
    assert!(smash < csr, "smash {smash} !< csr {csr}");
    assert!(sw < csr, "sw {sw} !< csr {csr}");
    assert!(smash < sw, "smash {smash} !< sw {sw}");
    assert!(ideal < csr, "ideal {ideal} !< csr {csr}");
}
