//! Every mechanism must compute bit-for-bit comparable results on every
//! workload family: the instrumented kernels, the native kernels and the
//! dense reference all agree — at both precisions. The `f32` pipeline is
//! checked against the `f64` oracle within the `Scalar`-defined tolerance,
//! and the executor's `Auto` dispatch is pinned bit-for-bit to the
//! explicit serial kernels.

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::{harness, native, test_vector, Executor, Mechanism};
use smash::matrix::{generators, Bcsr, Coo, Csr, Scalar};
use smash::sim::CountEngine;

fn families() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("uniform", generators::uniform(72, 64, 500, 1)),
        ("banded", generators::banded(64, 64, 4, 380, 2)),
        ("clustered", generators::clustered(60, 72, 450, 6, 3)),
        ("block_dense", generators::block_dense(64, 64, 512, 8, 4)),
        ("power_law", generators::power_law(64, 64, 480, 1.2, 5)),
        ("diagonal", generators::diagonal(64, 2.5)),
        ("empty", Csr::from_coo(&smash::matrix::Coo::new(32, 32))),
    ]
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + b.abs())
}

#[test]
fn spmv_all_mechanisms_match_dense_reference() {
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
    for (name, a) in families() {
        let x = test_vector(a.cols());
        let want = a.to_dense().spmv(&x);
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let y = harness::run_spmv(&mut e, mech, &a, &cfg);
            for (g, w) in y.iter().zip(&want) {
                assert!(close(*g, *w), "{name}/{mech}: {g} vs {w}");
            }
        }
    }
}

#[test]
fn spmm_all_mechanisms_match_dense_reference() {
    let cfg = SmashConfig::row_major(&[2]).expect("valid");
    for (name, a) in families() {
        if a.nnz() == 0 {
            continue;
        }
        let b = generators::uniform(a.cols(), 40, 300, 9);
        let want = a.to_dense().matmul(&b.to_dense()).expect("conforming dims");
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let c = harness::run_spmm(&mut e, mech, &a, &b, &cfg).to_dense();
            for i in 0..want.rows() {
                for j in 0..want.cols() {
                    assert!(
                        close(c.get(i, j), want.get(i, j)),
                        "{name}/{mech} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn native_kernels_match_instrumented_kernels() {
    for (name, a) in families() {
        let x = test_vector(a.cols());
        let want = a.spmv(&x);
        let mut y = vec![0.0; a.rows()];
        native::spmv_csr(&a, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!(close(*g, *w), "{name} native csr");
        }
        native::spmv_csr_opt(&a, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!(close(*g, *w), "{name} native csr_opt");
        }
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).expect("valid"));
        native::spmv_smash(&sm, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!(close(*g, *w), "{name} native smash");
        }
    }
}

/// Arbitrary sparse matrix in f64 (the oracle precision); tests cast it
/// down to f32 to drive the reduced-precision pipeline.
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..40, 1usize..40)
        .prop_flat_map(|(r, c)| {
            let entries =
                proptest::collection::vec((0..r, 0..c, 1u32..1000u32), 0..(r * c).min(120));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

/// The f32 pipeline (every native kernel family + the instrumented
/// harness) must match the f64 oracle within `f32::TOLERANCE`.
fn assert_f32_matches_f64_oracle(a64: &Csr<f64>) {
    let a = a64.cast::<f32>();
    let x64 = test_vector::<f64>(a64.cols());
    let x = test_vector::<f32>(a.cols());
    let want = a64.spmv(&x64);
    let check = |y: &[f32], what: &str| {
        for (g, w) in y.iter().zip(&want) {
            assert!(
                g.approx_eq(f32::from_f64(*w), f32::TOLERANCE),
                "{what}: {g} vs {w}"
            );
        }
    };

    let mut y = vec![0.0f32; a.rows()];
    native::spmv_csr(&a, &x, &mut y);
    check(&y, "native csr");
    native::spmv_csr_opt(&a, &x, &mut y);
    check(&y, "native csr_opt");
    let bcsr = Bcsr::from_csr(&a, 2, 2).expect("valid blocking");
    native::spmv_bcsr(&bcsr, &x, &mut y);
    check(&y, "native bcsr");
    let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).expect("valid"));
    native::spmv_smash(&sm, &x, &mut y);
    check(&y, "native smash");

    // The instrumented mechanisms, monomorphized to f32.
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
    for mech in Mechanism::ALL {
        let mut e = CountEngine::new();
        let y = harness::run_spmv(&mut e, mech, &a, &cfg);
        check(&y, mech.label());
    }

    // SpMM: f32 product vs the f64 oracle, densified.
    if a64.nnz() > 0 && a64.cols() > 0 {
        let b64 = generators::uniform(a64.cols(), 16, 2 * a64.cols().max(8), 3);
        let b = b64.cast::<f32>();
        let want = a64.spmm_inner(&b64.to_csc()).expect("dims").to_dense();
        let got = native::spmm_csr(&a, &b.to_csc()).to_dense();
        for i in 0..want.rows() {
            for j in 0..want.cols() {
                assert!(
                    got.get(i, j)
                        .approx_eq(f32::from_f64(want.get(i, j)), f32::TOLERANCE),
                    "spmm ({i},{j}): {} vs {}",
                    got.get(i, j),
                    want.get(i, j)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn f32_pipeline_matches_f64_oracle_on_arbitrary_matrices(a in arb_matrix()) {
        assert_f32_matches_f64_oracle(&a);
    }
}

#[test]
fn f32_pipeline_matches_f64_oracle_on_families() {
    for (_, a) in families() {
        assert_f32_matches_f64_oracle(&a);
    }
}

/// `Executor::auto` must produce bit-identical output to the explicit
/// serial kernel of each format, at both precisions — the executor is a
/// dispatcher, never a rounding change.
#[test]
fn executor_auto_is_bit_identical_to_explicit_kernels() {
    fn check<T: Scalar>(a: &Csr<T>) {
        let exec = Executor::auto();
        let x = test_vector::<T>(a.cols());
        let mut got = vec![T::ZERO; a.rows()];
        let mut want = vec![T::ZERO; a.rows()];

        exec.spmv(a, &x, &mut got);
        native::spmv_csr(a, &x, &mut want);
        assert!(got == want, "csr auto != serial");

        let bcsr = Bcsr::from_csr(a, 2, 2).expect("valid blocking");
        exec.spmv(&bcsr, &x, &mut got);
        native::spmv_bcsr(&bcsr, &x, &mut want);
        assert!(got == want, "bcsr auto != serial");

        let sm = SmashMatrix::encode(a, SmashConfig::row_major(&[2, 4]).expect("valid"));
        exec.spmv(&sm, &x, &mut got);
        native::spmv_smash(&sm, &x, &mut want);
        assert!(got == want, "smash auto != serial");

        let b = a.transpose().to_csc();
        assert!(
            exec.spmm(a, &b).entries() == native::spmm_csr(a, &b).entries(),
            "spmm auto != serial"
        );
        let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
        assert!(
            exec.encode(a, cfg.clone()) == SmashMatrix::encode(a, cfg),
            "encode auto != serial"
        );
    }
    // Both a small (serial-dispatch) and a large (parallel-dispatch)
    // operand, in both precisions.
    for a in [
        generators::uniform(48, 48, 400, 3),
        generators::clustered(256, 256, 24_000, 5, 7),
    ] {
        check(&a);
        check(&a.cast::<f32>());
    }
}

#[test]
fn spmv_instruction_ordering_matches_paper_ranking() {
    // On a mid-density clustered matrix the paper's Fig. 11 ordering holds:
    // SMASH < BCSR/SW-SMASH < CSR in executed instructions.
    let a = generators::clustered(256, 256, 4000, 6, 21);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
    let csr = harness::count_spmv(Mechanism::TacoCsr, &a, &cfg).instructions();
    let smash = harness::count_spmv(Mechanism::Smash, &a, &cfg).instructions();
    let sw = harness::count_spmv(Mechanism::SwSmash, &a, &cfg).instructions();
    let ideal = harness::count_spmv(Mechanism::IdealCsr, &a, &cfg).instructions();
    assert!(smash < csr, "smash {smash} !< csr {csr}");
    assert!(sw < csr, "sw {sw} !< csr {csr}");
    assert!(smash < sw, "smash {smash} !< sw {sw}");
    assert!(ideal < csr, "ideal {ideal} !< csr {csr}");
}
