//! Property tests for the rank/select indexing layer: `RankIndex`
//! against the O(n) scans, `LineDirectory`/`LineCursor` against the
//! full-expansion oracle, and the directory-backed kernels against the
//! seed kernels — **bit-identical** (`==`), at thread counts {1, 2, 8},
//! across adversarial shapes.

use proptest::prelude::*;
use smash::encoding::{Bitmap, RankIndex, SmashConfig, SmashMatrix};
use smash::kernels::native;
use smash::matrix::{generators, Coo, Csr};
use smash::parallel::{par_spmv_smash, ThreadPool};

/// The thread counts the kernel equivalence assertions run under.
const THREADS: [usize; 3] = [1, 2, 8];

fn vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 + ((i * 37) % 11) as f64 * 0.375)
        .collect()
}

/// Arbitrary bitmap: length 0..1200, arbitrary contents.
fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
    proptest::collection::vec(any::<bool>(), 0..1200).prop_map(|bits| Bitmap::from_bools(&bits))
}

/// Arbitrary sparse matrix with adversarial shapes: skinny, empty rows,
/// dense clusters.
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..48, 1usize..48)
        .prop_flat_map(|(r, c)| {
            let entries =
                proptest::collection::vec((0..r, 0..c, 1u32..1000u32), 0..(r * c).min(220));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

/// Arbitrary hierarchy configuration: 1-4 levels, small ratios.
fn arb_ratios() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(2u32..9, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed rank must equal the O(n) word scan at every position.
    #[test]
    fn rank_index_matches_scan(bm in arb_bitmap(), frac in 0.0f64..1.0) {
        let idx = RankIndex::build(&bm);
        let pos = ((bm.len() as f64) * frac) as usize;
        prop_assert_eq!(idx.rank(&bm, pos), bm.rank(pos));
        prop_assert_eq!(idx.rank(&bm, bm.len()), bm.count_ones());
        prop_assert_eq!(idx.ones(), bm.count_ones());
    }

    /// Indexed select must equal the naive iterator scan for every k,
    /// and None past the population count.
    #[test]
    fn select_index_matches_scan(bm in arb_bitmap(), k in 0usize..1400) {
        let idx = RankIndex::build(&bm);
        prop_assert_eq!(idx.select(&bm, k), bm.iter_ones().nth(k));
    }

    /// The line cursor must yield exactly the (ordinal, logical) pairs
    /// the full-expansion oracle produces, line by line.
    #[test]
    fn line_cursor_matches_full_expansion(a in arb_matrix(), ratios in arb_ratios()) {
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&ratios).unwrap());
        let full = sm.full_bitmap0();
        let bpl = sm.blocks_per_line();
        let want: Vec<(usize, usize)> = full.iter_ones().enumerate().collect();
        let mut got = Vec::new();
        for line in 0..sm.line_count() {
            let before = got.len();
            for pair in sm.line_cursor(line) {
                prop_assert_eq!(pair.1 / bpl, line);
                got.push(pair);
            }
            prop_assert_eq!(got.len() - before, sm.directory().blocks_in_line(line));
        }
        prop_assert_eq!(got, want);
    }

    /// Directory-backed per-line starts must equal the expansion oracle,
    /// and logical rank/select must invert each other.
    #[test]
    fn directory_starts_match_oracle(a in arb_matrix(), ratios in arb_ratios()) {
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&ratios).unwrap());
        let full = sm.full_bitmap0();
        prop_assert_eq!(sm.line_block_starts(), &sm.line_block_starts_in(&full)[..]);
        let dir = sm.directory();
        let h = sm.hierarchy();
        for (k, logical) in full.iter_ones().enumerate() {
            prop_assert_eq!(dir.block_select(h, k), Some(logical));
            prop_assert_eq!(dir.block_rank(h, logical), k);
        }
        prop_assert_eq!(dir.block_select(h, sm.num_blocks()), None);
    }

    /// The directory-backed parallel SpMV must be bit-identical to the
    /// serial seed kernel at every thread count, and match serial CSR to
    /// floating-point tolerance.
    #[test]
    fn par_spmv_smash_is_bit_identical(a in arb_matrix(), ratios in arb_ratios()) {
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&ratios).unwrap());
        let x = vector(a.cols());
        let mut want = vec![0.0f64; a.rows()];
        native::spmv_smash(&sm, &x, &mut want);
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let mut got = vec![f64::NAN; a.rows()];
            par_spmv_smash(&pool, &sm, &x, &mut got);
            prop_assert_eq!(&got, &want, "threads = {}", threads);
        }
        let mut csr = vec![0.0f64; a.rows()];
        native::spmv_csr(&a, &x, &mut csr);
        for (g, w) in want.iter().zip(&csr) {
            prop_assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()), "{} vs {}", g, w);
        }
    }

    /// The directory-backed SpMM must remain bit-identical to the
    /// full-expansion construction of its per-line block lists, and match
    /// serial CSR SpMM to floating-point tolerance.
    #[test]
    fn spmm_smash_matches_expansion_and_csr(a in arb_matrix(), b_seed in 0u64..1000) {
        let b = generators::uniform(a.cols(), 24, (a.cols() * 3).min(150), b_seed);
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        // The per-line lists the kernel derives from the directory must
        // equal the lists the seed derived from the expanded Bitmap-0.
        for sm in [&sa, &sb] {
            let bpl = sm.blocks_per_line();
            let starts = sm.line_block_starts();
            for line in 0..sm.line_count() {
                let got: Vec<u32> =
                    sm.line_cursor(line).map(|(_, l)| (l % bpl) as u32).collect();
                let want: Vec<u32> = sm
                    .full_bitmap0()
                    .iter_ones()
                    .filter(|&l| l / bpl == line)
                    .map(|l| (l % bpl) as u32)
                    .collect();
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(got.len(), (starts[line + 1] - starts[line]) as usize);
            }
        }
        let got = native::spmm_smash(&sa, &sb).to_dense();
        let want = native::spmm_csr(&a, &b.to_csc()).to_dense();
        for i in 0..want.rows() {
            for j in 0..want.cols() {
                let (x, y) = (got.get(i, j), want.get(i, j));
                prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "({},{}): {} vs {}", i, j, x, y);
            }
        }
    }
}
