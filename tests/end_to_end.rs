//! End-to-end checks that the reproduction produces the paper's headline
//! shapes: SMASH wins SpMV/SpMM on representative workloads, conversions
//! round-trip under instrumentation, and the graph applications benefit.

use smash::encoding::SmashConfig;
use smash::graph::{generators as ggen, pagerank, GraphMechanism, PageRankConfig};
use smash::kernels::{convert, harness, Mechanism};
use smash::matrix::suite::paper_suite;
use smash::sim::{CountEngine, SimEngine, SystemConfig};

#[test]
fn smash_beats_csr_spmv_on_a_clustered_suite_matrix() {
    // M8 (pkustk07), the structural FEM matrix, scaled.
    let spec = &paper_suite()[7];
    let a = spec.generate(32, 42);
    let sys = SystemConfig::paper_table2_scaled(32);
    let cfg = SmashConfig::row_major(&spec.bitmap_cfg.ratios_low_to_high()).expect("paper");
    let base = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &sys);
    let smash = harness::sim_spmv(Mechanism::Smash, &a, &cfg, &sys);
    let speedup = base.cycles as f64 / smash.cycles as f64;
    assert!(speedup > 1.3, "speedup {speedup} (paper average: 1.38)");
    let instr = smash.instructions() as f64 / base.instructions() as f64;
    assert!(instr < 0.8, "instruction ratio {instr}");
}

#[test]
fn smash_beats_csr_spmm_on_a_clustered_suite_matrix() {
    let spec = &paper_suite()[7];
    let a = spec.generate(96, 42);
    let b = spec.generate(96, 43);
    let sys = SystemConfig::paper_table2_scaled(96);
    let cfg = SmashConfig::row_major(&[spec.bitmap_cfg.b0]).expect("paper");
    let base = harness::sim_spmm(Mechanism::TacoCsr, &a, &b, &cfg, &sys);
    let smash = harness::sim_spmm(Mechanism::Smash, &a, &b, &cfg, &sys);
    let speedup = base.cycles as f64 / smash.cycles as f64;
    assert!(speedup > 1.2, "speedup {speedup} (paper average: 1.44)");
}

#[test]
fn ideal_indexing_shows_the_fig3_gap() {
    let spec = &paper_suite()[3]; // IG5-16, uniform
    let a = spec.generate(32, 42);
    let sys = SystemConfig::paper_table2_scaled(32);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
    let base = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &sys);
    let ideal = harness::sim_spmv(Mechanism::IdealCsr, &a, &cfg, &sys);
    let speedup = base.cycles as f64 / ideal.cycles as f64;
    assert!(
        speedup > 1.15,
        "ideal indexing speedup {speedup} (paper: 2.13 for SpMV)"
    );
}

#[test]
fn instrumented_conversions_roundtrip_and_scale() {
    let spec = &paper_suite()[5];
    let a = spec.generate(64, 42);
    let cfg = SmashConfig::row_major(&spec.bitmap_cfg.ratios_low_to_high()).expect("paper");
    let mut e = CountEngine::new();
    let sm = convert::csr_to_smash(&mut e, &a, cfg);
    let to_cost = e.finish().instructions();
    let mut e = CountEngine::new();
    let back = convert::smash_to_csr(&mut e, &sm);
    let from_cost = e.finish().instructions();
    assert_eq!(back, a, "conversion must be lossless");
    assert!(to_cost > 0 && from_cost > 0);
    // Conversion costs O(nnz + blocks); it must stay within a small factor
    // of one SpMV (Fig. 20's premise).
    let kernel = harness::count_spmv(Mechanism::Smash, &a, sm.config()).instructions();
    let ratio = (to_cost + from_cost) as f64 / kernel as f64;
    assert!(
        ratio < 6.0,
        "conversions cost {ratio}x one kernel — too expensive for Fig 20"
    );
}

#[test]
fn pagerank_smash_beats_csr_in_cycles() {
    let g = ggen::rmat(1024, 6000, 11);
    let sys = SystemConfig::paper_table2_scaled(16);
    let cfg = PageRankConfig {
        iterations: 3,
        ..Default::default()
    };
    let mut e = SimEngine::new(sys.clone());
    pagerank(&mut e, GraphMechanism::Csr, &g, &cfg);
    let base = e.finish();
    let mut e = SimEngine::new(sys);
    pagerank(&mut e, GraphMechanism::Smash, &g, &cfg);
    let smash = e.finish();
    let speedup = base.cycles as f64 / smash.cycles as f64;
    assert!(speedup > 1.0, "speedup {speedup} (paper: 1.27)");
    // Diluted by vector updates: smaller than the raw SpMV win (§7.3).
    let spmv_only = {
        let cfgm = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
        let m = g.transition_matrix();
        let sys = SystemConfig::paper_table2_scaled(16);
        let b = harness::sim_spmv(Mechanism::TacoCsr, &m, &cfgm, &sys);
        let s = harness::sim_spmv(Mechanism::Smash, &m, &cfgm, &sys);
        b.cycles as f64 / s.cycles as f64
    };
    assert!(
        speedup < spmv_only * 1.05,
        "graph speedup {speedup} should not exceed raw SpMV {spmv_only}"
    );
}

#[test]
fn storage_crossover_matches_fig19() {
    use smash::encoding::storage;
    let suite = paper_suite();
    // Highly sparse M4 favours CSR; clustered dense M12 favours SMASH.
    let sparse = suite[3].generate(4, 42);
    let dense = suite[11].generate(4, 42);
    let cfg_sparse =
        SmashConfig::row_major(&[2, suite[3].bitmap_cfg.b1, suite[3].bitmap_cfg.b2]).expect("ok");
    let cfg_dense =
        SmashConfig::row_major(&[2, suite[11].bitmap_cfg.b1, suite[11].bitmap_cfg.b2]).expect("ok");
    let rs = storage::compare(&sparse, &cfg_sparse);
    let rd = storage::compare(&dense, &cfg_dense);
    assert!(rs.smash_over_csr() < 1.0, "M4: {}", rs.smash_over_csr());
    assert!(rd.smash_over_csr() > 1.0, "M12: {}", rd.smash_over_csr());
}
