//! The Gustavson SpGEMM engine pinned against the inner-product oracle:
//! triplet-exact equality (not tolerance) at every thread count and both
//! precisions, the shared drop-exact-zeros cancellation policy across
//! every sparse × sparse kernel, and the structural edge cases.

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::{native, spgemm};
use smash::matrix::{Coo, Csr, Scalar};
use smash::parallel::ThreadPool;
use smash::Executor;

/// The oracle: `Csr::spmm_inner`'s triplet list — per (i, j), the
/// ascending-k `mul_add` fold over the structural intersection, exact
/// zeros dropped.
fn oracle<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Vec<(u32, u32, T)> {
    a.spmm_inner(&b.to_csc()).unwrap().entries().to_vec()
}

fn engine_entries<T: Scalar>(c: &Csr<T>) -> Vec<(u32, u32, T)> {
    c.to_coo().entries().to_vec()
}

/// Sparse matrix with integer-valued (hence exactly representable,
/// order-independent) entries, including negatives so products cancel.
fn arb_matrix(
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> impl Strategy<Value = Csr<f64>> {
    (rows, cols)
        .prop_flat_map(|(r, c)| {
            let entries = proptest::collection::vec((0..r, 0..c, -8i32..9), 0..(r * c).min(220));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

/// A linked pair `(A: r×k, B: k×c)` with conforming inner dimension.
fn arb_pair() -> impl Strategy<Value = (Csr<f64>, Csr<f64>)> {
    (1usize..40).prop_flat_map(|k| (arb_matrix(1..40, k..k + 1), arb_matrix(k..k + 1, 1..40)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance pin: `Executor::spgemm` output is `==` (exact
    /// triplets, not approximately) to the inner-product oracle at
    /// threads {1, 2, 8}, in both precisions.
    #[test]
    fn engine_is_triplet_exact_to_the_oracle_at_all_thread_counts(pair in arb_pair()) {
        let (a, b) = pair;
        let want = oracle(&a, &b);
        prop_assert_eq!(&engine_entries(&spgemm::spgemm(&a, &b)), &want);
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let c = spgemm::par_spgemm(&pool, &a, &b);
            prop_assert_eq!(&engine_entries(&c), &want, "threads={}", threads);
        }

        // Same pin at f32: integer-valued entries stay exact.
        let (a32, b32) = (a.cast::<f32>(), b.cast::<f32>());
        let want32 = oracle(&a32, &b32);
        prop_assert_eq!(&engine_entries(&spgemm::spgemm(&a32, &b32)), &want32);
        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let c = spgemm::par_spgemm(&pool, &a32, &b32);
            prop_assert_eq!(&engine_entries(&c), &want32, "threads={}", threads);
        }
    }

    /// Adversarial cancellation: integer entries with both signs make
    /// exact cancellation common. Every sparse × sparse kernel must
    /// apply the same policy — drop positions whose accumulation
    /// cancels to ±0.0, never store an explicit zero — so their triplet
    /// lists agree exactly (integer arithmetic is order-independent).
    #[test]
    fn cancellation_policy_is_shared_by_every_sparse_kernel(pair in arb_pair()) {
        let (a, b) = pair;
        let want = oracle(&a, &b);
        prop_assert!(want.iter().all(|&(_, _, v)| v != 0.0), "oracle stored a zero");

        let c = spgemm::spgemm(&a, &b);
        prop_assert!(c.values().iter().all(|&v| v != 0.0), "engine stored a zero");
        prop_assert_eq!(&engine_entries(&c), &want);

        let bc = b.to_csc();
        let plain = native::spmm_csr(&a, &bc);
        prop_assert_eq!(plain.entries(), want.as_slice());
        let opt = native::spmm_csr_opt(&a, &bc);
        prop_assert_eq!(opt.entries(), want.as_slice());

        // The SMASH block-merge kernel, same policy at block granularity.
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        let sm = native::spmm_smash(&sa, &sb);
        prop_assert!(sm.entries().iter().all(|&(_, _, v)| v != 0.0));
        prop_assert_eq!(sm.entries(), want.as_slice());
    }

    /// Output structure invariants: per row, columns strictly increasing
    /// (sorted, duplicate-free) and row_ptr consistent.
    #[test]
    fn output_columns_are_sorted_and_duplicate_free(pair in arb_pair()) {
        let (a, b) = pair;
        let c = spgemm::spgemm(&a, &b);
        prop_assert_eq!(c.rows(), a.rows());
        prop_assert_eq!(c.cols(), b.cols());
        for i in 0..c.rows() {
            let (cols, _) = c.row(i);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {} not strictly sorted", i);
        }
    }
}

#[test]
fn executor_modes_are_exact_to_the_oracle() {
    let a = smash::matrix::generators::power_law(160, 140, 4_000, 1.3, 3);
    let b = smash::matrix::generators::clustered(140, 120, 3_000, 5, 4);
    let want = oracle(&a, &b);
    for (name, exec) in [
        ("serial", Executor::serial()),
        ("parallel", Executor::parallel()),
        ("threads2", Executor::with_threads(2)),
        ("threads8", Executor::with_threads(8)),
        ("auto", Executor::auto()),
    ] {
        assert_eq!(engine_entries(&exec.spgemm(&a, &b)), want, "{name}");
    }
}

#[test]
fn engineered_cancellation_is_dropped_everywhere() {
    // A = [1, -1] against B whose two rows carry identical values in
    // column 0 (cancels exactly) and different values in column 1
    // (survives): C = [0 (dropped), -2.0].
    let mut a = Coo::new(1, 2);
    a.push(0, 0, 1.0);
    a.push(0, 1, -1.0);
    let a = Csr::from_coo(&a);
    let mut b = Coo::new(2, 2);
    b.push(0, 0, 7.0);
    b.push(0, 1, 3.0);
    b.push(1, 0, 7.0);
    b.push(1, 1, 5.0);
    let b = Csr::from_coo(&b);

    let want = vec![(0u32, 1u32, -2.0f64)];
    assert_eq!(oracle(&a, &b), want);
    assert_eq!(engine_entries(&spgemm::spgemm(&a, &b)), want);
    assert_eq!(native::spmm_csr(&a, &b.to_csc()).entries(), want.as_slice());
    assert_eq!(
        native::spmm_csr_opt(&a, &b.to_csc()).entries(),
        want.as_slice()
    );
    let pool = ThreadPool::new(2);
    assert_eq!(engine_entries(&spgemm::par_spgemm(&pool, &a, &b)), want);
}

#[test]
fn empty_operands_produce_empty_products() {
    let empty_a = Csr::<f64>::from_coo(&Coo::new(0, 8));
    let b = smash::matrix::generators::uniform(8, 8, 20, 1);
    let c = spgemm::spgemm(&empty_a, &b);
    assert_eq!((c.rows(), c.cols(), c.nnz()), (0, 8, 0));

    let no_entries = Csr::<f64>::from_coo(&Coo::new(8, 8));
    let c = spgemm::spgemm(&b, &no_entries);
    assert_eq!((c.rows(), c.cols(), c.nnz()), (8, 8, 0));
    assert_eq!(engine_entries(&c), oracle(&b, &no_entries));

    let zero_cols = Csr::<f64>::from_coo(&Coo::new(8, 0));
    let c = spgemm::spgemm(&b, &zero_cols);
    assert_eq!((c.rows(), c.cols(), c.nnz()), (8, 0, 0));
}

#[test]
fn fully_dense_row_uses_the_dense_accumulator_and_matches() {
    // One row of A touching every row of a dense-ish B: the row's upper
    // bound saturates and the dense accumulator path runs.
    let n = 300; // > DENSE_ACCUM_MIN_COLS, so the choice is bound-driven
    let mut a = Coo::new(2, n);
    for k in 0..n {
        a.push(0, k, 1.0 + (k % 7) as f64);
    }
    a.push(1, 3, 2.0); // and one sparse row through the hash path
    let a = Csr::from_coo(&a);
    let b = smash::matrix::generators::uniform(n, n, 6 * n, 5);

    let (bounds, _) = spgemm::symbolic_bounds(&a, &b);
    assert!(spgemm::use_dense_accumulator(bounds[0], b.cols()));
    assert!(!spgemm::use_dense_accumulator(bounds[1], b.cols()));

    assert_eq!(engine_entries(&spgemm::spgemm(&a, &b)), oracle(&a, &b));
}

#[test]
fn outer_product_of_vectors_is_exact() {
    // (n×1) · (1×n): every pairing contributes exactly one product — the
    // symbolic bound is exact and no accumulation happens.
    let n = 40;
    let mut col = Coo::new(n, 1);
    let mut row = Coo::new(1, n);
    for i in 0..n {
        if i % 3 != 0 {
            col.push(i, 0, 1.0 + i as f64);
        }
        if i % 4 != 0 {
            row.push(0, i, 2.0 - i as f64);
        }
    }
    let (col, row) = (Csr::from_coo(&col), Csr::from_coo(&row));
    let c = spgemm::spgemm(&col, &row);
    assert_eq!(engine_entries(&c), oracle(&col, &row));
    // Structure: rows where col is occupied × cols where row is occupied,
    // minus exact zeros (none here: 2 - i hits zero only at i = 2... which
    // IS a stored position when 2 % 4 != 0 — value 0.0 is never pushed by
    // Coo, so the oracle drops it too).
    for i in 0..n {
        let expect = if col.row_nnz(i) == 0 {
            0
        } else {
            row.row(0).1.iter().filter(|&&v| v != 0.0).count()
        };
        assert_eq!(c.row_nnz(i), expect, "row {i}");
    }
}

#[test]
fn smash_emission_is_equal_to_encoding_the_product() {
    let a = smash::matrix::generators::power_law(96, 96, 2_500, 1.25, 17);
    let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
    let want = SmashMatrix::encode(&spgemm::spgemm(&a, &a), cfg.clone());
    for (name, exec) in [
        ("serial", Executor::serial()),
        ("threads8", Executor::with_threads(8)),
    ] {
        assert_eq!(exec.spgemm_smash(&a, &a, cfg.clone()), want, "{name}");
    }
}

#[test]
fn executor_spmm_smash_parallel_mode_runs_and_matches() {
    // Regression: Parallel/Auto used to silently fall back to the serial
    // kernel; now they dispatch the row-parallel variant, which must stay
    // triplet-identical.
    let a = smash::matrix::generators::uniform(96, 80, 2_500, 3);
    let b = smash::matrix::generators::clustered(80, 64, 2_000, 4, 4);
    let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
    let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
    let want = native::spmm_smash(&sa, &sb);
    for (name, exec) in [
        ("parallel", Executor::parallel()),
        ("threads2", Executor::with_threads(2)),
        ("threads8", Executor::with_threads(8)),
        ("auto", Executor::auto()),
    ] {
        assert_eq!(
            exec.spmm_smash(&sa, &sb).entries(),
            want.entries(),
            "{name}"
        );
    }
}
