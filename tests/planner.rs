//! The dispatch planner's three contracts, pinned at the workspace
//! level (see `docs/DISPATCH.md`):
//!
//! 1. **Bit-identity** — executing a [`Plan`] produces exactly the bits
//!    of the explicit kernel the plan names, whichever candidate wins:
//!    the planner decides *which* kernel runs, never *what* it computes.
//! 2. **Legacy pin** — with an empty (or non-matching) calibration
//!    table, dispatch reproduces the pre-planner threshold rule
//!    (`AUTO_PARALLEL_NNZ` / `AUTO_MIN_ROWS_PER_THREAD`) exactly, for
//!    every op.
//! 3. **Zoo agreement** — on its own calibration matrices the built-in
//!    planner picks the candidate its table measured fastest.

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::executor::{AUTO_MIN_ROWS_PER_THREAD, AUTO_PARALLEL_NNZ};
use smash::kernels::planner::{Choice, Format, Op, PlanRequest, Planner};
use smash::kernels::{native, Executor, MatrixProfile};
use smash::matrix::{generators, Bcsr, Csr, Dense};
use smash::parallel::ThreadPool;
use smash_bench::zoo;

fn smash_cfg() -> SmashConfig {
    SmashConfig::row_major(&[2, 4]).expect("valid ratios")
}

/// Runs the explicit SpMV kernel a [`Choice`] names, serial or pooled.
fn run_choice_spmv(choice: &Choice, a: &Csr<f64>, x: &[f64], y: &mut [f64]) {
    match (choice.format, choice.threads) {
        (Format::Csr, 1) => native::spmv_csr(a, x, y),
        (Format::Csr, t) => smash::parallel::par_spmv_csr(&ThreadPool::new(t), a, x, y),
        (Format::Bcsr, t) => {
            let b = Bcsr::from_csr(a, 2, 2).expect("2x2 blocking");
            if t == 1 {
                native::spmv_bcsr(&b, x, y)
            } else {
                smash::parallel::par_spmv_bcsr(&ThreadPool::new(t), &b, x, y)
            }
        }
        (Format::Smash, t) => {
            let sm = SmashMatrix::encode(a, smash_cfg());
            if t == 1 {
                native::spmv_smash(&sm, x, y)
            } else {
                smash::parallel::par_spmv_smash(&ThreadPool::new(t), &sm, x, y)
            }
        }
        (Format::Dynamic, _) => unreachable!("CSR-pinned plans never choose dynamic"),
    }
}

fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (2usize..96, 2usize..96, 0usize..600, 0u64..1000)
        .prop_map(|(r, c, nnz, seed)| generators::uniform(r, c, nnz.min(r * c / 2), seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 1 via the executor: whatever `Auto` plans for this host,
    /// its output equals the explicit kernel the plan names — exact
    /// `==`, not tolerance.
    #[test]
    fn auto_spmv_is_bit_identical_to_the_planned_kernel(a in arb_matrix()) {
        let exec = Executor::auto();
        let x: Vec<f64> = (0..a.cols()).map(|j| 0.25 + (j % 7) as f64).collect();

        let plan = exec.plan_spmv(&a);
        let mut auto_y = vec![f64::NAN; a.rows()];
        exec.spmv(&a, &x, &mut auto_y);
        // The executor pins the operand's format, so the plan stays CSR.
        prop_assert_eq!(plan.choice.format, Format::Csr);
        let mut explicit = vec![0.0f64; a.rows()];
        run_choice_spmv(&plan.choice, &a, &x, &mut explicit);
        prop_assert_eq!(&auto_y, &explicit, "{}", plan.rationale);
    }

    /// Contract 1 under a *forced parallel* plan: a synthetic table that
    /// measures parallel CSR as fastest must change the dispatch, and
    /// still not change one bit of the result.
    #[test]
    fn forced_parallel_plans_do_not_change_results(a in arb_matrix()) {
        let profile = MatrixProfile::of_csr(&a);
        // Calibrate a one-matrix table on the operand's own profile, with
        // parallel x2 measured 100x faster than serial.
        let mut table = zoo::matrix_line("self", &profile.clone().with_block_fill(&a));
        table.push('\n');
        table.push_str(&zoo::row_line(
            "self",
            &zoo::Candidate { op: Op::Spmv, format: Format::Csr, threads: 1, tile: 1 },
            1.0,
            100.0,
        ));
        table.push('\n');
        table.push_str(&zoo::row_line(
            "self",
            &zoo::Candidate { op: Op::Spmv, format: Format::Csr, threads: 2, tile: 1 },
            1.0,
            1.0,
        ));
        let planner = Planner::from_table(&table).expect("synthetic table parses");

        let plan = planner.plan(&profile, &PlanRequest::pinned(Op::Spmv, Format::Csr, 2));
        prop_assert!(plan.calibrated, "{}", plan.rationale);
        prop_assert_eq!(plan.choice.threads, 2, "{}", plan.rationale);

        let x: Vec<f64> = (0..a.cols()).map(|j| 1.0 / (1.0 + j as f64)).collect();
        let mut serial = vec![0.0f64; a.rows()];
        native::spmv_csr(&a, &x, &mut serial);
        let mut planned = vec![f64::NAN; a.rows()];
        run_choice_spmv(&plan.choice, &a, &x, &mut planned);
        prop_assert_eq!(&planned, &serial);
    }

    /// Contract 1 for the batched entry point: `Auto` SpMM output equals
    /// the explicit serial kernel of the planned format.
    #[test]
    fn auto_spmm_dense_is_bit_identical_to_the_planned_kernel(
        a in arb_matrix(),
        rhs in 1usize..12,
    ) {
        let exec = Executor::auto();
        let b = generators::dense_batch(a.cols(), rhs, 9);
        let plan = exec.plan_spmm_dense(&a, rhs);
        let mut auto_c = Dense::zeros(a.rows(), rhs);
        exec.spmm_dense(&a, &b, &mut auto_c);

        let mut explicit = Dense::zeros(a.rows(), rhs);
        match plan.choice.threads {
            1 => native::spmm_dense_csr(&a, &b, &mut explicit),
            t => smash::parallel::par_spmm_dense_csr(&ThreadPool::new(t), &a, &b, &mut explicit),
        }
        prop_assert_eq!(&auto_c, &explicit, "{}", plan.rationale);
        // The lead tile follows the 8/4/1 schedule.
        let want_tile = if rhs >= 8 { 8 } else if rhs >= 4 { 4 } else { 1 };
        prop_assert_eq!(plan.choice.tile, want_tile);
    }
}

/// Contract 2: the empty planner *is* the legacy threshold rule, for
/// every op, across the boundary cases of both constants.
#[test]
fn empty_table_reproduces_the_threshold_dispatch_exactly() {
    let planner = Planner::empty();
    let grid: &[(usize, usize, usize)] = &[
        // (rows, stored_work, threads)
        (1, 1, 1),
        (4096, 1 << 20, 1),
        (16, AUTO_PARALLEL_NNZ - 1, 4),
        (16, AUTO_PARALLEL_NNZ, 4),
        (AUTO_MIN_ROWS_PER_THREAD * 4 - 1, 1 << 20, 4),
        (AUTO_MIN_ROWS_PER_THREAD * 4, 1 << 20, 4),
        (AUTO_MIN_ROWS_PER_THREAD * 2, 1 << 20, 2),
        (8192, 1, 8),
    ];
    for &(rows, work, threads) in grid {
        let mut profile = MatrixProfile::from_row_lengths(
            rows,
            64,
            work.min(rows * 64),
            work,
            (0..rows).map(|_| 1),
        );
        profile.rows = rows;
        profile.stored_work = work;

        let legacy = |total_work: usize| {
            threads > 1
                && total_work >= AUTO_PARALLEL_NNZ
                && rows >= AUTO_MIN_ROWS_PER_THREAD * threads
        };

        // SpMV and encode weigh the operand's own work.
        for (op, want) in [(Op::Spmv, legacy(work)), (Op::Encode, legacy(profile.nnz))] {
            let plan = planner.plan(&profile, &PlanRequest::pinned(op, Format::Csr, threads));
            assert!(!plan.calibrated);
            assert!(plan.score.is_nan(), "fallback predicts nothing");
            assert_eq!(
                plan.choice.parallel(),
                want,
                "{op} rows={rows} work={work} threads={threads}: {}",
                plan.rationale
            );
        }
        // Batched SpMM scales stored work by the RHS width: a matrix too
        // small to parallelize one SpMV goes wide with enough columns.
        for rhs in [1usize, 4, 64] {
            let plan = planner.plan(
                &profile,
                &PlanRequest::pinned(Op::SpmmDense, Format::Csr, threads).with_rhs(rhs),
            );
            assert_eq!(
                plan.choice.parallel(),
                legacy(work.saturating_mul(rhs)),
                "spmm_dense rhs={rhs}: {}",
                plan.rationale
            );
        }
        // SpGEMM weighs the symbolic flop count, not the operand nnz.
        for flops in [1u64, (AUTO_PARALLEL_NNZ as u64) * 4] {
            let plan = planner.plan(
                &profile,
                &PlanRequest::pinned(Op::Spgemm, Format::Csr, threads).with_work(flops),
            );
            assert_eq!(
                plan.choice.parallel(),
                legacy(flops as usize),
                "spgemm flops={flops}: {}",
                plan.rationale
            );
        }
    }
}

/// Contract 3: for every zoo matrix, the built-in planner matches the
/// matrix to itself (distance ~0) and picks exactly the candidate its
/// calibration table measured fastest.
#[test]
fn built_in_planner_picks_the_tables_own_fastest_row() {
    let planner = Planner::built_in();
    assert!(planner.is_calibrated());
    let table = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/kernels/src/planner_calibration.tsv"
    ))
    .expect("checked-in calibration table");

    let threads = 4usize;
    let mut checked = 0usize;
    for z in zoo::planner_zoo() {
        // The live generator's profile must still match the checked-in
        // one closely enough to be its nearest neighbor.
        let live = z.profile();
        let pinned = planner.zoo_profile(z.name).expect("zoo name in table");
        assert!(
            live.distance(pinned) < 0.05,
            "{}: live profile drifted from the table",
            z.name
        );

        for op in [Op::Spmv, Op::SpmmDense, Op::Spgemm, Op::Encode] {
            // Measured winner straight from the table text: the row with
            // the lowest ns/work among candidates eligible at 4 workers.
            let winner = table
                .lines()
                .filter(|l| l.starts_with(&format!("row {} op={op} ", z.name)))
                .map(|l| {
                    let field = |k: &str| {
                        l.split_whitespace()
                            .find_map(|p| p.strip_prefix(&format!("{k}=")))
                            .unwrap_or_else(|| panic!("{l}: missing {k}"))
                            .to_string()
                    };
                    let ns: f64 = field("ns").parse().unwrap();
                    let work: f64 = field("work").parse().unwrap();
                    (
                        field("format"),
                        field("threads").parse::<usize>().unwrap(),
                        ns / work,
                    )
                })
                .filter(|(_, t, _)| *t <= threads)
                .min_by(|a, b| a.2.total_cmp(&b.2))
                .expect("table covers every (zoo, op)");

            let req = match op {
                Op::SpmmDense => PlanRequest::free(op, threads).with_rhs(zoo::CALIBRATION_RHS),
                _ => PlanRequest::free(op, threads),
            };
            let plan = planner.plan(&live, &req);
            assert!(plan.calibrated, "{}/{op}: {}", z.name, plan.rationale);
            assert!(
                plan.rationale.contains(z.name),
                "{}/{op} matched a different zoo matrix: {}",
                z.name,
                plan.rationale
            );
            assert_eq!(
                (plan.choice.format.name().to_string(), plan.choice.threads),
                (winner.0, winner.1),
                "{}/{op}: planner disagrees with its own table: {}",
                z.name,
                plan.rationale
            );
            // Determinism: planning twice gives the same answer.
            let again = planner.plan(&live, &req);
            assert_eq!(plan.choice, again.choice);
            checked += 1;
        }
    }
    assert_eq!(checked, zoo::planner_zoo().len() * 4);
}
