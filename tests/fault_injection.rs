//! Seeded fault-injection suite (compiled only with the
//! `fault-injection` feature): arm deterministic fault plans at the
//! harness's three sites — worker-job panics, pool-spawn failures,
//! budget-check exhaustion — and drive every `Executor` op at threads
//! {1, 2, 8}. The contract under any injected fault: the call returns a
//! typed [`SmashError`] or degrades to the bit-identical serial result.
//! Never a hang, never a wrong answer.
#![cfg(feature = "fault-injection")]

use proptest::prelude::*;
use smash::encoding::SmashConfig;
use smash::matrix::{generators, Csr, Dense};
use smash::parallel::faultinject::{arm, FaultPlan, Site, INJECTED_PANIC};
use smash::{Degradation, Executor, MemoryBudget, SmashError};

/// The shared workload: big enough that the planner's wide path is real
/// work at 8 threads, small enough to keep hundreds of seeded cases fast.
fn workload() -> (Csr<f64>, Vec<f64>, Dense<f64>, SmashConfig) {
    let a = generators::clustered(96, 96, 1_800, 4, 11);
    let x: Vec<f64> = (0..96).map(|i| 1.0 + (i % 7) as f64 / 8.0).collect();
    let b = generators::dense_batch(96, 5, 3);
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid config");
    (a, x, b, cfg)
}

#[test]
fn worker_panic_degrades_to_the_bit_identical_serial_result() {
    let (a, x, _, _) = workload();
    let mut want = vec![0.0f64; 96];
    Executor::serial().spmv(&a, &x, &mut want);

    let exec = Executor::with_threads(4);
    let session = arm(FaultPlan::new().fail_at(Site::WorkerJob, 1));
    let mut y = vec![f64::NAN; 96];
    let report = exec.try_spmv(&a, &x, &mut y).expect("ladder must recover");
    assert_eq!(y, want, "degraded run must be bit-identical to serial");
    assert_eq!(session.fired(), vec![(Site::WorkerJob, 1)]);
    drop(session);

    // The rung taken is reported, payload tag included, and the plan's
    // rationale carries the whole story.
    match &report.degradations[..] {
        [Degradation::WorkerPanic { detail }] => {
            assert!(
                detail.contains(INJECTED_PANIC),
                "untagged payload: {detail}"
            )
        }
        other => panic!("expected one WorkerPanic degradation, got {other:?}"),
    }
    assert!(report.plan.rationale.contains("degraded"));
}

#[test]
fn pool_spawn_failure_is_a_typed_error_from_try_constructors() {
    let session = arm(FaultPlan::new().fail_at(Site::PoolSpawn, 1));
    match Executor::try_with_threads(4) {
        Err(SmashError::PoolUnavailable { detail }) => {
            assert!(detail.contains(INJECTED_PANIC) || !detail.is_empty())
        }
        other => panic!("expected PoolUnavailable, got {other:?}"),
    }
    assert_eq!(session.fired(), vec![(Site::PoolSpawn, 1)]);
    // The trigger is one-shot: the retry succeeds while still armed.
    Executor::try_with_threads(4).expect("occurrence already consumed");
}

#[test]
fn auto_resilient_survives_pool_spawn_failure_and_reports_it() {
    let (a, x, _, _) = workload();
    let mut want = vec![0.0f64; 96];
    Executor::serial().spmv(&a, &x, &mut want);

    let session = arm(FaultPlan::new().fail_at(Site::PoolSpawn, 1));
    let exec = Executor::auto_resilient(); // consumes the injected failure
    assert_eq!(session.fired(), vec![(Site::PoolSpawn, 1)]);
    drop(session);

    let mut y = vec![f64::NAN; 96];
    let report = exec.try_spmv(&a, &x, &mut y).expect("serial fallback");
    assert_eq!(y, want);
    assert!(
        matches!(
            &report.degradations[..],
            [Degradation::PoolUnavailable { .. }]
        ),
        "every call on a degraded executor must say so: {:?}",
        report.degradations
    );
}

#[test]
fn budget_check_injection_exercises_both_budget_policies() {
    let (a, _, _, _) = workload();
    let want = Executor::serial().spgemm(&a, &a);

    // Reject policy: the injected exhaustion surfaces as the typed error
    // even though the product comfortably fits the (huge) budget.
    let reject = Executor::serial().with_budget(MemoryBudget::reject_over(u64::MAX));
    let session = arm(FaultPlan::new().fail_at(Site::BudgetCheck, 1));
    assert!(matches!(
        reject.try_spgemm(&a, &a),
        Err(SmashError::ResourceExhausted { .. })
    ));
    assert_eq!(session.fired(), vec![(Site::BudgetCheck, 1)]);
    drop(session);

    // Degrade policy: the injected exhaustion re-plans as the chunked
    // streaming engine, which must still be bit-identical.
    let degrade = Executor::serial().with_budget(MemoryBudget::degrade_over(u64::MAX));
    let session = arm(FaultPlan::new().fail_at(Site::BudgetCheck, 1));
    let (c, report) = degrade.try_spgemm(&a, &a).expect("degrade policy");
    drop(session);
    assert_eq!(c, want);
    assert!(
        matches!(
            &report.degradations[..],
            [Degradation::ChunkedSpgemm { .. }]
        ),
        "expected a ChunkedSpgemm degradation: {:?}",
        report.degradations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: under a *seeded* fault plan arming all
    /// three sites at once, every Executor op at every thread count
    /// either returns a typed error or the bit-identical serial result.
    #[test]
    fn any_injected_fault_is_typed_or_bit_identical(
        seed in any::<u64>(),
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_idx];
        let (a, x, b, cfg) = workload();
        let mut want_y = vec![0.0f64; 96];
        Executor::serial().spmv(&a, &x, &mut want_y);
        let mut want_c = Dense::zeros(96, 5);
        Executor::serial().spmm_dense(&a, &b, &mut want_c);
        let want_p = Executor::serial().spgemm(&a, &a);
        let want_sm = Executor::serial().encode(&a, cfg.clone());

        let session = arm(FaultPlan::seeded(
            seed,
            &[(Site::WorkerJob, 6), (Site::PoolSpawn, 2), (Site::BudgetCheck, 2)],
        ));

        let exec = match Executor::try_with_threads(threads) {
            Ok(e) => e.with_budget(MemoryBudget::degrade_over(u64::MAX)),
            // A PoolSpawn trigger firing here IS the typed-error outcome.
            Err(SmashError::PoolUnavailable { .. }) => {
                prop_assert!(session.fired().contains(&(Site::PoolSpawn, 1)));
                return Ok(());
            }
            Err(other) => return Err(TestCaseError::Fail(format!("{other:?}"))),
        };

        let mut y = vec![f64::NAN; 96];
        exec.try_spmv(&a, &x, &mut y).expect("spmv ladder");
        prop_assert_eq!(&y, &want_y);

        let mut c = Dense::zeros(96, 5);
        exec.try_spmm_dense(&a, &b, &mut c).expect("spmm ladder");
        prop_assert_eq!(&c, &want_c);

        // SpGEMM may hit the BudgetCheck site (degrade policy → chunked,
        // still bit-identical) and/or WorkerJob panics (serial retry).
        let (p, _) = exec.try_spgemm(&a, &a).expect("spgemm ladder");
        prop_assert_eq!(&p, &want_p);

        let (sm, _) = exec.try_encode(&a, cfg).expect("encode ladder");
        prop_assert_eq!(&sm, &want_sm);

        drop(session);
    }

    /// Dial an injected worker panic through every job position: whichever
    /// job the panic lands on, the ladder recovers to the serial bits and
    /// the pool is reusable for the next call.
    #[test]
    fn worker_panic_at_every_occurrence_recovers(occurrence in 1u64..12) {
        let (a, x, _, _) = workload();
        let mut want = vec![0.0f64; 96];
        Executor::serial().spmv(&a, &x, &mut want);

        let exec = Executor::with_threads(8);
        let session = arm(FaultPlan::new().fail_at(Site::WorkerJob, occurrence));
        let mut y = vec![f64::NAN; 96];
        exec.try_spmv(&a, &x, &mut y).expect("ladder");
        prop_assert_eq!(&y, &want);

        // Whether or not the plan fired (high occurrences may exceed the
        // job count), a second clean call on the same pool must agree too.
        drop(session);
        let mut y2 = vec![f64::NAN; 96];
        let report = exec.try_spmv(&a, &x, &mut y2).expect("clean follow-up");
        prop_assert_eq!(&y2, &want);
        prop_assert!(!report.degraded());
    }
}
