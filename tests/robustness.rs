//! The fault-tolerant executor tier, end to end through the facade:
//! `try_*` results are pinned bit-for-bit to the panicking tier on clean
//! input across serial/parallel/auto at threads {1, 2, 8}, adversarial
//! operands come back as typed [`SmashError`]s (never a panic), and the
//! budgeted SpGEMM path is property-tested — the row-chunked degradation
//! is bit-identical to the unchunked engine with its peak scratch
//! accounting never exceeding the cap.

use proptest::prelude::*;
use smash::encoding::SmashConfig;
use smash::kernels::spgemm::{estimate_engine_bytes, symbolic_bounds};
use smash::matrix::{generators, Coo, Csr, Dense};
use smash::{Degradation, Executor, MemoryBudget, NonFinitePolicy, SmashError};

/// Every executor flavour a `try_*` call must agree across.
fn executors() -> Vec<(&'static str, Executor)> {
    vec![
        ("serial", Executor::serial()),
        ("threads=1", Executor::with_threads(1)),
        ("threads=2", Executor::with_threads(2)),
        ("threads=8", Executor::with_threads(8)),
        ("auto", Executor::auto()),
        ("auto_resilient", Executor::auto_resilient()),
    ]
}

/// Square matrices only — the property squares them (`a × a`).
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..40)
        .prop_flat_map(|n| {
            let entries =
                proptest::collection::vec((0..n, 0..n, 1u32..1000u32), 0..(n * n).min(160));
            (Just(n), entries)
        })
        .prop_map(|(n, entries)| {
            let mut coo = Coo::new(n, n);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

#[test]
fn try_tier_is_bit_identical_to_the_panicking_tier_across_modes() {
    let a = generators::clustered(96, 96, 1_800, 4, 11);
    let x: Vec<f64> = (0..96).map(|i| 1.0 + (i % 7) as f64 / 8.0).collect();
    let b = generators::dense_batch(96, 5, 3);
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid config");

    let mut want_y = vec![0.0f64; 96];
    Executor::serial().spmv(&a, &x, &mut want_y);
    let mut want_c = Dense::zeros(96, 5);
    Executor::serial().spmm_dense(&a, &b, &mut want_c);
    let want_p = Executor::serial().spgemm(&a, &a);
    let want_sm = Executor::serial().encode(&a, cfg.clone());

    for (label, exec) in executors() {
        let mut y = vec![f64::NAN; 96];
        let report = exec.try_spmv(&a, &x, &mut y).expect(label);
        assert_eq!(y, want_y, "{label}: try_spmv");
        // A healthy host takes no ladder rungs (auto_resilient included).
        assert!(
            !report.degraded(),
            "{label}: unexpected {:?}",
            report.degradations
        );

        let mut c = Dense::zeros(96, 5);
        exec.try_spmm_dense(&a, &b, &mut c).expect(label);
        assert_eq!(c, want_c, "{label}: try_spmm_dense");

        let (p, _) = exec.try_spgemm(&a, &a).expect(label);
        assert_eq!(p, want_p, "{label}: try_spgemm");

        let (sm, _) = exec.try_encode(&a, cfg.clone()).expect(label);
        assert_eq!(sm, want_sm, "{label}: try_encode");
    }
}

#[test]
fn adversarial_operands_are_typed_errors_on_every_op() {
    let exec = Executor::auto();
    let good = generators::uniform(8, 8, 20, 1);
    let corrupt = Csr::<f64>::from_parts_unchecked(8, 8, vec![0, 99], vec![0], vec![1.0]);

    // Corrupt structure, all four ops.
    let mut y = vec![0.0; 8];
    assert!(matches!(
        exec.try_spmv(&corrupt, &[1.0; 8], &mut y),
        Err(SmashError::InvalidStructure { format: "csr", .. })
    ));
    let b = generators::dense_batch(8, 3, 2);
    let mut c = Dense::zeros(8, 3);
    assert!(matches!(
        exec.try_spmm_dense(&corrupt, &b, &mut c),
        Err(SmashError::InvalidStructure { .. })
    ));
    assert!(matches!(
        exec.try_spgemm(&corrupt, &good),
        Err(SmashError::InvalidStructure { .. })
    ));
    assert!(matches!(
        exec.try_spgemm(&good, &corrupt),
        Err(SmashError::InvalidStructure { .. })
    ));
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid config");
    assert!(matches!(
        exec.try_encode(&corrupt, cfg),
        Err(SmashError::DimensionMismatch { .. } | SmashError::InvalidStructure { .. })
    ));

    // Shape disagreement, all entry points.
    let mut y = vec![0.0; 8];
    assert!(matches!(
        exec.try_spmv(&good, &[1.0; 5], &mut y),
        Err(SmashError::DimensionMismatch { op: "spmv", .. })
    ));
    let mut y_short = vec![0.0; 5];
    assert!(matches!(
        exec.try_spmv(&good, &[1.0; 8], &mut y_short),
        Err(SmashError::DimensionMismatch { .. })
    ));
    let b_tall = generators::dense_batch(9, 3, 2);
    assert!(matches!(
        exec.try_spmm_dense(&good, &b_tall, &mut c),
        Err(SmashError::DimensionMismatch { .. })
    ));
    let wide = generators::uniform(5, 8, 10, 2);
    assert!(matches!(
        exec.try_spgemm(&good, &wide),
        Err(SmashError::DimensionMismatch { op: "spgemm", .. })
    ));
}

#[test]
fn non_finite_rejection_is_per_executor_and_off_by_default() {
    let mut coo = Coo::<f64>::new(3, 3);
    coo.push(0, 0, f64::INFINITY);
    coo.push(2, 1, 1.0);
    let a = Csr::from_coo(&coo);
    let mut y = vec![0.0; 3];

    // Default policy: IEEE semantics flow through, same as the trusted tier.
    Executor::serial()
        .try_spmv(&a, &[1.0; 3], &mut y)
        .expect("propagate");
    assert!(y[0].is_infinite());

    let strict = Executor::serial().with_non_finite_policy(NonFinitePolicy::Reject);
    assert!(matches!(
        strict.try_spmv(&a, &[1.0; 3], &mut y),
        Err(SmashError::NonFinite { operand: "A", .. })
    ));
    assert!(matches!(
        strict.try_spmv(
            &generators::uniform(3, 3, 4, 9),
            &[1.0, f64::NAN, 1.0],
            &mut y
        ),
        Err(SmashError::NonFinite { operand: "x", .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The budgeted-SpGEMM contract, property-tested: for any matrix and
    /// any budget at least one row's footprint wide, the degraded chunked
    /// run is bit-identical to the unchunked engine and its reported peak
    /// scratch never exceeds the cap it was given.
    #[test]
    fn degraded_spgemm_is_bit_identical_and_caps_peak_scratch(a in arb_matrix()) {
        let want = Executor::serial().spgemm(&a, &a);
        let (bounds, _) = symbolic_bounds(&a, &a);
        let full = estimate_engine_bytes::<f64>(&bounds, a.cols());

        // Squeeze the budget to a quarter of the full-engine estimate (but
        // never below 1 byte) so non-trivial matrices actually chunk.
        let cap = (full / 4).max(1);
        let exec = Executor::serial().with_budget(MemoryBudget::degrade_over(cap));
        match exec.try_spgemm(&a, &a) {
            Ok((c, report)) => {
                prop_assert_eq!(c, want);
                for d in &report.degradations {
                    if let Degradation::ChunkedSpgemm { peak_scratch_bytes, budget_bytes, .. } = d {
                        prop_assert!(peak_scratch_bytes <= budget_bytes);
                        prop_assert_eq!(*budget_bytes, cap);
                    }
                }
            }
            // Legitimate only when a single row cannot fit the cap.
            Err(SmashError::ResourceExhausted { needed, budget }) => {
                prop_assert_eq!(budget, cap);
                prop_assert!(needed > cap);
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }

        // The reject policy over the same cap must refuse anything the
        // full engine estimate says is over budget — and never compute.
        if full > cap {
            let reject = Executor::serial().with_budget(MemoryBudget::reject_over(cap));
            let err = reject.try_spgemm(&a, &a);
            prop_assert!(
                matches!(err, Err(SmashError::ResourceExhausted { .. })),
                "reject policy let an over-budget product through: {:?}", err
            );
        }
    }

    /// A roomy budget must never degrade: the try-tier result is the plain
    /// engine result and the report stays clean.
    #[test]
    fn roomy_budget_never_degrades(a in arb_matrix()) {
        let exec = Executor::serial().with_budget(MemoryBudget::degrade_over(u64::MAX));
        let (c, report) = exec.try_spgemm(&a, &a).expect("roomy budget");
        prop_assert_eq!(c, Executor::serial().spgemm(&a, &a));
        prop_assert!(!report.degraded());
    }
}

#[test]
fn pool_construction_failures_are_typed_not_panics() {
    assert!(matches!(
        Executor::try_with_threads(0),
        Err(SmashError::PoolUnavailable { .. })
    ));
    let exec = Executor::try_with_threads(2).expect("two workers");
    let a = generators::uniform(16, 16, 60, 3);
    let mut y = vec![0.0; 16];
    exec.try_spmv(&a, &[1.0; 16], &mut y).expect("healthy pool");
}
