//! Property-based tests (proptest) on the core data structures and the
//! invariants the whole reproduction rests on.

use proptest::prelude::*;
use smash::bmu::{Bmu, BmuBinding, MAX_HW_LEVELS};
use smash::encoding::{Bitmap, BitmapHierarchy, SmashConfig, SmashMatrix};
use smash::kernels::{harness, test_vector, Mechanism};
use smash::matrix::{Coo, Csr};
use smash::sim::CountEngine;

/// Arbitrary sparse matrix: dimensions 1..64, any entry pattern.
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..48, 1usize..48)
        .prop_flat_map(|(r, c)| {
            let entries =
                proptest::collection::vec((0..r, 0..c, 1u32..1000u32), 0..(r * c).min(200));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

/// Arbitrary hierarchy configuration: 1-4 levels, small ratios.
fn arb_ratios() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(2u32..9, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_rank_matches_naive_count(bits in proptest::collection::vec(any::<bool>(), 0..300),
                                       idx_frac in 0.0f64..1.0) {
        let bm = Bitmap::from_bools(&bits);
        let idx = (bits.len() as f64 * idx_frac) as usize;
        let naive = bits[..idx].iter().filter(|&&b| b).count();
        prop_assert_eq!(bm.rank(idx), naive);
    }

    #[test]
    fn bitmap_iter_ones_matches_get(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_bools(&bits);
        let from_iter: Vec<usize> = bm.iter_ones().collect();
        let from_get: Vec<usize> = (0..bits.len()).filter(|&i| bm.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
    }

    #[test]
    fn hierarchy_blocks_equal_set_bits(bits in proptest::collection::vec(any::<bool>(), 1..400),
                                       ratios in arb_ratios()) {
        let bm0 = Bitmap::from_bools(&bits);
        let h = BitmapHierarchy::from_level0(&bm0, &ratios).expect("valid ratios");
        h.validate().expect("invariants");
        let got: Vec<usize> = h.blocks().collect();
        let want: Vec<usize> = bm0.iter_ones().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(h.expand_full(0), bm0);
    }

    #[test]
    fn hierarchy_storage_never_exceeds_full_bitmaps(
        bits in proptest::collection::vec(any::<bool>(), 1..400),
        ratios in arb_ratios())
    {
        let bm0 = Bitmap::from_bools(&bits);
        let h = BitmapHierarchy::from_level0(&bm0, &ratios).expect("valid ratios");
        // Compacted storage of level i is at most the full level plus one
        // padding group.
        for l in 0..h.num_levels() {
            let pad = if l + 1 < h.num_levels() { ratios[l + 1] as usize } else { 0 };
            prop_assert!(h.stored_level(l).len() <= h.logical_bits(l) + pad);
        }
    }

    #[test]
    fn encode_decode_is_lossless(a in arb_matrix(), ratios in arb_ratios()) {
        let cfg = SmashConfig::row_major(&ratios).expect("valid ratios");
        let sm = SmashMatrix::encode(&a, cfg);
        sm.validate().expect("invariants");
        prop_assert_eq!(sm.decode(), a);
    }

    #[test]
    fn smash_storage_identity(a in arb_matrix(), ratios in arb_ratios()) {
        let cfg = SmashConfig::row_major(&ratios).expect("valid ratios");
        let sm = SmashMatrix::encode(&a, cfg);
        // NZA holds exactly block_size values per Bitmap-0 set bit, and all
        // original non-zeros are among them.
        prop_assert_eq!(sm.nza().len(), sm.num_blocks() * sm.config().block_size());
        prop_assert_eq!(sm.nnz(), a.nnz());
    }

    #[test]
    fn all_spmv_mechanisms_agree(a in arb_matrix()) {
        let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
        let x = test_vector(a.cols());
        let want = a.spmv(&x);
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let y = harness::run_spmv(&mut e, mech, &a, &cfg);
            for (g, w) in y.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()),
                             "{}: {} vs {}", mech, g, w);
            }
        }
    }

    #[test]
    fn bmu_scan_equals_software_cursor(a in arb_matrix(), ratios in arb_ratios()) {
        prop_assume!(ratios.len() <= MAX_HW_LEVELS);
        let cfg = SmashConfig::row_major(&ratios).expect("valid");
        let sm = SmashMatrix::encode(&a, cfg);
        let mut addrs = [0u64; MAX_HW_LEVELS];
        for (l, slot) in addrs.iter_mut().enumerate().take(ratios.len()) {
            *slot = 0x1_0000 * (l as u64 + 1);
        }
        let binding = BmuBinding { hierarchy: sm.hierarchy(), level_addrs: addrs };
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        bmu.matinfo(&mut e, 0, sm.rows() as u32, sm.cols() as u32);
        for (lvl, &r) in sm.config().ratios().iter().enumerate() {
            bmu.bmapinfo(&mut e, 0, lvl, r);
        }
        for lvl in (0..ratios.len()).rev() {
            bmu.rdbmap(&mut e, 0, lvl, addrs[lvl], &binding);
        }
        let mut got = Vec::new();
        while let Some(b) = bmu.pbmap(&mut e, 0, &binding).block {
            got.push(b);
        }
        let want: Vec<usize> = sm.hierarchy().blocks().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn smash_add_matches_csr_add(a in arb_matrix(), entries in proptest::collection::vec(
        (0usize..48, 0usize..48, 1u32..100), 0..120), ratios in arb_ratios())
    {
        let mut coo = Coo::new(a.rows(), a.cols());
        for (i, j, v) in entries {
            if i < a.rows() && j < a.cols() {
                coo.push(i, j, v as f64 / 8.0);
            }
        }
        coo.compress();
        let b = Csr::from_coo(&coo);
        let cfg = SmashConfig::row_major(&ratios).expect("valid");
        let sa = SmashMatrix::encode(&a, cfg.clone());
        let sb = SmashMatrix::encode(&b, cfg);
        let sum = sa.add(&sb).expect("conforming operands");
        sum.validate().expect("invariants");
        prop_assert_eq!(sum.decode(), a.add(&b).expect("same shape"));
    }

    #[test]
    fn spadd_is_commutative(a in arb_matrix(), b_entries in proptest::collection::vec(
        (0usize..48, 0usize..48, 1u32..100), 0..100))
    {
        let mut coo = Coo::new(a.rows(), a.cols());
        for (i, j, v) in b_entries {
            if i < a.rows() && j < a.cols() {
                coo.push(i, j, v as f64);
            }
        }
        coo.compress();
        let b = Csr::from_coo(&coo);
        prop_assert_eq!(a.add(&b).expect("same shape"), b.add(&a).expect("same shape"));
    }
}
