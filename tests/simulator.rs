//! Cross-crate behavioural tests of the timing substrate: the simulator
//! must exhibit the architectural effects the paper's analysis relies on.

use smash::encoding::SmashConfig;
use smash::kernels::{harness, Mechanism};
use smash::matrix::generators;
use smash::sim::{Engine, SimEngine, StreamId, SystemConfig, UopId};

#[test]
fn pointer_chasing_dominates_streaming_at_equal_instruction_counts() {
    let n = 2048u64;
    // Streaming: n independent loads over a large array.
    let mut e = SimEngine::new(SystemConfig::paper_table2());
    let base = e.alloc(1 << 22, 64);
    for k in 0..n {
        e.load(StreamId(1), base + k * 64, &[]);
    }
    let streaming = e.finish();
    // Chasing: n dependent loads over the same footprint.
    let mut e = SimEngine::new(SystemConfig::paper_table2());
    let base = e.alloc(1 << 22, 64);
    let mut dep = UopId::NONE;
    for k in 0..n {
        let addr = base + ((k * 40_503) % (1 << 16)) * 64;
        dep = e.load(StreamId(2), addr, &[dep]);
    }
    let chasing = e.finish();
    assert_eq!(streaming.instructions(), chasing.instructions());
    assert!(
        chasing.cycles > streaming.cycles * 8,
        "chasing {} vs streaming {}",
        chasing.cycles,
        streaming.cycles
    );
}

#[test]
fn smaller_caches_slow_down_cache_hungry_kernels() {
    let a = generators::uniform(512, 512, 10_000, 3);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
    let big = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &SystemConfig::paper_table2());
    let small = harness::sim_spmv(
        Mechanism::TacoCsr,
        &a,
        &cfg,
        &SystemConfig::paper_table2_scaled(32),
    );
    assert!(
        small.cycles > big.cycles,
        "scaled-down caches must cost cycles: {} vs {}",
        small.cycles,
        big.cycles
    );
    assert_eq!(small.instructions(), big.instructions());
}

#[test]
fn prefetcher_helps_csr_spmv() {
    let a = generators::banded(1024, 1024, 8, 12_000, 5);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
    let sys = SystemConfig::paper_table2_scaled(16);
    let with = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &sys);
    let without = harness::sim_spmv(
        Mechanism::TacoCsr,
        &a,
        &cfg,
        &sys.clone().without_prefetch(),
    );
    assert!(
        with.cycles < without.cycles,
        "prefetch on {} vs off {}",
        with.cycles,
        without.cycles
    );
}

#[test]
fn deterministic_simulation() {
    let a = generators::clustered(256, 256, 3000, 5, 9);
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
    let sys = SystemConfig::paper_table2_scaled(16);
    let s1 = harness::sim_spmv(Mechanism::Smash, &a, &cfg, &sys);
    let s2 = harness::sim_spmv(Mechanism::Smash, &a, &cfg, &sys);
    assert_eq!(s1, s2, "simulation must be reproducible");
}

#[test]
fn instruction_counts_are_engine_independent() {
    // SimEngine and CountEngine must agree on every mechanism and kernel.
    let a = generators::uniform(128, 128, 1200, 7);
    let b = generators::uniform(128, 128, 1200, 8);
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");
    let sys = SystemConfig::paper_table2_scaled(16);
    for mech in Mechanism::ALL {
        let sim = harness::sim_spmv(mech, &a, &cfg, &sys);
        let cnt = harness::count_spmv(mech, &a, &cfg);
        assert_eq!(sim.instructions(), cnt.instructions(), "spmv {mech}");
        let cfg1 = SmashConfig::row_major(&[2]).expect("valid");
        let sim = harness::sim_spmm(mech, &a, &b, &cfg1, &sys);
        let cnt = harness::count_spmm(mech, &a, &b, &cfg1);
        assert_eq!(sim.instructions(), cnt.instructions(), "spmm {mech}");
    }
}
