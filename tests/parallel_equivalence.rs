//! The parallel kernels must be **bit-identical** to their serial
//! counterparts — not merely close — at every thread count, including
//! degenerate and adversarial shapes (empty rows, a single dense row,
//! heavy nnz skew). Exact `==` on the float output is intentional: the
//! parallel implementations never reorder a floating-point addition. The
//! guarantee is precision-independent — the `f32` suite runs the same
//! exact-equality checks as the `f64` one.

use proptest::prelude::*;
use smash::encoding::{SmashConfig, SmashMatrix};
use smash::kernels::native;
use smash::matrix::{generators, Bcsr, Coo, Csr};
use smash::parallel::{
    par_csr_to_smash, par_spmm_csr, par_spmv_bcsr, par_spmv_csr, par_spmv_smash, ThreadPool,
};

/// The thread counts every equivalence assertion runs under.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 + ((i * 37) % 11) as f64 * 0.375)
        .collect()
}

/// Asserts all parallel kernels agree exactly with the serial natives on
/// one matrix, under every [`THREADS`] count and under a pool sized from
/// the environment (CI re-runs this suite with `SMASH_THREADS=1` to
/// exercise the override's serial degeneration).
fn assert_all_kernels_equivalent(a: &Csr<f64>) {
    let x = vector(a.cols());
    let mut got = vec![f64::NAN; a.rows()];

    let bcsr = Bcsr::from_csr(a, 2, 2).expect("valid 2x2 blocking");
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid config");
    let sm = SmashMatrix::encode(a, cfg.clone());
    let bc = a.transpose().to_csc(); // inner dims: a.cols() == bᵀ.rows()

    // Serial references, computed once.
    let mut want_csr = vec![0.0f64; a.rows()];
    native::spmv_csr(a, &x, &mut want_csr);
    let mut want_bcsr = vec![0.0f64; a.rows()];
    native::spmv_bcsr(&bcsr, &x, &mut want_bcsr);
    let mut want_smash = vec![0.0f64; a.rows()];
    native::spmv_smash(&sm, &x, &mut want_smash);
    let want_spmm = native::spmm_csr(a, &bc);

    let pools = THREADS
        .iter()
        .map(|&t| (ThreadPool::new(t), format!("{t}")))
        .chain(std::iter::once((
            ThreadPool::with_default_threads(),
            "SMASH_THREADS/default".to_string(),
        )));
    for (pool, label) in pools {
        par_spmv_csr(&pool, a, &x, &mut got);
        assert_eq!(got, want_csr, "spmv_csr, threads = {label}");

        par_spmv_bcsr(&pool, &bcsr, &x, &mut got);
        assert_eq!(got, want_bcsr, "spmv_bcsr, threads = {label}");

        par_spmv_smash(&pool, &sm, &x, &mut got);
        assert_eq!(got, want_smash, "spmv_smash, threads = {label}");

        let got_spmm = par_spmm_csr(&pool, a, &bc);
        assert_eq!(
            got_spmm.entries(),
            want_spmm.entries(),
            "spmm_csr, threads = {label}"
        );

        let got_sm = par_csr_to_smash(&pool, a, cfg.clone());
        assert_eq!(got_sm, sm, "csr_to_smash, threads = {label}");
    }
}

/// Arbitrary sparse matrix: arbitrary dimensions and entry patterns,
/// including matrices with many empty rows.
fn arb_matrix() -> impl Strategy<Value = Csr<f64>> {
    (1usize..48, 1usize..48)
        .prop_flat_map(|(r, c)| {
            let entries =
                proptest::collection::vec((0..r, 0..c, 1u32..1000u32), 0..(r * c).min(160));
            (Just(r), Just(c), entries)
        })
        .prop_map(|(r, c, entries)| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64 / 16.0);
            }
            coo.compress();
            Csr::from_coo(&coo)
        })
}

/// The f32 twin of [`assert_all_kernels_equivalent`]: parallel f32 output
/// must be *bit-identical* (`==`) to serial f32 at threads {1, 2, 8} —
/// reduced precision narrows the error margin of any reordering to the
/// point where reassociation would show up immediately, so this is the
/// sharpest determinism check in the suite.
fn assert_f32_parallel_bit_identical(a64: &Csr<f64>) {
    let a = a64.cast::<f32>();
    let x: Vec<f32> = vector(a.cols()).iter().map(|&v| v as f32).collect();
    let bcsr = Bcsr::from_csr(&a, 2, 2).expect("valid 2x2 blocking");
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid config");
    let sm = SmashMatrix::encode(&a, cfg.clone());
    let bc = a.transpose().to_csc();

    // Serial references in f32, computed once.
    let mut want_csr = vec![0.0f32; a.rows()];
    native::spmv_csr(&a, &x, &mut want_csr);
    let mut want_bcsr = vec![0.0f32; a.rows()];
    native::spmv_bcsr(&bcsr, &x, &mut want_bcsr);
    let mut want_smash = vec![0.0f32; a.rows()];
    native::spmv_smash(&sm, &x, &mut want_smash);
    let want_spmm = native::spmm_csr(&a, &bc);

    let mut got = vec![f32::NAN; a.rows()];
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        par_spmv_csr(&pool, &a, &x, &mut got);
        assert_eq!(got, want_csr, "f32 spmv_csr, threads = {threads}");
        par_spmv_bcsr(&pool, &bcsr, &x, &mut got);
        assert_eq!(got, want_bcsr, "f32 spmv_bcsr, threads = {threads}");
        par_spmv_smash(&pool, &sm, &x, &mut got);
        assert_eq!(got, want_smash, "f32 spmv_smash, threads = {threads}");
        assert_eq!(
            par_spmm_csr(&pool, &a, &bc).entries(),
            want_spmm.entries(),
            "f32 spmm_csr, threads = {threads}"
        );
        assert_eq!(
            par_csr_to_smash(&pool, &a, cfg.clone()),
            sm,
            "f32 csr_to_smash, threads = {threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_kernels_bit_identical_on_arbitrary_matrices(a in arb_matrix()) {
        assert_all_kernels_equivalent(&a);
    }

    #[test]
    fn f32_parallel_bit_identical_on_arbitrary_matrices(a in arb_matrix()) {
        assert_f32_parallel_bit_identical(&a);
    }
}

#[test]
fn f32_parallel_bit_identical_on_adversarial_shapes() {
    assert_f32_parallel_bit_identical(&Csr::from_coo(&Coo::new(33, 17)));
    assert_f32_parallel_bit_identical(&generators::power_law(96, 64, 900, 1.4, 13));
    assert_f32_parallel_bit_identical(&generators::uniform(200, 3, 150, 5));
    assert_f32_parallel_bit_identical(&generators::uniform(1, 1, 1, 7));
}

#[test]
fn f32_graph_applications_bit_identical_across_thread_counts() {
    use smash::graph::{generators as graph_gen, pagerank_parallel, PageRankConfig};
    let g = graph_gen::rmat(128, 768, 17).cast::<f32>();
    let cfg = PageRankConfig::default();
    let want: Vec<f32> = pagerank_parallel(&ThreadPool::new(1), &g, &cfg);
    for threads in [2usize, 8] {
        let got = pagerank_parallel(&ThreadPool::new(threads), &g, &cfg);
        assert_eq!(got, want, "f32 pagerank, threads = {threads}");
    }
}

#[test]
fn adversarial_empty_matrix_and_empty_rows() {
    // Fully empty.
    assert_all_kernels_equivalent(&Csr::from_coo(&Coo::new(33, 17)));
    // Mostly empty rows: entries only on every 11th row.
    let mut coo = Coo::new(64, 40);
    for i in (0..64).step_by(11) {
        for j in 0..5 {
            coo.push(i, j * 7, 1.0 + i as f64 + j as f64);
        }
    }
    assert_all_kernels_equivalent(&Csr::from_coo(&coo));
}

#[test]
fn adversarial_single_dense_row() {
    // One fully dense row among empties: the partitioner must isolate it
    // without starving the other ranges, and results must stay exact.
    let mut coo = Coo::new(48, 48);
    for j in 0..48 {
        coo.push(20, j, (j + 1) as f64 * 0.25);
    }
    coo.push(0, 0, 3.0);
    coo.push(47, 47, -2.0);
    assert_all_kernels_equivalent(&Csr::from_coo(&coo));
}

#[test]
fn adversarial_nnz_skew() {
    // Power-law distributed non-zeros: a few rows carry most of the work.
    let a = generators::power_law(96, 64, 900, 1.4, 13);
    assert_all_kernels_equivalent(&a);
    // Extreme skew built by hand: row i holds ~i^2-proportional entries.
    let mut coo = Coo::new(40, 256);
    for i in 0..40usize {
        for j in 0..(i * i * 256 / 1600).min(256) {
            coo.push(i, j, 1.0 / (1.0 + (i * j) as f64));
        }
    }
    assert_all_kernels_equivalent(&Csr::from_coo(&coo));
}

#[test]
fn adversarial_tall_thin_and_short_wide() {
    assert_all_kernels_equivalent(&generators::uniform(200, 3, 150, 5));
    assert_all_kernels_equivalent(&generators::uniform(3, 200, 150, 6));
    assert_all_kernels_equivalent(&generators::uniform(1, 1, 1, 7));
}

#[test]
fn graph_applications_bit_identical_across_thread_counts() {
    use smash::graph::{
        betweenness_parallel, generators as graph_gen, pagerank_parallel, BcConfig, PageRankConfig,
    };
    let g = graph_gen::rmat(128, 768, 17);
    let pr_cfg = PageRankConfig::default();
    let bc_cfg = BcConfig::default();
    let pr_want = pagerank_parallel(&ThreadPool::new(1), &g, &pr_cfg);
    let bc_want = betweenness_parallel(&ThreadPool::new(1), &g, &bc_cfg);
    for threads in THREADS {
        let pool = ThreadPool::new(threads);
        assert_eq!(
            pagerank_parallel(&pool, &g, &pr_cfg),
            pr_want,
            "pagerank, threads = {threads}"
        );
        assert_eq!(
            betweenness_parallel(&pool, &g, &bc_cfg),
            bc_want,
            "betweenness, threads = {threads}"
        );
    }
}
