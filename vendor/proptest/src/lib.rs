//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stand-in implements the surface the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`prelude::any`], `Just`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: failing inputs are reported but **not
//! shrunk**, and the RNG seed is fixed per test function, so runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// How a single generated test case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
    /// An assertion failed; the message explains which.
    Fail(String),
}

/// Result type the bodies inside `proptest!` evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy: Sized {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy [`prelude::any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's full value space via `rand`'s standard distribution.
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, f32, f64);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn from
    /// a range (subset of `proptest::collection::vec`).
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drives a strategy/closure pair through `config.cases` successful cases.
/// Called by the `proptest!` macro; not part of the public upstream API.
pub fn run_cases<S: Strategy>(
    config: ProptestConfig,
    strategy: S,
    test: impl Fn(S::Value) -> TestCaseResult,
) where
    S::Value: Debug + Clone,
{
    let mut rng = StdRng::seed_from_u64(0x00C0_FFEE_5EED_2019);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(1000);
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest stub: too many rejected cases ({} rejects for {} passes)",
            attempts - passed,
            passed
        );
        let value = strategy.generate(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value.clone())));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject)) => continue,
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest case failed: {msg}\n  input: {value:?}")
            }
            Err(payload) => {
                eprintln!("proptest case panicked; input: {value:?}");
                resume_unwind(payload);
            }
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The canonical strategy for `T` (subset of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property test functions (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; do not call directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, ($($strat,)+), |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
