//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stand-in implements the surface the workspace's benches use:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`, `throughput`), `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a simple mean over a fixed-duration measurement window —
//! adequate for relative comparisons, with none of upstream's statistics.
//!
//! Like upstream, `cargo bench -- --test` runs every benchmark routine
//! exactly once without timing it — the smoke mode CI uses to make sure
//! bench code is actually executed, not just compiled.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry and entry point (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the benchmark binary's arguments: `--test` selects smoke
    /// mode (run each routine once, no timing), as in upstream criterion.
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            throughput: None,
            test_mode,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, |b| f(b));
        group.finish();
    }
}

/// Units-of-work declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// displayed parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (kept for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement window duration.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the units of work per iteration for throughput output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {}/{} ... ok (smoke)", self.name, id);
        } else {
            self.report(&id.to_string(), &bencher);
        }
    }

    /// Runs one benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream renders a summary here).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mut line = format!(
            "bench {}/{}: {:>12.1} ns/iter ({} iters)",
            self.name, id, b.mean_ns, b.iters
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if b.mean_ns > 0.0 {
                let per_sec = count as f64 / (b.mean_ns * 1e-9);
                line.push_str(&format!(", {per_sec:>12.0} {unit}/s"));
            }
        }
        println!("{line}");
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    mean_ns: f64,
    iters: u64,
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly for the measurement window and records the
    /// mean wall-clock time per call. In `--test` smoke mode the routine
    /// runs exactly once, untimed.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            std_black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let start = Instant::now();
        loop {
            std_black_box(routine());
            if start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std_black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Declares a function that runs a list of benchmark functions
/// (subset of upstream `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (subset of upstream
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("smoke_test_mode");
        // Generous windows that would take seconds if timing actually ran.
        group
            .warm_up_time(Duration::from_secs(10))
            .measurement_time(Duration::from_secs(10));
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1, "--test mode must run the routine exactly once");
    }
}
