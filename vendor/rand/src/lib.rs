//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stand-in implements exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for workload generation, and *not*
//! bit-compatible with upstream `rand`'s `StdRng` (callers only rely on
//! determinism, never on specific streams).

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution:
/// full integer ranges, `[0, 1)` for floats (subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit word source every other method builds on.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Offset arithmetic in u64 two's complement so wide signed
                // ranges (e.g. i32::MIN..i32::MAX) never overflow the
                // target type mid-computation.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(reduce(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(reduce(rng.next_u64(), span)) as $t
            }
        }
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                let v = self.start + unit * (self.end - self.start);
                // `start + unit*(end-start)` can round up to exactly `end`;
                // keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                (lo + unit * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Maps a random word into `[0, span)` (multiply-shift; bias is < 2^-32 for
/// the spans used here).
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((word as u128 * span as u128) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let i = r.gen_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: i32 = r.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            let w: i64 = r.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-width inclusive range must not panic
            let n: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn float_range_excludes_upper_bound() {
        let mut r = StdRng::seed_from_u64(12);
        // A one-ULP-wide range forces the rounding edge case.
        let lo = 1.0f64;
        let hi = 1.0 + f64::EPSILON;
        for _ in 0..1000 {
            let v = r.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} not in [{lo}, {hi})");
            let w = r.gen_range(lo..=hi);
            assert!(w >= lo && w <= hi);
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
