//! A live graph under edit: incremental PageRank over a stream of edge
//! insertions, served from a `DynamicMatrix` transition matrix — the
//! overlay absorbs each insertion, every solve warm-starts from the
//! previous ranks, and periodic compaction folds the accumulated deltas
//! back into the base tier.
//!
//! Run with: `cargo run --release --example live_graph`

use smash::graph::{generators, pagerank_power, uniform_ranks, IncrementalPageRank};

fn main() {
    // A road network: every vertex keeps out-edges, so rank mass never
    // drains through dangling columns and warm restarts pay off in
    // iterations, not just in skipped rebuilds.
    let g = generators::road_network(1024, 2_048, 21);
    println!(
        "live graph: {} vertices, {} edges (avg degree {:.1})",
        g.vertices(),
        g.edges(),
        g.edges() as f64 / g.vertices() as f64
    );

    let tol = 1e-10;
    let mut pr = IncrementalPageRank::new(&g, 0.85, tol, 1000);
    let cold = pr.solve();
    println!(
        "cold solve: {} iterations to |Δr|₁ < {tol:e}",
        cold.iterations
    );

    println!(
        "\n{:<8} {:>9} {:>11} {:>13}",
        "batch", "inserted", "warm iters", "overlay nnz"
    );
    let mut seed = 1u64;
    for round in 1..=5 {
        // A batch of pseudo-random edge insertions; duplicates and
        // self-loops bounce off `add_edge` exactly as they would off
        // `Graph::from_edges`.
        let mut inserted = 0;
        for _ in 0..40 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (seed >> 16) as usize % pr.vertices();
            let v = (seed >> 40) as usize % pr.vertices();
            inserted += pr.add_edge(u, v) as usize;
        }
        let overlay_len = pr.matrix().overlay().len();
        let warm = pr.solve();
        println!(
            "{:<8} {:>9} {:>11} {:>13}",
            format!("#{round}"),
            inserted,
            warm.iterations,
            overlay_len
        );
    }

    // The exactness contract behind the speed: the overlaid transition
    // matrix solves to the *bit-identical* trajectory of a from-scratch
    // rebuild of the mutated graph.
    let rebuilt = pr.snapshot().transition_matrix();
    let r0 = uniform_ranks::<f64>(pr.vertices());
    let dynamic = pagerank_power(pr.matrix(), &r0, 0.85, tol, 1000);
    let oracle = pagerank_power(&rebuilt, &r0, 0.85, tol, 1000);
    assert_eq!(dynamic.ranks, oracle.ranks);
    assert_eq!(dynamic.iterations, oracle.iterations);
    println!(
        "\noverlaid solve == rebuilt solve (bitwise), {} iterations both",
        oracle.iterations
    );

    // Fold the overlay away; solves are unaffected.
    pr.compact();
    assert!(pr.matrix().overlay().is_empty());
    let compacted = pagerank_power(pr.matrix(), &r0, 0.85, tol, 1000);
    assert_eq!(compacted.ranks, oracle.ranks);
    println!("compacted: overlay empty, solution unchanged");
}
