//! SpMV through the full co-design: run one Table 3 matrix through every
//! evaluated mechanism on the simulated Table 2 machine, show the SMASH
//! ISA sequence the hardware path executes, and cross-check each
//! mechanism's *native* result through the unified executor.
//!
//! Run with: `cargo run --release --example spmv_pipeline`

use smash::bmu::Instruction;
use smash::encoding::SmashConfig;
use smash::kernels::{harness, test_vector, Mechanism};
use smash::matrix::suite::paper_suite;
use smash::sim::SystemConfig;
use smash::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // M8 (pkustk07): a structural-engineering matrix with dense blocks.
    let spec = &paper_suite()[7];
    let scale = 16;
    let a = spec.generate(scale, 42);
    println!(
        "{} ({}), scaled 1/{scale}: {}x{} with {} non-zeros",
        spec.label(),
        spec.name,
        a.rows(),
        a.cols(),
        a.nnz()
    );

    // The ISA program Algorithm 1 executes before the scan loop.
    println!("\nSMASH ISA setup sequence (paper Table 1 / Algorithm 1):");
    let ratios = spec.bitmap_cfg.ratios_low_to_high();
    let program = [
        Instruction::Matinfo {
            rows: a.rows() as u32,
            cols: a.cols() as u32,
            grp: 0,
        },
        Instruction::Bmapinfo {
            comp: ratios[2],
            lvl: 2,
            grp: 0,
        },
        Instruction::Bmapinfo {
            comp: ratios[1],
            lvl: 1,
            grp: 0,
        },
        Instruction::Bmapinfo {
            comp: ratios[0],
            lvl: 0,
            grp: 0,
        },
        Instruction::Rdbmap {
            mem: 0x1000,
            buf: 2,
            grp: 0,
        },
        Instruction::Rdbmap {
            mem: 0x2000,
            buf: 1,
            grp: 0,
        },
        Instruction::Rdbmap {
            mem: 0x3000,
            buf: 0,
            grp: 0,
        },
        Instruction::Pbmap { grp: 0 },
        Instruction::Rdind {
            rd1: 1,
            rd2: 2,
            grp: 0,
        },
    ];
    for ins in &program {
        println!("    {ins}");
    }

    // Simulate all mechanisms on the scaled Table 2 machine.
    let sys = SystemConfig::paper_table2_scaled(scale);
    let cfg = SmashConfig::row_major(&ratios)?;
    println!("\nsimulated SpMV on the Table 2 machine (caches scaled 1/{scale}):");
    println!(
        "{:<22} {:>12} {:>14} {:>8} {:>9}",
        "mechanism", "cycles", "instructions", "IPC", "speedup"
    );
    let base = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &sys);
    for mech in Mechanism::ALL {
        let s = harness::sim_spmv(mech, &a, &cfg, &sys);
        println!(
            "{:<22} {:>12} {:>14} {:>8.2} {:>8.2}x",
            mech.label(),
            s.cycles,
            s.instructions(),
            s.ipc(),
            base.cycles as f64 / s.cycles as f64
        );
    }

    // Cross-check: the native (wall-clock) side of every mechanism runs
    // through the executor — one entry point, dispatch decided per call
    // by the measured cost-model planner (docs/DISPATCH.md) — and agrees
    // with the dense reference.
    let exec = Executor::auto();
    println!("\nexecutor dispatch plan for this matrix:");
    let plan = exec.plan_spmv(&a);
    println!("  {}", plan.rationale.replace('\n', "\n  "));
    let x = test_vector::<f64>(a.cols());
    let want = a.spmv(&x);
    let mut y = vec![0.0f64; a.rows()];
    for mech in Mechanism::ALL {
        harness::native_spmv(&exec, mech, &a, &cfg, &x, &mut y);
        let max_err = y
            .iter()
            .zip(&want)
            .map(|(g, w)| (g - w).abs() / (1.0 + w.abs()))
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "{mech}: {max_err}");
    }
    println!(
        "\nnative executor cross-check: all {} mechanisms agree with the \
         dense reference ({} threads available)",
        Mechanism::ALL.len(),
        exec.threads()
    );
    Ok(())
}
