//! Triangle counting and two-hop statistics through the Gustavson
//! SpGEMM engine: the sparse × sparse `A²` workload, dispatched
//! serial/parallel by the executor and checked for cross-mode equality.
//!
//! Run with: `cargo run --release --example triangle_2hop`

use smash::graph::{generators, triangles};
use smash::Executor;
use std::time::Instant;

fn main() {
    let g = generators::rmat(4096, 60_000, 13);
    let adj = triangles::undirected_adjacency(&g);
    println!(
        "R-MAT graph: {} vertices, {} undirected edges",
        adj.rows(),
        adj.nnz() / 2
    );

    let serial = Executor::serial();
    let parallel = Executor::parallel();

    let t0 = Instant::now();
    let tri_serial = triangles::triangle_count(&serial, &adj);
    let t_serial = t0.elapsed();

    let t0 = Instant::now();
    let tri_parallel = triangles::triangle_count(&parallel, &adj);
    let t_parallel = t0.elapsed();

    assert_eq!(
        tri_serial, tri_parallel,
        "the SpGEMM engine is bit-identical across modes"
    );
    println!(
        "triangles: {tri_serial}  (serial {:.1} ms, parallel {:.1} ms on {} threads)",
        t_serial.as_secs_f64() * 1e3,
        t_parallel.as_secs_f64() * 1e3,
        parallel.threads(),
    );

    let hops = triangles::two_hop_counts(&parallel, &adj);
    let max = hops.iter().copied().max().unwrap_or(0);
    let avg = hops.iter().sum::<usize>() as f64 / hops.len().max(1) as f64;
    println!("two-hop neighbourhoods: avg {avg:.1}, max {max}");

    // The same product, emitted straight into the SMASH encoding.
    let cfg = smash::encoding::SmashConfig::row_major(&[2, 4]).expect("valid ratios");
    let sm = parallel.spgemm_smash(&adj, &adj, cfg);
    println!(
        "A² compressed: {} stored blocks, {:.2}x storage vs CSR",
        sm.num_blocks(),
        parallel.spgemm(&adj, &adj).storage_bytes() as f64 / sm.storage_bytes() as f64,
    );
}
