//! Design-space exploration: how the Bitmap-0 compression ratio trades
//! storage against compute, how the locality of sparsity moves the
//! sweet spot (paper §4.1.1, §7.2.2, §7.2.3) — and what the dispatch
//! planner (`docs/DISPATCH.md`) recommends for each structure class,
//! with its rationale.
//!
//! Run with: `cargo run --release --example design_space`

use smash::encoding::{storage, SmashConfig};
use smash::kernels::planner::{Op, PlanRequest, Planner};
use smash::kernels::{harness, MatrixProfile, Mechanism};
use smash::matrix::locality::with_locality;
use smash::sim::SystemConfig;
use smash::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = SystemConfig::paper_table2_scaled(16);
    // Compression runs through the executor (parallel when the matrix is
    // big enough; the result is `==` to the serial encoder either way).
    let exec = Executor::auto();
    println!("Bitmap-0 ratio sweep at two localities (1024x1024, 20k non-zeros):\n");
    for (name, locality) in [
        ("scattered (25% locality@8)", 0.25),
        ("clustered (100%)", 1.0),
    ] {
        let a = with_locality(1024, 1024, 20_000, 8, locality, 42);
        println!("{name}:");
        // Ask the planner what it would run for a free-format SpMV on
        // this structure — the block-fill feature is what separates the
        // two localities in its cost model.
        let profile = MatrixProfile::of_csr(&a).with_block_fill(&a);
        let plan = Planner::built_in().plan(
            &profile,
            &PlanRequest::free(Op::Spmv, exec.threads().max(1)),
        );
        println!("  planner: {}", plan.rationale.replace('\n', "\n  "));
        println!(
            "  {:<6} {:>12} {:>12} {:>14} {:>10}",
            "B0", "NZA zeros", "bytes", "sim cycles", "vs B0=2"
        );
        let mut base = None;
        for b0 in [2u32, 4, 8] {
            let cfg = SmashConfig::row_major(&[b0, 4, 16])?;
            let sm = exec.encode(&a, cfg.clone());
            let rep = storage::compare(&a, &cfg);
            let cycles = harness::sim_spmv(Mechanism::Smash, &a, &cfg, &sys).cycles;
            let b = *base.get_or_insert(cycles);
            println!(
                "  {:<6} {:>12} {:>12} {:>14} {:>9.2}x",
                format!("{b0}:1"),
                rep.nza_zeros,
                sm.storage_bytes(),
                cycles,
                b as f64 / cycles as f64
            );
        }
        println!();
    }
    println!(
        "Reading: with scattered non-zeros, larger blocks drag in zeros \
         (wasted storage + wasted multiplies); with clustered non-zeros the \
         bigger blocks are free and the smaller bitmaps win — exactly the \
         trade-off of the paper's Figures 14/15."
    );
    Ok(())
}
