//! Graph analytics on SMASH: PageRank and Betweenness Centrality over a
//! power-law graph, comparing the CSR-based and SMASH-based pipelines
//! (the paper's Fig. 18 use case), plus an approximate-analytics pass in
//! `f32` through the generic graph stack.
//!
//! Run with: `cargo run --release --example graph_analytics`

use smash::graph::{
    betweenness, generators, pagerank, pagerank_reference, BcConfig, GraphMechanism, PageRankConfig,
};
use smash::matrix::Scalar;
use smash::sim::{SimEngine, SystemConfig};

fn main() {
    let g = generators::rmat(2048, 12_000, 7);
    println!(
        "R-MAT graph: {} vertices, {} edges (avg degree {:.1})",
        g.vertices(),
        g.edges(),
        g.edges() as f64 / g.vertices() as f64
    );

    let sys = SystemConfig::paper_table2_scaled(16);
    let pr_cfg = PageRankConfig {
        iterations: 5,
        ..Default::default()
    };
    let bc_cfg = BcConfig {
        sources: vec![0, 1, 2, 3],
        max_levels: 16,
        ..Default::default()
    };

    println!(
        "\n{:<12} {:>14} {:>14} {:>9}",
        "workload", "CSR cycles", "SMASH cycles", "speedup"
    );
    for (name, run) in [
        (
            "PageRank",
            Box::new(|mech| {
                let mut e = SimEngine::new(sys.clone());
                pagerank(&mut e, mech, &g, &pr_cfg);
                e.finish().cycles
            }) as Box<dyn Fn(GraphMechanism) -> u64>,
        ),
        (
            "BC",
            Box::new(|mech| {
                let mut e = SimEngine::new(sys.clone());
                betweenness(&mut e, mech, &g, &bc_cfg);
                e.finish().cycles
            }),
        ),
    ] {
        let csr = run(GraphMechanism::Csr);
        let smash = run(GraphMechanism::Smash);
        println!(
            "{name:<12} {csr:>14} {smash:>14} {:>8.2}x",
            csr as f64 / smash as f64
        );
    }

    // The functional results are identical regardless of mechanism.
    let mut e = SimEngine::new(sys.clone());
    let r1 = pagerank(&mut e, GraphMechanism::Csr, &g, &pr_cfg);
    let mut e = SimEngine::new(sys);
    let r2 = pagerank(&mut e, GraphMechanism::Smash, &g, &pr_cfg);
    let max_diff = r1
        .iter()
        .zip(&r2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax PageRank difference between mechanisms: {max_diff:.2e}");
    let top = r1
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty");
    println!("highest-ranked vertex: {} (rank {:.5})", top.0, top.1);

    // Approximate analytics: the same PageRank at f32 — half the memory
    // traffic per rank vector, ranks within the f32 tolerance of the f64
    // ones, and the same top vertex.
    let g32 = g.cast::<f32>();
    let r32 = pagerank_reference(&g32, &pr_cfg);
    let r64 = pagerank_reference(&g, &pr_cfg);
    let max_rel = r32
        .iter()
        .zip(&r64)
        .map(|(n, w)| (n.to_f64() - w).abs() / (1.0 + w.abs()))
        .fold(0.0f64, f64::max);
    let top32 = r32
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("non-empty");
    assert_eq!(top32.0, top.0, "f32 must agree on the top vertex");
    println!(
        "f32 PageRank: max relative error vs f64 = {max_rel:.2e} \
         (tolerance {:.0e}), same top vertex",
        f32::TOLERANCE
    );
}
