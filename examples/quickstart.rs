//! Quickstart: compress a sparse matrix with the SMASH hierarchical bitmap
//! encoding, inspect it, and verify the round trip.
//!
//! Run with: `cargo run --release --example quickstart`

use smash::encoding::{SmashConfig, SmashMatrix};
use smash::matrix::{generators, locality};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 512x512 matrix with clustered non-zeros (FEM-like structure).
    let a = generators::clustered(512, 512, 8_000, 6, 42);
    println!(
        "matrix: {}x{}, {} non-zeros ({:.2}% dense), locality@8 = {:.2}",
        a.rows(),
        a.cols(),
        a.nnz(),
        100.0 * a.nnz() as f64 / (a.rows() * a.cols()) as f64,
        locality::locality_of_sparsity(&a, 8),
    );

    // The paper's default three-level hierarchy: Bitmap-0 covers 2 elements
    // per bit, Bitmap-1 covers 4 level-0 bits, Bitmap-2 covers 16 level-1
    // bits ("16.4.2" in the paper's notation).
    let cfg = SmashConfig::row_major(&[2, 4, 16])?;
    let sm = SmashMatrix::encode(&a, cfg);
    println!("encoded with config {}", sm.config());
    for level in 0..sm.hierarchy().num_levels() {
        println!(
            "  bitmap-{level}: {} stored bits ({} logical)",
            sm.hierarchy().stored_level(level).len(),
            sm.hierarchy().logical_bits(level),
        );
    }
    println!(
        "  NZA: {} blocks x {} elements = {} values ({} explicit zeros)",
        sm.num_blocks(),
        sm.config().block_size(),
        sm.nza().len(),
        sm.nza().len() - sm.nza().nnz(),
    );
    println!(
        "  footprint: {} bytes vs {} bytes CSR vs {} bytes dense ({}x total compression)",
        sm.storage_bytes(),
        a.storage_bytes(),
        a.rows() * a.cols() * 8,
        sm.total_compression_ratio().round(),
    );

    // Lossless: decoding returns the exact original matrix.
    assert_eq!(sm.decode(), a);
    println!("round trip OK: decode(encode(A)) == A");

    // The block cursor yields every non-zero region in row-major order.
    let (row, col, block) = sm.iter_blocks().next().expect("non-empty matrix");
    println!("first non-zero block at ({row}, {col}): {block:?}");
    Ok(())
}
