//! Quickstart: compress a sparse matrix with the SMASH hierarchical bitmap
//! encoding, inspect it, verify the round trip, and run SpMV through the
//! unified executor — in both `f64` and `f32`.
//!
//! Run with: `cargo run --release --example quickstart`

use smash::encoding::{SmashConfig, SmashMatrix};
use smash::matrix::{generators, locality, Scalar};
use smash::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 512x512 matrix with clustered non-zeros (FEM-like structure).
    let a = generators::clustered(512, 512, 8_000, 6, 42);
    println!(
        "matrix: {}x{}, {} non-zeros ({:.2}% dense), locality@8 = {:.2}",
        a.rows(),
        a.cols(),
        a.nnz(),
        100.0 * a.nnz() as f64 / (a.rows() * a.cols()) as f64,
        locality::locality_of_sparsity(&a, 8),
    );

    // The paper's default three-level hierarchy: Bitmap-0 covers 2 elements
    // per bit, Bitmap-1 covers 4 level-0 bits, Bitmap-2 covers 16 level-1
    // bits ("16.4.2" in the paper's notation).
    let cfg = SmashConfig::row_major(&[2, 4, 16])?;
    let sm = SmashMatrix::encode(&a, cfg);
    println!("encoded with config {}", sm.config());
    for level in 0..sm.hierarchy().num_levels() {
        println!(
            "  bitmap-{level}: {} stored bits ({} logical)",
            sm.hierarchy().stored_level(level).len(),
            sm.hierarchy().logical_bits(level),
        );
    }
    println!(
        "  NZA: {} blocks x {} elements = {} values ({} explicit zeros)",
        sm.num_blocks(),
        sm.config().block_size(),
        sm.nza().len(),
        sm.nza().len() - sm.nza().nnz(),
    );
    println!(
        "  footprint: {} bytes vs {} bytes CSR vs {} bytes dense ({}x total compression)",
        sm.storage_bytes(),
        a.storage_bytes(),
        a.rows() * a.cols() * 8,
        sm.total_compression_ratio().round(),
    );

    // Lossless: decoding returns the exact original matrix.
    assert_eq!(sm.decode(), a);
    println!("round trip OK: decode(encode(A)) == A");

    // The block cursor yields every non-zero region in row-major order.
    let (row, col, block) = sm.iter_blocks().next().expect("non-empty matrix");
    println!("first non-zero block at ({row}, {col}): {block:?}");

    // Compute goes through the executor: one entry point for every format,
    // serial/parallel chosen from the operand's shape (SMASH_THREADS
    // overrides the pool size), bit-identical output either way.
    let exec = Executor::auto();
    let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
    let mut y = vec![0.0f64; a.rows()];
    let mut y_csr = vec![0.0f64; a.rows()];
    exec.spmv(&sm, &x, &mut y); // compressed operand
    exec.spmv(&a, &x, &mut y_csr); // CSR operand, same call
    let mut y_serial = vec![0.0f64; a.rows()];
    Executor::serial().spmv(&sm, &x, &mut y_serial);
    assert_eq!(y, y_serial, "auto == serial, bit for bit");
    // Cross-format agreement is tolerance-level only (CSR and SMASH
    // accumulate in different orders), so check it explicitly.
    for (s, c) in y.iter().zip(&y_csr) {
        assert!(
            (s - c).abs() < 1e-9 * (1.0 + c.abs()),
            "smash {s} vs csr {c}"
        );
    }
    println!(
        "\nexecutor SpMV ({} threads available): auto == serial bitwise, \
         CSR agrees within 1e-9",
        exec.threads()
    );

    // The whole stack is generic over precision: the same pipeline in f32.
    let a32 = a.cast::<f32>();
    let sm32 = SmashMatrix::encode(&a32, SmashConfig::row_major(&[2, 4, 16])?);
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let mut y32 = vec![0.0f32; a32.rows()];
    exec.spmv(&sm32, &x32, &mut y32);
    let max_rel = y32
        .iter()
        .zip(&y)
        .map(|(n, w)| (n.to_f64() - w).abs() / (1.0 + w.abs()))
        .fold(0.0f64, f64::max);
    println!(
        "f32 pipeline: {} bytes NZA (vs {} in f64), max relative error {max_rel:.2e} \
         (tolerance {:.0e})",
        sm32.nza().len() * 4,
        sm.nza().len() * 8,
        f32::TOLERANCE,
    );
    assert!(max_rel < f32::TOLERANCE);
    Ok(())
}
