//! The fault-tolerant executor tier end to end: feed the `try_*` front
//! door adversarial operands (corrupt structure, mismatched shapes,
//! NaN payloads), run an over-budget SpGEMM under both budget policies,
//! and show the degradation ladder reporting what it did.
//!
//! Run with: `cargo run --release --example untrusted_input`

use smash::matrix::{generators, Coo, Csr};
use smash::{Degradation, Executor, MemoryBudget, NonFinitePolicy, SmashError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `auto_resilient` never panics at construction: if the thread pool
    // cannot be spawned it comes up serial and reports the degradation
    // on every try_* call instead.
    let exec = Executor::auto_resilient();

    // --- 1. Corrupt structure is an error, not a panic -----------------
    // An adversarial CSR whose row_ptr points past its value arrays —
    // the kind of operand that arrives over a wire format. The unchecked
    // constructor defers validation; the try_* tier catches it up front.
    println!("1. corrupt CSR (row_ptr past the value arrays):");
    let bad = Csr::<f64>::from_parts_unchecked(2, 2, vec![0, 5, 5], vec![0], vec![1.0]);
    let mut y = vec![0.0; 2];
    match exec.try_spmv(&bad, &[1.0, 1.0], &mut y) {
        Err(e @ SmashError::InvalidStructure { .. }) => println!("   rejected: {e}"),
        other => panic!("expected InvalidStructure, got {other:?}"),
    }

    // --- 2. Shape disagreement ------------------------------------------
    println!("\n2. x too short for A:");
    let a = generators::uniform(64, 64, 800, 7);
    let mut y = vec![0.0; 64];
    match exec.try_spmv(&a, &[1.0; 32], &mut y) {
        Err(e @ SmashError::DimensionMismatch { .. }) => println!("   rejected: {e}"),
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }

    // --- 3. Non-finite payloads, opt-in rejection -----------------------
    println!("\n3. NaN in the operand under NonFinitePolicy::Reject:");
    let mut coo = Coo::<f64>::new(2, 2);
    coo.push(0, 0, f64::NAN);
    let nan = Csr::from_coo(&coo);
    let strict = Executor::serial().with_non_finite_policy(NonFinitePolicy::Reject);
    let mut y = vec![0.0; 2];
    match strict.try_spmv(&nan, &[1.0, 1.0], &mut y) {
        Err(e @ SmashError::NonFinite { .. }) => println!("   rejected: {e}"),
        other => panic!("expected NonFinite, got {other:?}"),
    }

    // --- 4. SpGEMM under a memory budget ---------------------------------
    // The Gustavson engine's scratch scales with the *product's* fill, not
    // the operand sizes. A budget either rejects the product up front...
    println!("\n4. over-budget SpGEMM, reject policy:");
    let g = generators::power_law(256, 256, 6_000, 1.3, 5);
    let cap = 128 * 1024; // 128 KiB of engine scratch (the product wants ~3.4 MB)
    let reject = Executor::serial().with_budget(MemoryBudget::reject_over(cap));
    match reject.try_spgemm(&g, &g) {
        Err(e @ SmashError::ResourceExhausted { .. }) => println!("   rejected: {e}"),
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }

    // ...or degrades to a row-chunked streaming execution whose peak
    // scratch fits the cap — bit-identical to the unchunked engine.
    println!("\n5. same product, degrade policy:");
    let degrade = Executor::serial().with_budget(MemoryBudget::degrade_over(cap));
    let (c, report) = degrade.try_spgemm(&g, &g)?;
    assert_eq!(c, Executor::serial().spgemm(&g, &g), "bit-identical");
    for d in &report.degradations {
        println!("   degradation: {d}");
        if let Degradation::ChunkedSpgemm {
            peak_scratch_bytes,
            budget_bytes,
            ..
        } = d
        {
            assert!(peak_scratch_bytes <= budget_bytes, "the cap held");
        }
    }
    println!(
        "   product: {}x{} with {} non-zeros",
        c.rows(),
        c.cols(),
        c.nnz()
    );

    // --- 6. Clean input: the try_* tier is the panicking tier ------------
    println!("\n6. clean input matches the panicking tier bit for bit:");
    let x = vec![1.0f64; 64];
    let (mut y_try, mut y_trusted) = (vec![0.0; 64], vec![0.0; 64]);
    let report = exec.try_spmv(&a, &x, &mut y_try)?;
    exec.spmv(&a, &x, &mut y_trusted);
    assert_eq!(y_try, y_trusted);
    println!(
        "   plan: {}",
        report.plan.rationale.replace('\n', "\n         ")
    );
    println!(
        "   degradations this call: {}",
        if report.degraded() {
            format!("{:?}", report.degradations)
        } else {
            "none".to_string()
        }
    );
    Ok(())
}
