//! Serving many queries at once: batched right-hand sides.
//!
//! A personalized-ranking service answers one query per user — each query
//! is a personalized PageRank with that user's restart distribution. Run
//! naively, every query re-streams the whole transition matrix once per
//! power iteration. Batching the queries into the columns of one dense
//! operand turns each iteration into a single column-tiled sparse × dense
//! SpMM that streams the matrix once per 8-wide tile — same results, bit
//! for bit, far less memory traffic.
//!
//! Run with: `cargo run --release --example serve_batch`

use smash::graph::{
    generators, personalized_pagerank, personalized_pagerank_batched, seed_batch, PageRankConfig,
};
use smash::matrix::Dense;
use smash::Executor;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The served graph: a web-like power-law structure.
    let g = generators::rmat(4096, 80_000, 42);
    let cfg = PageRankConfig {
        iterations: 10,
        ..Default::default()
    };
    let exec = Executor::auto();

    // 16 concurrent queries, one personalization column per user.
    let seeds: Vec<usize> = (0..16).map(|i| (i * 257) % g.vertices()).collect();
    let p: Dense<f64> = seed_batch(g.vertices(), &seeds);
    println!(
        "serving {} personalized PageRank queries over {} vertices / {} edges",
        seeds.len(),
        g.vertices(),
        g.edges()
    );

    // Path A: the naive service loop — one full power iteration per query.
    let t = Instant::now();
    let singles: Vec<Vec<f64>> = (0..seeds.len())
        .map(|j| personalized_pagerank(&exec, &g, &cfg, &p.col(j)))
        .collect();
    let loop_time = t.elapsed();

    // Path B: one batched pass — every iteration is a single SpMM.
    let t = Instant::now();
    let batched = personalized_pagerank_batched(&exec, &g, &cfg, &p);
    let batch_time = t.elapsed();

    // Batching never changes an answer: every column is bit-identical to
    // its independently-served query.
    for (j, single) in singles.iter().enumerate() {
        assert_eq!(&batched.col(j), single, "query {j} diverged");
    }
    println!(
        "all {} query results bit-identical across paths",
        seeds.len()
    );
    println!(
        "  per-query loop: {loop_time:?}\n  batched pass:   {batch_time:?}  ({:.2}x)",
        loop_time.as_secs_f64() / batch_time.as_secs_f64()
    );

    // The top-ranked vertex of a personalized query is (almost always) the
    // seed itself — rank mass concentrates around the restart vertex.
    let j = 0;
    let col = batched.col(j);
    let (top, _) = col
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!(
        "query 0 (seed {}): top-ranked vertex {top}, rank {:.4}",
        seeds[j], col[top]
    );
    Ok(())
}
