//! Experiment harness that regenerates every table and figure of the SMASH
//! paper's evaluation (see DESIGN.md for the experiment index).
//!
//! Each figure lives in [`figs`] as a `run(&ExpConfig) -> Vec<Table>`
//! function; the binaries in `src/bin/` are thin wrappers, and
//! `run_all` regenerates everything for EXPERIMENTS.md.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod figs;
pub mod paper_ref;
pub mod report;

pub use config::ExpConfig;
pub use report::Table;

/// Prints a set of tables to stdout.
pub fn print_tables(tables: &[Table]) {
    for t in tables {
        println!("{t}");
    }
}
