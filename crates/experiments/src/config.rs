//! Experiment configuration and a small argument parser shared by all
//! binaries.

use smash_sim::SystemConfig;

/// Shared knobs of the experiment binaries.
///
/// The defaults follow DESIGN.md's scaled-working-set methodology: matrices
/// shrink linearly by `scale` (non-zeros by `scale²`, preserving Table 3's
/// sparsity) and the cache hierarchy shrinks by the same factor, preserving
/// the paper's working-set : cache ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Linear matrix scale for SpMV/SpAdd experiments.
    pub scale_spmv: usize,
    /// Linear matrix scale for SpMM experiments (inner-product SpMM is
    /// O(n²) dot products, so it runs smaller).
    pub scale_spmm: usize,
    /// Linear scale for the Table 4 graphs.
    pub scale_graph: usize,
    /// RNG seed for all generators.
    pub seed: u64,
    /// Fast mode: a 5-matrix subset and fewer sweep points.
    pub fast: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale_spmv: 16,
            scale_spmm: 64,
            scale_graph: 64,
            seed: 42,
            fast: false,
        }
    }
}

impl ExpConfig {
    /// Parses `--scale-spmv N`, `--scale-spmm N`, `--scale-graph N`,
    /// `--seed N` and `--fast` from the process arguments; unknown
    /// arguments abort with a usage message.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cfg = ExpConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> usize {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} requires an integer value"))
            };
            match arg.as_str() {
                "--scale-spmv" => cfg.scale_spmv = value("--scale-spmv").max(1),
                "--scale-spmm" => cfg.scale_spmm = value("--scale-spmm").max(1),
                "--scale-graph" => cfg.scale_graph = value("--scale-graph").max(1),
                "--seed" => cfg.seed = value("--seed") as u64,
                "--fast" => cfg.fast = true,
                other => panic!(
                    "unknown argument `{other}`; supported: --scale-spmv N, \
                     --scale-spmm N, --scale-graph N, --seed N, --fast"
                ),
            }
        }
        cfg
    }

    /// Simulated system for SpMV-scale experiments (caches shrunk with the
    /// matrices).
    pub fn system_spmv(&self) -> SystemConfig {
        SystemConfig::paper_table2_scaled(self.scale_spmv)
    }

    /// Simulated system for SpMM-scale experiments.
    pub fn system_spmm(&self) -> SystemConfig {
        SystemConfig::paper_table2_scaled(self.scale_spmm)
    }

    /// Simulated system for graph experiments.
    pub fn system_graph(&self) -> SystemConfig {
        SystemConfig::paper_table2_scaled(self.scale_graph)
    }

    /// Indices (0-based) into the Table 3 suite used by this run.
    pub fn matrix_indices(&self) -> Vec<usize> {
        if self.fast {
            vec![1, 4, 7, 12, 13] // M2, M5, M8, M13, M14
        } else {
            (0..15).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_design() {
        let c = ExpConfig::default();
        assert_eq!(c.scale_spmv, 16);
        assert_eq!(c.scale_spmm, 64);
        assert!(!c.fast);
        assert_eq!(c.matrix_indices().len(), 15);
    }

    #[test]
    fn parses_flags() {
        let c = ExpConfig::parse(
            ["--fast", "--scale-spmv", "8", "--seed", "7"]
                .into_iter()
                .map(String::from),
        );
        assert!(c.fast);
        assert_eq!(c.scale_spmv, 8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.matrix_indices().len(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flags() {
        ExpConfig::parse(["--bogus".to_string()]);
    }

    #[test]
    fn scaled_systems_shrink_caches() {
        let c = ExpConfig::default();
        assert!(c.system_spmm().l3.size_bytes < c.system_spmv().l3.size_bytes);
    }
}
