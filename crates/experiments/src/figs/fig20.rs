//! Figure 20: end-to-end execution-time breakdown when the matrix must be
//! stored in CSR but processed with SMASH: CSR→SMASH conversion, kernel,
//! SMASH→CSR conversion.

use crate::config::ExpConfig;
use crate::figs::suite_subset;
use crate::paper_ref;
use crate::report::Table;
use smash_bmu::Bmu;
use smash_core::SmashConfig;
use smash_graph::{generate_graphs, pagerank, GraphMechanism, PageRankConfig};
use smash_kernels::{convert, spmm, spmv, test_vector};
use smash_sim::{SimEngine, SimStats};

fn cycles_of(run: impl FnOnce(&mut SimEngine)) -> u64 {
    // A fresh engine per phase keeps the accounting separable; Fig. 20
    // reports relative shares, so cold-cache effects cancel.
    let mut e = SimEngine::new(Default::default());
    run(&mut e);
    let s: SimStats = e.finish();
    s.cycles
}

/// Runs the experiment on a representative mid-suite matrix (M8-shaped) and
/// graph (G2-shaped).
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 20: execution-time breakdown with CSR storage + SMASH processing (%)",
        &["workload", "CSR->SMASH", "kernel", "SMASH->CSR", "paper"],
    );
    let (spec, a) = suite_subset(cfg, cfg.scale_spmv)
        .into_iter()
        .nth(if cfg.fast { 2 } else { 7 })
        .expect("suite subset is non-empty");
    let ratios = spec.bitmap_cfg.ratios_low_to_high();
    let sc = SmashConfig::row_major(&ratios).expect("paper config");
    let x = test_vector(a.cols());

    // SpMV: one conversion pair around a single kernel invocation.
    let sm = {
        let mut e = SimEngine::new(Default::default());
        convert::csr_to_smash(&mut e, &a, sc.clone())
    };
    let to = cycles_of(|e| {
        convert::csr_to_smash(e, &a, sc.clone());
    });
    let kernel = cycles_of(|e| {
        let mut bmu = Bmu::new();
        spmv::spmv_hw_smash(e, &mut bmu, 0, &sm, &x);
    });
    let back = cycles_of(|e| {
        convert::smash_to_csr(e, &sm);
    });
    push_breakdown(&mut t, "SpMV", to, kernel, back, paper_ref::FIG20[0].1);

    // SpMM: conversions for both operands around one kernel.
    let b = spec.generate(cfg.scale_spmm, cfg.seed + 1);
    let a_small = spec.generate(cfg.scale_spmm, cfg.seed);
    let sc1 = SmashConfig::row_major(&[spec.bitmap_cfg.b0]).expect("valid");
    let sc2 = SmashConfig::col_major(&[spec.bitmap_cfg.b0]).expect("valid");
    let (sa, sb) = {
        let mut e = SimEngine::new(Default::default());
        (
            convert::csr_to_smash(&mut e, &a_small, sc1.clone()),
            smash_core::SmashMatrix::encode(&b, sc2.clone()),
        )
    };
    let to = cycles_of(|e| {
        convert::csr_to_smash(e, &a_small, sc1.clone());
        convert::csr_to_smash(e, &b, sc1.clone()); // B converts too
    });
    let kernel = cycles_of(|e| {
        let mut bmu = Bmu::new();
        spmm::spmm_hw_smash(e, &mut bmu, &sa, &sb);
    });
    let back = cycles_of(|e| {
        convert::smash_to_csr(e, &sa);
        convert::smash_to_csr(e, &sb);
    });
    push_breakdown(&mut t, "SpMM", to, kernel, back, paper_ref::FIG20[1].1);

    // PageRank: one conversion pair around many SpMV iterations.
    let (gspec, g) = generate_graphs(cfg.scale_graph, cfg.seed)
        .into_iter()
        .nth(1)
        .expect("four graphs");
    let m = g.transition_matrix();
    let pr_cfg = PageRankConfig {
        iterations: if cfg.fast { 5 } else { 10 },
        ..Default::default()
    };
    let to = cycles_of(|e| {
        convert::csr_to_smash(e, &m, pr_cfg.smash.clone());
    });
    let kernel = cycles_of(|e| {
        pagerank(e, GraphMechanism::Smash, &g, &pr_cfg);
    });
    let back = cycles_of(|e| {
        let smg = smash_core::SmashMatrix::encode(&m, pr_cfg.smash.clone());
        convert::smash_to_csr(e, &smg);
    });
    push_breakdown(
        &mut t,
        &format!("PageRank ({})", gspec.name),
        to,
        kernel,
        back,
        paper_ref::FIG20[2].1,
    );

    t.note("paper: conversion dominates one-shot SpMV (55%) but is negligible for long-running workloads (§7.5)");
    vec![t]
}

fn push_breakdown(t: &mut Table, name: &str, to: u64, kernel: u64, back: u64, paper: [f64; 3]) {
    let total = (to + kernel + back) as f64;
    t.push_row(vec![
        name.to_string(),
        format!("{:.1}", 100.0 * to as f64 / total),
        format!("{:.1}", 100.0 * kernel as f64 / total),
        format!("{:.1}", 100.0 * back as f64 / total),
        format!("{:.0}/{:.0}/{:.0}", paper[0], paper[1], paper[2]),
    ]);
}
