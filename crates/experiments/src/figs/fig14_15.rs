//! Figures 14/15: sensitivity of SMASH's speedup to the Bitmap-0
//! compression ratio (2:1, 4:1, 8:1), for SpMV and SpMM. Results are
//! normalized to the 2:1 configuration, as in the paper.

use crate::config::ExpConfig;
use crate::figs::suite_subset;
use crate::paper_ref;
use crate::report::{geomean, r2, Table};
use smash_core::SmashConfig;
use smash_kernels::{harness, Mechanism};

const B0S: [u32; 3] = [2, 4, 8];

/// Runs the experiment for both kernels.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut out = Vec::new();
    for (kernel, scale, sys) in [
        ("SpMV (Figure 14)", cfg.scale_spmv, cfg.system_spmv()),
        ("SpMM (Figure 15)", cfg.scale_spmm, cfg.system_spmm()),
    ] {
        let mut t = Table::new(
            format!("Bitmap-0 ratio sensitivity, {kernel}: speedup vs B0=2:1"),
            &["matrix", "B0-2:1", "B0-4:1", "B0-8:1"],
        );
        let mut per_b0: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for (spec, a) in suite_subset(cfg, scale) {
            // Upper levels fixed at the paper's per-matrix b2.b1; only
            // Bitmap-0 varies (the figures are labelled Mi.b2.b1).
            let mut row = vec![format!(
                "{}.{}.{}",
                spec.label(),
                spec.bitmap_cfg.b2,
                spec.bitmap_cfg.b1
            )];
            let mut base_cycles = None;
            for (k, &b0) in B0S.iter().enumerate() {
                let cycles = if kernel.starts_with("SpMV") {
                    let ratios = [b0, spec.bitmap_cfg.b1, spec.bitmap_cfg.b2];
                    let sc = SmashConfig::row_major(&ratios).expect("valid ratios");
                    harness::sim_spmv(Mechanism::Smash, &a, &sc, &sys).cycles
                } else {
                    let b = spec.generate(scale, cfg.seed + 1);
                    let sc = SmashConfig::row_major(&[b0]).expect("valid ratio");
                    harness::sim_spmm(Mechanism::Smash, &a, &b, &sc, &sys).cycles
                };
                let base = *base_cycles.get_or_insert(cycles);
                let rel = base as f64 / cycles as f64;
                row.push(r2(rel));
                per_b0[k].push(rel);
            }
            t.push_row(row);
        }
        t.note(format!(
            "AVG at 8:1: {} (paper: ~{} for SpMV, ~{} for SpMM; clustered \
             matrices like M12/M14 gain instead: paper {} and {})",
            r2(geomean(&per_b0[2])),
            r2(paper_ref::FIG14_AVG_8TO1_SLOWDOWN),
            r2(paper_ref::FIG15_AVG_8TO1_SLOWDOWN),
            r2(paper_ref::FIG14_M12_8TO1),
            r2(paper_ref::FIG14_M14_8TO1),
        ));
        out.push(t);
    }
    out
}
