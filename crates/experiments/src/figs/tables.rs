//! Tables 2–4: the simulated system configuration, the matrix suite and
//! the graph inputs — printed with our generated counterparts next to the
//! paper's numbers.

use crate::config::ExpConfig;
use crate::report::{r2, Table};
use smash_graph::paper_graphs;
use smash_matrix::locality::locality_of_sparsity;
use smash_matrix::suite::generate_suite;

/// Table 2: the simulated system.
pub fn table02(cfg: &ExpConfig) -> Vec<Table> {
    let sys = cfg.system_spmv();
    let full = smash_sim::SystemConfig::paper_table2();
    let mut t = Table::new(
        "Table 2: simulated system configuration",
        &["component", "paper", "this run (scaled)"],
    );
    t.push_row(vec![
        "CPU".into(),
        format!(
            "{} GHz, {}-wide OOO, {}-entry ROB, {}/{} LQ/SQ",
            full.core.freq_ghz,
            full.core.issue_width,
            full.core.rob_entries,
            full.core.load_queue,
            full.core.store_queue
        ),
        "same".into(),
    ]);
    for (name, a, b) in [
        ("L1", &full.l1, &sys.l1),
        ("L2", &full.l2, &sys.l2),
        ("L3", &full.l3, &sys.l3),
    ] {
        t.push_row(vec![
            name.into(),
            format!(
                "{} KB, {}-way, {}-cycle, {} B line, {} MSHRs",
                a.size_bytes / 1024,
                a.ways,
                a.latency,
                a.line_bytes,
                a.mshrs
            ),
            format!("{} KB (scaled 1/{})", b.size_bytes / 1024, cfg.scale_spmv),
        ]);
    }
    t.push_row(vec![
        "DRAM".into(),
        format!(
            "1 channel, {} banks, open row ({} / {} cycles)",
            full.dram.banks, full.dram.row_hit_latency, full.dram.row_miss_latency
        ),
        "same".into(),
    ]);
    vec![t]
}

/// Table 3: the matrix suite, paper stats vs generated stats.
pub fn table03(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3: evaluated sparse matrices (paper vs generated)",
        &[
            "matrix",
            "rows (paper)",
            "nnz (paper)",
            "sparsity% (paper)",
            "rows (gen)",
            "nnz (gen)",
            "sparsity% (gen)",
            "locality@8",
        ],
    );
    for (spec, m) in generate_suite(cfg.scale_spmv, cfg.seed) {
        let gen_sparsity = 100.0 * m.nnz() as f64 / (m.rows() as f64 * m.cols() as f64);
        t.push_row(vec![
            format!("{}: {}", spec.label(), spec.name),
            format!("{}", spec.rows),
            format!("{}", spec.nnz),
            r2(spec.sparsity_percent()),
            format!("{}", m.rows()),
            format!("{}", m.nnz()),
            r2(gen_sparsity),
            r2(locality_of_sparsity(&m, 8)),
        ]);
    }
    t.note(format!(
        "generated at linear scale 1/{} with seeded synthetic structure (DESIGN.md)",
        cfg.scale_spmv
    ));
    vec![t]
}

/// Table 4: the graph inputs, paper stats vs generated stats.
pub fn table04(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Table 4: input graphs (paper vs generated)",
        &[
            "graph",
            "vertices (paper)",
            "edges (paper)",
            "vertices (gen)",
            "edges (gen)",
            "avg degree (gen)",
        ],
    );
    for spec in paper_graphs() {
        let g = spec.generate(cfg.scale_graph, cfg.seed);
        t.push_row(vec![
            format!("{}: {}", spec.label(), spec.name),
            format!("{}", spec.vertices),
            format!("{}", spec.edges),
            format!("{}", g.vertices()),
            format!("{}", g.edges()),
            r2(g.edges() as f64 / g.vertices() as f64),
        ]);
    }
    t.note(format!("generated at linear scale 1/{}", cfg.scale_graph));
    vec![t]
}
