//! Figure 3: speedup and normalized instruction count of an *ideal
//! indexing* scheme over baseline CSR, for Sparse Matrix Addition, SpMV and
//! SpMM, averaged over the Table 3 suite.

use crate::config::ExpConfig;
use crate::figs::suite_subset;
use crate::paper_ref;
use crate::report::{geomean, r2, Table};
use smash_core::SmashConfig;
use smash_kernels::{harness, spadd, Mechanism};
use smash_sim::{CountEngine, SimEngine};

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let sys_v = cfg.system_spmv();
    let sys_m = cfg.system_spmm();
    let smash_cfg = SmashConfig::row_major(&[2, 4, 16]).expect("static config");

    let mut speedups: Vec<(&str, Vec<f64>)> = vec![
        ("SpAdd", Vec::new()),
        ("SpMV", Vec::new()),
        ("SpMM", Vec::new()),
    ];
    let mut instr: Vec<(&str, Vec<f64>)> = vec![
        ("SpAdd", Vec::new()),
        ("SpMV", Vec::new()),
        ("SpMM", Vec::new()),
    ];

    // SpAdd and SpMV at SpMV scale.
    for (spec, a) in suite_subset(cfg, cfg.scale_spmv) {
        // SpAdd: A + A^T keeps the shape interesting.
        let b = a.transpose();
        let mut e1 = SimEngine::new(sys_v.clone());
        spadd::spadd_csr(&mut e1, &a, &b);
        let base = e1.finish();
        let mut e2 = SimEngine::new(sys_v.clone());
        spadd::spadd_ideal(&mut e2, &a, &b);
        let ideal = e2.finish();
        speedups[0].1.push(base.cycles as f64 / ideal.cycles as f64);
        instr[0]
            .1
            .push(ideal.instructions() as f64 / base.instructions() as f64);

        let base = harness::sim_spmv(Mechanism::TacoCsr, &a, &smash_cfg, &sys_v);
        let ideal = harness::sim_spmv(Mechanism::IdealCsr, &a, &smash_cfg, &sys_v);
        speedups[1].1.push(base.cycles as f64 / ideal.cycles as f64);
        instr[1]
            .1
            .push(ideal.instructions() as f64 / base.instructions() as f64);
        let _ = spec;
    }
    // SpMM at SpMM scale.
    for (spec, a) in suite_subset(cfg, cfg.scale_spmm) {
        let b = spec.generate(cfg.scale_spmm, cfg.seed + 1);
        let base = harness::sim_spmm(Mechanism::TacoCsr, &a, &b, &smash_cfg, &sys_m);
        let ideal = harness::sim_spmm(Mechanism::IdealCsr, &a, &b, &smash_cfg, &sys_m);
        speedups[2].1.push(base.cycles as f64 / ideal.cycles as f64);
        instr[2]
            .1
            .push(ideal.instructions() as f64 / base.instructions() as f64);
    }

    let mut t = Table::new(
        "Figure 3: ideal indexing vs CSR (average over the matrix suite)",
        &["kernel", "speedup", "paper", "norm. instructions", "paper"],
    );
    for k in 0..3 {
        t.push_row(vec![
            speedups[k].0.to_string(),
            r2(geomean(&speedups[k].1)),
            r2(paper_ref::FIG3_SPEEDUP[k].1),
            r2(geomean(&instr[k].1)),
            r2(paper_ref::FIG3_INSTR[k].1),
        ]);
    }
    t.note(format!(
        "scale: SpAdd/SpMV 1/{}, SpMM 1/{}; caches scaled to match (DESIGN.md)",
        cfg.scale_spmv, cfg.scale_spmm
    ));
    vec![t]
}

/// Additionally reports the §2.2 claim: the share of indexing instructions
/// in CSR kernels (42–65 %).
pub fn indexing_breakdown(cfg: &ExpConfig) -> Table {
    let smash_cfg = SmashConfig::row_major(&[2, 4, 16]).expect("static config");
    let mut t = Table::new(
        "Section 2.2: indexing share of executed CSR instructions",
        &["kernel", "indexing share"],
    );
    let suite = suite_subset(cfg, cfg.scale_spmv);
    let mut spmv_shares = Vec::new();
    for (_, a) in &suite {
        let s = harness::count_spmv(Mechanism::TacoCsr, a, &smash_cfg);
        spmv_shares.push(s.indexing_instructions() as f64 / s.instructions() as f64);
    }
    t.push_row(vec!["SpMV".into(), r2(geomean(&spmv_shares))]);
    // A mid-density matrix keeps the SpMM breakdown representative.
    let subset = suite_subset(cfg, cfg.scale_spmm);
    let (spec, a) = &subset[subset.len() / 2];
    let b = spec.generate(cfg.scale_spmm, cfg.seed + 1);
    let mut e = CountEngine::new();
    smash_kernels::harness::run_spmm(&mut e, Mechanism::TacoCsr, a, &b, &smash_cfg);
    let s = e.finish();
    t.push_row(vec![
        "SpMM".into(),
        r2(s.indexing_instructions() as f64 / s.instructions() as f64),
    ]);
    t.note("paper: indexing is 42-65% of executed instructions (Fig. 3 discussion)");
    t
}
