//! Figures 16/17: sensitivity of SMASH's speedup to the *locality of
//! sparsity* (§7.2.3), for SpMV and SpMM.
//!
//! Three matrices with the sparsities of M2 (0.06 %), M8 (0.85 %) and M13
//! (4.97 %) are regenerated at controlled locality from 12.5 % to 100 %
//! (NZA block size 8, so 12.5 % = one non-zero per block); results are
//! normalized to the 12.5 % point, as in the paper.

use crate::config::ExpConfig;
use crate::paper_ref;
use crate::report::{r2, Table};
use smash_core::SmashConfig;
use smash_kernels::{harness, Mechanism};
use smash_matrix::locality::with_locality;
use smash_matrix::suite::paper_suite;

/// Locality points of the paper's x-axis (fractions of a full block).
const POINTS: [f64; 8] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

/// The matrices the paper sweeps (ids into Table 3).
const TARGETS: [usize; 3] = [2, 8, 13];

/// Runs the experiment for both kernels.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let specs = paper_suite();
    let points: Vec<f64> = if cfg.fast {
        vec![0.125, 0.5, 1.0]
    } else {
        POINTS.to_vec()
    };
    let mut out = Vec::new();
    for (kernel, scale, sys) in [
        ("SpMV (Figure 16)", cfg.scale_spmv, cfg.system_spmv()),
        ("SpMM (Figure 17)", cfg.scale_spmm, cfg.system_spmm()),
    ] {
        let mut headers: Vec<String> = vec!["matrix".into()];
        headers.extend(points.iter().map(|p| format!("{:.1}%", p * 100.0)));
        let mut t = Table::new(
            format!("Locality-of-sparsity sensitivity, {kernel}: speedup vs 12.5% locality"),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for &id in &TARGETS {
            let spec = &specs[id - 1];
            let n = spec.scaled_rows(scale);
            let nnz = spec.scaled_nnz(scale);
            let mut row = vec![format!(
                "{}.{}.{}.8",
                spec.label(),
                spec.bitmap_cfg.b2,
                spec.bitmap_cfg.b1
            )];
            let mut base = None;
            for (pi, &p) in points.iter().enumerate() {
                let a = with_locality(n, n, nnz, 8, p, cfg.seed ^ (id as u64) << 8);
                let cycles = if kernel.starts_with("SpMV") {
                    // The paper annotates these runs Mi.b2.b1.8: B0 = 8.
                    let ratios = [8, spec.bitmap_cfg.b1, spec.bitmap_cfg.b2];
                    let sc = SmashConfig::row_major(&ratios).expect("valid ratios");
                    harness::sim_spmv(Mechanism::Smash, &a, &sc, &sys).cycles
                } else {
                    let b = with_locality(n, n, nnz, 8, p, cfg.seed ^ (id as u64) << 9);
                    let sc = SmashConfig::row_major(&[8]).expect("valid ratio");
                    harness::sim_spmm(Mechanism::Smash, &a, &b, &sc, &sys).cycles
                };
                let b = *base.get_or_insert(cycles);
                row.push(r2(b as f64 / cycles as f64));
                let _ = pi;
            }
            t.push_row(row);
        }
        t.note(format!(
            "paper: speedup grows with locality, up to {} for M13 SpMV; the \
             benefit shrinks as the matrix gets sparser (indexing dominates)",
            r2(paper_ref::FIG16_M13_MAX_GAIN)
        ));
        t.note(
            "known divergence: the monotone trend reproduces but our \
             magnitudes are larger — the simulated BMU skips all-zero \
             regions in constant time, so block compute (proportional to \
             1/locality at fixed nnz) dominates the sweep, whereas the \
             paper's scan cost flattens the curve",
        );
        out.push(t);
    }
    out
}
