//! Figure 9: software-only mechanisms on a *real* system (the host CPU),
//! wall-clock, normalized to plain CSR — our stand-in for the paper's Xeon
//! Gold 5118 (Table 5).

use crate::config::ExpConfig;
use crate::figs::suite_subset;
use crate::paper_ref;
use crate::report::{geomean, r2, Table};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::{native, test_vector};
use smash_matrix::Bcsr;
use std::time::Instant;

/// Median-of-N wall-clock of a closure, in nanoseconds.
fn time_ns<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// Runs the experiment. Matrices use a denser scale than the simulator
/// experiments since native kernels are fast.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let scale = if cfg.fast { 16 } else { 8 };
    let reps = if cfg.fast { 3 } else { 5 };
    let suite = suite_subset(cfg, scale);

    let mut spmv_ratios: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut spmm_ratios: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (spec, a) in &suite {
        let x = test_vector(a.cols());
        let mut y = vec![0.0f64; a.rows()];
        let bcsr = Bcsr::from_csr(a, 2, 2).expect("non-zero block");
        let _ = spec;
        // Software-only scanning is fastest over a single-level bitmap (the
        // §4.4 word loop); deeper hierarchies are a storage/hardware
        // feature, so the native kernel uses 1 level.
        let sm = SmashMatrix::encode(a, SmashConfig::row_major(&[2]).expect("valid"));

        let base = time_ns(|| native::spmv_csr(a, &x, &mut y), reps);
        let t_bcsr = time_ns(|| native::spmv_bcsr(&bcsr, &x, &mut y), reps);
        let t_opt = time_ns(|| native::spmv_csr_opt(a, &x, &mut y), reps);
        let t_sm = time_ns(|| native::spmv_smash(&sm, &x, &mut y), reps);
        spmv_ratios[0].push(1.0);
        spmv_ratios[1].push(base / t_bcsr);
        spmv_ratios[2].push(base / t_opt);
        spmv_ratios[3].push(base / t_sm);
    }
    // SpMM on a smaller scale (quadratic cost).
    let spmm_scale = if cfg.fast { 128 } else { 48 };
    for (spec, a) in &suite_subset(cfg, spmm_scale) {
        let b = spec.generate(spmm_scale, cfg.seed + 1);
        let bc = b.to_csc();
        let sa = SmashMatrix::encode(a, SmashConfig::row_major(&[2]).expect("valid"));
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).expect("valid"));
        let ab = Bcsr::from_csr(a, 2, 2).expect("valid");
        let btb = Bcsr::from_csr(&b.transpose(), 2, 2).expect("valid");

        let base = time_ns(
            || {
                std::hint::black_box(native::spmm_csr(a, &bc));
            },
            reps,
        );
        let t_b = time_ns(
            || {
                std::hint::black_box(native::spmm_bcsr(&ab, &btb));
            },
            reps,
        );
        let t_opt = time_ns(
            || {
                std::hint::black_box(native::spmm_csr_opt(a, &bc));
            },
            reps,
        );
        let t_sm = time_ns(
            || {
                std::hint::black_box(native::spmm_smash(&sa, &sb));
            },
            reps,
        );
        spmm_ratios[0].push(1.0);
        spmm_ratios[1].push(base / t_b);
        spmm_ratios[2].push(base / t_opt);
        spmm_ratios[3].push(base / t_sm);
    }

    let mut t = Table::new(
        "Figure 9: software-only mechanisms on the host CPU (normalized to CSR)",
        &["mechanism", "SpMV", "paper", "SpMM", "paper"],
    );
    for (k, (name, _)) in paper_ref::FIG9_SPMV.iter().enumerate() {
        t.push_row(vec![
            name.to_string(),
            r2(geomean(&spmv_ratios[k])),
            r2(paper_ref::FIG9_SPMV[k].1),
            r2(geomean(&spmm_ratios[k])),
            r2(paper_ref::FIG9_SPMM[k].1),
        ]);
    }
    t.note("host CPU stands in for the paper's Xeon Gold 5118 (Table 5)");
    t.note("MKL-CSR modelled as unrolled/branch-light CSR (DESIGN.md substitution)");
    t.note(
        "known divergence: our safe-Rust BCSR/SW-SMASH SpMV lack the SIMD \
         tuning of the paper's C implementations, so their wall-clock \
         column falls below CSR on the sparsest matrices; the SpMM column \
         and the simulator experiments (Figs. 10-13) carry the co-design \
         comparison (see EXPERIMENTS.md)",
    );
    vec![t]
}
