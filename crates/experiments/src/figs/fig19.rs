//! Figure 19: total compression ratio (uncompressed size / compressed
//! size) of CSR and SMASH for every suite matrix, with the paper's 2:1
//! Bitmap-0 blocks.

use crate::config::ExpConfig;
use crate::figs::suite_subset;
use crate::paper_ref;
use crate::report::{r2, Table};
use smash_core::{storage, SmashConfig};

/// Runs the experiment. Storage accounting needs no simulation, so the
/// matrices run much closer to full scale — important because CSR's
/// `row_ptr` share (and with it the CSR/SMASH crossover of Fig. 19)
/// depends on the real non-zeros-per-row ratio.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let scale = if cfg.fast { 8 } else { 4 };
    let mut t = Table::new(
        "Figure 19: total compression ratio (higher is better; log axis in the paper)",
        &["matrix", "CSR", "SMASH", "SMASH/CSR", "NZA zeros"],
    );
    let mut max_rel: f64 = 0.0;
    for (spec, a) in suite_subset(cfg, scale) {
        // Fig. 19 annotates Mi.b2.b1 with 2-element NZA blocks.
        let ratios = [2, spec.bitmap_cfg.b1, spec.bitmap_cfg.b2];
        let sc = SmashConfig::row_major(&ratios).expect("valid ratios");
        let rep = storage::compare(&a, &sc);
        max_rel = max_rel.max(rep.smash_over_csr());
        t.push_row(vec![
            format!(
                "{}.{}.{}",
                spec.label(),
                spec.bitmap_cfg.b2,
                spec.bitmap_cfg.b1
            ),
            r2(rep.csr_ratio()),
            r2(rep.smash_ratio()),
            r2(rep.smash_over_csr()),
            format!("{}", rep.nza_zeros),
        ]);
    }
    t.note(format!(
        "max SMASH/CSR {} (paper: up to {}); CSR wins the highly sparse \
         M1-M4, SMASH wins at higher density/locality (paper §7.4)",
        r2(max_rel),
        r2(paper_ref::FIG19_MAX_SMASH_OVER_CSR)
    ));
    t.note(format!(
        "matrix scale 1/{scale} (storage only, no simulation)"
    ));
    vec![t]
}
