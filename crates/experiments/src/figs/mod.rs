//! One module per reproduced figure/table; each exposes
//! `run(&ExpConfig) -> Vec<Table>` so binaries stay thin and `run_all`
//! can regenerate everything in-process.

pub mod area;
pub mod fig03;
pub mod fig09;
pub mod fig10_13;
pub mod fig14_15;
pub mod fig16_17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod tables;

use crate::config::ExpConfig;
use smash_matrix::suite::{generate_suite, MatrixSpec};
use smash_matrix::Csr;

/// The Table 3 suite restricted to this run's matrix subset, at the given
/// scale.
pub fn suite_subset(cfg: &ExpConfig, scale: usize) -> Vec<(MatrixSpec, Csr<f64>)> {
    let all = generate_suite(scale, cfg.seed);
    cfg.matrix_indices()
        .into_iter()
        .map(|i| all[i].clone())
        .collect()
}
