//! Figure 18: PageRank and Betweenness Centrality on the Table 4 graphs,
//! SMASH-based vs CSR-based, speedup and normalized instructions.

use crate::config::ExpConfig;
use crate::paper_ref;
use crate::report::{geomean, r2, Table};
use smash_graph::{
    betweenness, generate_graphs, pagerank, BcConfig, GraphMechanism, PageRankConfig,
};
use smash_sim::SimEngine;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let sys = cfg.system_graph();
    let graphs = generate_graphs(cfg.scale_graph, cfg.seed);
    let pr_cfg = PageRankConfig {
        iterations: if cfg.fast { 3 } else { 5 },
        ..Default::default()
    };
    let bc_cfg = BcConfig {
        sources: if cfg.fast {
            vec![0, 1]
        } else {
            vec![0, 1, 2, 3]
        },
        max_levels: 16,
        ..Default::default()
    };

    let mut t = Table::new(
        "Figure 18: graph applications, SMASH vs CSR",
        &[
            "graph",
            "PR speedup",
            "PR norm. instr",
            "BC speedup",
            "BC norm. instr",
        ],
    );
    let (mut prs, mut bcs) = (Vec::new(), Vec::new());
    for (spec, g) in &graphs {
        let mut row = vec![format!("{} ({})", spec.label(), spec.name)];
        // PageRank.
        let mut e = SimEngine::new(sys.clone());
        pagerank(&mut e, GraphMechanism::Csr, g, &pr_cfg);
        let base = e.finish();
        let mut e = SimEngine::new(sys.clone());
        pagerank(&mut e, GraphMechanism::Smash, g, &pr_cfg);
        let s = e.finish();
        let speedup = base.cycles as f64 / s.cycles as f64;
        prs.push(speedup);
        row.push(r2(speedup));
        row.push(r2(s.instructions() as f64 / base.instructions() as f64));
        // Betweenness Centrality.
        let mut e = SimEngine::new(sys.clone());
        betweenness(&mut e, GraphMechanism::Csr, g, &bc_cfg);
        let base = e.finish();
        let mut e = SimEngine::new(sys.clone());
        betweenness(&mut e, GraphMechanism::Smash, g, &bc_cfg);
        let s = e.finish();
        let speedup = base.cycles as f64 / s.cycles as f64;
        bcs.push(speedup);
        row.push(r2(speedup));
        row.push(r2(s.instructions() as f64 / base.instructions() as f64));
        t.push_row(row);
    }
    t.note(format!(
        "AVG PageRank {} (paper {}), BC {} (paper {})",
        r2(geomean(&prs)),
        r2(paper_ref::FIG18_PAGERANK),
        r2(geomean(&bcs)),
        r2(paper_ref::FIG18_BC)
    ));
    t.note(format!(
        "graphs scaled 1/{}; gains are smaller than raw SpMV because vector \
         updates dilute indexing time (paper §7.3)",
        cfg.scale_graph
    ));
    t.note(
        "known divergence: the paper compares against Ligra's CSR-based \
         graph framework (per-edge frontier checks and degree loads), while \
         our CSR baseline is already a bare SpMV — so both pipelines here \
         execute nearly identical work on these low-locality power-law \
         matrices and the result is near-parity instead of +27/31%",
    );
    vec![t]
}
