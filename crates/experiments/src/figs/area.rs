//! §7.6: BMU area overhead, reproduced with the analytic area model.

use crate::config::ExpConfig;
use crate::paper_ref;
use crate::report::Table;
use smash_bmu::AreaModel;

/// Runs the area estimate.
pub fn run(_cfg: &ExpConfig) -> Vec<Table> {
    let m = AreaModel::paper_default();
    let mut t = Table::new("Section 7.6: BMU area overhead", &["quantity", "value"]);
    t.push_row(vec![
        "SRAM (4 groups x 3 buffers x 256 B)".into(),
        format!("{} bytes", m.sram_bytes()),
    ]);
    t.push_row(vec![
        "registers".into(),
        format!("{} bytes", m.register_bytes()),
    ]);
    t.push_row(vec![
        "BMU area".into(),
        format!("{:.4} mm^2", m.bmu_area_mm2()),
    ]);
    t.push_row(vec![
        "reference core area".into(),
        format!("{:.1} mm^2", m.core_area_mm2),
    ]);
    t.push_row(vec![
        "overhead".into(),
        format!(
            "{:.3}% (paper: at most {:.3}%)",
            m.overhead_percent(),
            paper_ref::AREA_OVERHEAD_PERCENT
        ),
    ]);
    t.note("analytic SRAM/register model substitutes CACTI 6.5 (DESIGN.md)");
    vec![t]
}
