//! Figures 10–13: per-matrix speedup and normalized instruction count of
//! TACO-CSR, TACO-BCSR, Software-only SMASH and SMASH, for SpMV
//! (Figs. 10/11) and SpMM (Figs. 12/13), each matrix using its paper bitmap
//! configuration (`Mi.b2.b1.b0`).

use crate::config::ExpConfig;
use crate::figs::suite_subset;
use crate::paper_ref;
use crate::report::{geomean, r2, Table};
use smash_core::SmashConfig;
use smash_kernels::{harness, Mechanism};

/// Runs Figures 10 and 11 (SpMV).
pub fn run_spmv(cfg: &ExpConfig) -> Vec<Table> {
    let sys = cfg.system_spmv();
    let mut speed = Table::new(
        "Figure 10: SpMV speedup (normalized to TACO-CSR)",
        &[
            "matrix",
            "config",
            "TACO-CSR",
            "TACO-BCSR",
            "SW-SMASH",
            "SMASH",
        ],
    );
    let mut instr = Table::new(
        "Figure 11: SpMV executed instructions (normalized to TACO-CSR)",
        &[
            "matrix",
            "config",
            "TACO-CSR",
            "TACO-BCSR",
            "SW-SMASH",
            "SMASH",
        ],
    );
    let mut smash_speedups = Vec::new();
    for (spec, a) in suite_subset(cfg, cfg.scale_spmv) {
        let ratios = spec.bitmap_cfg.ratios_low_to_high();
        let smash_cfg = SmashConfig::row_major(&ratios).expect("paper config");
        let base = harness::sim_spmv(Mechanism::TacoCsr, &a, &smash_cfg, &sys);
        let mut srow = vec![
            format!("{}.{}", spec.label(), spec.bitmap_cfg),
            spec.name.to_string(),
            "1.00".to_string(),
        ];
        let mut irow = srow.clone();
        for mech in [Mechanism::TacoBcsr, Mechanism::SwSmash, Mechanism::Smash] {
            let s = harness::sim_spmv(mech, &a, &smash_cfg, &sys);
            let speedup = base.cycles as f64 / s.cycles as f64;
            srow.push(r2(speedup));
            irow.push(r2(s.instructions() as f64 / base.instructions() as f64));
            if mech == Mechanism::Smash {
                smash_speedups.push(speedup);
            }
        }
        speed.push_row(srow);
        instr.push_row(irow);
    }
    speed.note(format!(
        "AVG SMASH speedup {} (paper: {})",
        r2(geomean(&smash_speedups)),
        r2(paper_ref::FIG10_AVG_SPEEDUP)
    ));
    speed.note(format!(
        "matrix scale 1/{}, caches scaled to match",
        cfg.scale_spmv
    ));
    vec![speed, instr]
}

/// Runs Figures 12 and 13 (SpMM).
pub fn run_spmm(cfg: &ExpConfig) -> Vec<Table> {
    let sys = cfg.system_spmm();
    let mut speed = Table::new(
        "Figure 12: SpMM speedup (normalized to TACO-CSR)",
        &[
            "matrix",
            "config",
            "TACO-CSR",
            "TACO-BCSR",
            "SW-SMASH",
            "SMASH",
        ],
    );
    let mut instr = Table::new(
        "Figure 13: SpMM executed instructions (normalized to TACO-CSR)",
        &[
            "matrix",
            "config",
            "TACO-CSR",
            "TACO-BCSR",
            "SW-SMASH",
            "SMASH",
        ],
    );
    let mut smash_speedups = Vec::new();
    for (spec, a) in suite_subset(cfg, cfg.scale_spmm) {
        let b = spec.generate(cfg.scale_spmm, cfg.seed + 1);
        // SpMM uses 1-level bitmaps (paper §5.2) at the matrix's Bitmap-0
        // ratio; the harness derives the layouts.
        let smash_cfg = SmashConfig::row_major(&[spec.bitmap_cfg.b0]).expect("paper config");
        let base = harness::sim_spmm(Mechanism::TacoCsr, &a, &b, &smash_cfg, &sys);
        let mut srow = vec![
            format!("{}.{}", spec.label(), spec.bitmap_cfg.b0),
            spec.name.to_string(),
            "1.00".to_string(),
        ];
        let mut irow = srow.clone();
        for mech in [Mechanism::TacoBcsr, Mechanism::SwSmash, Mechanism::Smash] {
            let s = harness::sim_spmm(mech, &a, &b, &smash_cfg, &sys);
            let speedup = base.cycles as f64 / s.cycles as f64;
            srow.push(r2(speedup));
            irow.push(r2(s.instructions() as f64 / base.instructions() as f64));
            if mech == Mechanism::Smash {
                smash_speedups.push(speedup);
            }
        }
        speed.push_row(srow);
        instr.push_row(irow);
    }
    speed.note(format!(
        "AVG SMASH speedup {} (paper: {})",
        r2(geomean(&smash_speedups)),
        r2(paper_ref::FIG12_AVG_SPEEDUP)
    ));
    speed.note(format!(
        "matrix scale 1/{}, caches scaled to match",
        cfg.scale_spmm
    ));
    speed.note(
        "known divergence: our TACO-BCSR SpMM merges 2x2-blocked operands \
         on both sides, quartering the dot-product pair loop — an \
         algorithmic advantage the paper's baseline does not exhibit; the \
         SMASH-vs-CSR columns carry the paper's comparison",
    );
    vec![speed, instr]
}
