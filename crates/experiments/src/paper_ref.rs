//! Reference numbers extracted from the paper's evaluation, shown next to
//! our measured values in every experiment report.

/// Figure 3: speedup of ideal indexing over CSR (SpAdd, SpMV, SpMM).
pub const FIG3_SPEEDUP: [(&str, f64); 3] = [("SpAdd", 2.21), ("SpMV", 2.13), ("SpMM", 2.81)];

/// Figure 3: normalized instructions of ideal indexing (1 − reduction:
/// 49 %, 42 %, 65 %).
pub const FIG3_INSTR: [(&str, f64); 3] = [("SpAdd", 0.51), ("SpMV", 0.58), ("SpMM", 0.35)];

/// Figure 9 (real system, normalized to TACO-CSR): §7.1 reports MKL +15 %
/// SpMV / +25 % SpMM, MKL over BCSR +3 % / +4 %, SW-SMASH +5 % / +10 %.
pub const FIG9_SPMV: [(&str, f64); 4] = [
    ("TACO-CSR", 1.00),
    ("TACO-BCSR", 1.12),
    ("MKL-CSR", 1.15),
    ("Software-only SMASH", 1.05),
];

/// Figure 9, SpMM column.
pub const FIG9_SPMM: [(&str, f64); 4] = [
    ("TACO-CSR", 1.00),
    ("TACO-BCSR", 1.20),
    ("MKL-CSR", 1.25),
    ("Software-only SMASH", 1.10),
];

/// Figures 10/12: average SMASH speedup over TACO-CSR (38 % SpMV, 44 %
/// SpMM) and over TACO-BCSR (32 % / 30 %).
pub const FIG10_AVG_SPEEDUP: f64 = 1.38;
/// Average SMASH SpMM speedup (Fig. 12).
pub const FIG12_AVG_SPEEDUP: f64 = 1.44;
/// Average indexing-instruction reduction vs TACO-CSR (§7.2.1).
pub const INSTR_REDUCTION_VS_CSR: f64 = 0.47;

/// Figures 14/15: average slowdown when Bitmap-0 goes 2:1 -> 8:1 (4 % SpMV,
/// 5 % SpMM) and the clustered outliers that speed up instead.
pub const FIG14_AVG_8TO1_SLOWDOWN: f64 = 0.96;
/// SpMM average for the same sweep.
pub const FIG15_AVG_8TO1_SLOWDOWN: f64 = 0.95;
/// M12's speedup at 8:1 relative to 2:1 (clustered).
pub const FIG14_M12_8TO1: f64 = 1.18;
/// M14's speedup at 8:1 relative to 2:1 (clustered).
pub const FIG14_M14_8TO1: f64 = 1.40;

/// Figure 16: up to 25 % gain for M13 SpMV going from 12.5 % to 100 %
/// locality of sparsity.
pub const FIG16_M13_MAX_GAIN: f64 = 1.25;

/// Figure 18: PageRank and Betweenness Centrality speedups (27 % / 31 %).
pub const FIG18_PAGERANK: f64 = 1.27;
/// Betweenness Centrality speedup.
pub const FIG18_BC: f64 = 1.31;

/// Figure 19: SMASH's total compression ratio is up to 2.48x CSR's at high
/// density; CSR wins for the highly sparse M1–M4.
pub const FIG19_MAX_SMASH_OVER_CSR: f64 = 2.48;

/// Figure 20: end-to-end time breakdown percentages
/// (CSR→SMASH, kernel, SMASH→CSR).
pub const FIG20: [(&str, [f64; 3]); 3] = [
    ("SpMV", [30.0, 45.0, 25.0]),
    ("SpMM", [6.0, 90.0, 4.0]),
    ("PageRank", [0.2, 99.5, 0.3]),
];

/// §7.6: BMU area overhead bound.
pub const AREA_OVERHEAD_PERCENT: f64 = 0.076;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdowns_sum_to_one_hundred() {
        for (name, parts) in FIG20 {
            let sum: f64 = parts.iter().sum();
            assert!((sum - 100.0).abs() < 0.5, "{name} sums to {sum}");
        }
    }

    #[test]
    fn speedups_are_positive() {
        for (_, s) in FIG3_SPEEDUP {
            assert!(s > 1.0);
        }
        const { assert!(FIG10_AVG_SPEEDUP > 1.0 && FIG12_AVG_SPEEDUP > FIG10_AVG_SPEEDUP) };
    }
}
