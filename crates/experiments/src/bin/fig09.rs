//! Regenerates the paper's fig09 experiment. Flags: --fast,
//! --scale-spmv N, --scale-spmm N, --scale-graph N, --seed N.

fn main() {
    let cfg = smash_experiments::ExpConfig::from_args();
    smash_experiments::print_tables(&smash_experiments::figs::fig09::run(&cfg));
}
