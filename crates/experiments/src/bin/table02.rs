//! Regenerates the paper's table02 experiment. Flags: --fast,
//! --scale-spmv N, --scale-spmm N, --scale-graph N, --seed N.

fn main() {
    let cfg = smash_experiments::ExpConfig::from_args();
    smash_experiments::print_tables(&smash_experiments::figs::tables::table02(&cfg));
}
