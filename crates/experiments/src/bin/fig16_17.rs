//! Regenerates the paper's fig16 17 experiment. Flags: --fast,
//! --scale-spmv N, --scale-spmm N, --scale-graph N, --seed N.

fn main() {
    let cfg = smash_experiments::ExpConfig::from_args();
    smash_experiments::print_tables(&smash_experiments::figs::fig16_17::run(&cfg));
}
