//! Regenerates every table and figure in one run (the source of
//! EXPERIMENTS.md). Flags: --fast, --scale-spmv N, --scale-spmm N,
//! --scale-graph N, --seed N.

use smash_experiments::{figs, print_tables, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("# SMASH reproduction — full experiment run");
    println!(
        "config: scale spmv 1/{}, spmm 1/{}, graph 1/{}, seed {}, fast {}\n",
        cfg.scale_spmv, cfg.scale_spmm, cfg.scale_graph, cfg.seed, cfg.fast
    );
    print_tables(&figs::tables::table02(&cfg));
    print_tables(&figs::tables::table03(&cfg));
    print_tables(&figs::tables::table04(&cfg));
    print_tables(&figs::fig03::run(&cfg));
    println!("{}", figs::fig03::indexing_breakdown(&cfg));
    print_tables(&figs::fig09::run(&cfg));
    print_tables(&figs::fig10_13::run_spmv(&cfg));
    print_tables(&figs::fig10_13::run_spmm(&cfg));
    print_tables(&figs::fig14_15::run(&cfg));
    print_tables(&figs::fig16_17::run(&cfg));
    print_tables(&figs::fig18::run(&cfg));
    print_tables(&figs::fig19::run(&cfg));
    print_tables(&figs::fig20::run(&cfg));
    print_tables(&figs::area::run(&cfg));
}
