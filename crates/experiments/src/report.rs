//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// One result table (a figure or table of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title, e.g. `"Figure 10: SpMV speedup (normalized to TACO-CSR)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the producer).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper comparison, scaling).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "> {n}")?;
        }
        Ok(())
    }
}

/// Formats a ratio with two decimals.
pub fn r2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio with three decimals.
pub fn r3(x: f64) -> String {
    format!("{x:.3}")
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1.00".into()]);
        t.push_row(vec!["b".into(), "12.34".into()]);
        t.note("paper: 1.38");
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha | 1.00  |"));
        assert!(s.contains("> paper: 1.38"));
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("x", &["a", "b"]).push_row(vec!["only one".into()]);
    }
}
