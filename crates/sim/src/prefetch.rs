//! Per-stream stride prefetcher (the "stride prefetcher" rows of Table 2).

use crate::config::PrefetchConfig;
use crate::uop::StreamId;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct StreamState {
    last_line: i64,
    stride: i64,
    confidence: u32,
}

/// Detects constant strides per logical stream and proposes prefetch
/// addresses ahead of the access pattern.
///
/// Training is *line-granular*, as in hardware: accesses that stay within
/// the last touched line neither advance nor disturb the detector, so
/// slow-moving streams (several accesses per line, or repeated touches of
/// one element) still train.
#[derive(Debug, Clone, Default)]
pub struct StridePrefetcher {
    streams: HashMap<u32, StreamState>,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    pub fn new() -> Self {
        StridePrefetcher::default()
    }

    /// Observes an access and returns the line-aligned addresses to
    /// prefetch (empty until the stride is confirmed).
    pub fn on_access(
        &mut self,
        stream: StreamId,
        addr: u64,
        cfg: &PrefetchConfig,
        line_bytes: usize,
    ) -> Vec<u64> {
        if !cfg.enabled {
            return Vec::new();
        }
        let line = (addr / line_bytes as u64) as i64;
        let state = self.streams.entry(stream.0).or_insert(StreamState {
            last_line: line,
            stride: 0,
            confidence: 0,
        });
        let delta = line - state.last_line;
        if delta == 0 {
            // Same line: slow stream; keep the trained state.
        } else if delta == state.stride {
            state.confidence = state.confidence.saturating_add(1);
            state.last_line = line;
        } else {
            state.stride = delta;
            state.confidence = 1;
            state.last_line = line;
        }
        if delta == 0 || state.confidence < cfg.min_confidence {
            return Vec::new();
        }
        let mut out: Vec<u64> = Vec::with_capacity(cfg.degree as usize);
        for k in 0..cfg.degree as i64 {
            let target = line + state.stride * (cfg.distance as i64 + k);
            if target <= 0 || target == line {
                continue;
            }
            let aligned = target as u64 * line_bytes as u64;
            if !out.contains(&aligned) {
                out.push(aligned);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrefetchConfig {
        PrefetchConfig {
            enabled: true,
            min_confidence: 2,
            distance: 8,
            degree: 2,
        }
    }

    #[test]
    fn warms_up_then_prefetches_ahead() {
        let mut p = StridePrefetcher::new();
        let c = cfg();
        assert!(p.on_access(StreamId(1), 0, &c, 64).is_empty());
        assert!(p.on_access(StreamId(1), 64, &c, 64).is_empty());
        let pf = p.on_access(StreamId(1), 128, &c, 64);
        assert!(!pf.is_empty());
        // distance strides of one line ahead of line 2.
        assert_eq!(pf[0], (2 + c.distance as u64) * 64);
    }

    #[test]
    fn irregular_stream_never_prefetches() {
        let mut p = StridePrefetcher::new();
        let c = cfg();
        let addrs = [0u64, 640, 64, 8192, 32, 4096];
        for &a in &addrs {
            assert!(p.on_access(StreamId(2), a, &c, 64).is_empty(), "addr {a}");
        }
    }

    #[test]
    fn same_line_accesses_preserve_training() {
        let mut p = StridePrefetcher::new();
        let c = cfg();
        // Train a one-line stride, then touch the same line repeatedly:
        // the detector must neither fire nor forget.
        for k in 0..3u64 {
            p.on_access(StreamId(3), k * 64, &c, 64);
        }
        assert!(p.on_access(StreamId(3), 2 * 64 + 8, &c, 64).is_empty());
        assert!(p.on_access(StreamId(3), 2 * 64 + 16, &c, 64).is_empty());
        // The next line continues the stream and fires immediately.
        let pf = p.on_access(StreamId(3), 3 * 64, &c, 64);
        assert!(!pf.is_empty());
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StridePrefetcher::new();
        let mut c = cfg();
        c.enabled = false;
        for k in 0..10 {
            assert!(p.on_access(StreamId(4), k * 64, &c, 64).is_empty());
        }
    }

    #[test]
    fn streams_train_independently() {
        let mut p = StridePrefetcher::new();
        let c = cfg();
        for k in 0..3 {
            p.on_access(StreamId(5), k * 64, &c, 64);
            p.on_access(StreamId(6), 1_000_000 - k * 128, &c, 64);
        }
        let a = p.on_access(StreamId(5), 3 * 64, &c, 64);
        let b = p.on_access(StreamId(6), 1_000_000 - 3 * 128, &c, 64);
        assert!(!a.is_empty() && !b.is_empty());
        assert!(b[0] < 1_000_000, "descending stream prefetches downward");
    }
}
