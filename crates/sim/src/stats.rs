//! Simulation statistics.

use crate::uop::UopClass;

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio over demand accesses (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Complete statistics of one simulated kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Executed instructions by class.
    pub class_counts: [u64; UopClass::COUNT],
    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (row activations).
    pub dram_row_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Prefetch requests issued.
    pub prefetches_issued: u64,
}

impl SimStats {
    /// Total executed instructions.
    pub fn instructions(&self) -> u64 {
        self.class_counts.iter().sum()
    }

    /// Executed instructions of one class.
    pub fn count(&self, class: UopClass) -> u64 {
        self.class_counts[class as usize]
    }

    /// Instructions spent discovering positions of non-zeros (loads, ALU,
    /// branches, coprocessor ops) as opposed to computing on values — the
    /// paper's "indexing" share (§2.2).
    pub fn indexing_instructions(&self) -> u64 {
        UopClass::ALL
            .iter()
            .filter(|c| c.is_indexing())
            .map(|&c| self.count(c))
            .sum()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / self.cycles as f64
        }
    }

    /// DRAM accesses (L3 misses serviced by memory).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_row_hits + self.dram_row_misses
    }

    /// Branch misprediction ratio (0 if no branches).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ratios() {
        let c = CacheStats {
            hits: 75,
            misses: 25,
            prefetch_fills: 0,
            writebacks: 3,
        };
        assert_eq!(c.accesses(), 100);
        assert!((c.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn instruction_accounting() {
        let mut s = SimStats::default();
        s.class_counts[UopClass::Load as usize] = 10;
        s.class_counts[UopClass::Fmul as usize] = 5;
        s.class_counts[UopClass::Branch as usize] = 2;
        assert_eq!(s.instructions(), 17);
        assert_eq!(s.indexing_instructions(), 12);
        s.cycles = 17;
        assert!((s.ipc() - 1.0).abs() < 1e-12);
    }
}
