//! Virtual address space for instrumented kernels.
//!
//! Kernels allocate their arrays here so the addresses they feed the cache
//! model are stable, disjoint and layout-realistic. It is a simple bump
//! allocator — instrumented kernels never free.

/// Bump allocator over a flat virtual address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
}

/// Base of the allocation region (non-zero so address 0 stays invalid).
const BASE: u64 = 0x1000_0000;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace { next: BASE }
    }

    /// Allocates `bytes` with the given alignment and returns the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let a = align as u64;
        let base = (self.next + a - 1) & !(a - 1);
        self.next = base + bytes as u64;
        base
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - BASE
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        AddressSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let x = a.alloc(100, 8);
        let y = a.alloc(64, 64);
        assert_eq!(x % 8, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 100);
        assert!(a.allocated() >= 164);
    }

    #[test]
    fn zero_sized_allocations_are_fine() {
        let mut a = AddressSpace::new();
        let x = a.alloc(0, 8);
        let y = a.alloc(8, 8);
        assert!(y >= x);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        AddressSpace::new().alloc(8, 3);
    }
}
