//! Simulated system configuration (paper Table 2).

/// Out-of-order core parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Nominal frequency in GHz (reporting only; the model counts cycles).
    pub freq_ghz: f64,
    /// Uops dispatched per cycle.
    pub issue_width: u32,
    /// Reorder-buffer entries (bounds in-flight uops).
    pub rob_entries: usize,
    /// Load-queue entries (bounds in-flight loads).
    pub load_queue: usize,
    /// Store-queue entries (bounds in-flight stores).
    pub store_queue: usize,
    /// Loads that can start per cycle (load ports).
    pub load_ports: u32,
    /// Pipeline refill penalty on a branch mispredict, in cycles.
    pub mispredict_penalty: u32,
    /// Latency of an integer ALU uop.
    pub alu_latency: u32,
    /// Latency of a floating-point add.
    pub fadd_latency: u32,
    /// Latency of a floating-point multiply.
    pub fmul_latency: u32,
    /// Latency of a fused multiply-add.
    pub fma_latency: u32,
}

/// One cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in cycles.
    pub latency: u32,
    /// Miss-status holding registers (bounds overlapping misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// DRAM timing (single channel, open-row policy, per Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of banks for the open-row model.
    pub banks: usize,
    /// Latency when the access hits the open row of its bank.
    pub row_hit_latency: u32,
    /// Latency when the bank must open a new row.
    pub row_miss_latency: u32,
}

/// Stride-prefetcher parameters (Table 2 attaches one to each cache level;
/// we train per logical stream and fill into the whole hierarchy).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchConfig {
    /// Whether prefetching is enabled.
    pub enabled: bool,
    /// Consecutive equal strides required before issuing prefetches.
    pub min_confidence: u32,
    /// How many line-strides ahead to fetch.
    pub distance: u32,
    /// Maximum distinct lines prefetched per trigger.
    pub degree: u32,
}

/// Full simulated system: core + three cache levels + DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// Memory timing.
    pub dram: DramConfig,
    /// Prefetcher settings.
    pub prefetch: PrefetchConfig,
}

impl SystemConfig {
    /// The configuration of the paper's Table 2: a 3.6 GHz Westmere-like
    /// 4-wide OOO core with 128-entry ROB, 32 KB / 256 KB / 1 MB caches
    /// (8/8/16-way, 2/8/20-cycle, 64 B lines, 10/20/64 MSHRs, stride
    /// prefetchers) and single-channel 16-bank open-row DDR4.
    pub fn paper_table2() -> Self {
        SystemConfig {
            core: CoreConfig {
                freq_ghz: 3.6,
                issue_width: 4,
                rob_entries: 128,
                load_queue: 32,
                store_queue: 32,
                load_ports: 2,
                mispredict_penalty: 14,
                alu_latency: 1,
                fadd_latency: 3,
                fmul_latency: 5,
                fma_latency: 5,
            },
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 2,
                mshrs: 10,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 8,
                mshrs: 20,
            },
            l3: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 20,
                mshrs: 64,
            },
            dram: DramConfig {
                banks: 16,
                row_hit_latency: 160,
                row_miss_latency: 230,
            },
            prefetch: PrefetchConfig {
                enabled: true,
                min_confidence: 2,
                distance: 4,
                degree: 2,
            },
        }
    }

    /// Same system with prefetching disabled (ablation benches).
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch.enabled = false;
        self
    }

    /// Table 2 with every cache level shrunk by `divisor` (latencies and
    /// associativities unchanged).
    ///
    /// The paper's matrices are 10–100x the 1 MB LLC, which is what makes
    /// CSR's index traffic expensive. When experiments scale the matrices
    /// down (DESIGN.md), shrinking the caches by the same linear factor
    /// preserves the working-set : cache ratio — the standard scaled-
    /// working-set methodology. Each level keeps at least one set per way.
    pub fn paper_table2_scaled(divisor: usize) -> Self {
        let mut cfg = SystemConfig::paper_table2();
        let d = divisor.max(1);
        for level in [&mut cfg.l1, &mut cfg.l2, &mut cfg.l3] {
            let min = level.ways * level.line_bytes;
            level.size_bytes = (level.size_bytes / d).max(min);
        }
        cfg
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometry() {
        let c = SystemConfig::paper_table2();
        assert_eq!(c.l1.sets(), 64); // 32KB / (8 * 64B)
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 1024);
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.core.rob_entries, 128);
    }

    #[test]
    fn default_is_table2() {
        assert_eq!(SystemConfig::default(), SystemConfig::paper_table2());
    }

    #[test]
    fn without_prefetch_flips_flag() {
        let c = SystemConfig::paper_table2().without_prefetch();
        assert!(!c.prefetch.enabled);
    }
}
