//! Set-associative write-back caches and the three-level memory hierarchy
//! with an open-row DRAM model (paper Table 2).

use crate::config::{CacheConfig, DramConfig};
use crate::stats::SimStats;

#[cfg(doc)]
use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy, Default)]
struct LineSlot {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One set-associative, write-back, write-allocate cache level with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    latency: u32,
    slots: Vec<LineSlot>,
    tick: u64,
}

/// Result of looking a line up in one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways or a line size
    /// that is not a power of two).
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^k");
        let sets = cfg.sets();
        assert!(sets > 0 && cfg.ways > 0, "cache must have sets and ways");
        Cache {
            sets,
            ways: cfg.ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            latency: cfg.latency,
            slots: vec![LineSlot::default(); sets * cfg.ways],
            tick: 0,
        }
    }

    /// Access latency of this level.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line as usize) % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    /// Probes for `addr`'s line; updates recency and the dirty bit on a hit.
    pub fn probe(&mut self, addr: u64, write: bool) -> Lookup {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line / self.sets as u64;
        let range = self.set_range(line);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.tag == tag {
                slot.lru = self.tick;
                if write {
                    slot.dirty = true;
                }
                return Lookup::Hit;
            }
        }
        Lookup::Miss
    }

    /// Whether the line is present, without touching recency (used by
    /// prefetch probes).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let tag = line / self.sets as u64;
        self.slots[self.set_range(line)]
            .iter()
            .any(|s| s.valid && s.tag == tag)
    }

    /// Installs `addr`'s line, evicting the LRU way if the set is full.
    /// Returns the evicted line's `(address, was_dirty)` if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<(u64, bool)> {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line / self.sets as u64;
        let set = (line as usize) % self.sets;
        let range = self.set_range(line);

        // Already present (e.g. prefetch raced a demand fill): refresh.
        for slot in &mut self.slots[range.clone()] {
            if slot.valid && slot.tag == tag {
                slot.lru = self.tick;
                slot.dirty |= dirty;
                return None;
            }
        }
        // Pick an invalid way, else the LRU way.
        let mut victim = range.start;
        let mut best = u64::MAX;
        for i in range {
            let s = &self.slots[i];
            if !s.valid {
                victim = i;
                break;
            }
            if s.lru < best {
                best = s.lru;
                victim = i;
            }
        }
        let old = self.slots[victim];
        self.slots[victim] = LineSlot {
            tag,
            valid: true,
            dirty,
            lru: self.tick,
        };
        if old.valid {
            let old_line = old.tag * self.sets as u64 + set as u64;
            Some((old_line << self.line_shift, old.dirty))
        } else {
            None
        }
    }
}

/// Open-row DRAM timing model: each bank remembers its open row; accesses to
/// the open row are faster than row activations.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    open_rows: Vec<Option<u64>>,
}

/// Bytes mapped to one bank slice before interleaving moves to the next
/// bank (4 KiB keeps streaming access within a row).
const BANK_SHIFT: u32 = 12;

impl Dram {
    /// Builds the DRAM model.
    pub fn new(cfg: &DramConfig) -> Self {
        Dram {
            cfg: cfg.clone(),
            open_rows: vec![None; cfg.banks.max(1)],
        }
    }

    /// Latency of accessing `addr`, updating the open-row state.
    pub fn access(&mut self, addr: u64, stats: &mut SimStats) -> u32 {
        let bank = ((addr >> BANK_SHIFT) as usize) % self.open_rows.len();
        let row = addr >> (BANK_SHIFT + self.open_rows.len().trailing_zeros());
        if self.open_rows[bank] == Some(row) {
            stats.dram_row_hits += 1;
            self.cfg.row_hit_latency
        } else {
            self.open_rows[bank] = Some(row);
            stats.dram_row_misses += 1;
            self.cfg.row_miss_latency
        }
    }
}

/// The L1/L2/L3 + DRAM hierarchy. Inclusive fills, write-back, write-
/// allocate; dirty evictions are drained in the background (counted, not
/// timed), matching the usual simulator simplification.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    dram: Dram,
}

/// Which levels serviced an access (for stats and MSHR modelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the L2.
    L2,
    /// Hit in the last-level cache.
    L3,
    /// Serviced by DRAM.
    Dram,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from the per-level configurations.
    pub fn new(l1: &CacheConfig, l2: &CacheConfig, l3: &CacheConfig, dram: &DramConfig) -> Self {
        MemoryHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
            dram: Dram::new(dram),
        }
    }

    /// Demand access. Returns the total latency and the level that serviced
    /// the request; updates all stats.
    pub fn access(&mut self, addr: u64, write: bool, stats: &mut SimStats) -> (u32, ServicedBy) {
        let mut latency = self.l1.latency();
        if self.l1.probe(addr, write) == Lookup::Hit {
            stats.l1.hits += 1;
            return (latency, ServicedBy::L1);
        }
        stats.l1.misses += 1;
        latency += self.l2.latency();
        if self.l2.probe(addr, false) == Lookup::Hit {
            stats.l2.hits += 1;
            self.fill_l1(addr, write, stats);
            return (latency, ServicedBy::L2);
        }
        stats.l2.misses += 1;
        latency += self.l3.latency();
        if self.l3.probe(addr, false) == Lookup::Hit {
            stats.l3.hits += 1;
            self.fill_l2(addr, stats);
            self.fill_l1(addr, write, stats);
            return (latency, ServicedBy::L3);
        }
        stats.l3.misses += 1;
        latency += self.dram.access(addr, stats);
        if let Some((_, dirty)) = self.l3.fill(addr, false) {
            if dirty {
                stats.l3.writebacks += 1;
            }
        }
        self.fill_l2(addr, stats);
        self.fill_l1(addr, write, stats);
        (latency, ServicedBy::Dram)
    }

    fn fill_l1(&mut self, addr: u64, write: bool, stats: &mut SimStats) {
        if let Some((victim, dirty)) = self.l1.fill(addr, write) {
            if dirty {
                stats.l1.writebacks += 1;
                // Write the victim back into L2 (state only).
                self.l2.probe(victim, true);
            }
        }
    }

    fn fill_l2(&mut self, addr: u64, stats: &mut SimStats) {
        if let Some((_, dirty)) = self.l2.fill(addr, false) {
            if dirty {
                stats.l2.writebacks += 1;
            }
        }
    }

    /// Prefetch fill: installs the line wherever it is absent without
    /// charging latency or demand-hit/miss counters.
    pub fn prefetch(&mut self, addr: u64, stats: &mut SimStats) {
        if self.l1.contains(addr) {
            return;
        }
        stats.l1.prefetch_fills += 1;
        if !self.l3.contains(addr) {
            stats.l3.prefetch_fills += 1;
            self.l3.fill(addr, false);
        }
        if !self.l2.contains(addr) {
            stats.l2.prefetch_fills += 1;
            self.l2.fill(addr, false);
        }
        self.fill_l1(addr, false, stats);
    }

    /// Whether `addr`'s line is in the L1 (test/diagnostic hook).
    pub fn in_l1(&self, addr: u64) -> bool {
        self.l1.contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn hierarchy() -> MemoryHierarchy {
        let c = SystemConfig::paper_table2();
        MemoryHierarchy::new(&c.l1, &c.l2, &c.l3, &c.dram)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut m = hierarchy();
        let mut s = SimStats::default();
        let (lat1, by1) = m.access(0x1000, false, &mut s);
        assert_eq!(by1, ServicedBy::Dram);
        assert!(lat1 > 150);
        let (lat2, by2) = m.access(0x1008, false, &mut s);
        assert_eq!(by2, ServicedBy::L1, "same line must hit");
        assert_eq!(lat2, 2);
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = hierarchy();
        let mut s = SimStats::default();
        // Fill one L1 set (64 sets, 8 ways): addresses with the same set
        // index are 64*64 = 4096 bytes apart.
        for w in 0..9u64 {
            m.access(0x10_0000 + w * 4096, false, &mut s);
        }
        // The first line was evicted from L1 but still sits in L2.
        let (lat, by) = m.access(0x10_0000, false, &mut s);
        assert_eq!(by, ServicedBy::L2);
        assert_eq!(lat, 2 + 8);
    }

    #[test]
    fn lru_keeps_recently_used_line() {
        let mut m = hierarchy();
        let mut s = SimStats::default();
        m.access(0x10_0000, false, &mut s); // A
        for w in 1..8u64 {
            m.access(0x10_0000 + w * 4096, false, &mut s);
        }
        // Touch A again so it is the MRU way, then add a 9th line.
        m.access(0x10_0000, false, &mut s);
        m.access(0x10_0000 + 8 * 4096, false, &mut s);
        let (_, by) = m.access(0x10_0000, false, &mut s);
        assert_eq!(by, ServicedBy::L1, "MRU line must survive eviction");
    }

    #[test]
    fn writes_mark_dirty_and_produce_writebacks() {
        let mut m = hierarchy();
        let mut s = SimStats::default();
        m.access(0x20_0000, true, &mut s);
        // Evict the set.
        for w in 1..=8u64 {
            m.access(0x20_0000 + w * 4096, false, &mut s);
        }
        assert!(s.l1.writebacks >= 1);
    }

    #[test]
    fn dram_open_row_hits_for_streaming() {
        let mut m = hierarchy();
        let mut s = SimStats::default();
        // Sequential lines within one 4 KiB bank slice: first access opens
        // the row, the rest hit it.
        for k in 0..32u64 {
            m.access(0x40_0000 + k * 64, false, &mut s);
        }
        assert_eq!(s.dram_row_misses, 1);
        assert_eq!(s.dram_row_hits, 31);
    }

    #[test]
    fn prefetch_fills_without_demand_counters() {
        let mut m = hierarchy();
        let mut s = SimStats::default();
        m.prefetch(0x30_0000, &mut s);
        assert_eq!(s.l1.hits + s.l1.misses, 0);
        assert!(m.in_l1(0x30_0000));
        let (lat, by) = m.access(0x30_0000, false, &mut s);
        assert_eq!(by, ServicedBy::L1);
        assert_eq!(lat, 2);
    }
}
