//! Trace-driven, cycle-approximate CPU and memory-hierarchy simulator — the
//! substitute for the zsim setup of the SMASH paper's Table 2.
//!
//! Instrumented kernels (in `smash-kernels`) describe their execution as a
//! stream of micro-ops with explicit data dependencies; this crate times
//! that stream on a model with the properties the paper's analysis relies
//! on:
//!
//! * a 4-wide dispatch, 128-entry-ROB out-of-order core where independent
//!   uops overlap and dependent ones serialize (pointer chasing!),
//! * L1-MSHR-bounded memory-level parallelism,
//! * a 32 KB / 256 KB / 1 MB three-level LRU cache hierarchy with stride
//!   prefetchers and 64-byte lines,
//! * single-channel, 16-bank, open-row DRAM,
//! * a bimodal branch predictor with a pipeline-refill penalty.
//!
//! The model is *approximate*: it dispatches in program order and does not
//! rename registers or replay loads. Absolute cycle counts therefore differ
//! from zsim's, but relative behaviour — instruction counts, dependency
//! serialization, cache/prefetch effects — tracks the paper's analysis.
//!
//! # Example
//!
//! ```
//! use smash_sim::{Engine, SimEngine, StreamId, UopId};
//!
//! // Time a tiny pointer-chase against streaming loads.
//! let mut e = SimEngine::new(Default::default());
//! let base = e.alloc(4096, 64);
//! let mut dep = UopId::NONE;
//! for k in 0..8 {
//!     dep = e.load(StreamId(1), base + k * 512, &[dep]); // dependent chain
//! }
//! let stats = e.finish();
//! assert_eq!(stats.instructions(), 8);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod branch;
mod cache;
mod config;
mod engine;
mod prefetch;
mod stats;
mod uop;

pub use addr::AddressSpace;
pub use branch::BranchPredictor;
pub use cache::{Cache, Dram, Lookup, MemoryHierarchy, ServicedBy};
pub use config::{CacheConfig, CoreConfig, DramConfig, PrefetchConfig, SystemConfig};
pub use engine::{CountEngine, Engine, SimEngine};
pub use prefetch::StridePrefetcher;
pub use stats::{CacheStats, SimStats};
pub use uop::{StreamId, UopClass, UopId};
