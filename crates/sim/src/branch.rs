//! Bimodal branch predictor with 2-bit saturating counters.
//!
//! Branch sites are identified by a kernel-chosen id (a stand-in for the
//! branch PC). Highly regular branches (loop back-edges) predict well;
//! data-dependent branches (SpMM index matching) mispredict and pay the
//! pipeline-refill penalty, one of the costs SMASH removes.

/// Table of 2-bit saturating counters indexed by a hash of the site id.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
}

/// Number of 2-bit counters (power of two).
const TABLE_SIZE: usize = 4096;

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new() -> Self {
        BranchPredictor {
            counters: vec![1; TABLE_SIZE],
        }
    }

    fn index(site: u32) -> usize {
        // Fibonacci hashing spreads consecutive site ids.
        ((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize % TABLE_SIZE
    }

    /// Predicts and trains on the actual outcome; returns `true` if the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, site: u32, taken: bool) -> bool {
        let c = &mut self.counters[Self::index(site)];
        let predicted = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        predicted == taken
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_branch() {
        let mut p = BranchPredictor::new();
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict_and_update(7, true) {
                correct += 1;
            }
        }
        assert!(correct >= 98, "only {correct}/100 correct");
    }

    #[test]
    fn alternating_pattern_mispredicts_often() {
        let mut p = BranchPredictor::new();
        let mut wrong = 0;
        for i in 0..100 {
            if !p.predict_and_update(9, i % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong >= 40, "only {wrong}/100 wrong");
    }

    #[test]
    fn sites_are_independent() {
        let mut p = BranchPredictor::new();
        for _ in 0..10 {
            p.predict_and_update(1, true);
            p.predict_and_update(2, false);
        }
        assert!(p.predict_and_update(1, true));
        assert!(p.predict_and_update(2, false));
    }
}
