//! The [`Engine`] abstraction instrumented kernels are written against, and
//! its two implementations: the full timing model ([`SimEngine`]) and a fast
//! instruction counter ([`CountEngine`]).

use crate::addr::AddressSpace;
use crate::branch::BranchPredictor;
use crate::cache::{MemoryHierarchy, ServicedBy};
use crate::config::SystemConfig;
use crate::prefetch::StridePrefetcher;
use crate::stats::SimStats;
use crate::uop::{StreamId, UopClass, UopId};
use std::collections::VecDeque;

/// Abstract execution engine. Kernels emit their instruction stream through
/// this trait and receive [`UopId`]s with which they express data
/// dependencies (e.g. a pointer-chasing load depends on the load that
/// produced its address).
///
/// Two implementations exist:
/// * [`SimEngine`] — full cycle-approximate timing (cores, caches, DRAM),
/// * [`CountEngine`] — instruction counting only, orders of magnitude
///   faster, for instruction-count experiments at large scale.
pub trait Engine {
    /// Allocates a kernel array and returns its base address.
    fn alloc(&mut self, bytes: usize, align: usize) -> u64;

    /// Emits a load from `addr`. `stream` trains the stride prefetcher.
    fn load(&mut self, stream: StreamId, addr: u64, deps: &[UopId]) -> UopId;

    /// Emits a store to `addr`.
    fn store(&mut self, stream: StreamId, addr: u64, deps: &[UopId]) -> UopId;

    /// Emits an integer ALU uop.
    fn alu(&mut self, deps: &[UopId]) -> UopId;

    /// Emits a floating-point add.
    fn fadd(&mut self, deps: &[UopId]) -> UopId;

    /// Emits a floating-point multiply.
    fn fmul(&mut self, deps: &[UopId]) -> UopId;

    /// Emits a fused multiply-add.
    fn fma(&mut self, deps: &[UopId]) -> UopId;

    /// Emits a conditional branch at site `site` with the given outcome.
    fn branch(&mut self, site: u32, taken: bool, deps: &[UopId]) -> UopId;

    /// Emits a coprocessor (SMASH ISA) instruction with a model-supplied
    /// latency.
    fn coproc(&mut self, latency: u32, deps: &[UopId]) -> UopId;

    /// Models coprocessor-initiated memory traffic (e.g. a BMU bitmap-buffer
    /// refill): the given byte range moves through the memory hierarchy but
    /// no core instruction is executed. Returns a uop whose completion
    /// marks the data's arrival.
    fn coproc_mem(&mut self, addr: u64, bytes: u32, deps: &[UopId]) -> UopId;

    /// Hardware prefetch hint: pull the byte range into the caches without
    /// executing an instruction or stalling (used by the BMU's next-window
    /// prefetcher).
    fn prefetch_hint(&mut self, addr: u64, bytes: u32);

    /// Instructions executed so far.
    fn instructions(&self) -> u64;
}

/// Full timing engine: an approximate out-of-order core (dispatch width,
/// ROB, load ports, L1-MSHR-bounded miss overlap, branch-mispredict
/// flushes) in front of the Table 2 memory hierarchy.
///
/// The model dispatches uops in program order at `issue_width` per cycle;
/// each uop starts when its dependencies complete, so independent loads
/// overlap while dependent (pointer-chasing) loads serialize — the
/// first-order behaviour behind the paper's indexing-bottleneck analysis.
///
/// # Example
///
/// ```
/// use smash_sim::{Engine, SimEngine, StreamId, UopId};
///
/// let mut e = SimEngine::new(Default::default());
/// let a = e.alloc(1024, 64);
/// // A dependent chain: load, then an ALU op on its result.
/// let ld = e.load(StreamId(0), a, &[]);
/// e.alu(&[ld]);
/// let stats = e.finish();
/// assert_eq!(stats.instructions(), 2);
/// assert!(stats.cycles > 100, "cold load must reach DRAM");
/// ```
#[derive(Debug)]
pub struct SimEngine {
    cfg: SystemConfig,
    mem: MemoryHierarchy,
    predictor: BranchPredictor,
    prefetcher: StridePrefetcher,
    addr_space: AddressSpace,
    stats: SimStats,

    // Core state.
    cycle: u64,
    width_used: u32,
    loads_this_cycle: u32,
    rob: VecDeque<u64>,
    last_retire: u64,
    mshr: VecDeque<u64>,
    max_completion: u64,

    // Completion ring: id -> completion cycle.
    ring_ids: Vec<u64>,
    ring_done: Vec<u64>,
    next_id: u64,
}

/// Completion-ring capacity; dependencies further back than this are
/// treated as long retired.
const RING: usize = 1 << 16;

impl SimEngine {
    /// Creates an engine over the given system configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let mem = MemoryHierarchy::new(&cfg.l1, &cfg.l2, &cfg.l3, &cfg.dram);
        SimEngine {
            mem,
            predictor: BranchPredictor::new(),
            prefetcher: StridePrefetcher::new(),
            addr_space: AddressSpace::new(),
            stats: SimStats::default(),
            cycle: 0,
            width_used: 0,
            loads_this_cycle: 0,
            rob: VecDeque::with_capacity(cfg.core.rob_entries),
            last_retire: 0,
            mshr: VecDeque::with_capacity(cfg.l1.mshrs),
            max_completion: 0,
            ring_ids: vec![u64::MAX; RING],
            ring_done: vec![0; RING],
            next_id: 1,
            cfg,
        }
    }

    /// The system configuration being simulated.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Finalizes timing and returns the statistics.
    pub fn finish(mut self) -> SimStats {
        self.stats.cycles = self.cycle.max(self.last_retire).max(self.max_completion);
        self.stats
    }

    /// Statistics so far (cycles are not finalized; use [`SimEngine::finish`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    fn ready_time(&self, deps: &[UopId]) -> u64 {
        let mut t = 0;
        for d in deps {
            if d.is_none() {
                continue;
            }
            let slot = (d.0 as usize) % RING;
            if self.ring_ids[slot] == d.0 {
                t = t.max(self.ring_done[slot]);
            }
            // Ids that fell out of the ring completed long ago.
        }
        t
    }

    /// Claims a dispatch slot honoring issue width, ROB occupancy and load
    /// ports; returns the dispatch cycle.
    fn dispatch_slot(&mut self, is_load: bool) -> u64 {
        loop {
            if self.width_used >= self.cfg.core.issue_width {
                self.cycle += 1;
                self.width_used = 0;
                self.loads_this_cycle = 0;
            }
            if self.rob.len() >= self.cfg.core.rob_entries {
                let head = self.rob.pop_front().expect("rob non-empty");
                if head > self.cycle {
                    self.cycle = head;
                    self.width_used = 0;
                    self.loads_this_cycle = 0;
                }
                continue;
            }
            if is_load && self.loads_this_cycle >= self.cfg.core.load_ports {
                self.cycle += 1;
                self.width_used = 0;
                self.loads_this_cycle = 0;
                continue;
            }
            break;
        }
        self.width_used += 1;
        if is_load {
            self.loads_this_cycle += 1;
        }
        self.cycle
    }

    /// Records a uop with the given start and latency; returns its id.
    fn retire(&mut self, class: UopClass, start: u64, latency: u32, count_instr: bool) -> UopId {
        let completion = start + latency as u64;
        let retire_time = completion.max(self.last_retire);
        self.last_retire = retire_time;
        self.max_completion = self.max_completion.max(completion);
        self.rob.push_back(retire_time);
        if count_instr {
            self.stats.class_counts[class as usize] += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        let slot = (id as usize) % RING;
        self.ring_ids[slot] = id;
        self.ring_done[slot] = completion;
        UopId(id)
    }

    fn simple_op(&mut self, class: UopClass, latency: u32, deps: &[UopId]) -> UopId {
        let ready = self.ready_time(deps);
        let dispatch = self.dispatch_slot(false);
        let start = dispatch.max(ready);
        self.retire(class, start, latency, true)
    }

    fn mem_latency(&mut self, stream: Option<StreamId>, addr: u64, write: bool) -> (u32, bool) {
        let (latency, by) = self.mem.access(addr, write, &mut self.stats);
        if let Some(stream) = stream {
            let targets =
                self.prefetcher
                    .on_access(stream, addr, &self.cfg.prefetch, self.cfg.l1.line_bytes);
            for t in targets {
                self.stats.prefetches_issued += 1;
                self.mem.prefetch(t, &mut self.stats);
            }
        }
        (latency, by != ServicedBy::L1)
    }
}

impl Engine for SimEngine {
    fn alloc(&mut self, bytes: usize, align: usize) -> u64 {
        self.addr_space.alloc(bytes, align)
    }

    fn load(&mut self, stream: StreamId, addr: u64, deps: &[UopId]) -> UopId {
        let ready = self.ready_time(deps);
        let dispatch = self.dispatch_slot(true);
        let mut start = dispatch.max(ready);
        let (latency, l1_miss) = self.mem_latency(Some(stream), addr, false);
        if l1_miss {
            // L1 MSHRs bound the number of overlapping misses.
            if self.mshr.len() >= self.cfg.l1.mshrs {
                let oldest = self.mshr.pop_front().expect("mshr non-empty");
                start = start.max(oldest);
            }
            self.mshr.push_back(start + latency as u64);
        }
        self.retire(UopClass::Load, start, latency, true)
    }

    fn store(&mut self, stream: StreamId, addr: u64, deps: &[UopId]) -> UopId {
        let ready = self.ready_time(deps);
        let dispatch = self.dispatch_slot(false);
        let start = dispatch.max(ready);
        // Stores retire into the store queue and write back asynchronously;
        // the cache state is updated for subsequent accesses but the uop
        // itself completes quickly.
        let _ = self.mem_latency(Some(stream), addr, true);
        self.retire(UopClass::Store, start, 1, true)
    }

    fn alu(&mut self, deps: &[UopId]) -> UopId {
        let latency = self.cfg.core.alu_latency;
        self.simple_op(UopClass::Alu, latency, deps)
    }

    fn fadd(&mut self, deps: &[UopId]) -> UopId {
        let latency = self.cfg.core.fadd_latency;
        self.simple_op(UopClass::Fadd, latency, deps)
    }

    fn fmul(&mut self, deps: &[UopId]) -> UopId {
        let latency = self.cfg.core.fmul_latency;
        self.simple_op(UopClass::Fmul, latency, deps)
    }

    fn fma(&mut self, deps: &[UopId]) -> UopId {
        let latency = self.cfg.core.fma_latency;
        self.simple_op(UopClass::Fma, latency, deps)
    }

    fn branch(&mut self, site: u32, taken: bool, deps: &[UopId]) -> UopId {
        let correct = self.predictor.predict_and_update(site, taken);
        self.stats.branches += 1;
        let id = self.simple_op(UopClass::Branch, 1, deps);
        if !correct {
            self.stats.mispredicts += 1;
            // Pipeline flush: nothing dispatches until the branch resolves
            // plus the refill penalty.
            let slot = (id.0 as usize) % RING;
            let resolved = self.ring_done[slot];
            self.cycle = self
                .cycle
                .max(resolved + self.cfg.core.mispredict_penalty as u64);
            self.width_used = 0;
            self.loads_this_cycle = 0;
        }
        id
    }

    fn coproc(&mut self, latency: u32, deps: &[UopId]) -> UopId {
        self.simple_op(UopClass::Coproc, latency, deps)
    }

    fn coproc_mem(&mut self, addr: u64, bytes: u32, deps: &[UopId]) -> UopId {
        // Coprocessor reads move line by line through the hierarchy without
        // occupying core resources; the returned uop completes when the last
        // line arrives.
        let ready = self.ready_time(deps).max(self.cycle);
        let line = self.cfg.l1.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) as u64 - 1) / line;
        let mut total = 0u32;
        for l in first..=last {
            let (lat, _) = self.mem.access(l * line, false, &mut self.stats);
            // Line fetches pipeline: charge the slowest fully and a transfer
            // beat for the rest.
            total = total.max(lat) + 1;
        }
        let completion = ready + total as u64;
        self.max_completion = self.max_completion.max(completion);
        let id = self.next_id;
        self.next_id += 1;
        let slot = (id as usize) % RING;
        self.ring_ids[slot] = id;
        self.ring_done[slot] = completion;
        UopId(id)
    }

    fn prefetch_hint(&mut self, addr: u64, bytes: u32) {
        let line = self.cfg.l1.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) as u64 - 1) / line;
        for l in first..=last {
            self.stats.prefetches_issued += 1;
            self.mem.prefetch(l * line, &mut self.stats);
        }
    }

    fn instructions(&self) -> u64 {
        self.stats.instructions()
    }
}

/// Instruction-counting engine: same interface, no timing. Used for the
/// normalized-instruction figures (Figs. 11, 13, 18) at scales where full
/// timing simulation would be slow.
#[derive(Debug, Default)]
pub struct CountEngine {
    addr_space: AddressSpace,
    stats: SimStats,
    next_id: u64,
}

impl CountEngine {
    /// Creates a fresh counter.
    pub fn new() -> Self {
        CountEngine {
            addr_space: AddressSpace::new(),
            stats: SimStats::default(),
            next_id: 1,
        }
    }

    /// Returns the accumulated statistics (cycle fields stay zero).
    pub fn finish(self) -> SimStats {
        self.stats
    }

    fn bump(&mut self, class: UopClass) -> UopId {
        self.stats.class_counts[class as usize] += 1;
        let id = self.next_id;
        self.next_id += 1;
        UopId(id)
    }
}

impl Engine for CountEngine {
    fn alloc(&mut self, bytes: usize, align: usize) -> u64 {
        self.addr_space.alloc(bytes, align)
    }

    fn load(&mut self, _stream: StreamId, _addr: u64, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Load)
    }

    fn store(&mut self, _stream: StreamId, _addr: u64, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Store)
    }

    fn alu(&mut self, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Alu)
    }

    fn fadd(&mut self, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Fadd)
    }

    fn fmul(&mut self, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Fmul)
    }

    fn fma(&mut self, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Fma)
    }

    fn branch(&mut self, _site: u32, _taken: bool, _deps: &[UopId]) -> UopId {
        self.stats.branches += 1;
        self.bump(UopClass::Branch)
    }

    fn coproc(&mut self, _latency: u32, _deps: &[UopId]) -> UopId {
        self.bump(UopClass::Coproc)
    }

    fn coproc_mem(&mut self, _addr: u64, _bytes: u32, _deps: &[UopId]) -> UopId {
        let id = self.next_id;
        self.next_id += 1;
        UopId(id)
    }

    fn prefetch_hint(&mut self, _addr: u64, _bytes: u32) {}

    fn instructions(&self) -> u64 {
        self.stats.instructions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SimEngine {
        SimEngine::new(SystemConfig::paper_table2())
    }

    #[test]
    fn independent_loads_overlap() {
        // N cold loads to distinct lines with no dependencies: the MSHRs
        // allow up to 10 overlapping misses, so total time must be far less
        // than N * dram_latency.
        let mut e = engine();
        let base = e.alloc(64 * 64, 64);
        for k in 0..64u64 {
            e.load(StreamId(99), base + k * 64 * 67, &[]); // defeat prefetch
        }
        let s = e.finish();
        assert_eq!(s.count(UopClass::Load), 64);
        assert!(
            s.cycles < 64 * 160 / 4,
            "cycles {} suggest no memory-level parallelism",
            s.cycles
        );
    }

    #[test]
    fn dependent_loads_serialize() {
        // A pointer chase: each load's address depends on the previous one.
        let mut e = engine();
        let base = e.alloc(1 << 20, 64);
        let mut dep = UopId::NONE;
        for k in 0..32u64 {
            dep = e.load(StreamId(98), base + (k * 131) % 16384 * 64, &[dep]);
        }
        let serial = e.finish();

        let mut e2 = engine();
        let base2 = e2.alloc(1 << 20, 64);
        for k in 0..32u64 {
            e2.load(StreamId(98), base2 + (k * 131) % 16384 * 64, &[]);
        }
        let parallel = e2.finish();
        assert!(
            serial.cycles > parallel.cycles * 3,
            "serial {} vs parallel {}",
            serial.cycles,
            parallel.cycles
        );
    }

    #[test]
    fn issue_width_bounds_alu_throughput() {
        let mut e = engine();
        for _ in 0..4000 {
            e.alu(&[]);
        }
        let s = e.finish();
        // 4-wide: 4000 independent ALU ops need >= 1000 cycles.
        assert!(s.cycles >= 1000);
        assert!(s.cycles < 1100, "cycles {}", s.cycles);
        assert!((s.ipc() - 4.0).abs() < 0.5);
    }

    #[test]
    fn dependent_alu_chain_is_serial() {
        let mut e = engine();
        let mut dep = UopId::NONE;
        for _ in 0..1000 {
            dep = e.alu(&[dep]);
        }
        let s = e.finish();
        assert!(s.cycles >= 1000, "cycles {}", s.cycles);
    }

    #[test]
    fn streaming_loads_benefit_from_prefetch() {
        let run = |prefetch: bool| {
            let cfg = if prefetch {
                SystemConfig::paper_table2()
            } else {
                SystemConfig::paper_table2().without_prefetch()
            };
            let mut e = SimEngine::new(cfg);
            let base = e.alloc(1 << 20, 64);
            for k in 0..8192u64 {
                e.load(StreamId(1), base + k * 8, &[]);
            }
            e.finish()
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with.cycles < without.cycles,
            "prefetch {} vs none {}",
            with.cycles,
            without.cycles
        );
        assert!(with.l1.prefetch_fills > 100);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let run = |pattern: fn(u32) -> bool| {
            let mut e = engine();
            for i in 0..2000 {
                e.branch(7, pattern(i), &[]);
            }
            e.finish()
        };
        let steady = run(|_| true);
        let alternating = run(|i| i % 2 == 0);
        assert!(alternating.mispredicts > steady.mispredicts * 5);
        assert!(alternating.cycles > steady.cycles * 2);
    }

    #[test]
    fn coproc_mem_counts_no_instructions() {
        let mut e = engine();
        let base = e.alloc(4096, 64);
        let x = e.coproc_mem(base, 256, &[]);
        e.coproc(2, &[x]);
        let s = e.finish();
        assert_eq!(s.instructions(), 1); // only the coproc ISA op
        assert_eq!(s.l1.misses, 4); // 256 bytes = 4 cold lines
    }

    #[test]
    fn count_engine_matches_classes() {
        let mut e = CountEngine::new();
        let a = e.alloc(64, 8);
        let l = e.load(StreamId(0), a, &[]);
        e.fmul(&[l]);
        e.fadd(&[]);
        e.branch(1, true, &[]);
        e.store(StreamId(0), a, &[]);
        let s = e.finish();
        assert_eq!(s.instructions(), 5);
        assert_eq!(s.count(UopClass::Fmul), 1);
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn rob_limits_runahead_past_long_miss() {
        // A single cold miss followed by thousands of independent ALU ops:
        // the ROB (128) fills, so the core cannot run arbitrarily far ahead.
        let mut e = engine();
        let base = e.alloc(64, 64);
        e.load(StreamId(97), base, &[]);
        for _ in 0..126 {
            e.alu(&[]);
        }
        let fits = e.finish();
        let mut e2 = engine();
        let base2 = e2.alloc(64, 64);
        e2.load(StreamId(97), base2, &[]);
        for _ in 0..1270 {
            e2.alu(&[]);
        }
        let overflows = e2.finish();
        // Both wait for the miss; the second adds post-stall ALU cycles.
        assert!(overflows.cycles > fits.cycles + 200);
    }
}
