//! Micro-operation vocabulary of the trace-driven core model.
//!
//! Instrumented kernels describe their work as a stream of uops with
//! explicit data-dependency edges. The simulator never interprets values —
//! kernels compute results natively — it only times the described
//! instruction stream, which is exactly the split zsim's core models use.

/// Identifier of an emitted uop, used to express data dependencies.
///
/// Ids are monotonically increasing per engine. [`UopId::NONE`] is a
/// sentinel that is always "complete" (no dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UopId(pub u64);

impl UopId {
    /// Sentinel id with no timing constraint.
    pub const NONE: UopId = UopId(0);

    /// Whether this id is the [`UopId::NONE`] sentinel.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

impl Default for UopId {
    fn default() -> Self {
        UopId::NONE
    }
}

/// Logical stream identifier used by the stride prefetcher to separate
/// concurrent access patterns (a stand-in for the load PC that a hardware
/// prefetcher trains on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// Instruction classes tracked by the statistics and used for the paper's
/// instruction-breakdown experiments (§2.2: indexing instructions are
/// 42–65 % of CSR kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum UopClass {
    /// Integer ALU operation (address arithmetic, compares, masks).
    Alu = 0,
    /// Memory load.
    Load = 1,
    /// Memory store.
    Store = 2,
    /// Floating-point add.
    Fadd = 3,
    /// Floating-point multiply.
    Fmul = 4,
    /// Fused multiply-add.
    Fma = 5,
    /// Conditional branch.
    Branch = 6,
    /// SMASH ISA instruction executed by the core but serviced by the BMU
    /// (`matinfo`, `bmapinfo`, `rdbmap`, `pbmap`, `rdind`).
    Coproc = 7,
}

impl UopClass {
    /// Number of distinct classes.
    pub const COUNT: usize = 8;

    /// All classes, in stats order.
    pub const ALL: [UopClass; UopClass::COUNT] = [
        UopClass::Alu,
        UopClass::Load,
        UopClass::Store,
        UopClass::Fadd,
        UopClass::Fmul,
        UopClass::Fma,
        UopClass::Branch,
        UopClass::Coproc,
    ];

    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            UopClass::Alu => "alu",
            UopClass::Load => "load",
            UopClass::Store => "store",
            UopClass::Fadd => "fadd",
            UopClass::Fmul => "fmul",
            UopClass::Fma => "fma",
            UopClass::Branch => "branch",
            UopClass::Coproc => "coproc",
        }
    }

    /// Whether the class represents *indexing* work rather than computation
    /// on values. Loads/ALU/branches discover positions; floating-point ops
    /// are the useful work (the split behind the paper's Fig. 3 argument).
    pub fn is_indexing(&self) -> bool {
        matches!(
            self,
            UopClass::Alu | UopClass::Load | UopClass::Branch | UopClass::Coproc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_sentinel() {
        assert!(UopId::NONE.is_none());
        assert!(!UopId(3).is_none());
        assert_eq!(UopId::default(), UopId::NONE);
    }

    #[test]
    fn class_names_unique() {
        let mut names: Vec<_> = UopClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), UopClass::COUNT);
    }

    #[test]
    fn float_ops_are_not_indexing() {
        assert!(!UopClass::Fadd.is_indexing());
        assert!(!UopClass::Fmul.is_indexing());
        assert!(UopClass::Load.is_indexing());
        assert!(UopClass::Coproc.is_indexing());
    }
}
