//! Graph substrate and applications for the SMASH reproduction: the
//! PageRank and Betweenness Centrality workloads of the paper's §6 and
//! Fig. 18, built as iterated SpMV over the mechanisms of `smash-kernels`.
//!
//! # Example
//!
//! ```
//! use smash_graph::{generators, pagerank, GraphMechanism, PageRankConfig};
//! use smash_sim::CountEngine;
//!
//! let g = generators::rmat(128, 512, 42);
//! let cfg = PageRankConfig { iterations: 3, ..Default::default() };
//! let mut e = CountEngine::new();
//! let ranks = pagerank::pagerank(&mut e, GraphMechanism::Csr, &g, &cfg);
//! assert_eq!(ranks.len(), g.vertices());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
pub mod bc;
pub mod generators;
mod graph;
pub mod incremental;
pub mod pagerank;
pub mod parallel;
pub mod triangles;

pub use batched::{
    personalized_pagerank, personalized_pagerank_batched, personalized_pagerank_batched_smash,
    seed_batch,
};
pub use bc::{betweenness, betweenness_reference, BcConfig};
pub use generators::{generate_graphs, paper_graphs, GraphSpec};
pub use graph::Graph;
pub use incremental::{pagerank_power, uniform_ranks, IncrementalPageRank, PowerSolve};
pub use pagerank::{pagerank, pagerank_reference, GraphMechanism, PageRankConfig};
pub use parallel::{
    betweenness_parallel, betweenness_parallel_smash, pagerank_parallel, pagerank_parallel_smash,
};
pub use triangles::{triangle_count, two_hop_counts, undirected_adjacency};
