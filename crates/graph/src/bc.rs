//! Betweenness Centrality as SpMV-based breadth-first search (paper §6:
//! "Betweenness Centrality iteratively uses SpMV to perform breadth-first
//! searches in the graph").
//!
//! The implementation is the level-synchronous linear-algebra form of
//! Brandes' algorithm: a forward sweep of SpMVs accumulates shortest-path
//! counts (`sigma`) level by level, then a backward sweep of SpMVs
//! accumulates dependencies (`delta`). Both sweeps route their SpMVs
//! through the selected mechanism.

use crate::{Graph, GraphMechanism};
use smash_bmu::Bmu;
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::spmv;
use smash_matrix::Scalar;
use smash_sim::{Engine, StreamId};

/// Betweenness-centrality parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BcConfig {
    /// Source vertices to run Brandes from (the paper's Ligra setup also
    /// samples sources rather than solving all pairs).
    pub sources: Vec<u32>,
    /// BFS level cap: road networks have huge diameters, so both the
    /// reference and the instrumented runs truncate consistently.
    pub max_levels: usize,
    /// SMASH hierarchy used by [`GraphMechanism::Smash`].
    pub smash: SmashConfig,
}

impl Default for BcConfig {
    fn default() -> Self {
        BcConfig {
            sources: vec![0, 1, 2, 3],
            max_levels: 24,
            smash: SmashConfig::row_major(&[2, 4, 16]).expect("static config is valid"),
        }
    }
}

/// Prefetcher stream for the BC work vectors.
const S_VEC: StreamId = StreamId(41);

/// Level structure of one BFS: per level, the frontier vertices.
fn bfs_levels<T: Scalar>(
    g: &Graph<T>,
    source: u32,
    max_levels: usize,
) -> (Vec<Vec<u32>>, Vec<T>, Vec<i32>) {
    let n = g.vertices();
    let mut dist = vec![-1i32; n];
    let mut sigma = vec![T::ZERO; n];
    dist[source as usize] = 0;
    sigma[source as usize] = T::ONE;
    let mut levels = vec![vec![source]];
    while levels.len() < max_levels {
        let frontier = levels.last().expect("at least the source level");
        let mut next = Vec::new();
        for &u in frontier {
            for v in g.neighbours(u as usize) {
                if dist[v] == -1 {
                    dist[v] = levels.len() as i32;
                    next.push(v as u32);
                }
            }
        }
        // Path counts flow along edges between consecutive levels.
        for &u in frontier {
            let su = sigma[u as usize];
            for v in g.neighbours(u as usize) {
                if dist[v] == levels.len() as i32 {
                    sigma[v] += su;
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_unstable();
        levels.push(next);
    }
    (levels, sigma, dist)
}

/// Reference (uninstrumented, level-capped) betweenness centrality,
/// generic over the accumulation precision.
pub fn betweenness_reference<T: Scalar>(g: &Graph<T>, cfg: &BcConfig) -> Vec<T> {
    let n = g.vertices();
    let mut bc = vec![T::ZERO; n];
    for &s in &cfg.sources {
        let (levels, sigma, dist) = bfs_levels(g, s, cfg.max_levels);
        let mut delta = vec![T::ZERO; n];
        for k in (1..levels.len()).rev() {
            for &u in &levels[k - 1] {
                let mut acc = T::ZERO;
                for v in g.neighbours(u as usize) {
                    if dist[v] == k as i32 {
                        acc += (T::ONE + delta[v]) / sigma[v];
                    }
                }
                delta[u as usize] += sigma[u as usize] * acc;
            }
            for &v in &levels[k] {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
    bc
}

/// Instrumented betweenness centrality: every level transition of both
/// sweeps is one mechanism-routed SpMV over the adjacency (transpose),
/// followed by element-wise mask/update passes.
pub fn betweenness<E: Engine, T: Scalar>(
    e: &mut E,
    mech: GraphMechanism,
    g: &Graph<T>,
    cfg: &BcConfig,
) -> Vec<T> {
    let n = g.vertices();
    let at = g.adjacency_transpose();
    let a = g.adjacency().clone();
    let (sm_at, sm_a) = match mech {
        GraphMechanism::Smash => (
            Some(SmashMatrix::encode(&at, cfg.smash.clone())),
            Some(SmashMatrix::encode(&a, cfg.smash.clone())),
        ),
        GraphMechanism::Csr => (None, None),
    };
    let mut bmu = Bmu::new();
    let vec_addr = e.alloc(std::mem::size_of::<T>() * n, 64);
    let vs = std::mem::size_of::<T>() as u64;

    let run_spmv = |e: &mut E, bmu: &mut Bmu, transpose: bool, x: &[T]| -> Vec<T> {
        match mech {
            GraphMechanism::Csr => {
                if transpose {
                    spmv::spmv_csr(e, &at, x)
                } else {
                    spmv::spmv_csr(e, &a, x)
                }
            }
            GraphMechanism::Smash => {
                let m = if transpose { &sm_at } else { &sm_a };
                spmv::spmv_hw_smash(e, bmu, 0, m.as_ref().expect("encoded above"), x)
            }
        }
    };
    // Element-wise pass over the work vectors: load, update, store, branch.
    let vector_pass = |e: &mut E, writes: bool| {
        for i in 0..n {
            let ld = e.load(S_VEC, vec_addr + vs * i as u64, &[]);
            e.branch(30, i % 3 == 0, &[ld]);
            if writes {
                let up = e.fadd(&[ld]);
                e.store(S_VEC, vec_addr + vs * i as u64, &[up]);
            }
        }
    };

    let mut bc = vec![T::ZERO; n];
    for &s in &cfg.sources {
        // Forward sweep: discover levels and accumulate sigma with SpMVs.
        let mut dist = vec![-1i32; n];
        let mut sigma = vec![T::ZERO; n];
        dist[s as usize] = 0;
        sigma[s as usize] = T::ONE;
        let mut levels: Vec<Vec<u32>> = vec![vec![s]];
        loop {
            if levels.len() >= cfg.max_levels {
                break;
            }
            let frontier = levels.last().expect("non-empty");
            // f = sigma masked to the frontier.
            let mut f = vec![T::ZERO; n];
            for &u in frontier {
                f[u as usize] = sigma[u as usize];
            }
            let t = run_spmv(e, &mut bmu, true, &f);
            vector_pass(e, true); // mask t to unvisited, update sigma/dist
            let mut next = Vec::new();
            for (v, &tv) in t.iter().enumerate() {
                if tv > T::ZERO && dist[v] == -1 {
                    dist[v] = levels.len() as i32;
                    sigma[v] += tv;
                    next.push(v as u32);
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }
        // Backward sweep: dependency accumulation, one SpMV per level.
        let mut delta = vec![T::ZERO; n];
        for k in (1..levels.len()).rev() {
            let mut w = vec![T::ZERO; n];
            for &v in &levels[k] {
                w[v as usize] = (T::ONE + delta[v as usize]) / sigma[v as usize];
            }
            let t = run_spmv(e, &mut bmu, false, &w);
            vector_pass(e, true); // delta[u] += sigma[u] * t[u] on level k-1
            for &u in &levels[k - 1] {
                delta[u as usize] += sigma[u as usize] * t[u as usize];
            }
            for &v in &levels[k] {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use smash_sim::CountEngine;

    /// Classic queue-based Brandes, for validating the linear-algebra form
    /// on graphs whose diameter fits under the level cap.
    fn brandes_classic(g: &Graph, sources: &[u32]) -> Vec<f64> {
        let n = g.vertices();
        let mut bc = vec![0.0f64; n];
        for &s in sources {
            let mut stack = Vec::new();
            let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut sigma = vec![0.0f64; n];
            let mut dist = vec![-1i64; n];
            sigma[s as usize] = 1.0;
            dist[s as usize] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                stack.push(u);
                for v in g.neighbours(u as usize) {
                    if dist[v] < 0 {
                        dist[v] = dist[u as usize] + 1;
                        queue.push_back(v as u32);
                    }
                    if dist[v] == dist[u as usize] + 1 {
                        sigma[v] += sigma[u as usize];
                        preds[v].push(u);
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            while let Some(w) = stack.pop() {
                for &v in &preds[w as usize] {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
                if w != s {
                    bc[w as usize] += delta[w as usize];
                }
            }
        }
        bc
    }

    #[test]
    fn reference_matches_classic_brandes() {
        let g = generators::rmat(64, 256, 5);
        let cfg = BcConfig {
            sources: vec![0, 3, 7],
            max_levels: 64, // far above the diameter
            ..Default::default()
        };
        let want = brandes_classic(&g, &cfg.sources);
        let got = betweenness_reference(&g, &cfg);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn instrumented_matches_reference_for_both_mechanisms() {
        let g = generators::rmat(64, 256, 7);
        let cfg = BcConfig {
            sources: vec![1, 2],
            max_levels: 32,
            ..Default::default()
        };
        let want = betweenness_reference(&g, &cfg);
        for mech in [GraphMechanism::Csr, GraphMechanism::Smash] {
            let mut e = CountEngine::new();
            let got = betweenness(&mut e, mech, &g, &cfg);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "{mech:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn path_graph_center_is_most_between() {
        // 0 - 1 - 2 - 3 - 4 (symmetric path): vertex 2 lies on the most
        // shortest paths.
        let edges: Vec<(u32, u32)> = (0..4).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
        let g = Graph::<f64>::from_edges(5, &edges);
        let cfg = BcConfig {
            sources: (0..5).collect(),
            max_levels: 16,
            ..Default::default()
        };
        let bc = betweenness_reference(&g, &cfg);
        for v in [0usize, 1, 3, 4] {
            assert!(bc[2] >= bc[v], "bc[2] = {} < bc[{v}] = {}", bc[2], bc[v]);
        }
    }
}
