//! PageRank as iterated SpMV (paper §6: "PageRank iteratively uses SpMV to
//! calculate the ranks of nodes").
//!
//! One iteration is `r' = d·M·r + (1−d)/n` with `M` the column-stochastic
//! transition matrix. The SpMV runs through the selected mechanism (CSR or
//! SMASH); the rank update is an element-wise vector pass.

use crate::Graph;
use smash_bmu::Bmu;
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::spmv;
use smash_matrix::Scalar;
use smash_sim::{Engine, StreamId, UopId};

/// Mechanisms compared in the paper's Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphMechanism {
    /// Ligra-style CSR traversal expressed as CSR SpMV.
    Csr,
    /// SMASH-based SpMV (hierarchical bitmap + BMU).
    Smash,
}

impl GraphMechanism {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            GraphMechanism::Csr => "CSR",
            GraphMechanism::Smash => "SMASH",
        }
    }
}

/// PageRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (the classic 0.85).
    pub damping: f64,
    /// Fixed number of power iterations.
    pub iterations: usize,
    /// SMASH hierarchy used when the mechanism is [`GraphMechanism::Smash`].
    pub smash: SmashConfig,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 10,
            smash: SmashConfig::row_major(&[2, 4, 16]).expect("static config is valid"),
        }
    }
}

/// Prefetcher stream for the rank vectors.
const S_RANK: StreamId = StreamId(40);

/// Reference (uninstrumented) PageRank, generic over the rank precision.
pub fn pagerank_reference<T: Scalar>(g: &Graph<T>, cfg: &PageRankConfig) -> Vec<T> {
    let n = g.vertices();
    let m = g.transition_matrix();
    let mut r = vec![T::from_f64(1.0 / n as f64); n];
    let teleport = T::from_f64((1.0 - cfg.damping) / n as f64);
    let damping = T::from_f64(cfg.damping);
    for _ in 0..cfg.iterations {
        let y = m.spmv(&r);
        for (ri, yi) in r.iter_mut().zip(&y) {
            *ri = damping * *yi + teleport;
        }
    }
    r
}

/// Instrumented PageRank: each iteration emits one mechanism-specific SpMV
/// plus the element-wise rank update.
pub fn pagerank<E: Engine, T: Scalar>(
    e: &mut E,
    mech: GraphMechanism,
    g: &Graph<T>,
    cfg: &PageRankConfig,
) -> Vec<T> {
    let n = g.vertices();
    let m = g.transition_matrix();
    let sm = match mech {
        GraphMechanism::Smash => Some(SmashMatrix::encode(&m, cfg.smash.clone())),
        GraphMechanism::Csr => None,
    };
    let mut bmu = Bmu::new();
    let r_addr = e.alloc(std::mem::size_of::<T>() * n, 64);
    let vs = std::mem::size_of::<T>() as u64;

    let mut r = vec![T::from_f64(1.0 / n as f64); n];
    let teleport = T::from_f64((1.0 - cfg.damping) / n as f64);
    let damping = T::from_f64(cfg.damping);
    for _ in 0..cfg.iterations {
        let y = match mech {
            GraphMechanism::Csr => spmv::spmv_csr(e, &m, &r),
            GraphMechanism::Smash => {
                spmv::spmv_hw_smash(e, &mut bmu, 0, sm.as_ref().expect("encoded above"), &r)
            }
        };
        // r = d * y + teleport, element-wise.
        for (i, (ri, yi)) in r.iter_mut().zip(&y).enumerate() {
            let ld = e.load(S_RANK, r_addr + vs * i as u64, &[]);
            let mul = e.fmul(&[ld]);
            let add = e.fadd(&[mul]);
            e.store(S_RANK, r_addr + vs * i as u64, &[add]);
            *ri = damping * *yi + teleport;
        }
        let _: UopId = e.alu(&[]); // iteration counter
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use smash_sim::CountEngine;

    fn sample() -> Graph {
        generators::rmat(128, 512, 3)
    }

    #[test]
    fn ranks_sum_to_one_without_dangling() {
        // A symmetric RMAT graph may still have isolated vertices; restrict
        // the check to a lattice where every vertex has out-edges.
        let g = generators::road_network(256, 512, 1);
        let r = pagerank_reference(&g, &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to {sum}");
    }

    #[test]
    fn instrumented_matches_reference_for_both_mechanisms() {
        let g = sample();
        let cfg = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let want = pagerank_reference(&g, &cfg);
        for mech in [GraphMechanism::Csr, GraphMechanism::Smash] {
            let mut e = CountEngine::new();
            let got = pagerank(&mut e, mech, &g, &cfg);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "{mech:?}: {a} vs {b}");
            }
            assert!(e.finish().instructions() > 0);
        }
    }

    #[test]
    fn smash_needs_fewer_instructions_than_csr() {
        let g = generators::rmat(256, 2048, 9);
        let cfg = PageRankConfig {
            iterations: 3,
            ..Default::default()
        };
        let mut e1 = CountEngine::new();
        pagerank(&mut e1, GraphMechanism::Csr, &g, &cfg);
        let csr = e1.finish().instructions();
        let mut e2 = CountEngine::new();
        pagerank(&mut e2, GraphMechanism::Smash, &g, &cfg);
        let smash = e2.finish().instructions();
        assert!((smash as f64) < (csr as f64), "smash {smash} vs csr {csr}");
    }

    #[test]
    fn high_degree_vertices_rank_higher() {
        let g = generators::rmat(128, 1024, 11);
        let r = pagerank_reference(&g, &PageRankConfig::default());
        let (hub, _) = (0..g.vertices())
            .map(|u| (u, g.out_degree(u)))
            .max_by_key(|&(_, d)| d)
            .unwrap();
        let (leaf, _) = (0..g.vertices())
            .map(|u| (u, g.out_degree(u)))
            .min_by_key(|&(_, d)| d)
            .unwrap();
        assert!(r[hub] > r[leaf]);
    }
}
