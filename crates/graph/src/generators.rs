//! Seeded graph generators standing in for the SNAP inputs of Table 4.
//!
//! * R-MAT with power-law degree skew models the social/co-purchase graphs
//!   (`com-Youtube`, `com-DBLP`, `amazon0601`);
//! * a jittered 2-D lattice models the planar, low-degree, high-diameter
//!   `roadNet-CA`.

use crate::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One graph of the paper's Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Paper id, 1–4 (`G1`…`G4`).
    pub id: u8,
    /// SNAP name as printed in Table 4.
    pub name: &'static str,
    /// Vertices at full scale.
    pub vertices: usize,
    /// Edges at full scale.
    pub edges: usize,
    /// Whether the graph is a road network (lattice) rather than power-law.
    pub road: bool,
}

impl GraphSpec {
    /// `Gi` label as used in the paper's Fig. 18.
    pub fn label(&self) -> String {
        format!("G{}", self.id)
    }

    /// Generates the graph scaled down by the linear factor `scale`
    /// (vertices and edges both shrink by `scale`, preserving the average
    /// degree that drives SpMV behaviour).
    pub fn generate(&self, scale: usize, seed: u64) -> Graph {
        let n = (self.vertices / scale.max(1)).max(64);
        let m = (self.edges / scale.max(1)).max(n);
        if self.road {
            road_network(n, m, seed ^ self.id as u64)
        } else {
            rmat(n, m, seed ^ self.id as u64)
        }
    }
}

/// The four graphs of Table 4.
pub fn paper_graphs() -> Vec<GraphSpec> {
    vec![
        GraphSpec {
            id: 1,
            name: "com-Youtube",
            vertices: 1_100_000,
            edges: 2_900_000,
            road: false,
        },
        GraphSpec {
            id: 2,
            name: "com-DBLP",
            vertices: 317_000,
            edges: 1_000_000,
            road: false,
        },
        GraphSpec {
            id: 3,
            name: "roadNet-CA",
            vertices: 1_900_000,
            edges: 2_700_000,
            road: true,
        },
        GraphSpec {
            id: 4,
            name: "amazon0601",
            vertices: 403_000,
            edges: 3_300_000,
            road: false,
        },
    ]
}

/// R-MAT generator (Chakrabarti et al.) with the classic skewed partition
/// `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`, symmetrized.
pub fn rmat(vertices: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = (vertices.max(2) as f64).log2().ceil() as u32;
    let n = 1usize << levels;
    let mut list = Vec::with_capacity(edges * 2);
    let (a, b, c) = (0.57, 0.19, 0.19);
    for _ in 0..edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        let (u, v) = (u % vertices.max(1), v % vertices.max(1));
        if u != v {
            list.push((u as u32, v as u32));
            list.push((v as u32, u as u32));
        }
    }
    let _ = n;
    Graph::from_edges(vertices, &list)
}

/// Road-network generator: a `w x h` lattice (4-neighbourhood) with a few
/// random shortcuts, symmetrized — planar-ish, degree ~4, high diameter.
pub fn road_network(vertices: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = (vertices as f64).sqrt().ceil() as usize;
    let h = vertices.div_ceil(w);
    let n = w * h;
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut list = Vec::with_capacity(edges * 2);
    for y in 0..h {
        for x in 0..w {
            // Drop a small fraction of lattice edges so the network is not
            // perfectly regular.
            if x + 1 < w && rng.gen::<f64>() > 0.05 {
                list.push((idx(x, y), idx(x + 1, y)));
                list.push((idx(x + 1, y), idx(x, y)));
            }
            if y + 1 < h && rng.gen::<f64>() > 0.05 {
                list.push((idx(x, y), idx(x, y + 1)));
                list.push((idx(x, y + 1), idx(x, y)));
            }
        }
    }
    // Shortcuts up to the requested edge count.
    while list.len() < edges * 2 {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            list.push((u, v));
            list.push((v, u));
        }
    }
    Graph::from_edges(n, &list)
}

/// Generates the whole Table 4 set at a given scale.
pub fn generate_graphs(scale: usize, seed: u64) -> Vec<(GraphSpec, Graph)> {
    paper_graphs()
        .into_iter()
        .map(|spec| {
            let g = spec.generate(scale, seed);
            (spec, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_specs_in_paper_order() {
        let specs = paper_graphs();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].label(), "G1");
        assert!(specs[2].road);
    }

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let g1 = rmat(512, 2048, 7);
        let g2 = rmat(512, 2048, 7);
        assert_eq!(g1, g2);
        let mut degrees: Vec<usize> = (0..g1.vertices()).map(|u| g1.out_degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = degrees.iter().take(16).sum();
        assert!(
            top * 4 > g1.edges(),
            "top-16 vertices hold {top} of {} edges",
            g1.edges()
        );
    }

    #[test]
    fn road_network_has_low_degree() {
        let g = road_network(1024, 2048, 9);
        let max_degree = (0..g.vertices()).map(|u| g.out_degree(u)).max().unwrap();
        assert!(max_degree <= 10, "max degree {max_degree}");
        let avg = g.edges() as f64 / g.vertices() as f64;
        assert!((3.0..=5.0).contains(&avg), "average degree {avg}");
    }

    #[test]
    fn scaled_generation_matches_degree() {
        let spec = &paper_graphs()[1]; // com-DBLP: avg degree ~3.2
        let g = spec.generate(64, 3);
        let avg = g.edges() as f64 / g.vertices() as f64;
        let want = spec.edges as f64 / spec.vertices as f64;
        // Symmetrization and dedup allow some slack.
        assert!(
            (avg - 2.0 * want).abs() < 2.5,
            "avg degree {avg}, paper (directed) {want}"
        );
    }

    #[test]
    fn graphs_are_symmetric() {
        let g = rmat(128, 512, 5);
        let t = g.adjacency_transpose();
        assert_eq!(&t, g.adjacency());
    }
}
