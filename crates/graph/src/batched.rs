//! Batched **personalized** PageRank: many personalization vectors served
//! in one pass over the transition matrix per iteration.
//!
//! Serving personalized rankings (one random-walk restart distribution per
//! user or query) with the classic power iteration means one SpMV per
//! query per iteration — the matrix is re-streamed from memory once per
//! query. Batching the personalization vectors into the columns of one
//! [`Dense`] operand turns every iteration into a single sparse × dense
//! SpMM ([`Executor::spmm_dense`]), whose column-tiled kernels stream the
//! matrix once per 8-wide column tile instead.
//!
//! **Determinism guarantee:** column `j` of
//! [`personalized_pagerank_batched`] is bit-identical to
//! [`personalized_pagerank`] run alone on column `j` — the batched SpMM's
//! per-column arithmetic order equals the SpMV's, and the rank update is
//! element-wise. Batching changes throughput, never results.

use crate::{Graph, PageRankConfig};
use smash_core::SmashConfig;
use smash_kernels::Executor;
use smash_matrix::{Dense, Scalar};

/// Personalized PageRank for a single restart distribution `p`:
/// `r' = d·M·r + (1−d)·p`, starting from `r = p`, with every SpMV routed
/// through the executor.
///
/// This is the one-query reference the batched variant is pinned against.
///
/// # Panics
///
/// Panics if `p.len() != g.vertices()`.
pub fn personalized_pagerank<T: Scalar>(
    exec: &Executor,
    g: &Graph<T>,
    cfg: &PageRankConfig,
    p: &[T],
) -> Vec<T> {
    let n = g.vertices();
    assert_eq!(p.len(), n, "personalization length must equal vertices");
    let m = g.transition_matrix();
    let mut r = p.to_vec();
    let mut y = vec![T::ZERO; n];
    let damping = T::from_f64(cfg.damping);
    let restart = T::from_f64(1.0 - cfg.damping);
    for _ in 0..cfg.iterations {
        exec.spmv(&m, &r, &mut y);
        for ((ri, yi), pi) in r.iter_mut().zip(&y).zip(p) {
            *ri = damping * *yi + restart * *pi;
        }
    }
    r
}

/// Batched personalized PageRank: one `Dense` of personalization vectors
/// (one column per query) per pass. Every power iteration is a single
/// [`Executor::spmm_dense`] over the transition matrix followed by one
/// element-wise rank update, so the matrix is streamed once per RHS column
/// tile instead of once per query.
///
/// Column `j` of the result is bit-identical to
/// [`personalized_pagerank`] with `p` = column `j` of `personalization`,
/// at every executor mode and thread count.
///
/// # Panics
///
/// Panics if `personalization.rows() != g.vertices()`.
pub fn personalized_pagerank_batched<T: Scalar>(
    exec: &Executor,
    g: &Graph<T>,
    cfg: &PageRankConfig,
    personalization: &Dense<T>,
) -> Dense<T> {
    let m = g.transition_matrix();
    assert_eq!(
        personalization.rows(),
        g.vertices(),
        "personalization rows must equal vertices"
    );
    let mut r = personalization.clone();
    let mut y = Dense::zeros(personalization.rows(), personalization.cols());
    pagerank_sweep(exec, cfg, personalization, &mut r, &mut y, |exec, r, y| {
        exec.spmm_dense(&m, r, y)
    });
    r
}

/// Batched personalized PageRank over the SMASH-compressed transition
/// matrix: the matrix is compressed once (through [`Executor::encode`],
/// in parallel when the mode calls for it) and every iteration runs the
/// batched compressed-operand SpMM — the serve-many-queries shape on the
/// paper's storage format.
///
/// Results match [`personalized_pagerank_batched`] to floating-point
/// tolerance (the compressed kernel pads blocks with explicit zeros, so
/// its per-row accumulation order differs from CSR's); across executor
/// modes and thread counts it is bit-identical to itself.
///
/// # Panics
///
/// Panics if `personalization.rows() != g.vertices()` or `smash_cfg` is
/// not row-major.
pub fn personalized_pagerank_batched_smash<T: Scalar>(
    exec: &Executor,
    g: &Graph<T>,
    cfg: &PageRankConfig,
    smash_cfg: &SmashConfig,
    personalization: &Dense<T>,
) -> Dense<T> {
    let m = exec.encode(&g.transition_matrix(), smash_cfg.clone());
    assert_eq!(
        personalization.rows(),
        g.vertices(),
        "personalization rows must equal vertices"
    );
    let mut r = personalization.clone();
    let mut y = Dense::zeros(personalization.rows(), personalization.cols());
    pagerank_sweep(exec, cfg, personalization, &mut r, &mut y, |exec, r, y| {
        exec.spmm_dense(&m, r, y)
    });
    r
}

/// The shared power-iteration loop of the batched variants: one batched
/// SpMM then the element-wise `r = d·y + (1−d)·p` update per iteration.
fn pagerank_sweep<T: Scalar>(
    exec: &Executor,
    cfg: &PageRankConfig,
    p: &Dense<T>,
    r: &mut Dense<T>,
    y: &mut Dense<T>,
    mut spmm: impl FnMut(&Executor, &Dense<T>, &mut Dense<T>),
) {
    let damping = T::from_f64(cfg.damping);
    let restart = T::from_f64(1.0 - cfg.damping);
    for _ in 0..cfg.iterations {
        spmm(exec, r, y);
        for ((ri, yi), pi) in r
            .as_mut_slice()
            .iter_mut()
            .zip(y.as_slice())
            .zip(p.as_slice())
        {
            *ri = damping * *yi + restart * *pi;
        }
    }
}

/// Builds the `vertices x seeds.len()` personalization batch whose column
/// `j` is the unit restart distribution of `seeds[j]` — the "one query per
/// user" input of a personalized-ranking service.
///
/// # Panics
///
/// Panics if a seed is `>= vertices`.
pub fn seed_batch<T: Scalar>(vertices: usize, seeds: &[usize]) -> Dense<T> {
    let mut p = Dense::zeros(vertices, seeds.len());
    for (j, &s) in seeds.iter().enumerate() {
        assert!(s < vertices, "seed {s} outside {vertices} vertices");
        p.set(s, j, T::ONE);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn sample() -> Graph {
        generators::rmat(128, 768, 3)
    }

    fn cfg() -> PageRankConfig {
        PageRankConfig {
            iterations: 8,
            ..Default::default()
        }
    }

    #[test]
    fn batched_columns_are_bit_identical_to_single_queries() {
        let g = sample();
        let exec = Executor::auto();
        let seeds = [0usize, 7, 19, 42, 63, 64, 100, 127, 5];
        let p = seed_batch::<f64>(g.vertices(), &seeds);
        let batched = personalized_pagerank_batched(&exec, &g, &cfg(), &p);
        for (j, &s) in seeds.iter().enumerate() {
            let single = personalized_pagerank(&exec, &g, &cfg(), &p.col(j));
            assert_eq!(batched.col(j), single, "seed {s} (column {j})");
        }
    }

    #[test]
    fn batched_is_bit_identical_across_executor_modes() {
        let g = generators::rmat(192, 2048, 11);
        let seeds: Vec<usize> = (0..16).map(|i| (i * 11) % 192).collect();
        let p = seed_batch::<f64>(g.vertices(), &seeds);
        let want = personalized_pagerank_batched(&Executor::serial(), &g, &cfg(), &p);
        for exec in [
            Executor::parallel(),
            Executor::with_threads(2),
            Executor::with_threads(8),
            Executor::auto(),
        ] {
            let got = personalized_pagerank_batched(&exec, &g, &cfg(), &p);
            assert_eq!(
                got,
                want,
                "mode {:?}/{} threads",
                exec.mode(),
                exec.threads()
            );
        }
    }

    #[test]
    fn smash_variant_matches_csr_to_tolerance() {
        let g = sample();
        let exec = Executor::auto();
        let seeds = [3usize, 31, 65];
        let p = seed_batch::<f64>(g.vertices(), &seeds);
        let smash_cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let want = personalized_pagerank_batched(&exec, &g, &cfg(), &p);
        let got = personalized_pagerank_batched_smash(&exec, &g, &cfg(), &smash_cfg, &p);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn ranks_stay_distributions_without_dangling_vertices() {
        // On a graph where every vertex has out-edges, each personalized
        // rank column remains a probability distribution.
        let g = generators::road_network(256, 512, 1);
        let exec = Executor::serial();
        let seeds = [0usize, 17, 200];
        let p = seed_batch::<f64>(g.vertices(), &seeds);
        let r = personalized_pagerank_batched(&exec, &g, &cfg(), &p);
        for j in 0..seeds.len() {
            let sum: f64 = r.col(j).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "column {j} sums to {sum}");
        }
    }

    #[test]
    fn personalization_localizes_rank_mass() {
        let g = generators::road_network(256, 512, 5);
        let exec = Executor::serial();
        let seeds = [10usize, 200];
        let p = seed_batch::<f64>(g.vertices(), &seeds);
        let r = personalized_pagerank_batched(&exec, &g, &cfg(), &p);
        // Each seed holds more rank in its own column than in the other's.
        assert!(r.get(10, 0) > r.get(10, 1));
        assert!(r.get(200, 1) > r.get(200, 0));
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn seed_batch_rejects_out_of_range_seed() {
        seed_batch::<f64>(4, &[4]);
    }
}
