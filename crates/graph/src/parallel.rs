//! Multi-core PageRank and Betweenness Centrality: the reference
//! algorithms with every matrix-vector product routed through the
//! parallel SpMV kernels of `smash-parallel` — either CSR
//! ([`pagerank_parallel`], [`betweenness_parallel`]) or the SMASH
//! compressed form ([`pagerank_parallel_smash`],
//! [`betweenness_parallel_smash`]), whose workers partition rows
//! directly on the compressed matrix through its
//! [`LineDirectory`](smash_core::LineDirectory) (no bitmap expansion).
//!
//! Because both SpMV kernels are deterministic (contiguous nnz-balanced
//! row ranges, serial per-row arithmetic), every application here
//! produces bit-identical results at every thread count — a 1-thread
//! pool and an 8-thread pool return exactly the same vectors. Relative
//! to the uninstrumented references ([`pagerank_reference`],
//! [`betweenness_reference`]) the results agree to floating-point
//! tolerance: the references use fused multiply-adds in `Csr::spmv`,
//! while the native/parallel kernels separate multiplies and adds.
//!
//! [`pagerank_reference`]: crate::pagerank::pagerank_reference
//! [`betweenness_reference`]: crate::bc::betweenness_reference

use crate::{BcConfig, Graph, PageRankConfig};
use smash_core::{SmashConfig, SmashMatrix};
use smash_matrix::Scalar;
use smash_parallel::{par_csr_to_smash, par_spmv_csr, par_spmv_smash, ThreadPool};

/// PageRank power iteration over an abstract SpMV (`y = M * r`): one
/// algorithm body shared by the CSR and SMASH variants, so the two can
/// never diverge.
fn pagerank_with<T: Scalar>(
    n: usize,
    cfg: &PageRankConfig,
    mut spmv: impl FnMut(&[T], &mut [T]),
) -> Vec<T> {
    let mut r = vec![T::from_f64(1.0 / n as f64); n];
    let mut y = vec![T::ZERO; n];
    let teleport = T::from_f64((1.0 - cfg.damping) / n as f64);
    let damping = T::from_f64(cfg.damping);
    for _ in 0..cfg.iterations {
        spmv(&r, &mut y);
        for (ri, yi) in r.iter_mut().zip(&y) {
            *ri = damping * *yi + teleport;
        }
    }
    r
}

/// Level-synchronous Betweenness Centrality over two abstract SpMVs
/// (`spmv_at` multiplies by the adjacency transpose, `spmv_a` by the
/// adjacency): the forward sweep accumulates shortest-path counts, the
/// backward sweep accumulates dependencies — one SpMV per level each.
/// One algorithm body shared by the CSR and SMASH variants.
fn betweenness_with<T: Scalar>(
    n: usize,
    cfg: &BcConfig,
    mut spmv_at: impl FnMut(&[T], &mut [T]),
    mut spmv_a: impl FnMut(&[T], &mut [T]),
) -> Vec<T> {
    let mut t = vec![T::ZERO; n];
    let mut bc = vec![T::ZERO; n];
    for &s in &cfg.sources {
        // Forward sweep: discover levels and accumulate sigma.
        let mut dist = vec![-1i32; n];
        let mut sigma = vec![T::ZERO; n];
        dist[s as usize] = 0;
        sigma[s as usize] = T::ONE;
        let mut levels: Vec<Vec<u32>> = vec![vec![s]];
        loop {
            if levels.len() >= cfg.max_levels {
                break;
            }
            let frontier = levels.last().expect("non-empty");
            // f = sigma masked to the frontier.
            let mut f = vec![T::ZERO; n];
            for &u in frontier {
                f[u as usize] = sigma[u as usize];
            }
            spmv_at(&f, &mut t);
            let mut next = Vec::new();
            for (v, &tv) in t.iter().enumerate() {
                if tv > T::ZERO && dist[v] == -1 {
                    dist[v] = levels.len() as i32;
                    sigma[v] += tv;
                    next.push(v as u32);
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }
        // Backward sweep: dependency accumulation, one SpMV per level.
        let mut delta = vec![T::ZERO; n];
        for k in (1..levels.len()).rev() {
            let mut w = vec![T::ZERO; n];
            for &v in &levels[k] {
                w[v as usize] = (T::ONE + delta[v as usize]) / sigma[v as usize];
            }
            spmv_a(&w, &mut t);
            for &u in &levels[k - 1] {
                delta[u as usize] += sigma[u as usize] * t[u as usize];
            }
            for &v in &levels[k] {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
    bc
}

/// Parallel PageRank: each power iteration is one [`par_spmv_csr`] over
/// the transition matrix followed by the element-wise rank update.
pub fn pagerank_parallel<T: Scalar>(
    pool: &ThreadPool,
    g: &Graph<T>,
    cfg: &PageRankConfig,
) -> Vec<T> {
    let m = g.transition_matrix();
    pagerank_with(g.vertices(), cfg, |r, y| par_spmv_csr(pool, &m, r, y))
}

/// Parallel PageRank over the SMASH-compressed transition matrix: the
/// matrix is compressed once (in parallel) and every power iteration is
/// one [`par_spmv_smash`] whose workers seek their row ranges through
/// the compressed matrix's directory — rows are partitioned on the
/// compressed form itself, never on an expanded bitmap.
///
/// Bit-identical across thread counts (like [`pagerank_parallel`]); the
/// result matches the references to floating-point tolerance.
///
/// # Panics
///
/// Panics if `smash_cfg` is not row-major.
pub fn pagerank_parallel_smash<T: Scalar>(
    pool: &ThreadPool,
    g: &Graph<T>,
    cfg: &PageRankConfig,
    smash_cfg: &SmashConfig,
) -> Vec<T> {
    let m: SmashMatrix<T> = par_csr_to_smash(pool, &g.transition_matrix(), smash_cfg.clone());
    pagerank_with(g.vertices(), cfg, |r, y| par_spmv_smash(pool, &m, r, y))
}

/// Parallel Betweenness Centrality in the level-synchronous
/// linear-algebra form: the forward sweep accumulates shortest-path
/// counts with one parallel SpMV over the adjacency transpose per level,
/// the backward sweep accumulates dependencies with one parallel SpMV
/// over the adjacency per level.
pub fn betweenness_parallel<T: Scalar>(pool: &ThreadPool, g: &Graph<T>, cfg: &BcConfig) -> Vec<T> {
    let at = g.adjacency_transpose();
    let a = g.adjacency();
    betweenness_with(
        g.vertices(),
        cfg,
        |f, t| par_spmv_csr(pool, &at, f, t),
        |w, t| par_spmv_csr(pool, a, w, t),
    )
}

/// Parallel Betweenness Centrality with both sweeps' matrix-vector
/// products running on SMASH-compressed operands (adjacency and its
/// transpose, compressed once in parallel) through [`par_spmv_smash`] —
/// the level loops partition rows directly on the compressed form.
///
/// Bit-identical across thread counts (like [`betweenness_parallel`]).
///
/// # Panics
///
/// Panics if `smash_cfg` is not row-major.
pub fn betweenness_parallel_smash<T: Scalar>(
    pool: &ThreadPool,
    g: &Graph<T>,
    cfg: &BcConfig,
    smash_cfg: &SmashConfig,
) -> Vec<T> {
    let at: SmashMatrix<T> = par_csr_to_smash(pool, &g.adjacency_transpose(), smash_cfg.clone());
    let a: SmashMatrix<T> = par_csr_to_smash(pool, g.adjacency(), smash_cfg.clone());
    betweenness_with(
        g.vertices(),
        cfg,
        |f, t| par_spmv_smash(pool, &at, f, t),
        |w, t| par_spmv_smash(pool, &a, w, t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{betweenness_reference, generators, pagerank_reference};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + b.abs())
    }

    #[test]
    fn pagerank_parallel_matches_reference() {
        let g = generators::rmat(128, 512, 3);
        let cfg = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let want = pagerank_reference(&g, &cfg);
        let pool = ThreadPool::new(4);
        let got = pagerank_parallel(&pool, &g, &cfg);
        for (a, b) in got.iter().zip(&want) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn pagerank_parallel_is_bit_identical_across_thread_counts() {
        let g = generators::rmat(128, 1024, 7);
        let cfg = PageRankConfig::default();
        let want = pagerank_parallel(&ThreadPool::new(1), &g, &cfg);
        for threads in [2usize, 3, 8] {
            let got = pagerank_parallel(&ThreadPool::new(threads), &g, &cfg);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn betweenness_parallel_matches_reference() {
        let g = generators::rmat(64, 256, 7);
        let cfg = BcConfig {
            sources: vec![1, 2],
            max_levels: 32,
            ..Default::default()
        };
        let want = betweenness_reference(&g, &cfg);
        let pool = ThreadPool::new(4);
        let got = betweenness_parallel(&pool, &g, &cfg);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn betweenness_parallel_is_bit_identical_across_thread_counts() {
        let g = generators::road_network(100, 220, 5);
        let cfg = BcConfig::default();
        let want = betweenness_parallel(&ThreadPool::new(1), &g, &cfg);
        for threads in [2usize, 3, 8] {
            let got = betweenness_parallel(&ThreadPool::new(threads), &g, &cfg);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    fn smash_cfg() -> SmashConfig {
        SmashConfig::row_major(&[2, 4, 16]).unwrap()
    }

    #[test]
    fn pagerank_parallel_smash_matches_reference() {
        let g = generators::rmat(128, 512, 3);
        let cfg = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let want = pagerank_reference(&g, &cfg);
        let pool = ThreadPool::new(4);
        let got = pagerank_parallel_smash(&pool, &g, &cfg, &smash_cfg());
        for (a, b) in got.iter().zip(&want) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn pagerank_parallel_smash_is_bit_identical_across_thread_counts() {
        let g = generators::rmat(128, 1024, 7);
        let cfg = PageRankConfig::default();
        let want = pagerank_parallel_smash(&ThreadPool::new(1), &g, &cfg, &smash_cfg());
        for threads in [2usize, 3, 8] {
            let got = pagerank_parallel_smash(&ThreadPool::new(threads), &g, &cfg, &smash_cfg());
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn betweenness_parallel_smash_matches_reference() {
        let g = generators::rmat(64, 256, 7);
        let cfg = BcConfig {
            sources: vec![1, 2],
            max_levels: 32,
            ..Default::default()
        };
        let want = betweenness_reference(&g, &cfg);
        let pool = ThreadPool::new(4);
        let got = betweenness_parallel_smash(&pool, &g, &cfg, &smash_cfg());
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn betweenness_parallel_smash_is_bit_identical_across_thread_counts() {
        let g = generators::road_network(100, 220, 5);
        let cfg = BcConfig::default();
        let want = betweenness_parallel_smash(&ThreadPool::new(1), &g, &cfg, &smash_cfg());
        for threads in [2usize, 3, 8] {
            let got = betweenness_parallel_smash(&ThreadPool::new(threads), &g, &cfg, &smash_cfg());
            assert_eq!(got, want, "threads = {threads}");
        }
    }
}
