//! Incremental PageRank over a dynamic transition matrix.
//!
//! Graph workloads in the paper's §6 run over *snapshots*; real
//! deployments mutate the graph between queries. This module keeps the
//! column-stochastic transition matrix in a [`DynamicMatrix`] — base
//! tier plus delta overlay — so an edge insertion is a handful of
//! overlay writes instead of a full rebuild, and warm-starts each solve
//! from the previous rank vector so the power iteration converges in a
//! fraction of the cold-start iterations.
//!
//! Two exactness contracts hold by construction:
//!
//! * Solving over the overlaid matrix is **bit-identical** to solving
//!   over a from-scratch rebuild of the same graph: the merged row view
//!   of [`DynamicMatrix`] yields exactly the rows the rebuilt CSR
//!   would, so every SpMV — and therefore the whole trajectory,
//!   including the iteration count — matches `==`.
//! * Warm-starting changes only the *starting point*, never the fixed
//!   point: the converged ranks agree with a cold solve to within the
//!   convergence tolerance.

use crate::Graph;
use smash_core::DynamicMatrix;
use smash_matrix::{spmv_rows, RowRead, Scalar};

/// Result of a convergence-based power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSolve<T> {
    /// Converged rank vector.
    pub ranks: Vec<T>,
    /// Iterations consumed before the L1 residual dropped below the
    /// tolerance (or the iteration cap was hit).
    pub iterations: usize,
}

/// Power iteration `r' = d·M·r + (1−d)/n` from an arbitrary starting
/// vector, run to convergence.
///
/// Generic over any row-readable operand, so the same loop body serves
/// plain [`Csr`](smash_matrix::Csr) transition matrices and
/// [`DynamicMatrix`] overlays — identical operands produce bit-identical
/// trajectories.
///
/// Stops when the L1 distance between successive rank vectors drops
/// below `tol`, or after `max_iters` iterations.
///
/// # Panics
///
/// Panics if `r0.len()` differs from the operand's row count or if the
/// operand is not square.
pub fn pagerank_power<T: Scalar, R: RowRead<T> + ?Sized>(
    m: &R,
    r0: &[T],
    damping: f64,
    tol: f64,
    max_iters: usize,
) -> PowerSolve<T> {
    let n = m.rows();
    assert_eq!(m.cols(), n, "transition matrix must be square");
    assert_eq!(r0.len(), n, "rank vector length must match vertex count");
    let teleport = T::from_f64((1.0 - damping) / n as f64);
    let damping = T::from_f64(damping);
    let mut r = r0.to_vec();
    let mut y = vec![T::ZERO; n];
    let mut iterations = 0;
    while iterations < max_iters {
        spmv_rows(m, &r, &mut y);
        iterations += 1;
        let mut residual = 0.0f64;
        for (ri, yi) in r.iter_mut().zip(&y) {
            let next = damping * *yi + teleport;
            residual += (next - *ri).abs().to_f64();
            *ri = next;
        }
        if residual < tol {
            break;
        }
    }
    PowerSolve {
        ranks: r,
        iterations,
    }
}

/// Uniform starting vector `1/n`, the cold-start initial guess.
pub fn uniform_ranks<T: Scalar>(n: usize) -> Vec<T> {
    vec![T::from_f64(1.0 / n as f64); n]
}

/// PageRank engine for a mutating graph: the transition matrix lives in
/// a [`DynamicMatrix`] and successive solves warm-start from the
/// previous rank vector.
///
/// ```
/// use smash_graph::{Graph, IncrementalPageRank};
///
/// let g = Graph::<f64>::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let mut pr = IncrementalPageRank::new(&g, 0.85, 1e-10, 200);
/// let cold = pr.solve();
/// assert_eq!(cold.ranks.len(), 4);
/// assert!(pr.add_edge(1, 3)); // a handful of overlay writes, no rebuild
/// let warm = pr.solve(); // warm-starts from the previous ranks
/// assert!(warm.iterations <= 200);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalPageRank<T: Scalar = f64> {
    /// Out-adjacency lists, mirroring the graph structure so edge
    /// insertions can re-weight a source column without a CSR lookup.
    out: Vec<Vec<u32>>,
    /// Column-stochastic transition matrix, base tier plus overlay.
    matrix: DynamicMatrix<T>,
    /// Previous solution, the warm-start vector for the next solve.
    ranks: Option<Vec<T>>,
    damping: f64,
    tol: f64,
    max_iters: usize,
}

impl<T: Scalar> IncrementalPageRank<T> {
    /// Builds the engine from a graph snapshot.
    pub fn new(g: &Graph<T>, damping: f64, tol: f64, max_iters: usize) -> Self {
        let out = (0..g.vertices())
            .map(|u| g.neighbours(u).map(|v| v as u32).collect())
            .collect();
        IncrementalPageRank {
            out,
            matrix: DynamicMatrix::from_csr(g.transition_matrix()),
            ranks: None,
            damping,
            tol,
            max_iters,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges currently in the graph.
    pub fn edges(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// The dynamic transition matrix (base tier plus pending overlay).
    pub fn matrix(&self) -> &DynamicMatrix<T> {
        &self.matrix
    }

    /// The most recent solution, if [`solve`](Self::solve) has run.
    pub fn ranks(&self) -> Option<&[T]> {
        self.ranks.as_deref()
    }

    /// Inserts the directed edge `u -> v` into the overlay, re-weighting
    /// every out-edge of `u` to the new `1/outdeg(u)`. Returns `false`
    /// (and changes nothing) for self-loops and duplicate edges, the
    /// same edges [`Graph::from_edges`] drops.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= vertices()`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let n = self.vertices();
        assert!(u < n && v < n, "edge ({u}, {v}) outside {n} vertices");
        if u == v || self.out[u].contains(&(v as u32)) {
            return false;
        }
        self.out[u].push(v as u32);
        // Column u of the transition matrix is 1/outdeg(u) at every
        // out-neighbour; the new degree re-weights all of them. The
        // weight expression matches `Graph::transition_matrix` exactly
        // so overlaid and rebuilt matrices agree bitwise.
        let inv = T::from_f64(1.0 / self.out[u].len() as f64);
        for &w in &self.out[u] {
            self.matrix.set(w as usize, u, inv);
        }
        true
    }

    /// Solves to convergence, warm-starting from the previous solution
    /// when one exists, and stores the result for the next warm start.
    pub fn solve(&mut self) -> PowerSolve<T> {
        let r0 = match &self.ranks {
            Some(r) => r.clone(),
            None => uniform_ranks(self.vertices()),
        };
        let solve = pagerank_power(&self.matrix, &r0, self.damping, self.tol, self.max_iters);
        self.ranks = Some(solve.ranks.clone());
        solve
    }

    /// Merges the accumulated overlay into a fresh base tier. Purely a
    /// performance operation: merged row views are identical before and
    /// after, so solves are unaffected.
    pub fn compact(&mut self) {
        self.matrix.compact();
    }

    /// Rebuilds the current graph from the adjacency lists — the
    /// from-scratch oracle for exactness tests.
    pub fn snapshot(&self) -> Graph<T> {
        let edges: Vec<(u32, u32)> = self
            .out
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as u32, v)))
            .collect();
        Graph::from_edges(self.vertices(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cold_solve_matches_static_power_iteration() {
        let g = generators::road_network(64, 128, 1);
        let mut pr = IncrementalPageRank::new(&g, 0.85, 1e-12, 500);
        let dynamic = pr.solve();
        let m = g.transition_matrix();
        let fixed = pagerank_power(&m, &uniform_ranks::<f64>(g.vertices()), 0.85, 1e-12, 500);
        assert_eq!(dynamic.ranks, fixed.ranks);
        assert_eq!(dynamic.iterations, fixed.iterations);
    }

    #[test]
    fn overlaid_solve_is_bit_identical_to_rebuild() {
        let g = generators::rmat(64, 256, 7);
        let mut pr = IncrementalPageRank::new(&g, 0.85, 1e-12, 500);
        let mut added = 0;
        for (u, v) in [(0usize, 63usize), (5, 41), (17, 3), (33, 60), (2, 9)] {
            added += pr.add_edge(u, v) as usize;
        }
        assert!(added > 0, "seed graph already contained every probe edge");
        // Same starting vector, overlaid matrix vs. rebuilt-from-scratch
        // transition matrix: the full trajectory must agree bitwise.
        let rebuilt = pr.snapshot().transition_matrix();
        let r0 = uniform_ranks::<f64>(pr.vertices());
        let dynamic = pagerank_power(pr.matrix(), &r0, 0.85, 1e-12, 500);
        let oracle = pagerank_power(&rebuilt, &r0, 0.85, 1e-12, 500);
        assert_eq!(dynamic.ranks, oracle.ranks);
        assert_eq!(dynamic.iterations, oracle.iterations);
    }

    #[test]
    fn warm_start_converges_faster_and_to_the_same_fixed_point() {
        let g = generators::road_network(128, 256, 3);
        let tol = 1e-10;
        let mut pr = IncrementalPageRank::new(&g, 0.85, tol, 1000);
        let cold_iters = pr.solve().iterations;
        assert!(pr.add_edge(0, 100));
        let warm = pr.solve();
        assert!(
            warm.iterations <= cold_iters,
            "warm {} vs cold {cold_iters}",
            warm.iterations
        );
        // A cold solve of the mutated graph lands on the same fixed
        // point (up to tolerance).
        let rebuilt = pr.snapshot().transition_matrix();
        let cold = pagerank_power(
            &rebuilt,
            &uniform_ranks::<f64>(pr.vertices()),
            0.85,
            tol,
            1000,
        );
        for (a, b) in warm.ranks.iter().zip(&cold.ranks) {
            assert!((a - b).abs() < 20.0 * tol, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let g = Graph::<f64>::from_edges(3, &[(0, 1), (1, 2)]);
        let mut pr = IncrementalPageRank::new(&g, 0.85, 1e-10, 100);
        assert!(!pr.add_edge(1, 1), "self-loop must be rejected");
        assert!(!pr.add_edge(0, 1), "duplicate must be rejected");
        assert_eq!(pr.edges(), 2);
        assert!(pr.add_edge(2, 0));
        assert_eq!(pr.edges(), 3);
    }

    #[test]
    fn compaction_does_not_change_the_solution() {
        let g = generators::rmat(32, 128, 5);
        let mut pr = IncrementalPageRank::new(&g, 0.85, 1e-12, 500);
        pr.add_edge(0, 31);
        pr.add_edge(7, 19);
        let r0 = uniform_ranks::<f64>(pr.vertices());
        let before = pagerank_power(pr.matrix(), &r0, 0.85, 1e-12, 500);
        pr.compact();
        let after = pagerank_power(pr.matrix(), &r0, 0.85, 1e-12, 500);
        assert_eq!(before, after);
    }
}
