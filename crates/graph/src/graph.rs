use smash_matrix::{Coo, Csr, Scalar};

/// Directed graph stored as a CSR adjacency matrix (`A[u][v] = 1` for an
/// edge `u -> v`), the representation the paper's Ligra-based workloads
/// compile down to when expressed as SpMV (§6).
///
/// Generic over the edge-weight [`Scalar`] (default `f64`, so plain
/// `Graph` keeps its historical meaning): `Graph<f32>` runs the same
/// PageRank/BC pipelines at half the memory traffic — the
/// approximate-analytics regime — and [`Graph::cast`] converts between
/// precisions without touching the edge structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph<T: Scalar = f64> {
    adj: Csr<T>,
}

impl<T: Scalar> Graph<T> {
    /// Builds a graph from an edge list; duplicate edges and self-loops are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= vertices`.
    pub fn from_edges(vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut coo = Coo::with_capacity(vertices, vertices, edges.len());
        for &(u, v) in edges {
            assert!(
                (u as usize) < vertices && (v as usize) < vertices,
                "edge ({u}, {v}) outside {vertices} vertices"
            );
            if u != v {
                coo.push(u as usize, v as usize, T::ONE);
            }
        }
        coo.compress();
        // Duplicate edges were summed by compress; clamp back to 1.
        let mut dedup = Coo::with_capacity(vertices, vertices, coo.nnz());
        for &(u, v, _) in coo.entries() {
            dedup.push(u as usize, v as usize, T::ONE);
        }
        Graph {
            adj: Csr::from_coo(&dedup),
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.adj.rows()
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.adj.nnz()
    }

    /// Out-degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= vertices()`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj.row_nnz(u)
    }

    /// Out-neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= vertices()`.
    pub fn neighbours(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj.row(u).0.iter().map(|&v| v as usize)
    }

    /// The 0/1 adjacency matrix.
    pub fn adjacency(&self) -> &Csr<T> {
        &self.adj
    }

    /// The adjacency transpose (in-edges), used by pull-style traversals.
    pub fn adjacency_transpose(&self) -> Csr<T> {
        self.adj.transpose()
    }

    /// The same graph with edge weights converted to scalar type `U` —
    /// the edge structure (and therefore every traversal) is unchanged,
    /// only the arithmetic precision of the SpMV-based algorithms moves.
    pub fn cast<U: Scalar>(&self) -> Graph<U> {
        Graph {
            adj: self.adj.cast(),
        }
    }

    /// The column-stochastic PageRank transition matrix `M` with
    /// `M[v][u] = 1 / outdeg(u)` for each edge `u -> v`, so one PageRank
    /// iteration is the SpMV `r' = d·M·r + (1-d)/n`.
    pub fn transition_matrix(&self) -> Csr<T> {
        let n = self.vertices();
        let mut coo = Coo::with_capacity(n, n, self.edges());
        for u in 0..n {
            let deg = self.out_degree(u);
            if deg == 0 {
                continue;
            }
            let w = T::from_f64(1.0 / deg as f64);
            for v in self.neighbours(u) {
                coo.push(v, u, w);
            }
        }
        Csr::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builds_and_counts() {
        let g = diamond();
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.neighbours(0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn drops_duplicates_and_loops() {
        let g = Graph::<f64>::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.edges(), 2);
        assert_eq!(g.adjacency().values(), &[1.0, 1.0]);
    }

    #[test]
    fn transition_matrix_is_column_stochastic() {
        let g = diamond();
        let m = g.transition_matrix();
        // Column u sums to 1 for every vertex with out-edges.
        let mt = m.transpose();
        for u in 0..4 {
            let (_, vals) = mt.row(u);
            let sum: f64 = vals.iter().sum();
            if g.out_degree(u) > 0 {
                assert!((sum - 1.0).abs() < 1e-12, "column {u} sums to {sum}");
            }
        }
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.adjacency_transpose();
        assert_eq!(t.row(3).0, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_edges() {
        Graph::<f64>::from_edges(2, &[(0, 5)]);
    }
}
