//! Triangle counting and two-hop neighbourhood statistics over the
//! Gustavson SpGEMM engine — the classic "A²" graph analytics that the
//! sparse × sparse multiply of `smash-kernels` unlocks.
//!
//! Triangle counting via `A²∘A` (count the length-2 paths that close
//! into an edge) is the textbook SpGEMM workload: each entry
//! `(A²)[u][v]` counts the paths `u → w → v`, and summing those counts
//! over the positions where `A[u][v] = 1` counts every triangle six
//! times (3 vertices × 2 orientations) in an undirected graph.
//!
//! # Example
//!
//! ```
//! use smash_graph::{triangles, Graph};
//! use smash_kernels::Executor;
//!
//! // K4 has C(4,3) = 4 triangles.
//! let mut edges = Vec::new();
//! for u in 0..4u32 {
//!     for v in 0..4u32 {
//!         if u != v {
//!             edges.push((u, v));
//!         }
//!     }
//! }
//! let g = Graph::<f64>::from_edges(4, &edges);
//! let adj = triangles::undirected_adjacency(&g);
//! assert_eq!(triangles::triangle_count(&Executor::auto(), &adj), 4);
//! ```

use crate::Graph;
use smash_kernels::Executor;
use smash_matrix::{Csr, CsrBuilder, Scalar};

/// The symmetrised 0/1 adjacency `A ∨ Aᵀ` of a graph: every directed
/// edge contributes both orientations, weights clamped back to one, no
/// self-loops (`Graph` never stores them). This is the operand
/// [`triangle_count`] expects.
pub fn undirected_adjacency<T: Scalar>(g: &Graph<T>) -> Csr<T> {
    let sum = g
        .adjacency()
        .add(&g.adjacency_transpose())
        .expect("adjacency and its transpose are conformable");
    // Clamp the summed weights (2 where both orientations exist) back to
    // the 0/1 pattern, preserving the already-sorted structure.
    let mut builder = CsrBuilder::with_capacity(sum.cols(), sum.rows(), sum.nnz());
    let ones: Vec<T> = vec![T::ONE; sum.cols()];
    for i in 0..sum.rows() {
        let (cols, _) = sum.row(i);
        builder.push_row(cols, &ones[..cols.len()]);
    }
    builder.finish()
}

/// Counts the triangles of an undirected graph given its symmetric 0/1
/// adjacency (see [`undirected_adjacency`]): computes `A²` through the
/// executor's SpGEMM engine, then sums `(A²)[u][v]` over the stored
/// edges — a sorted two-pointer merge per row — and divides by 6.
///
/// The SpGEMM runs serial or parallel per the executor's mode; the count
/// is identical either way (the engine is bit-identical across modes).
///
/// # Panics
///
/// Panics if `adj` is not square.
pub fn triangle_count<T: Scalar>(exec: &Executor, adj: &Csr<T>) -> u64 {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    let paths = exec.spgemm(adj, adj);
    let mut total = 0.0f64;
    for u in 0..adj.rows() {
        let (edge_cols, _) = adj.row(u);
        let (path_cols, path_vals) = paths.row(u);
        let (mut p, mut q) = (0usize, 0usize);
        while p < edge_cols.len() && q < path_cols.len() {
            match edge_cols[p].cmp(&path_cols[q]) {
                std::cmp::Ordering::Equal => {
                    total += path_vals[q].to_f64();
                    p += 1;
                    q += 1;
                }
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
            }
        }
    }
    (total / 6.0).round() as u64
}

/// Per-vertex count of *distinct* two-hop neighbours: the row nnz of
/// `A²`, i.e. the number of vertices reachable in exactly two steps
/// (including the vertex itself when it sits on any cycle of length 2).
/// The multiplication runs through the executor's SpGEMM engine.
///
/// # Panics
///
/// Panics if `adj` is not square.
pub fn two_hop_counts<T: Scalar>(exec: &Executor, adj: &Csr<T>) -> Vec<usize> {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    let paths = exec.spgemm(adj, adj);
    (0..adj.rows()).map(|u| paths.row_nnz(u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> Csr<f64> {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        undirected_adjacency(&Graph::<f64>::from_edges(n as usize, &edges))
    }

    #[test]
    fn complete_graphs_have_binomial_triangles() {
        let exec = Executor::auto();
        // K_n has C(n, 3) triangles.
        assert_eq!(triangle_count(&exec, &complete(3)), 1);
        assert_eq!(triangle_count(&exec, &complete(4)), 4);
        assert_eq!(triangle_count(&exec, &complete(6)), 20);
    }

    #[test]
    fn paths_and_stars_are_triangle_free() {
        let exec = Executor::serial();
        let path = undirected_adjacency(&Graph::<f64>::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        ));
        assert_eq!(triangle_count(&exec, &path), 0);
        let star = undirected_adjacency(&Graph::<f64>::from_edges(
            5,
            &[(0, 1), (0, 2), (0, 3), (0, 4)],
        ));
        assert_eq!(triangle_count(&exec, &star), 0);
    }

    #[test]
    fn undirected_adjacency_is_symmetric_and_binary() {
        let adj = undirected_adjacency(&Graph::<f64>::from_edges(4, &[(0, 1), (2, 1), (3, 0)]));
        assert_eq!(adj.to_dense(), adj.transpose().to_dense());
        assert!(adj.values().iter().all(|&v| v == 1.0));
        assert_eq!(adj.nnz(), 6); // three edges, both orientations
    }

    #[test]
    fn two_hop_counts_on_a_path() {
        // 0 - 1 - 2: from the endpoints, two hops reach the far endpoint
        // or backtrack home ({0, 2} — 2 distinct); from the middle, both
        // neighbours lead straight back ({1} — 1 distinct).
        let exec = Executor::serial();
        let path = undirected_adjacency(&Graph::<f64>::from_edges(3, &[(0, 1), (1, 2)]));
        assert_eq!(two_hop_counts(&exec, &path), vec![2, 1, 2]);
    }

    #[test]
    fn triangle_count_agrees_across_modes_on_rmat() {
        let g: Graph = crate::generators::rmat(128, 600, 9);
        let adj = undirected_adjacency(&g);
        let serial = triangle_count(&Executor::serial(), &adj);
        for exec in [Executor::parallel(), Executor::with_threads(2)] {
            assert_eq!(triangle_count(&exec, &adj), serial);
        }
    }
}
