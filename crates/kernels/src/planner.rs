//! The measured cost-model **planner**: format × kernel × threads × tile
//! dispatch driven by calibration data instead of hand-tuned thresholds.
//!
//! [`Executor`](crate::Executor)'s `Auto` mode used to choose serial vs.
//! parallel from two ad-hoc constants. This module replaces that guess
//! with a measurement: a [`Planner`] scores every candidate
//! *(format, kernel, thread count, RHS tile width)* for an operation
//! against a **checked-in calibration table** — wall-clock numbers taken
//! by the offline calibrator (`cargo run -p smash-bench --bin
//! planner_calibrate`) on a zoo of structurally diverse matrices — and
//! returns an explainable [`Plan`].
//!
//! The pieces:
//!
//! * [`MatrixProfile`] — the structural features a decision keys on:
//!   shape, non-zero count, row-length mean/variance/max, block fill
//!   (the paper's §7.2.3 *locality of sparsity*, via
//!   `smash_matrix::locality`), and a [`DensityClass`].
//! * The calibration table (`planner_calibration.tsv`, compiled in via
//!   `include_str!`) — per zoo matrix, the measured nanoseconds of every
//!   candidate, normalized to ns-per-unit-of-work.
//! * [`Planner::plan`] — nearest-neighbor match of the profile against
//!   the zoo (L2 distance over log-scaled features), then pick the
//!   candidate with the lowest predicted cost
//!   (`ns_per_work × work`). When the table is empty or nothing in the
//!   zoo resembles the profile, the planner falls back to the legacy
//!   threshold tier ([`AUTO_PARALLEL_NNZ`] /
//!   [`AUTO_MIN_ROWS_PER_THREAD`]),
//!   reproducing the pre-planner behavior exactly.
//! * [`Plan`] — the chosen [`Choice`] plus its predicted cost and a
//!   human-readable `rationale` naming the matched zoo matrix, the
//!   scores, the runner-up, and the active `smash_matrix::simd` ISA tier
//!   (flagging when the calibration table was measured under a
//!   different one).
//!
//! **Determinism guarantee:** the planner only ever picks *which*
//! bit-identical kernel runs — every candidate it can name produces the
//! same bits as the serial kernel of the same format, so a plan never
//! trades accuracy for speed. This is pinned by `tests/planner.rs`.
//!
//! Adding a kernel candidate is additive: give it a row in the
//! calibrator's candidate list and regenerate the table — no new `if`
//! in the executor. See `docs/DISPATCH.md` in the repository for the
//! walkthrough.
//!
//! # Example
//!
//! ```
//! use smash_kernels::planner::{MatrixProfile, Op, PlanRequest, Planner};
//! use smash_matrix::generators;
//!
//! let a = generators::power_law(2048, 2048, 120_000, 1.3, 7);
//! let profile = MatrixProfile::of_csr(&a).with_block_fill(&a);
//! let plan = Planner::built_in().plan(&profile, &PlanRequest::free(Op::Spmv, 4));
//! // The plan names a concrete (format, threads, tile) choice and can
//! // explain itself:
//! assert!(plan.choice.threads >= 1);
//! println!("{}", plan.rationale);
//! ```

use crate::executor::{AUTO_MIN_ROWS_PER_THREAD, AUTO_PARALLEL_NNZ};
use smash_matrix::{locality, Bcsr, Csr, Scalar};
use std::fmt;
use std::sync::OnceLock;

/// Block width used for the profile's block-fill feature (locality of
/// sparsity at 8-wide blocks — the widest RHS tile and a typical SMASH
/// Bitmap-0 ratio).
pub const PROFILE_BLOCK: usize = 8;

/// Feature-space distance above which a calibration match is rejected
/// and the planner falls back to the threshold tier: beyond this the
/// nearest zoo matrix says nothing about the workload.
pub const MAX_MATCH_DISTANCE: f64 = 1.25;

/// The operations the planner can dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Sparse matrix × dense vector (`Executor::spmv`).
    Spmv,
    /// Sparse matrix × dense multi-column batch (`Executor::spmm_dense`).
    SpmmDense,
    /// Sparse × sparse Gustavson multiply (`Executor::spgemm`).
    Spgemm,
    /// CSR → SMASH compression (`Executor::encode`).
    Encode,
    /// SpMV over a dynamic (base + overlay) operand — the merge-on-access
    /// kernels, a different cost regime from the static formats.
    DynSpmv,
    /// Batched SpMM over a dynamic operand.
    DynSpmmDense,
}

impl Op {
    /// Stable lowercase name used in the calibration table.
    pub fn name(self) -> &'static str {
        match self {
            Op::Spmv => "spmv",
            Op::SpmmDense => "spmm_dense",
            Op::Spgemm => "spgemm",
            Op::Encode => "encode",
            Op::DynSpmv => "dyn_spmv",
            Op::DynSpmmDense => "dyn_spmm_dense",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "spmv" => Op::Spmv,
            "spmm_dense" => Op::SpmmDense,
            "spgemm" => Op::Spgemm,
            "encode" => Op::Encode,
            "dyn_spmv" => Op::DynSpmv,
            "dyn_spmm_dense" => Op::DynSpmmDense,
            _ => return None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The storage formats a plan can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Plain compressed sparse row.
    Csr,
    /// Blocked CSR (2×2 blocks in the calibrated candidates).
    Bcsr,
    /// SMASH hierarchical-bitmap compression.
    Smash,
    /// Dynamic matrix: a static base tier plus a delta overlay, merged
    /// on access.
    Dynamic,
}

impl Format {
    /// Stable lowercase name used in the calibration table.
    pub fn name(self) -> &'static str {
        match self {
            Format::Csr => "csr",
            Format::Bcsr => "bcsr",
            Format::Smash => "smash",
            Format::Dynamic => "dynamic",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "csr" => Format::Csr,
            "bcsr" => Format::Bcsr,
            "smash" => Format::Smash,
            "dynamic" => Format::Dynamic,
            _ => return None,
        })
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Coarse density band of a matrix, for human-readable rationales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityClass {
    /// Fewer than 1 non-zero per 10 000 cells.
    Hypersparse,
    /// Up to 1% of cells occupied — the usual sparse-kernel regime.
    Sparse,
    /// 1–10% occupied: blocked formats start paying off.
    Moderate,
    /// More than 10% occupied: dense-adjacent.
    Dense,
}

impl fmt::Display for DensityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DensityClass::Hypersparse => "hypersparse",
            DensityClass::Sparse => "sparse",
            DensityClass::Moderate => "moderate",
            DensityClass::Dense => "dense",
        })
    }
}

/// The structural features of one operand that dispatch decisions key
/// on. Cheap to compute — `O(rows)` from the row pointers, except
/// [`MatrixProfile::with_block_fill`], which adds an `O(nnz)` pass and
/// is only needed for cross-format planning.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Logical rows.
    pub rows: usize,
    /// Logical columns.
    pub cols: usize,
    /// True (logical) non-zero count.
    pub nnz: usize,
    /// Stored values of the operand's own format (CSR: `nnz`; BCSR /
    /// SMASH: block-padded). This is what the legacy threshold tier
    /// weighed, so the fallback stays bit-compatible with it.
    pub stored_work: usize,
    /// Mean stored values per row.
    pub row_mean: f64,
    /// Coefficient of variation (σ/μ) of stored values per row — the
    /// skew signal that separates power-law from banded structure.
    pub row_cv: f64,
    /// Maximum stored values in any row.
    pub row_max: usize,
    /// Locality of sparsity at [`PROFILE_BLOCK`]-wide blocks, in
    /// `(0, 1]`; `None` when the `O(nnz)` pass was skipped.
    pub block_fill: Option<f64>,
}

impl MatrixProfile {
    /// Profiles a CSR operand in one `O(rows)` pass over its row
    /// pointers (no block-fill; chain [`Self::with_block_fill`] when
    /// cross-format advice is wanted).
    pub fn of_csr<T: Scalar>(a: &Csr<T>) -> Self {
        let per_row = (0..a.rows()).map(|i| a.row_nnz(i));
        Self::from_row_lengths(a.rows(), a.cols(), a.nnz(), a.nnz(), per_row)
    }

    /// Profiles a BCSR operand: row statistics are taken over block
    /// rows (stored values per block row), which is the granularity its
    /// kernels and partitioner actually schedule.
    pub fn of_bcsr<T: Scalar>(a: &Bcsr<T>) -> Self {
        let (br, bc) = a.block_shape();
        let ptr = a.block_row_ptr();
        let per_block_row = ptr
            .windows(2)
            .map(move |w| (w[1] - w[0]) as usize * br * bc);
        Self::from_row_lengths(
            a.num_block_rows().max(1),
            a.cols(),
            a.nnz_logical(),
            a.nnz_stored(),
            per_block_row,
        )
        .with_shape(a.rows(), a.cols())
    }

    /// Profiles a SMASH operand: row statistics come from the line
    /// directory (stored NZA values per line) in `O(lines)`, block fill
    /// from the encoding itself — both already materialized at encode
    /// time, so this never expands a bitmap.
    pub fn of_smash<T: Scalar>(a: &smash_core::SmashMatrix<T>) -> Self {
        let block = a.config().block_size();
        let starts = a.line_block_starts();
        let per_line = starts
            .windows(2)
            .map(move |w| (w[1] - w[0]) as usize * block);
        let mut p = Self::from_row_lengths(
            a.line_count().max(1),
            a.cols(),
            a.nnz(),
            a.nza().len(),
            per_line,
        )
        .with_shape(a.rows(), a.cols());
        p.block_fill = Some(a.locality_of_sparsity());
        p
    }

    /// Adds the `O(nnz)` block-fill feature (locality of sparsity at
    /// [`PROFILE_BLOCK`]) measured on the CSR form.
    pub fn with_block_fill<T: Scalar>(mut self, a: &Csr<T>) -> Self {
        self.block_fill = Some(locality::locality_of_sparsity(a, PROFILE_BLOCK));
        self
    }

    /// Builds a profile directly from per-row stored-value counts.
    /// `rows` is the number of scheduling rows the iterator walks;
    /// logical shape can be overridden afterwards via the struct fields
    /// (the blocked constructors do).
    pub fn from_row_lengths(
        rows: usize,
        cols: usize,
        nnz: usize,
        stored_work: usize,
        per_row: impl Iterator<Item = usize>,
    ) -> Self {
        let mut n = 0usize;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max = 0usize;
        for len in per_row {
            n += 1;
            sum += len as f64;
            sum_sq += (len as f64) * (len as f64);
            max = max.max(len);
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            (sum_sq / n as f64 - mean * mean).max(0.0)
        };
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        MatrixProfile {
            rows: rows.max(n),
            cols,
            nnz,
            stored_work,
            row_mean: mean,
            row_cv: cv,
            row_max: max,
            block_fill: None,
        }
    }

    fn with_shape(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Fraction of cells occupied (`nnz / (rows·cols)`), 0 for a
    /// degenerate shape.
    pub fn density(&self) -> f64 {
        let cells = self.rows as f64 * self.cols as f64;
        if cells > 0.0 {
            self.nnz as f64 / cells
        } else {
            0.0
        }
    }

    /// The coarse [`DensityClass`] of this profile.
    pub fn density_class(&self) -> DensityClass {
        let d = self.density();
        if d < 1e-4 {
            DensityClass::Hypersparse
        } else if d < 1e-2 {
            DensityClass::Sparse
        } else if d < 1e-1 {
            DensityClass::Moderate
        } else {
            DensityClass::Dense
        }
    }

    /// The log-scaled feature vector nearest-neighbor matching runs on.
    /// Missing features (block fill) are `None` and skipped pairwise.
    fn features(&self) -> [Option<f64>; 7] {
        [
            Some(((self.nnz + 1) as f64).log10()),
            Some(((self.rows + 1) as f64).log10()),
            Some(((self.cols + 1) as f64).log10()),
            Some((self.density() + 1e-9).log10()),
            Some(self.row_cv),
            Some((self.row_max as f64 + 1.0).log10() - (self.row_mean + 1.0).log10()),
            self.block_fill,
        ]
    }

    /// L2 feature distance to `other`, averaged over the features both
    /// profiles carry.
    pub fn distance(&self, other: &MatrixProfile) -> f64 {
        let (a, b) = (self.features(), other.features());
        let mut acc = 0.0;
        let mut n = 0usize;
        for (x, y) in a.iter().zip(&b) {
            if let (Some(x), Some(y)) = (x, y) {
                acc += (x - y) * (x - y);
                n += 1;
            }
        }
        if n == 0 {
            f64::INFINITY
        } else {
            (acc / n as f64).sqrt()
        }
    }

    /// One-line summary used in rationales:
    /// `4096x4096 nnz 400000 (sparse, rows μ 97.7 cv 0.42 max 412, fill@8 0.31)`.
    pub fn summary(&self) -> String {
        let fill = match self.block_fill {
            Some(f) => format!(", fill@{PROFILE_BLOCK} {f:.2}"),
            None => String::new(),
        };
        format!(
            "{}x{} nnz {} ({}, rows \u{3bc} {:.1} cv {:.2} max {}{})",
            self.rows,
            self.cols,
            self.nnz,
            self.density_class(),
            self.row_mean,
            self.row_cv,
            self.row_max,
            fill
        )
    }
}

/// What the caller wants planned: the operation, any pinned format, how
/// many right-hand sides, the worker budget, and (for SpGEMM) the
/// symbolic work estimate.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// Operation being dispatched.
    pub op: Op,
    /// `Some(f)` pins the format (dispatch for an operand the caller
    /// already holds); `None` lets the planner choose the format too.
    pub format: Option<Format>,
    /// Right-hand-side columns (1 for SpMV; the batch width for
    /// [`Op::SpmmDense`]).
    pub rhs_cols: usize,
    /// Worker threads available to a parallel choice (the executor's
    /// pool size). `1` forces a serial plan.
    pub threads: usize,
    /// Op-specific work override: for [`Op::Spgemm`] the symbolic flop
    /// count `Σ_{(i,k)∈A} nnz(B[k,:])`, which can dwarf either
    /// operand's nnz.
    pub work: Option<u64>,
}

impl PlanRequest {
    /// A free-format request: the planner may recommend CSR, BCSR or
    /// SMASH.
    pub fn free(op: Op, threads: usize) -> Self {
        PlanRequest {
            op,
            format: None,
            rhs_cols: 1,
            threads,
            work: None,
        }
    }

    /// A request pinned to the format of an operand the caller already
    /// holds — the planner only chooses kernel, threads and tile.
    pub fn pinned(op: Op, format: Format, threads: usize) -> Self {
        PlanRequest {
            op,
            format: Some(format),
            rhs_cols: 1,
            threads,
            work: None,
        }
    }

    /// Sets the right-hand-side batch width.
    pub fn with_rhs(mut self, rhs_cols: usize) -> Self {
        self.rhs_cols = rhs_cols.max(1);
        self
    }

    /// Sets the op-specific work override (SpGEMM symbolic flops).
    pub fn with_work(mut self, work: u64) -> Self {
        self.work = Some(work);
        self
    }

    /// The work measure predictions scale with: logical nnz for
    /// SpMV/encode, nnz × RHS width for batched SpMM, the symbolic flop
    /// count for SpGEMM.
    fn predict_work(&self, profile: &MatrixProfile) -> f64 {
        match self.op {
            Op::Spmv | Op::DynSpmv | Op::Encode => profile.nnz as f64,
            Op::SpmmDense | Op::DynSpmmDense => profile.nnz as f64 * self.rhs_cols.max(1) as f64,
            Op::Spgemm => self.work.unwrap_or(profile.nnz as u64) as f64,
        }
    }

    /// The work measure the **legacy threshold tier** weighed (stored
    /// values, scaled by RHS width / symbolic flops) — kept exactly so
    /// an empty calibration table reproduces the pre-planner dispatch.
    fn fallback_work(&self, profile: &MatrixProfile) -> usize {
        match self.op {
            Op::Spmv | Op::DynSpmv => profile.stored_work,
            Op::SpmmDense | Op::DynSpmmDense => {
                profile.stored_work.saturating_mul(self.rhs_cols.max(1))
            }
            Op::Spgemm => {
                usize::try_from(self.work.unwrap_or(profile.nnz as u64)).unwrap_or(usize::MAX)
            }
            Op::Encode => profile.nnz,
        }
    }
}

/// One concrete dispatch choice: which format, how many threads
/// (1 = the serial kernel), and the RHS tile width the column-tiled
/// kernels will lead with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Storage format of the kernel to run.
    pub format: Format,
    /// Worker threads; `1` names the serial kernel.
    pub threads: usize,
    /// Leading RHS column-tile width (8/4/1 — the head of the
    /// single-definition tile schedule for the requested batch width).
    pub tile: usize,
}

impl Choice {
    /// Whether this choice names a thread-pool kernel.
    pub fn parallel(&self) -> bool {
        self.threads > 1
    }
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.threads > 1 {
            write!(f, "{} parallel x{}", self.format, self.threads)?;
        } else {
            write!(f, "{} serial", self.format)?;
        }
        if self.tile > 1 {
            write!(f, " tile {}", self.tile)?;
        }
        Ok(())
    }
}

/// The planner's answer: the winning [`Choice`], its predicted cost,
/// scored alternatives, and a human-readable rationale.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The winning candidate.
    pub choice: Choice,
    /// Predicted nanoseconds of the winner (`f64::NAN` when the
    /// threshold tier decided — it predicts nothing, it compares
    /// against a constant).
    pub score: f64,
    /// Every scored candidate, best first (empty in the fallback tier).
    pub alternatives: Vec<(Choice, f64)>,
    /// `true` when a calibration row decided; `false` when the legacy
    /// threshold tier did.
    pub calibrated: bool,
    /// Multi-line explanation: the profile, the matched zoo matrix (or
    /// why the fallback fired), and the winner vs. runner-up scores.
    pub rationale: String,
}

/// One parsed calibration measurement: candidate × zoo matrix →
/// ns-per-unit-of-work.
#[derive(Debug, Clone)]
struct CalRow {
    matrix: usize,
    op: Op,
    format: Format,
    threads: usize,
    #[allow(dead_code)]
    tile: usize,
    ns_per_work: f64,
}

/// The measured cost model: zoo profiles + per-candidate measurements,
/// parsed from the checked-in `planner_calibration.tsv`.
///
/// See the [module docs](self) for the scoring rules and
/// `docs/DISPATCH.md` in the repository for the table format.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    matrices: Vec<(String, MatrixProfile)>,
    rows: Vec<CalRow>,
    /// SIMD tier the table's measurements were taken under (`meta isa=…`
    /// record), when the calibrator recorded one. Older tables have none.
    isa: Option<String>,
}

impl Planner {
    /// A planner with no calibration data: every [`Planner::plan`] call
    /// lands in the legacy threshold tier, reproducing the pre-planner
    /// `Auto` dispatch exactly (pinned by `tests/planner.rs`).
    pub fn empty() -> Self {
        Planner::default()
    }

    /// The planner over the checked-in calibration table
    /// (`planner_calibration.tsv`, regenerated by
    /// `cargo run --release -p smash-bench --bin planner_calibrate`).
    pub fn built_in() -> Self {
        static TABLE: OnceLock<Planner> = OnceLock::new();
        TABLE
            .get_or_init(|| {
                Planner::from_table(include_str!("planner_calibration.tsv"))
                    .expect("checked-in calibration table must parse")
            })
            .clone()
    }

    /// Parses a calibration table. The format is line-oriented
    /// (`#` comments, `matrix …` profile lines, `row …` measurement
    /// lines with `key=value` fields); see `docs/DISPATCH.md`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_table(text: &str) -> Result<Self, String> {
        let mut planner = Planner::default();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("calibration line {}: {what}: {line}", ln + 1);
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or_default();
            let name = parts.next().ok_or_else(|| err("missing name"))?.to_string();
            let kv = |key: &str, parts: &mut dyn Iterator<Item = &str>| -> Result<f64, String> {
                let field = parts.next().ok_or_else(|| err("truncated"))?;
                let (k, v) = field.split_once('=').ok_or_else(|| err("want key=value"))?;
                if k != key {
                    return Err(err(&format!("want {key}=, got {k}=")));
                }
                v.parse::<f64>().map_err(|_| err("bad number"))
            };
            match kind {
                "matrix" => {
                    let rows = kv("rows", &mut parts)? as usize;
                    let cols = kv("cols", &mut parts)? as usize;
                    let nnz = kv("nnz", &mut parts)? as usize;
                    let row_mean = kv("row_mean", &mut parts)?;
                    let row_cv = kv("row_cv", &mut parts)?;
                    let row_max = kv("row_max", &mut parts)? as usize;
                    let fill = kv("fill8", &mut parts)?;
                    planner.matrices.push((
                        name,
                        MatrixProfile {
                            rows,
                            cols,
                            nnz,
                            stored_work: nnz,
                            row_mean,
                            row_cv,
                            row_max,
                            block_fill: Some(fill),
                        },
                    ));
                }
                "row" => {
                    let matrix = planner
                        .matrices
                        .iter()
                        .position(|(n, _)| *n == name)
                        .ok_or_else(|| err("row references unknown matrix"))?;
                    let op_field = parts.next().ok_or_else(|| err("truncated"))?;
                    let op = op_field
                        .strip_prefix("op=")
                        .and_then(Op::parse)
                        .ok_or_else(|| err("bad op"))?;
                    let fmt_field = parts.next().ok_or_else(|| err("truncated"))?;
                    let format = fmt_field
                        .strip_prefix("format=")
                        .and_then(Format::parse)
                        .ok_or_else(|| err("bad format"))?;
                    let threads = kv("threads", &mut parts)? as usize;
                    let tile = kv("tile", &mut parts)? as usize;
                    let work = kv("work", &mut parts)?;
                    let ns = kv("ns", &mut parts)?;
                    if work <= 0.0 || ns <= 0.0 || threads == 0 {
                        return Err(err("non-positive measurement"));
                    }
                    planner.rows.push(CalRow {
                        matrix,
                        op,
                        format,
                        threads,
                        tile,
                        ns_per_work: ns / work,
                    });
                }
                "meta" => {
                    // Free-form provenance: every token (including the one
                    // parsed as `name`) is a `key=value` pair; unknown keys
                    // are ignored for forward compatibility.
                    for field in std::iter::once(name.as_str()).chain(parts) {
                        let (k, v) = field.split_once('=').ok_or_else(|| err("want key=value"))?;
                        if k == "isa" {
                            planner.isa = Some(v.to_string());
                        }
                    }
                }
                _ => return Err(err("unknown record kind")),
            }
        }
        Ok(planner)
    }

    /// Whether any calibration rows are loaded.
    pub fn is_calibrated(&self) -> bool {
        !self.rows.is_empty()
    }

    /// SIMD tier the calibration table was measured under (its
    /// `meta isa=…` record), if the calibrator recorded one. Plans note
    /// when this differs from the currently active tier, and
    /// `planner_calibrate --check` reports (but tolerates) the mismatch —
    /// predicted *ratios* between candidates transfer across tiers far
    /// better than absolute nanoseconds do.
    pub fn table_isa(&self) -> Option<&str> {
        self.isa.as_deref()
    }

    /// The `simd:` line appended to every rationale: the tier the kernels
    /// will actually execute under, plus a provenance warning when the
    /// calibration table was measured under a different one.
    fn simd_note(&self) -> String {
        let active = smash_matrix::simd::active().name();
        match self.isa.as_deref() {
            Some(t) if t != active => {
                format!("\n  simd: {active} (calibration table measured under {t})")
            }
            _ => format!("\n  simd: {active}"),
        }
    }

    /// Names of the zoo matrices this planner was calibrated on.
    pub fn zoo_names(&self) -> impl Iterator<Item = &str> {
        self.matrices.iter().map(|(n, _)| n.as_str())
    }

    /// The calibrated profile checked in for `zoo` matrix, if present.
    pub fn zoo_profile(&self, name: &str) -> Option<&MatrixProfile> {
        self.matrices
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }

    /// Scores every candidate for `req` against `profile` and returns
    /// the winning [`Plan`].
    ///
    /// Calibrated tier: nearest zoo matrix by [`MatrixProfile::distance`],
    /// then `predicted_ns = ns_per_work × work` per candidate, lowest
    /// wins. Candidates needing more threads than `req.threads` are
    /// ineligible. Fallback tier (empty table / no match within
    /// [`MAX_MATCH_DISTANCE`] / no candidate rows for the op): the
    /// legacy `AUTO_PARALLEL_NNZ` + rows-per-worker thresholds.
    pub fn plan(&self, profile: &MatrixProfile, req: &PlanRequest) -> Plan {
        let lead_tile = lead_tile(req);
        // Nearest calibrated neighbor.
        let neighbor = self
            .matrices
            .iter()
            .enumerate()
            .map(|(i, (name, p))| (i, name.as_str(), profile.distance(p)))
            .min_by(|a, b| a.2.total_cmp(&b.2));
        let matched = neighbor.filter(|&(_, _, d)| d <= MAX_MATCH_DISTANCE);

        if let Some((mi, mname, dist)) = matched {
            let work = req.predict_work(profile);
            let mut scored: Vec<(Choice, f64)> = self
                .rows
                .iter()
                .filter(|r| {
                    r.matrix == mi
                        && r.op == req.op
                        && (r.threads == 1 || (req.threads > 1 && r.threads <= req.threads))
                        && req.format.is_none_or(|f| f == r.format)
                })
                .map(|r| {
                    (
                        Choice {
                            format: r.format,
                            threads: r.threads,
                            tile: lead_tile,
                        },
                        r.ns_per_work * work,
                    )
                })
                .collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1));
            if let Some(&(choice, score)) = scored.first() {
                let runner_up = scored.get(1).map(|&(c, s)| {
                    format!(
                        "\n  runner-up {c}: predicted {} ({:.2}x slower)",
                        fmt_ns(s),
                        s / score.max(1e-9)
                    )
                });
                let rationale = format!(
                    "{} over {}:\n  calibrated against '{mname}' (feature distance {dist:.2})\n  \
                     -> {choice}: predicted {}{}{}",
                    req.op,
                    profile.summary(),
                    fmt_ns(score),
                    runner_up.unwrap_or_default(),
                    self.simd_note()
                );
                return Plan {
                    choice,
                    score,
                    alternatives: scored,
                    calibrated: true,
                    rationale,
                };
            }
        }

        self.fallback(profile, req, lead_tile, matched)
    }

    /// The legacy threshold tier: exactly the pre-planner `Auto` rule.
    fn fallback(
        &self,
        profile: &MatrixProfile,
        req: &PlanRequest,
        lead_tile: usize,
        matched: Option<(usize, &str, f64)>,
    ) -> Plan {
        let work = req.fallback_work(profile);
        let threads = req.threads;
        let wide = threads > 1
            && work >= AUTO_PARALLEL_NNZ
            && profile.rows >= AUTO_MIN_ROWS_PER_THREAD * threads;
        let format = req.format.unwrap_or(Format::Csr);
        let choice = Choice {
            format,
            threads: if wide { threads } else { 1 },
            tile: lead_tile,
        };
        let why = if !self.is_calibrated() {
            "calibration table is empty".to_string()
        } else if matched.is_none() {
            let nearest = self
                .matrices
                .iter()
                .map(|(n, p)| (n.as_str(), profile.distance(p)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match nearest {
                Some((n, d)) => {
                    format!(
                        "no zoo match (nearest '{n}' at distance {d:.2} > {MAX_MATCH_DISTANCE})"
                    )
                }
                None => "calibration table has no matrices".to_string(),
            }
        } else {
            format!("no calibration rows for op {}", req.op)
        };
        let rule = if wide {
            format!(
                "work {work} >= {AUTO_PARALLEL_NNZ} and rows {} >= {} -> parallel x{threads}",
                profile.rows,
                AUTO_MIN_ROWS_PER_THREAD * threads
            )
        } else if threads <= 1 {
            "single worker -> serial".to_string()
        } else if work < AUTO_PARALLEL_NNZ {
            format!("work {work} < {AUTO_PARALLEL_NNZ} -> serial")
        } else {
            format!(
                "rows {} < {} ({} per worker x {threads}) -> serial",
                profile.rows,
                AUTO_MIN_ROWS_PER_THREAD * threads,
                AUTO_MIN_ROWS_PER_THREAD
            )
        };
        Plan {
            choice,
            score: f64::NAN,
            alternatives: Vec::new(),
            calibrated: false,
            rationale: format!(
                "{} over {}:\n  threshold tier ({why})\n  -> {rule}{}",
                req.op,
                profile.summary(),
                self.simd_note()
            ),
        }
    }
}

/// The leading tile width the single-definition RHS tile schedule
/// (`smash_matrix::for_each_rhs_tile`) will use for this request's
/// batch width: 8, then 4, then scalar columns.
fn lead_tile(req: &PlanRequest) -> usize {
    match req.op {
        Op::SpmmDense | Op::DynSpmmDense => {
            let n = req.rhs_cols.max(1);
            if n >= 8 {
                8
            } else if n >= 4 {
                4
            } else {
                1
            }
        }
        _ => 1,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_core::{SmashConfig, SmashMatrix};
    use smash_matrix::generators;

    const TABLE: &str = "\
# test table
matrix small rows=64 cols=64 nnz=512 row_mean=8.0 row_cv=0.2 row_max=12 fill8=0.4
matrix big rows=4096 cols=4096 nnz=400000 row_mean=97.6 row_cv=0.5 row_max=300 fill8=0.6
row small op=spmv format=csr threads=1 tile=1 work=512 ns=600
row small op=spmv format=csr threads=4 tile=1 work=512 ns=9000
row big op=spmv format=csr threads=1 tile=1 work=400000 ns=800000
row big op=spmv format=csr threads=4 tile=1 work=400000 ns=260000
row big op=spmv format=smash threads=1 tile=1 work=400000 ns=500000
";

    fn profile(rows: usize, cols: usize, nnz: usize) -> MatrixProfile {
        let a = generators::uniform(rows, cols, nnz, 3);
        MatrixProfile::of_csr(&a).with_block_fill(&a)
    }

    #[test]
    fn parses_and_scores_the_table() {
        let p = Planner::from_table(TABLE).unwrap();
        assert!(p.is_calibrated());
        assert_eq!(p.zoo_names().collect::<Vec<_>>(), vec!["small", "big"]);

        // A big matrix matches 'big'; parallel csr is its cheapest row.
        let plan = p.plan(
            &profile(4096, 4096, 380_000),
            &PlanRequest::pinned(Op::Spmv, Format::Csr, 4),
        );
        assert!(plan.calibrated);
        assert_eq!(plan.choice.threads, 4);
        assert!(plan.rationale.contains("'big'"), "{}", plan.rationale);

        // Free-format: the smash serial row (500k ns) loses to parallel
        // csr (260k ns), wins over serial csr.
        let plan = p.plan(
            &profile(4096, 4096, 380_000),
            &PlanRequest::free(Op::Spmv, 4),
        );
        assert_eq!(plan.choice.format, Format::Csr);
        assert_eq!(plan.alternatives.len(), 3);

        // With one worker the parallel rows are ineligible.
        let plan = p.plan(
            &profile(4096, 4096, 380_000),
            &PlanRequest::free(Op::Spmv, 1),
        );
        assert_eq!(plan.choice.threads, 1);
        assert_eq!(plan.choice.format, Format::Smash);
    }

    #[test]
    fn small_matrices_match_the_small_neighbor_and_stay_serial() {
        let p = Planner::from_table(TABLE).unwrap();
        let plan = p.plan(
            &profile(64, 64, 500),
            &PlanRequest::pinned(Op::Spmv, Format::Csr, 4),
        );
        assert!(plan.calibrated);
        assert_eq!(plan.choice.threads, 1, "{}", plan.rationale);
        assert!(plan.rationale.contains("'small'"));
    }

    #[test]
    fn meta_isa_record_parses_and_flows_into_rationale() {
        let with_meta = format!("meta isa=scalar build=test\n{TABLE}");
        let p = Planner::from_table(&with_meta).unwrap();
        assert_eq!(p.table_isa(), Some("scalar"));

        // No meta record (older tables): no provenance, still valid.
        let bare = Planner::from_table(TABLE).unwrap();
        assert_eq!(bare.table_isa(), None);

        // Malformed meta fields are rejected, unknown keys are ignored.
        assert!(Planner::from_table("meta isa\n").is_err());
        assert_eq!(
            Planner::from_table("meta vendor=acme\n")
                .unwrap()
                .table_isa(),
            None
        );

        // Every rationale (calibrated or threshold) names the active tier,
        // and a mismatched table is called out.
        let active = smash_matrix::simd::active().name();
        let plan = p.plan(
            &profile(4096, 4096, 380_000),
            &PlanRequest::pinned(Op::Spmv, Format::Csr, 4),
        );
        assert!(
            plan.rationale.contains(&format!("simd: {active}")),
            "{}",
            plan.rationale
        );
        if active != "scalar" {
            assert!(
                plan.rationale
                    .contains("calibration table measured under scalar"),
                "{}",
                plan.rationale
            );
        }
        let plan = Planner::empty().plan(
            &profile(64, 64, 500),
            &PlanRequest::pinned(Op::Spmv, Format::Csr, 1),
        );
        assert!(
            plan.rationale.contains(&format!("simd: {active}")),
            "{}",
            plan.rationale
        );
    }

    #[test]
    fn unknown_ops_fall_back_to_thresholds() {
        let p = Planner::from_table(TABLE).unwrap();
        let plan = p.plan(
            &profile(4096, 4096, 380_000),
            &PlanRequest::pinned(Op::Spgemm, Format::Csr, 4).with_work(1_000_000),
        );
        assert!(!plan.calibrated);
        // 1M flops >= threshold, 4096 rows >= 16 -> parallel.
        assert_eq!(plan.choice.threads, 4);
        assert!(
            plan.rationale.contains("threshold tier"),
            "{}",
            plan.rationale
        );
    }

    #[test]
    fn dynamic_ops_fall_back_to_thresholds_without_panicking() {
        // The checked-in calibration table has no rows for the dynamic
        // ops — every plan must land in the threshold tier with the
        // standard rationale, never a MAX_MATCH_DISTANCE mis-match or a
        // panic, and without requiring new measurements.
        let p = Planner::from_table(TABLE).unwrap();
        for (op, rhs) in [(Op::DynSpmv, 1usize), (Op::DynSpmmDense, 8)] {
            let plan = p.plan(
                &profile(4096, 4096, 380_000),
                &PlanRequest::pinned(op, Format::Dynamic, 4).with_rhs(rhs),
            );
            assert!(!plan.calibrated, "{op}: {}", plan.rationale);
            assert_eq!(plan.choice.format, Format::Dynamic);
            // 380k stored work >= threshold, 4096 rows >= 16 -> parallel.
            assert_eq!(plan.choice.threads, 4, "{op}: {}", plan.rationale);
            assert!(
                plan.rationale.contains("threshold tier"),
                "{op}: {}",
                plan.rationale
            );
            assert!(
                plan.rationale
                    .contains(&format!("no calibration rows for op {op}")),
                "{op}: {}",
                plan.rationale
            );
        }
        // A batched dynamic product still gets the RHS lead tile.
        let plan = p.plan(
            &profile(64, 64, 500),
            &PlanRequest::pinned(Op::DynSpmmDense, Format::Dynamic, 1).with_rhs(8),
        );
        assert_eq!(plan.choice.tile, 8);
        // Round-trip the new names through the table grammar.
        assert_eq!(Op::parse("dyn_spmv"), Some(Op::DynSpmv));
        assert_eq!(Op::parse("dyn_spmm_dense"), Some(Op::DynSpmmDense));
        assert_eq!(Format::parse("dynamic"), Some(Format::Dynamic));
        assert_eq!(Op::DynSpmv.name(), "dyn_spmv");
        assert_eq!(Format::Dynamic.name(), "dynamic");
    }

    #[test]
    fn empty_planner_reproduces_the_threshold_rule() {
        let p = Planner::empty();
        for (rows, nnz, threads, want_par) in [
            (8usize, 64usize, 4usize, false),
            (2, 1_000_000, 4, false),
            (4 * 4, AUTO_PARALLEL_NNZ, 4, true),
            (4096, AUTO_PARALLEL_NNZ - 1, 4, false),
            (4096, 1 << 20, 1, false),
        ] {
            let mut prof = profile(rows.max(2), 64, nnz.min(rows.max(2) * 64));
            // Override with the exact quantities the threshold weighs.
            prof.rows = rows;
            prof.stored_work = nnz;
            let plan = p.plan(&prof, &PlanRequest::pinned(Op::Spmv, Format::Csr, threads));
            assert!(!plan.calibrated);
            assert_eq!(
                plan.choice.parallel(),
                want_par,
                "rows {rows} nnz {nnz} threads {threads}: {}",
                plan.rationale
            );
        }
    }

    #[test]
    fn built_in_table_parses_and_covers_every_op() {
        let p = Planner::built_in();
        assert!(p.is_calibrated());
        for op in [Op::Spmv, Op::SpmmDense, Op::Spgemm, Op::Encode] {
            assert!(
                p.rows.iter().any(|r| r.op == op),
                "checked-in table has no rows for {op}"
            );
        }
        // Every zoo matrix has both a serial and a parallel spmv row, so
        // the planner can always compare the two tiers.
        for (i, (name, _)) in p.matrices.iter().enumerate() {
            let serial = p
                .rows
                .iter()
                .any(|r| r.matrix == i && r.op == Op::Spmv && r.threads == 1);
            let par = p
                .rows
                .iter()
                .any(|r| r.matrix == i && r.op == Op::Spmv && r.threads > 1);
            assert!(serial && par, "zoo matrix {name} missing spmv tiers");
        }
    }

    #[test]
    fn profiles_of_all_formats_describe_the_same_matrix() {
        let a = generators::clustered(256, 256, 8_000, 4, 9);
        let csr = MatrixProfile::of_csr(&a).with_block_fill(&a);
        let bcsr = MatrixProfile::of_bcsr(&Bcsr::from_csr(&a, 2, 2).unwrap());
        let sm = MatrixProfile::of_smash(&SmashMatrix::encode(
            &a,
            SmashConfig::row_major(&[2, 4]).unwrap(),
        ));
        for p in [&csr, &bcsr, &sm] {
            assert_eq!((p.rows, p.cols, p.nnz), (256, 256, a.nnz()));
            assert!(p.stored_work >= p.nnz);
        }
        assert_eq!(csr.stored_work, a.nnz());
        // The formats stay close in feature space: same matrix, padded
        // row statistics notwithstanding.
        assert!(csr.distance(&bcsr) < 0.5, "{}", csr.distance(&bcsr));
        assert!(csr.distance(&sm) < 0.5, "{}", csr.distance(&sm));
    }

    #[test]
    fn density_classes_band_correctly() {
        let mut p = profile(1000, 1000, 50);
        assert_eq!(p.density_class(), DensityClass::Hypersparse);
        p.nnz = 5_000;
        assert_eq!(p.density_class(), DensityClass::Sparse);
        p.nnz = 50_000;
        assert_eq!(p.density_class(), DensityClass::Moderate);
        p.nnz = 500_000;
        assert_eq!(p.density_class(), DensityClass::Dense);
    }

    #[test]
    fn malformed_tables_are_rejected_with_line_numbers() {
        for bad in [
            "matrix a rows=1",
            "row ghost op=spmv format=csr threads=1 tile=1 work=1 ns=1",
            "matrix a rows=1 cols=1 nnz=1 row_mean=1 row_cv=0 row_max=1 fill8=0.5\nrow a op=nope format=csr threads=1 tile=1 work=1 ns=1",
            "frobnicate a b c",
        ] {
            assert!(Planner::from_table(bad).is_err(), "{bad}");
        }
    }
}
