//! Instrumented batched Sparse Matrix × Dense Matrix multiplication
//! (`C = A * B`, `B` a dense batch of right-hand-side columns) for every
//! mechanism of the paper's evaluation.
//!
//! These are the instrumented twins of the native `spmm_dense_*` kernels:
//! each one *computes* the result through exactly the shared per-row /
//! per-block bodies the natives use ([`Csr::row_spmm_dense`],
//! [`Bcsr::block_row_spmm_dense`], [`block_axpy_dense`]) — so the numeric
//! output is bit-identical to the native kernels — and *describes* the
//! column-tiled instruction stream to an [`Engine`]. Value traffic is
//! charged [`lanes_of::<T>()`](lanes_of)-wide: each width-`w` column tile
//! of the right-hand side costs `ceil(w / lanes)` vector loads and
//! multiply-adds per streamed non-zero, which is what makes batching pay —
//! the index loads (`col_ind`, block indices, bitmap words) are amortized
//! over the whole tile instead of repeated per right-hand side.

use crate::common::{lanes_of, sites, streams, vector_ops_of};
use smash_bmu::{Bmu, BmuBinding, MAX_HW_LEVELS};
use smash_core::{block_axpy_dense, SmashMatrix};
use smash_matrix::{Bcsr, Csr, Dense, Scalar};
use smash_sim::{Engine, UopId};

/// The register-blocked column tiles `(start, width)` the shared SpMDM
/// bodies split `n` right-hand sides into — materialized from
/// [`smash_matrix::for_each_rhs_tile`], the single definition of the
/// schedule, so the instrumented streams always model the tiling the
/// native kernels actually run.
pub fn rhs_tiles(n: usize) -> Vec<(usize, usize)> {
    let mut tiles = Vec::new();
    smash_matrix::for_each_rhs_tile(n, |j0, w| tiles.push((j0, w)));
    tiles
}

fn check_dims<T: Scalar>(rows: usize, cols: usize, b: &Dense<T>) {
    assert_eq!(b.rows(), cols, "inner dimensions must agree");
    let _ = rows;
}

/// CSR batched SpMM as TACO would emit it, column-tiled: for each row and
/// each RHS tile, the row's non-zeros are streamed once — one `col_ind`
/// load and dependent address generation per non-zero *per tile* (not per
/// right-hand side), then `ceil(w / lanes)` vector loads of the dense row
/// and multiply-accumulates.
pub fn spmm_dense_csr<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, b: &Dense<T>) -> Dense<T> {
    check_dims(a.rows(), a.cols(), b);
    let vs = std::mem::size_of::<T>() as u64;
    let n = b.cols();
    let rows = a.rows();
    let row_ptr_a = e.alloc(4 * (rows + 1), 64);
    let col_a = e.alloc(4 * a.nnz(), 64);
    let val_a = e.alloc(vs as usize * a.nnz(), 64);
    let b_a = e.alloc(vs as usize * b.rows() * n, 64);
    let c_a = e.alloc(vs as usize * rows * n, 64);
    let tiles = rhs_tiles(n);

    let mut c = Dense::zeros(rows, n);
    // Hoisted load of row_ptr[0].
    let mut hi_load = e.load(streams::PTR, row_ptr_a, &[]);
    let _ = hi_load;
    for i in 0..rows {
        let lo = a.row_ptr()[i] as u64;
        let (cols_i, _) = a.row(i);
        hi_load = e.load(streams::PTR, row_ptr_a + 4 * (i as u64 + 1), &[]);
        // The real arithmetic: the shared per-row tiled body.
        a.row_spmm_dense(i, b, c.row_mut(i));
        for &(j0, w) in &tiles {
            let vecs = vector_ops_of::<T>(w);
            let mut accs = vec![UopId::NONE; vecs];
            let nnz_i = cols_i.len();
            for (k, &cidx) in cols_i.iter().enumerate() {
                let j = lo + k as u64;
                // The indexing load and dependent address generation,
                // amortized over the whole tile.
                let cld = e.load(streams::IND, col_a + 4 * j, &[]);
                let addr = e.alu(&[cld]);
                let vld = e.load(streams::VAL, val_a + vs * j, &[]);
                for (v, acc) in accs.iter_mut().enumerate() {
                    let off = (cidx as usize * n + j0 + v * lanes_of::<T>()) as u64;
                    let xld = e.load(streams::X, b_a + vs * off, &[addr]);
                    let m = e.fmul(&[xld, vld]);
                    *acc = e.fadd(&[m, *acc]);
                }
                e.alu(&[]); // jA++
                e.branch(sites::SPMV_INNER, k + 1 < nnz_i, &[hi_load]);
            }
            for (v, acc) in accs.iter().enumerate() {
                let off = (i * n + j0 + v * lanes_of::<T>()) as u64;
                e.store(streams::OUT, c_a + vs * off, &[*acc]);
            }
            e.branch(sites::SPMM_COL, j0 + w < n, &[]);
        }
        e.alu(&[]); // i++
        e.branch(sites::SPMM_ROW, i + 1 < rows, &[]);
    }
    c
}

/// Idealized batched CSR SpMM (the Fig. 3 idealization applied to SpMDM):
/// identical compute, but non-zero positions are known for free — no
/// `col_ind` loads, no dependent address generation, no `row_ptr` loads.
pub fn spmm_dense_ideal<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, b: &Dense<T>) -> Dense<T> {
    check_dims(a.rows(), a.cols(), b);
    let vs = std::mem::size_of::<T>() as u64;
    let n = b.cols();
    let rows = a.rows();
    let val_a = e.alloc(vs as usize * a.nnz(), 64);
    let b_a = e.alloc(vs as usize * b.rows() * n, 64);
    let c_a = e.alloc(vs as usize * rows * n, 64);
    let tiles = rhs_tiles(n);

    let mut c = Dense::zeros(rows, n);
    for i in 0..rows {
        let lo = a.row_ptr()[i] as u64;
        let (cols_i, _) = a.row(i);
        a.row_spmm_dense(i, b, c.row_mut(i));
        for &(j0, w) in &tiles {
            let vecs = vector_ops_of::<T>(w);
            let mut accs = vec![UopId::NONE; vecs];
            let nnz_i = cols_i.len();
            for (k, &cidx) in cols_i.iter().enumerate() {
                let vld = e.load(streams::VAL, val_a + vs * (lo + k as u64), &[]);
                for (v, acc) in accs.iter_mut().enumerate() {
                    let off = (cidx as usize * n + j0 + v * lanes_of::<T>()) as u64;
                    let xld = e.load(streams::X, b_a + vs * off, &[]);
                    let m = e.fmul(&[xld, vld]);
                    *acc = e.fadd(&[m, *acc]);
                }
                e.alu(&[]);
                e.branch(sites::SPMV_INNER, k + 1 < nnz_i, &[]);
            }
            for (v, acc) in accs.iter().enumerate() {
                let off = (i * n + j0 + v * lanes_of::<T>()) as u64;
                e.store(streams::OUT, c_a + vs * off, &[*acc]);
            }
            e.branch(sites::SPMM_COL, j0 + w < n, &[]);
        }
        e.branch(sites::SPMM_ROW, i + 1 < rows, &[]);
    }
    c
}

/// BCSR batched SpMM: one block index load per stored block *per tile*,
/// dense SIMD compute inside each block — explicit zeros included, lanes
/// charged per RHS tile column group.
pub fn spmm_dense_bcsr<E: Engine, T: Scalar>(e: &mut E, a: &Bcsr<T>, b: &Dense<T>) -> Dense<T> {
    check_dims(a.rows(), a.cols(), b);
    let vs = std::mem::size_of::<T>() as u64;
    let n = b.cols();
    let (br, bc) = a.block_shape();
    let bs = br * bc;
    let n_block_rows = a.num_block_rows();
    let ptr_a = e.alloc(4 * (n_block_rows + 1), 64);
    let ind_a = e.alloc(4 * a.num_blocks(), 64);
    let val_a = e.alloc(vs as usize * a.nnz_stored(), 64);
    let b_a = e.alloc(vs as usize * b.rows() * n, 64);
    let c_a = e.alloc(vs as usize * a.rows() * n, 64);
    let tiles = rhs_tiles(n);

    let mut c = Dense::zeros(a.rows(), n);
    let mut hi_load = e.load(streams::PTR, ptr_a, &[]);
    let _ = hi_load;
    for bi in 0..n_block_rows {
        hi_load = e.load(streams::PTR, ptr_a + 4 * (bi as u64 + 1), &[]);
        let lo = a.block_row_ptr()[bi] as usize;
        let hi = a.block_row_ptr()[bi + 1] as usize;
        let row_lo = bi * br;
        let rows_here = br.min(a.rows() - row_lo);
        a.block_row_spmm_dense(
            bi,
            b,
            &mut c.as_mut_slice()[row_lo * n..(row_lo + rows_here) * n],
        );
        for &(j0, w) in &tiles {
            let vecs = vector_ops_of::<T>(w);
            let mut accs = vec![UopId::NONE; rows_here * vecs];
            for k in lo..hi {
                let bcol = a.block_col_ind()[k] as usize;
                // Block index load + B base address generation, once per
                // block per tile.
                let ild = e.load(streams::IND, ind_a + 4 * k as u64, &[]);
                let addr = e.alu(&[ild]);
                for lr in 0..rows_here {
                    for lc in 0..bc.min(a.cols() - bcol * bc) {
                        let voff = (k * bs + lr * bc + lc) as u64;
                        let vld = e.load(streams::VAL, val_a + vs * voff, &[]);
                        for v in 0..vecs {
                            let boff = ((bcol * bc + lc) * n + j0 + v * lanes_of::<T>()) as u64;
                            let xld = e.load(streams::X, b_a + vs * boff, &[addr]);
                            let m = e.fmul(&[vld, xld]);
                            accs[lr * vecs + v] = e.fadd(&[m, accs[lr * vecs + v]]);
                        }
                    }
                }
                e.alu(&[]); // k++
                e.branch(sites::BLOCK_LOOP, k + 1 < hi, &[hi_load]);
            }
            for lr in 0..rows_here {
                for v in 0..vecs {
                    let off = ((row_lo + lr) * n + j0 + v * lanes_of::<T>()) as u64;
                    e.store(streams::OUT, c_a + vs * off, &[accs[lr * vecs + v]]);
                }
            }
            e.branch(sites::SPMM_COL, j0 + w < n, &[]);
        }
        e.alu(&[]);
        e.branch(sites::SPMM_ROW, bi + 1 < n_block_rows, &[]);
    }
    c
}

/// Software-only SMASH batched SpMM (paper §4.4 scanning, SpMDM compute):
/// the bitmap hierarchy is scanned in software — word loads,
/// count-trailing-zeros and AND-masking per set bit — then each non-zero
/// block is multiplied against every RHS tile with SIMD, its scan cost
/// amortized over the whole batch.
pub fn spmm_dense_sw_smash<E: Engine, T: Scalar>(
    e: &mut E,
    a: &SmashMatrix<T>,
    b: &Dense<T>,
) -> Dense<T> {
    check_dims(a.rows(), a.cols(), b);
    let vs = std::mem::size_of::<T>() as u64;
    let n = b.cols();
    let levels = a.hierarchy().num_levels();
    let b0 = a.config().block_size();
    let nza_a = e.alloc(vs as usize * a.nza().len(), 64);
    let b_a = e.alloc(vs as usize * b.rows() * n, 64);
    let c_a = e.alloc(vs as usize * a.rows() * n, 64);
    let bitmap_addrs: Vec<u64> = (0..levels)
        .map(|l| e.alloc(a.hierarchy().stored_level(l).len().div_ceil(8), 64))
        .collect();
    let tiles = rhs_tiles(n);
    let nza = a.nza().values();

    let mut c = Dense::zeros(a.rows(), n);
    let mut next_word = vec![0usize; levels];
    let mut word_uop = vec![UopId::NONE; levels];
    let mut scan_chain = vec![UopId::NONE; levels];
    let load_words =
        |e: &mut E, level: usize, upto: usize, next_word: &mut [usize], word_uop: &mut [UopId]| {
            while next_word[level] <= upto {
                word_uop[level] = e.load(
                    streams::bitmap(level),
                    bitmap_addrs[level] + 8 * next_word[level] as u64,
                    &[],
                );
                next_word[level] += 1;
            }
        };

    let vecs_total: usize = tiles.iter().map(|&(_, w)| vector_ops_of::<T>(w)).sum();
    let mut accs = vec![UopId::NONE; vecs_total];
    let mut cur_row = usize::MAX;
    let mut ordinal = 0usize;
    for visit in a.hierarchy().visits() {
        let word = visit.storage / 64;
        load_words(e, visit.level, word, &mut next_word, &mut word_uop);
        let ctz = e.alu(&[word_uop[visit.level], scan_chain[visit.level]]);
        let mask = e.alu(&[ctz]);
        scan_chain[visit.level] = mask;
        e.branch(sites::SCAN_FOUND, true, &[ctz]);
        if visit.level > 0 {
            e.alu(&[ctz]);
            continue;
        }
        let idx1 = e.alu(&[ctz]);
        let idx2 = e.alu(&[idx1]);
        let (row, col) = a.block_row_col(visit.logical);
        if row != cur_row {
            if cur_row != usize::MAX {
                flush_row_stores::<E, T>(e, c_a, cur_row, n, &tiles, &accs, vs);
            }
            e.branch(sites::LINE_CHANGE, true, &[idx2]);
            cur_row = row;
            accs.iter_mut().for_each(|u| *u = UopId::NONE);
        }
        let block = &nza[ordinal * b0..(ordinal + 1) * b0];
        let nb = b0.min(a.cols() - col);
        // The real arithmetic: the shared per-block body.
        block_axpy_dense(block, b, col, nb, c.row_mut(row));
        charge_block_tiles::<E, T>(
            e, nza_a, b_a, ordinal, b0, col, n, &tiles, &mut accs, idx2, vs,
        );
        ordinal += 1;
    }
    if cur_row != usize::MAX {
        flush_row_stores::<E, T>(e, c_a, cur_row, n, &tiles, &accs, vs);
    }
    for level in 0..levels {
        let total = a.hierarchy().stored_level(level).len().div_ceil(64);
        while next_word[level] < total {
            e.load(
                streams::bitmap(level),
                bitmap_addrs[level] + 8 * next_word[level] as u64,
                &[],
            );
            next_word[level] += 1;
        }
    }
    c
}

/// Full SMASH batched SpMM: the BMU scans the hierarchy (one
/// `pbmap`/`rdind` pair per non-zero block, regardless of how many
/// right-hand sides are batched), the core runs tiled SIMD compute over
/// the block × RHS-tile products.
pub fn spmm_dense_hw_smash<E: Engine, T: Scalar>(
    e: &mut E,
    bmu: &mut Bmu,
    grp: usize,
    a: &SmashMatrix<T>,
    b: &Dense<T>,
) -> Dense<T> {
    check_dims(a.rows(), a.cols(), b);
    let vs = std::mem::size_of::<T>() as u64;
    let n = b.cols();
    let levels = a.hierarchy().num_levels();
    assert!(
        levels <= MAX_HW_LEVELS,
        "hardware buffers at most {MAX_HW_LEVELS} levels"
    );
    let b0 = a.config().block_size();
    let nza_a = e.alloc(vs as usize * a.nza().len(), 64);
    let b_a = e.alloc(vs as usize * b.rows() * n, 64);
    let c_a = e.alloc(vs as usize * a.rows() * n, 64);
    let mut level_addrs = [0u64; MAX_HW_LEVELS];
    for (l, addr) in level_addrs.iter_mut().enumerate().take(levels) {
        *addr = e.alloc(a.hierarchy().stored_level(l).len().div_ceil(8), 64);
    }
    let binding = BmuBinding {
        hierarchy: a.hierarchy(),
        level_addrs,
    };
    bmu.matinfo(e, grp, a.rows() as u32, a.cols() as u32);
    for (lvl, &r) in a.config().ratios().iter().enumerate() {
        bmu.bmapinfo(e, grp, lvl, r);
    }
    for lvl in (0..levels).rev() {
        bmu.rdbmap(e, grp, lvl, level_addrs[lvl], &binding);
    }
    let tiles = rhs_tiles(n);
    let nza = a.nza().values();

    let mut c = Dense::zeros(a.rows(), n);
    let vecs_total: usize = tiles.iter().map(|&(_, w)| vector_ops_of::<T>(w)).sum();
    let mut accs = vec![UopId::NONE; vecs_total];
    let mut cur_row = usize::MAX;
    let mut ordinal = 0usize;
    let num_blocks = a.num_blocks();
    loop {
        let p = bmu.pbmap(e, grp, &binding);
        let Some(block_logical) = p.block else { break };
        let ind = bmu.rdind(e, grp);
        let (row, col) = a.block_row_col(block_logical);
        debug_assert_eq!((ind.row as usize, ind.col as usize), (row, col));
        if row != cur_row {
            if cur_row != usize::MAX {
                flush_row_stores::<E, T>(e, c_a, cur_row, n, &tiles, &accs, vs);
            }
            e.branch(sites::LINE_CHANGE, true, &[ind.uop]);
            cur_row = row;
            accs.iter_mut().for_each(|u| *u = UopId::NONE);
        }
        let addr = e.alu(&[ind.uop]);
        let block = &nza[ordinal * b0..(ordinal + 1) * b0];
        let nb = b0.min(a.cols() - col);
        block_axpy_dense(block, b, col, nb, c.row_mut(row));
        charge_block_tiles::<E, T>(
            e, nza_a, b_a, ordinal, b0, col, n, &tiles, &mut accs, addr, vs,
        );
        ordinal += 1;
        e.alu(&[]); // ctrNZ++
        e.branch(sites::SPMM_ROW, ordinal < num_blocks, &[]);
    }
    if cur_row != usize::MAX {
        flush_row_stores::<E, T>(e, c_a, cur_row, n, &tiles, &accs, vs);
    }
    c
}

/// Charges the tiled SIMD compute of one NZA block against every RHS tile:
/// per block element, one value load (broadcast) and `ceil(w / lanes)`
/// vector loads + multiply-adds per tile, chained into the row's
/// accumulators.
#[allow(clippy::too_many_arguments)]
fn charge_block_tiles<E: Engine, T: Scalar>(
    e: &mut E,
    nza_a: u64,
    b_a: u64,
    ordinal: usize,
    b0: usize,
    col: usize,
    n: usize,
    tiles: &[(usize, usize)],
    accs: &mut [UopId],
    addr_dep: UopId,
    vs: u64,
) {
    let mut acc_base = 0usize;
    for &(j0, w) in tiles {
        let vecs = vector_ops_of::<T>(w);
        for k in 0..b0 {
            let vld = e.load(streams::NZA_A, nza_a + vs * (ordinal * b0 + k) as u64, &[]);
            for v in 0..vecs {
                let boff = ((col + k) * n + j0 + v * lanes_of::<T>()) as u64;
                let xld = e.load(streams::X, b_a + vs * boff, &[addr_dep]);
                let m = e.fmul(&[vld, xld]);
                accs[acc_base + v] = e.fadd(&[m, accs[acc_base + v]]);
            }
        }
        acc_base += vecs;
    }
}

/// Stores one finished output row, one store per accumulator vector.
fn flush_row_stores<E: Engine, T: Scalar>(
    e: &mut E,
    c_a: u64,
    row: usize,
    n: usize,
    tiles: &[(usize, usize)],
    accs: &[UopId],
    vs: u64,
) {
    let mut acc_base = 0usize;
    for &(j0, w) in tiles {
        let vecs = vector_ops_of::<T>(w);
        for v in 0..vecs {
            let off = (row * n + j0 + v * lanes_of::<T>()) as u64;
            e.store(streams::OUT, c_a + vs * off, &[accs[acc_base + v]]);
        }
        acc_base += vecs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_vector;
    use crate::native;
    use smash_core::SmashConfig;
    use smash_matrix::generators;
    use smash_sim::{CountEngine, UopClass};

    fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
        let mut b = Dense::zeros(rows, cols);
        for (i, v) in test_vector::<f64>(rows * cols).into_iter().enumerate() {
            b.set(i / cols, i % cols, v);
        }
        b
    }

    #[test]
    fn rhs_tiles_cover_the_width_once() {
        for n in [0usize, 1, 3, 4, 7, 8, 12, 17, 64] {
            let tiles = rhs_tiles(n);
            let mut covered = 0usize;
            for &(j0, w) in &tiles {
                assert_eq!(j0, covered, "tiles must be contiguous");
                assert!(w == 8 || w == 4 || w == 1);
                covered += w;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn instrumented_twins_match_native_bitwise() {
        let a = generators::clustered(48, 56, 400, 4, 7);
        let b = test_batch(56, 11);
        let mut want = Dense::zeros(48, 11);

        native::spmm_dense_csr(&a, &b, &mut want);
        let mut e = CountEngine::new();
        assert_eq!(spmm_dense_csr(&mut e, &a, &b), want);
        let mut e = CountEngine::new();
        assert_eq!(spmm_dense_ideal(&mut e, &a, &b), want);

        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        native::spmm_dense_bcsr(&bcsr, &b, &mut want);
        let mut e = CountEngine::new();
        assert_eq!(spmm_dense_bcsr(&mut e, &bcsr, &b), want);

        for ratios in [&[2u32][..], &[2, 4, 16]] {
            let sm = SmashMatrix::encode(&a, SmashConfig::row_major(ratios).unwrap());
            native::spmm_dense_smash(&sm, &b, &mut want);
            let mut e = CountEngine::new();
            assert_eq!(spmm_dense_sw_smash(&mut e, &sm, &b), want, "{ratios:?}");
            let mut e = CountEngine::new();
            let mut bmu = Bmu::new();
            assert_eq!(
                spmm_dense_hw_smash(&mut e, &mut bmu, 0, &sm, &b),
                want,
                "{ratios:?}"
            );
        }
    }

    #[test]
    fn batching_amortizes_index_traffic() {
        // 8 RHS in one batched pass must execute far fewer instructions
        // than 8 independent SpMVs: the index stream is charged once per
        // tile, not once per vector.
        let a = generators::uniform(96, 96, 900, 3);
        let b = test_batch(96, 8);
        let mut e1 = CountEngine::new();
        spmm_dense_csr(&mut e1, &a, &b);
        let batched = e1.finish().instructions();

        let mut e2 = CountEngine::new();
        for j in 0..8 {
            crate::spmv::spmv_csr(&mut e2, &a, &b.col(j));
        }
        let looped = e2.finish().instructions();
        let ratio = batched as f64 / looped as f64;
        assert!(ratio < 0.75, "batched/looped instruction ratio {ratio}");
    }

    #[test]
    fn f32_charges_fewer_vector_ops_than_f64() {
        let a64 = generators::uniform(64, 64, 500, 9);
        let b64 = test_batch(64, 8);
        let mut e = CountEngine::new();
        spmm_dense_csr(&mut e, &a64, &b64);
        let f64_loads = e.finish().count(UopClass::Load);

        let a32 = a64.cast::<f32>();
        let mut b32 = Dense::<f32>::zeros(64, 8);
        for i in 0..64 {
            for j in 0..8 {
                b32.set(i, j, b64.get(i, j) as f32);
            }
        }
        let mut e = CountEngine::new();
        spmm_dense_csr(&mut e, &a32, &b32);
        let f32_loads = e.finish().count(UopClass::Load);
        assert!(
            f32_loads < f64_loads,
            "f32 {f32_loads} loads vs f64 {f64_loads}"
        );
    }

    #[test]
    fn hw_smash_emits_coproc_instructions() {
        let a = generators::clustered(64, 64, 600, 4, 5);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        let b = test_batch(64, 8);
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        spmm_dense_hw_smash(&mut e, &mut bmu, 0, &sm, &b);
        let s = e.finish();
        assert!(s.count(UopClass::Coproc) > 0);
    }
}
