//! Parallel variants of the [`native`](crate::native) hot paths,
//! re-exported from `smash-parallel`.
//!
//! Each `par_*` kernel takes a [`ThreadPool`] and produces output that is
//! **bit-identical** to its serial counterpart at every thread count:
//! workers own disjoint contiguous row ranges (balanced by non-zero
//! count), and each row is computed by the serial loop body in serial
//! order, so no floating-point addition is ever reordered.
//!
//! # Example
//!
//! ```
//! use smash_kernels::{native, parallel};
//! use smash_matrix::generators;
//!
//! let a = generators::uniform(64, 64, 400, 1);
//! let x = vec![1.0; 64];
//! let pool = parallel::ThreadPool::new(4);
//! let (mut serial, mut par) = (vec![0.0; 64], vec![0.0; 64]);
//! native::spmv_csr(&a, &x, &mut serial);
//! parallel::par_spmv_csr(&pool, &a, &x, &mut par);
//! assert_eq!(serial, par); // bit-identical
//! ```

pub use smash_parallel::{
    default_threads, par_csr_to_smash, par_spmm_csr, par_spmv_bcsr, par_spmv_csr, par_spmv_smash,
    partition_by_weight, partition_rows, Scope, ThreadPool, THREADS_ENV,
};
