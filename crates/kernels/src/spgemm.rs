//! Native row-wise **Gustavson SpGEMM** engine: `C = A · B` with both
//! operands in CSR, emitted straight into CSR (or SMASH) with exact
//! per-row allocation — no COO detour, no post-hoc sort of the whole
//! output.
//!
//! # Algorithm
//!
//! Gustavson's method walks each row `i` of `A` and scatters
//! `A[i,k] · B[k,:]` into a row accumulator — the classic sparse × sparse
//! formulation whose irregular, input-dependent accesses are exactly the
//! indexing bottleneck the SMASH paper attacks. Two passes:
//!
//! 1. **Symbolic** ([`symbolic_bounds`]): per output row, the upper bound
//!    `ub[i] = Σ_{k ∈ A[i,:]} nnz(B[k,:])` — both the accumulator sizing
//!    hint and (summed) the stored-work estimate the executor's `Auto`
//!    mode dispatches on.
//! 2. **Numeric**: per row, scatter into one of two accumulators chosen
//!    from `ub[i]` alone (see [`use_dense_accumulator`]):
//!    * a **dense accumulator** — value array over all `b.cols()` columns
//!      with epoch stamps (O(1) reset) and a touched-column list — when
//!      the row bound is wide relative to the output width;
//!    * a **sorted hash scratchpad** — open-addressed map sized to the
//!      row bound, drained through a sort — when the row is sparse enough
//!      that touching `b.cols()` slots would dominate.
//!
//! # Determinism and the inner-product oracle
//!
//! Both accumulators fold contributions in ascending-`k` order with
//! [`Scalar::mul_add`], which is *exactly* the fold
//! `Csr::spmm_inner_row` performs per `(i, j)` — so the engine's output
//! is `==` (triplet-exact, not approximately) to the inner-product
//! oracle, and dense and hash rows are bit-identical to each other.
//! The accumulator choice depends only on `(ub[i], b.cols())`, and the
//! parallel driver hands **disjoint, contiguous** row ranges (balanced by
//! the symbolic bounds through `partition_by_weight`) to workers that
//! write pre-sized private chunks spliced back in row order — so output
//! is bit-identical at every thread count.
//!
//! # Cancellation policy
//!
//! Exact zeros are dropped, like every sparse × sparse kernel in this
//! crate (see the policy note in [`crate::native`]): a structurally-hit
//! position whose accumulated value cancels to ±0.0 is not stored.
//!
//! # Example
//!
//! ```
//! use smash_kernels::Executor;
//! use smash_matrix::generators;
//!
//! let a = generators::power_law(128, 128, 2_000, 1.2, 7);
//! let c = Executor::auto().spgemm(&a, &a); // A², dispatched by stored work
//! let oracle = a.spmm_inner(&a.to_csc()).unwrap();
//! assert_eq!(c.to_coo().entries(), oracle.entries()); // exact, not approx
//! ```

use crate::native::{check_smash_spmm_operands, spmm_smash_row, SmashMergeOperand};
use smash_core::{for_each_line_block, Layout, SmashConfig, SmashMatrix};
use smash_matrix::{Coo, Csr, CsrBuilder, Scalar};
use smash_parallel::{partition_by_weight, ThreadPool};
use std::ops::Range;

/// Output widths up to this many columns always use the dense
/// accumulator: the value/stamp arrays fit comfortably in cache, so the
/// hash scratchpad's probing and drain-sort can't win.
pub const DENSE_ACCUM_MIN_COLS: usize = 256;

/// Above [`DENSE_ACCUM_MIN_COLS`], the dense accumulator is used when the
/// row's nnz upper bound is at least `1/DENSE_ACCUM_FRACTION` of the
/// output width — dense rows amortize the touched-list sort better than
/// the hash map amortizes probing.
pub const DENSE_ACCUM_FRACTION: u64 = 4;

/// Whether the numeric pass uses the dense accumulator (vs. the hash
/// scratchpad) for a row whose symbolic upper bound is `ub`, writing into
/// `n` output columns.
///
/// The choice is a pure function of `(ub, n)` — never of thread count or
/// scheduling — which is one leg of the engine's determinism guarantee.
pub fn use_dense_accumulator(ub: u64, n: usize) -> bool {
    n <= DENSE_ACCUM_MIN_COLS || ub.saturating_mul(DENSE_ACCUM_FRACTION) >= n as u64
}

/// The symbolic pass: per-row upper bounds on `nnz(C[i,:])` plus their
/// sum (the total stored work, `Σ_{(i,k) ∈ A} nnz(B[k,:])` — the flop
/// count Gustavson performs and the quantity `Auto` dispatch weighs).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn symbolic_bounds<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> (Vec<u64>, u64) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut bounds = vec![0u64; a.rows()];
    let mut total = 0u64;
    for (i, ub) in bounds.iter_mut().enumerate() {
        let (cols, _) = a.row(i);
        *ub = cols
            .iter()
            .map(|&k| b.row_nnz(k as usize) as u64)
            .sum::<u64>();
        total += *ub;
    }
    (bounds, total)
}

/// The total stored work of `A · B` without materializing the per-row
/// bounds — what [`crate::Executor`] feeds its serial/parallel heuristic.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn stored_work<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    a.col_ind()
        .iter()
        .map(|&k| b.row_nnz(k as usize) as u64)
        .sum()
}

/// Dense row accumulator: one value slot per output column, an epoch
/// stamp per slot (so reset is O(1), not O(n)), and the list of touched
/// columns for output-sensitive draining.
struct DenseAcc<T> {
    vals: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl<T: Scalar> DenseAcc<T> {
    fn new(n: usize) -> Self {
        DenseAcc {
            vals: vec![T::ZERO; n],
            stamp: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    fn begin_row(&mut self) {
        self.touched.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wraparound (once per 2^32 rows): hard-reset the
                // stamps so stale marks can't alias the new epoch.
                self.stamp.fill(0);
                1
            }
        };
    }

    #[inline]
    fn scatter(&mut self, j: u32, av: T, bv: T) {
        let slot = j as usize;
        if self.stamp[slot] == self.epoch {
            self.vals[slot] = av.mul_add(bv, self.vals[slot]);
        } else {
            self.stamp[slot] = self.epoch;
            self.vals[slot] = av.mul_add(bv, T::ZERO);
            self.touched.push(j);
        }
    }

    /// Drains the touched columns in ascending order into `(cols, vals)`,
    /// dropping exact zeros.
    fn drain_sorted(&mut self, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        self.touched.sort_unstable();
        for &j in &self.touched {
            let v = self.vals[j as usize];
            if !v.is_zero() {
                cols.push(j);
                vals.push(v);
            }
        }
    }
}

/// Sentinel key marking an empty hash slot (no valid column index is
/// `u32::MAX`: CSR column indices are bounded by `cols() <= u32::MAX`).
const EMPTY: u32 = u32::MAX;

/// Open-addressed (linear probing) row accumulator keyed by output
/// column, sized per row from the symbolic bound and drained through a
/// sort. Grow-only across rows so a range of small rows after one wide
/// row never reallocates.
struct HashAcc<T> {
    keys: Vec<u32>,
    vals: Vec<T>,
    /// Occupied slot indices, for O(occupied) reset and draining.
    slots: Vec<u32>,
    mask: usize,
}

impl<T: Scalar> HashAcc<T> {
    fn new() -> Self {
        HashAcc {
            keys: Vec::new(),
            vals: Vec::new(),
            slots: Vec::new(),
            mask: 0,
        }
    }

    /// Prepares for a row with at most `ub` distinct columns: capacity at
    /// least `2·ub` (load factor ≤ ½ so probing stays short and always
    /// terminates), power of two for mask addressing.
    fn begin_row(&mut self, ub: u64) {
        let want = (ub.max(4) as usize).saturating_mul(2).next_power_of_two();
        if want > self.keys.len() {
            self.keys = vec![EMPTY; want];
            self.vals = vec![T::ZERO; want];
            self.mask = want - 1;
        } else {
            for &s in &self.slots {
                self.keys[s as usize] = EMPTY;
            }
        }
        self.slots.clear();
    }

    #[inline]
    fn scatter(&mut self, j: u32, av: T, bv: T) {
        let mut idx = (j as usize).wrapping_mul(0x9E37_79B9) & self.mask;
        loop {
            let k = self.keys[idx];
            if k == j {
                self.vals[idx] = av.mul_add(bv, self.vals[idx]);
                return;
            }
            if k == EMPTY {
                self.keys[idx] = j;
                self.vals[idx] = av.mul_add(bv, T::ZERO);
                self.slots.push(idx as u32);
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Drains the occupied slots in ascending column order into
    /// `(cols, vals)`, dropping exact zeros.
    fn drain_sorted(&mut self, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        let base = cols.len();
        for &s in &self.slots {
            let v = self.vals[s as usize];
            if !v.is_zero() {
                cols.push(self.keys[s as usize]);
                vals.push(v);
            }
        }
        // Sort the freshly appended tail by column, carrying values along.
        let mut order: Vec<u32> = (0..(cols.len() - base) as u32).collect();
        order.sort_unstable_by_key(|&p| cols[base + p as usize]);
        let tail_cols: Vec<u32> = order.iter().map(|&p| cols[base + p as usize]).collect();
        let tail_vals: Vec<T> = order.iter().map(|&p| vals[base + p as usize]).collect();
        cols[base..].copy_from_slice(&tail_cols);
        vals[base..].clone_from_slice(&tail_vals);
    }
}

/// One worker's share of the numeric pass: per-row entry counts plus the
/// concatenated (column, value) stream, in row order. Chunks from
/// disjoint row ranges splice into the final CSR through
/// [`CsrBuilder::push_row_chunk`] with no per-entry re-sorting.
struct RowChunk<T> {
    counts: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T> Default for RowChunk<T> {
    fn default() -> Self {
        RowChunk {
            counts: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }
}

/// Runs the numeric pass over `rows`, invoking `emit(i, cols, vals)` per
/// row in ascending row order — `cols` strictly increasing, exact zeros
/// already dropped. The scratch accumulators live across the whole range.
fn gustavson_rows<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: Range<usize>,
    bounds: &[u64],
    mut emit: impl FnMut(usize, &[u32], &[T]),
) {
    let n = b.cols();
    let mut dense: Option<DenseAcc<T>> = None;
    let mut hash = HashAcc::new();
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for i in rows {
        cols.clear();
        vals.clear();
        let (a_cols, a_vals) = a.row(i);
        let ub = bounds[i];
        if ub > 0 {
            if use_dense_accumulator(ub, n) {
                let acc = dense.get_or_insert_with(|| DenseAcc::new(n));
                acc.begin_row();
                for (&k, &av) in a_cols.iter().zip(a_vals) {
                    let (b_cols, b_vals) = b.row(k as usize);
                    for (&j, &bv) in b_cols.iter().zip(b_vals) {
                        acc.scatter(j, av, bv);
                    }
                }
                acc.drain_sorted(&mut cols, &mut vals);
            } else {
                hash.begin_row(ub);
                for (&k, &av) in a_cols.iter().zip(a_vals) {
                    let (b_cols, b_vals) = b.row(k as usize);
                    for (&j, &bv) in b_cols.iter().zip(b_vals) {
                        hash.scatter(j, av, bv);
                    }
                }
                hash.drain_sorted(&mut cols, &mut vals);
            }
        }
        emit(i, &cols, &vals);
    }
}

/// Numeric pass over one row range, packaged as a spliceable chunk.
fn spgemm_chunk<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: Range<usize>,
    bounds: &[u64],
) -> RowChunk<T> {
    let mut chunk = RowChunk::default();
    gustavson_rows(a, b, rows, bounds, |_, cols, vals| {
        chunk.counts.push(cols.len() as u32);
        chunk.cols.extend_from_slice(cols);
        chunk.vals.extend_from_slice(vals);
    });
    chunk
}

/// Splices per-range chunks (in row order) into a CSR with exact
/// allocation: the builder's arrays are sized to the true output nnz
/// before the first entry lands.
fn assemble<T: Scalar>(rows: usize, cols: usize, chunks: Vec<RowChunk<T>>) -> Csr<T> {
    let nnz: usize = chunks.iter().map(|c| c.cols.len()).sum();
    let mut builder = CsrBuilder::with_capacity(cols, rows, nnz);
    for chunk in &chunks {
        builder.push_row_chunk(&chunk.counts, &chunk.cols, &chunk.vals);
    }
    builder.finish()
}

/// Serial Gustavson SpGEMM: `C = A · B`, both CSR, emitted directly into
/// CSR. Triplet-exact to the `Csr::spmm_inner` oracle (see the
/// [module docs](self)).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn spgemm<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    let (bounds, _) = symbolic_bounds(a, b);
    assemble(
        a.rows(),
        b.cols(),
        vec![spgemm_chunk(a, b, 0..a.rows(), &bounds)],
    )
}

/// Parallel Gustavson SpGEMM over nnz-balanced contiguous row ranges —
/// bit-identical to [`spgemm`] at every thread count (workers run the
/// identical per-row body over disjoint ranges; the main thread splices
/// in row order).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn par_spgemm<T: Scalar>(pool: &ThreadPool, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    let (bounds, _) = symbolic_bounds(a, b);
    let ranges = partition_by_weight(a.rows(), pool.threads(), |i| bounds[i]);
    let mut chunks: Vec<RowChunk<T>> = Vec::new();
    chunks.resize_with(ranges.len(), RowChunk::default);
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(chunks.iter_mut()) {
            let bounds = &bounds;
            s.execute(move || *slot = spgemm_chunk(a, b, range, bounds));
        }
    });
    assemble(a.rows(), b.cols(), chunks)
}

/// Per-range SMASH emission: runs the numeric pass and folds each output
/// row straight through the encoder's per-line block routine, producing
/// the `(bit indices, padded block values)` part the shared assembly
/// consumes.
fn spgemm_smash_part<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: Range<usize>,
    bounds: &[u64],
    b0: usize,
    bpl: usize,
) -> (Vec<usize>, Vec<T>) {
    let mut bits = Vec::new();
    let mut nza = Vec::new();
    let mut block = vec![T::ZERO; b0];
    gustavson_rows(a, b, rows, bounds, |i, cols, vals| {
        let base = i * bpl;
        for_each_line_block(cols, vals, &mut block, |blk, block_vals| {
            bits.push(base + blk);
            nza.extend_from_slice(block_vals);
        });
    });
    (bits, nza)
}

/// Gustavson SpGEMM emitting straight into the SMASH encoding
/// (compress-on-the-fly): each output row is folded through the same
/// per-line block routine the encoder uses, so the result is `==` to
/// `SmashMatrix::encode(&spgemm(a, b), config)` without ever
/// materializing the intermediate CSR.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `config` is not row-major.
pub fn spgemm_smash<T: Scalar>(a: &Csr<T>, b: &Csr<T>, config: SmashConfig) -> SmashMatrix<T> {
    assert_eq!(config.layout(), Layout::RowMajor, "emission is row-major");
    let (bounds, _) = symbolic_bounds(a, b);
    let b0 = config.block_size();
    let bpl = b.cols().div_ceil(b0);
    let part = spgemm_smash_part(a, b, 0..a.rows(), &bounds, b0, bpl);
    SmashMatrix::from_bit_blocks(a.rows(), b.cols(), config, &[part])
        .expect("Gustavson emission preserves the encoder's invariants")
}

/// Parallel [`spgemm_smash`]: workers encode disjoint row ranges, the
/// shared assembly splices them in line order — `==` to the serial
/// emission at every thread count.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `config` is not row-major.
pub fn par_spgemm_smash<T: Scalar>(
    pool: &ThreadPool,
    a: &Csr<T>,
    b: &Csr<T>,
    config: SmashConfig,
) -> SmashMatrix<T> {
    assert_eq!(config.layout(), Layout::RowMajor, "emission is row-major");
    let (bounds, _) = symbolic_bounds(a, b);
    let b0 = config.block_size();
    let bpl = b.cols().div_ceil(b0);
    let ranges = partition_by_weight(a.rows(), pool.threads(), |i| bounds[i]);
    let mut parts: Vec<(Vec<usize>, Vec<T>)> = vec![Default::default(); ranges.len()];
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(parts.iter_mut()) {
            let bounds = &bounds;
            s.execute(move || *slot = spgemm_smash_part(a, b, range, bounds, b0, bpl));
        }
    });
    SmashMatrix::from_bit_blocks(a.rows(), b.cols(), config, &parts)
        .expect("Gustavson emission preserves the encoder's invariants")
}

/// Row-parallel SMASH × SMASH SpMM, bit-identical to
/// [`crate::native::spmm_smash`] at every thread count: each worker runs
/// the serial per-row merge body over a disjoint row-line range (balanced
/// by A's per-line block counts), and the triplets splice in row order.
///
/// # Panics
///
/// Panics if the operands are not 1-level row-major/col-major with
/// matching block sizes, or dimensions disagree.
pub fn par_spmm_smash<T: Scalar>(
    pool: &ThreadPool,
    a: &SmashMatrix<T>,
    b: &SmashMatrix<T>,
) -> Coo<T> {
    check_smash_spmm_operands(a, b);
    let a_op = SmashMergeOperand::new(a);
    let b_op = SmashMergeOperand::new(b);
    let starts = a.line_block_starts();
    let ranges = partition_by_weight(a.rows(), pool.threads(), |i| {
        (starts[i + 1] - starts[i]) as u64
    });
    let mut chunks: Vec<Vec<(u32, u32, T)>> = vec![Vec::new(); ranges.len()];
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(chunks.iter_mut()) {
            let (a_op, b_op) = (&a_op, &b_op);
            s.execute(move || {
                let mut out = Vec::new();
                for i in range {
                    spmm_smash_row(i, a_op, b_op, |j, v| out.push((i as u32, j as u32, v)));
                }
                *slot = out;
            });
        }
    });
    let nnz = chunks.iter().map(Vec::len).sum();
    let mut c = Coo::with_capacity(a.rows(), b.cols(), nnz);
    for (i, j, v) in chunks.into_iter().flatten() {
        c.push(i as usize, j as usize, v);
    }
    c.compress();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use smash_matrix::generators;

    fn oracle(a: &Csr<f64>, b: &Csr<f64>) -> Vec<(u32, u32, f64)> {
        a.spmm_inner(&b.to_csc()).unwrap().entries().to_vec()
    }

    #[test]
    fn serial_matches_inner_product_oracle_exactly() {
        let a = generators::power_law(96, 80, 1_500, 1.3, 3);
        let b = generators::clustered(80, 72, 1_200, 5, 4);
        assert_eq!(spgemm(&a, &b).to_coo().entries(), oracle(&a, &b));
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let a = generators::power_law(200, 200, 6_000, 1.4, 11);
        let want = spgemm(&a, &a);
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(par_spgemm(&pool, &a, &a), want, "threads={threads}");
        }
    }

    #[test]
    fn accumulator_choice_is_size_driven() {
        // Small outputs always dense; wide sparse rows go to the hash.
        assert!(use_dense_accumulator(1, DENSE_ACCUM_MIN_COLS));
        assert!(!use_dense_accumulator(10, 100_000));
        assert!(use_dense_accumulator(25_000, 100_000));
    }

    #[test]
    fn symbolic_bounds_count_stored_work() {
        let a = generators::uniform(40, 40, 300, 5);
        let (bounds, total) = symbolic_bounds(&a, &a);
        assert_eq!(total, bounds.iter().sum::<u64>());
        assert_eq!(total, stored_work(&a, &a));
        let (cols, _) = a.row(7);
        let want: u64 = cols.iter().map(|&k| a.row_nnz(k as usize) as u64).sum();
        assert_eq!(bounds[7], want);
    }

    #[test]
    fn smash_emission_matches_encode_of_csr_product() {
        let a = generators::clustered(64, 64, 900, 4, 9);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let c = spgemm(&a, &a);
        let want = SmashMatrix::encode(&c, cfg.clone());
        assert_eq!(spgemm_smash(&a, &a, cfg.clone()), want);
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                par_spgemm_smash(&pool, &a, &a, cfg.clone()),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_spmm_smash_matches_serial_kernel() {
        let a = generators::uniform(56, 64, 700, 3);
        let b = generators::clustered(64, 48, 500, 4, 4);
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        let want = native::spmm_smash(&sa, &sb);
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                par_spmm_smash(&pool, &sa, &sb).entries(),
                want.entries(),
                "threads={threads}"
            );
        }
    }
}
