//! Native row-wise **Gustavson SpGEMM** engine: `C = A · B` with both
//! operands in CSR, emitted straight into CSR (or SMASH) with exact
//! per-row allocation — no COO detour, no post-hoc sort of the whole
//! output.
//!
//! # Algorithm
//!
//! Gustavson's method walks each row `i` of `A` and scatters
//! `A[i,k] · B[k,:]` into a row accumulator — the classic sparse × sparse
//! formulation whose irregular, input-dependent accesses are exactly the
//! indexing bottleneck the SMASH paper attacks. Two passes:
//!
//! 1. **Symbolic** ([`symbolic_bounds`]): per output row, the upper bound
//!    `ub[i] = Σ_{k ∈ A[i,:]} nnz(B[k,:])` — both the accumulator sizing
//!    hint and (summed) the stored-work estimate the executor's `Auto`
//!    mode dispatches on.
//! 2. **Numeric**: per row, scatter into one of two accumulators chosen
//!    from `ub[i]` alone (see [`use_dense_accumulator`]):
//!    * a **dense accumulator** — value array over all `b.cols()` columns
//!      with epoch stamps (O(1) reset) and a touched-column list — when
//!      the row bound is wide relative to the output width;
//!    * a **sorted hash scratchpad** — open-addressed map sized to the
//!      row bound, drained through a sort — when the row is sparse enough
//!      that touching `b.cols()` slots would dominate.
//!
//! # Determinism and the inner-product oracle
//!
//! Both accumulators fold contributions in ascending-`k` order with
//! [`Scalar::mul_add`], which is *exactly* the fold
//! `Csr::spmm_inner_row` performs per `(i, j)` — so the engine's output
//! is `==` (triplet-exact, not approximately) to the inner-product
//! oracle, and dense and hash rows are bit-identical to each other.
//! The accumulator choice depends only on `(ub[i], b.cols())`, and the
//! parallel driver hands **disjoint, contiguous** row ranges (balanced by
//! the symbolic bounds through `partition_by_weight`) to workers that
//! write pre-sized private chunks spliced back in row order — so output
//! is bit-identical at every thread count.
//!
//! # Cancellation policy
//!
//! Exact zeros are dropped, like every sparse × sparse kernel in this
//! crate (see the policy note in [`crate::native`]): a structurally-hit
//! position whose accumulated value cancels to ±0.0 is not stored.
//!
//! # Example
//!
//! ```
//! use smash_kernels::Executor;
//! use smash_matrix::generators;
//!
//! let a = generators::power_law(128, 128, 2_000, 1.2, 7);
//! let c = Executor::auto().spgemm(&a, &a); // A², dispatched by stored work
//! let oracle = a.spmm_inner(&a.to_csc()).unwrap();
//! assert_eq!(c.to_coo().entries(), oracle.entries()); // exact, not approx
//! ```

use crate::error::SmashError;
use crate::operand::{check_smash_spmm_operands, spmm_smash_row, SmashMergeOperand};
use smash_core::{for_each_line_block, Layout, SmashConfig, SmashMatrix};
use smash_matrix::{Coo, Csr, CsrBuilder, Scalar};
use smash_parallel::{partition_by_weight, ThreadPool};
use std::ops::Range;

/// Output widths up to this many columns always use the dense
/// accumulator: the value/stamp arrays fit comfortably in cache, so the
/// hash scratchpad's probing and drain-sort can't win.
pub const DENSE_ACCUM_MIN_COLS: usize = 256;

/// Above [`DENSE_ACCUM_MIN_COLS`], the dense accumulator is used when the
/// row's nnz upper bound is at least `1/DENSE_ACCUM_FRACTION` of the
/// output width — dense rows amortize the touched-list sort better than
/// the hash map amortizes probing.
pub const DENSE_ACCUM_FRACTION: u64 = 4;

/// Whether the numeric pass uses the dense accumulator (vs. the hash
/// scratchpad) for a row whose symbolic upper bound is `ub`, writing into
/// `n` output columns.
///
/// The choice is a pure function of `(ub, n)` — never of thread count or
/// scheduling — which is one leg of the engine's determinism guarantee.
pub fn use_dense_accumulator(ub: u64, n: usize) -> bool {
    n <= DENSE_ACCUM_MIN_COLS || ub.saturating_mul(DENSE_ACCUM_FRACTION) >= n as u64
}

/// The symbolic pass: per-row upper bounds on `nnz(C[i,:])` plus their
/// sum (the total stored work, `Σ_{(i,k) ∈ A} nnz(B[k,:])` — the flop
/// count Gustavson performs and the quantity `Auto` dispatch weighs).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn symbolic_bounds<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> (Vec<u64>, u64) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut bounds = vec![0u64; a.rows()];
    let mut total = 0u64;
    for (i, ub) in bounds.iter_mut().enumerate() {
        let (cols, _) = a.row(i);
        *ub = cols
            .iter()
            .map(|&k| b.row_nnz(k as usize) as u64)
            .sum::<u64>();
        total += *ub;
    }
    (bounds, total)
}

/// The total stored work of `A · B` without materializing the per-row
/// bounds — what [`crate::Executor`] feeds its serial/parallel heuristic.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn stored_work<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    a.col_ind()
        .iter()
        .map(|&k| b.row_nnz(k as usize) as u64)
        .sum()
}

/// Dense row accumulator: one value slot per output column, an epoch
/// stamp per slot (so reset is O(1), not O(n)), and the list of touched
/// columns for output-sensitive draining.
struct DenseAcc<T> {
    vals: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl<T: Scalar> DenseAcc<T> {
    fn new(n: usize) -> Self {
        DenseAcc {
            vals: vec![T::ZERO; n],
            stamp: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    fn begin_row(&mut self) {
        self.touched.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wraparound (once per 2^32 rows): hard-reset the
                // stamps so stale marks can't alias the new epoch.
                self.stamp.fill(0);
                1
            }
        };
    }

    #[inline]
    fn scatter(&mut self, j: u32, av: T, bv: T) {
        let slot = j as usize;
        if self.stamp[slot] == self.epoch {
            self.vals[slot] = av.mul_add(bv, self.vals[slot]);
        } else {
            self.stamp[slot] = self.epoch;
            self.vals[slot] = av.mul_add(bv, T::ZERO);
            self.touched.push(j);
        }
    }

    /// Drains the touched columns in ascending order into `(cols, vals)`,
    /// dropping exact zeros.
    fn drain_sorted(&mut self, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        self.touched.sort_unstable();
        for &j in &self.touched {
            let v = self.vals[j as usize];
            if !v.is_zero() {
                cols.push(j);
                vals.push(v);
            }
        }
    }
}

/// Sentinel key marking an empty hash slot (no valid column index is
/// `u32::MAX`: CSR column indices are bounded by `cols() <= u32::MAX`).
const EMPTY: u32 = u32::MAX;

/// Open-addressed (linear probing) row accumulator keyed by output
/// column, sized per row from the symbolic bound and drained through a
/// sort. Grow-only across rows so a range of small rows after one wide
/// row never reallocates.
struct HashAcc<T> {
    keys: Vec<u32>,
    vals: Vec<T>,
    /// Occupied slot indices, for O(occupied) reset and draining.
    slots: Vec<u32>,
    mask: usize,
}

impl<T: Scalar> HashAcc<T> {
    fn new() -> Self {
        HashAcc {
            keys: Vec::new(),
            vals: Vec::new(),
            slots: Vec::new(),
            mask: 0,
        }
    }

    /// Prepares for a row with at most `ub` distinct columns: capacity at
    /// least `2·ub` (load factor ≤ ½ so probing stays short and always
    /// terminates), power of two for mask addressing.
    fn begin_row(&mut self, ub: u64) {
        let want = (ub.max(4) as usize).saturating_mul(2).next_power_of_two();
        if want > self.keys.len() {
            self.keys = vec![EMPTY; want];
            self.vals = vec![T::ZERO; want];
            self.mask = want - 1;
        } else {
            for &s in &self.slots {
                self.keys[s as usize] = EMPTY;
            }
        }
        self.slots.clear();
    }

    #[inline]
    fn scatter(&mut self, j: u32, av: T, bv: T) {
        let mut idx = (j as usize).wrapping_mul(0x9E37_79B9) & self.mask;
        loop {
            let k = self.keys[idx];
            if k == j {
                self.vals[idx] = av.mul_add(bv, self.vals[idx]);
                return;
            }
            if k == EMPTY {
                self.keys[idx] = j;
                self.vals[idx] = av.mul_add(bv, T::ZERO);
                self.slots.push(idx as u32);
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Drains the occupied slots in ascending column order into
    /// `(cols, vals)`, dropping exact zeros.
    fn drain_sorted(&mut self, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        let base = cols.len();
        for &s in &self.slots {
            let v = self.vals[s as usize];
            if !v.is_zero() {
                cols.push(self.keys[s as usize]);
                vals.push(v);
            }
        }
        // Sort the freshly appended tail by column, carrying values along.
        let mut order: Vec<u32> = (0..(cols.len() - base) as u32).collect();
        order.sort_unstable_by_key(|&p| cols[base + p as usize]);
        let tail_cols: Vec<u32> = order.iter().map(|&p| cols[base + p as usize]).collect();
        let tail_vals: Vec<T> = order.iter().map(|&p| vals[base + p as usize]).collect();
        cols[base..].copy_from_slice(&tail_cols);
        vals[base..].clone_from_slice(&tail_vals);
    }
}

/// One worker's share of the numeric pass: per-row entry counts plus the
/// concatenated (column, value) stream, in row order. Chunks from
/// disjoint row ranges splice into the final CSR through
/// [`CsrBuilder::push_row_chunk`] with no per-entry re-sorting.
struct RowChunk<T> {
    counts: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T> Default for RowChunk<T> {
    fn default() -> Self {
        RowChunk {
            counts: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }
}

/// Runs the numeric pass over `rows`, invoking `emit(i, cols, vals)` per
/// row in ascending row order — `cols` strictly increasing, exact zeros
/// already dropped. The scratch accumulators live across the whole range.
fn gustavson_rows<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: Range<usize>,
    bounds: &[u64],
    mut emit: impl FnMut(usize, &[u32], &[T]),
) {
    let n = b.cols();
    let mut dense: Option<DenseAcc<T>> = None;
    let mut hash = HashAcc::new();
    let mut cols: Vec<u32> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for i in rows {
        cols.clear();
        vals.clear();
        let (a_cols, a_vals) = a.row(i);
        let ub = bounds[i];
        if ub > 0 {
            if use_dense_accumulator(ub, n) {
                let acc = dense.get_or_insert_with(|| DenseAcc::new(n));
                acc.begin_row();
                for (&k, &av) in a_cols.iter().zip(a_vals) {
                    let (b_cols, b_vals) = b.row(k as usize);
                    for (&j, &bv) in b_cols.iter().zip(b_vals) {
                        acc.scatter(j, av, bv);
                    }
                }
                acc.drain_sorted(&mut cols, &mut vals);
            } else {
                hash.begin_row(ub);
                for (&k, &av) in a_cols.iter().zip(a_vals) {
                    let (b_cols, b_vals) = b.row(k as usize);
                    for (&j, &bv) in b_cols.iter().zip(b_vals) {
                        hash.scatter(j, av, bv);
                    }
                }
                hash.drain_sorted(&mut cols, &mut vals);
            }
        }
        emit(i, &cols, &vals);
    }
}

/// Numeric pass over one row range, packaged as a spliceable chunk.
fn spgemm_chunk<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: Range<usize>,
    bounds: &[u64],
) -> RowChunk<T> {
    let mut chunk = RowChunk::default();
    gustavson_rows(a, b, rows, bounds, |_, cols, vals| {
        chunk.counts.push(cols.len() as u32);
        chunk.cols.extend_from_slice(cols);
        chunk.vals.extend_from_slice(vals);
    });
    chunk
}

/// Splices per-range chunks (in row order) into a CSR with exact
/// allocation: the builder's arrays are sized to the true output nnz
/// before the first entry lands.
fn assemble<T: Scalar>(rows: usize, cols: usize, chunks: Vec<RowChunk<T>>) -> Csr<T> {
    let nnz: usize = chunks.iter().map(|c| c.cols.len()).sum();
    let mut builder = CsrBuilder::with_capacity(cols, rows, nnz);
    for chunk in &chunks {
        builder.push_row_chunk(&chunk.counts, &chunk.cols, &chunk.vals);
    }
    builder.finish()
}

/// Serial Gustavson SpGEMM: `C = A · B`, both CSR, emitted directly into
/// CSR. Triplet-exact to the `Csr::spmm_inner` oracle (see the
/// [module docs](self)).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn spgemm<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    let (bounds, _) = symbolic_bounds(a, b);
    assemble(
        a.rows(),
        b.cols(),
        vec![spgemm_chunk(a, b, 0..a.rows(), &bounds)],
    )
}

/// Parallel Gustavson SpGEMM over nnz-balanced contiguous row ranges —
/// bit-identical to [`spgemm`] at every thread count (workers run the
/// identical per-row body over disjoint ranges; the main thread splices
/// in row order).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn par_spgemm<T: Scalar>(pool: &ThreadPool, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    let (bounds, _) = symbolic_bounds(a, b);
    let ranges = partition_by_weight(a.rows(), pool.threads(), |i| bounds[i]);
    let mut chunks: Vec<RowChunk<T>> = Vec::new();
    chunks.resize_with(ranges.len(), RowChunk::default);
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(chunks.iter_mut()) {
            let bounds = &bounds;
            s.execute(move || *slot = spgemm_chunk(a, b, range, bounds));
        }
    });
    assemble(a.rows(), b.cols(), chunks)
}

/// Per-range SMASH emission: runs the numeric pass and folds each output
/// row straight through the encoder's per-line block routine, producing
/// the `(bit indices, padded block values)` part the shared assembly
/// consumes.
fn spgemm_smash_part<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    rows: Range<usize>,
    bounds: &[u64],
    b0: usize,
    bpl: usize,
) -> (Vec<usize>, Vec<T>) {
    let mut bits = Vec::new();
    let mut nza = Vec::new();
    let mut block = vec![T::ZERO; b0];
    gustavson_rows(a, b, rows, bounds, |i, cols, vals| {
        let base = i * bpl;
        for_each_line_block(cols, vals, &mut block, |blk, block_vals| {
            bits.push(base + blk);
            nza.extend_from_slice(block_vals);
        });
    });
    (bits, nza)
}

/// Gustavson SpGEMM emitting straight into the SMASH encoding
/// (compress-on-the-fly): each output row is folded through the same
/// per-line block routine the encoder uses, so the result is `==` to
/// `SmashMatrix::encode(&spgemm(a, b), config)` without ever
/// materializing the intermediate CSR.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `config` is not row-major.
pub fn spgemm_smash<T: Scalar>(a: &Csr<T>, b: &Csr<T>, config: SmashConfig) -> SmashMatrix<T> {
    assert_eq!(config.layout(), Layout::RowMajor, "emission is row-major");
    let (bounds, _) = symbolic_bounds(a, b);
    let b0 = config.block_size();
    let bpl = b.cols().div_ceil(b0);
    let part = spgemm_smash_part(a, b, 0..a.rows(), &bounds, b0, bpl);
    SmashMatrix::from_bit_blocks(a.rows(), b.cols(), config, &[part])
        .expect("Gustavson emission preserves the encoder's invariants")
}

/// Parallel [`spgemm_smash`]: workers encode disjoint row ranges, the
/// shared assembly splices them in line order — `==` to the serial
/// emission at every thread count.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `config` is not row-major.
pub fn par_spgemm_smash<T: Scalar>(
    pool: &ThreadPool,
    a: &Csr<T>,
    b: &Csr<T>,
    config: SmashConfig,
) -> SmashMatrix<T> {
    assert_eq!(config.layout(), Layout::RowMajor, "emission is row-major");
    let (bounds, _) = symbolic_bounds(a, b);
    let b0 = config.block_size();
    let bpl = b.cols().div_ceil(b0);
    let ranges = partition_by_weight(a.rows(), pool.threads(), |i| bounds[i]);
    let mut parts: Vec<(Vec<usize>, Vec<T>)> = vec![Default::default(); ranges.len()];
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(parts.iter_mut()) {
            let bounds = &bounds;
            s.execute(move || *slot = spgemm_smash_part(a, b, range, bounds, b0, bpl));
        }
    });
    SmashMatrix::from_bit_blocks(a.rows(), b.cols(), config, &parts)
        .expect("Gustavson emission preserves the encoder's invariants")
}

/// Row-parallel SMASH × SMASH SpMM, bit-identical to
/// [`crate::native::spmm_smash`] at every thread count: each worker runs
/// the serial per-row merge body over a disjoint row-line range (balanced
/// by A's per-line block counts), and the triplets splice in row order.
///
/// # Panics
///
/// Panics if the operands are not 1-level row-major/col-major with
/// matching block sizes, or dimensions disagree.
pub fn par_spmm_smash<T: Scalar>(
    pool: &ThreadPool,
    a: &SmashMatrix<T>,
    b: &SmashMatrix<T>,
) -> Coo<T> {
    check_smash_spmm_operands(a, b);
    let a_op = SmashMergeOperand::new(a);
    let b_op = SmashMergeOperand::new(b);
    let starts = a.line_block_starts();
    let ranges = partition_by_weight(a.rows(), pool.threads(), |i| {
        (starts[i + 1] - starts[i]) as u64
    });
    let mut chunks: Vec<Vec<(u32, u32, T)>> = vec![Vec::new(); ranges.len()];
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(chunks.iter_mut()) {
            let (a_op, b_op) = (&a_op, &b_op);
            s.execute(move || {
                let mut out = Vec::new();
                for i in range {
                    spmm_smash_row(i, a_op, b_op, |j, v| out.push((i as u32, j as u32, v)));
                }
                *slot = out;
            });
        }
    });
    let nnz = chunks.iter().map(Vec::len).sum();
    let mut c = Coo::with_capacity(a.rows(), b.cols(), nnz);
    for (i, j, v) in chunks.into_iter().flatten() {
        c.push(i as usize, j as usize, v);
    }
    c.compress();
    c
}

/// Bytes of one emitted `(column, value)` entry in the engine's staging
/// and splice arrays: a `u32` column index plus one scalar.
fn entry_bytes<T>() -> u64 {
    (4 + std::mem::size_of::<T>()) as u64
}

/// Upper bound on the accumulator scratch one row needs, mirroring the
/// engine's own [`use_dense_accumulator`] choice for a row with symbolic
/// bound `ub` writing into `n` output columns — a pure function of
/// `(ub, n)`, exactly like the choice itself.
pub fn row_scratch_bytes<T: Scalar>(ub: u64, n: usize) -> u64 {
    let scalar = std::mem::size_of::<T>() as u64;
    if use_dense_accumulator(ub, n) {
        // DenseAcc: value + stamp per output column, plus the touched list
        // (at most min(ub, n) columns).
        (n as u64).saturating_mul(scalar + 4) + ub.min(n as u64).saturating_mul(4)
    } else {
        // HashAcc: keys + values over the power-of-two capacity (load
        // factor ≤ ½), plus the occupied-slot list.
        let cap = (ub.max(4)).saturating_mul(2).next_power_of_two();
        cap.saturating_mul(4 + scalar) + ub.saturating_mul(4)
    }
}

/// Upper bound on the **transient engine memory** of an unchunked
/// [`spgemm`] run over these symbolic `bounds` into `n` output columns:
/// the staged `(column, value)` stream plus the splice into the builder
/// (each at most `Σ ub` entries), plus the widest row's accumulator
/// scratch. This is the estimate the executor's
/// [`MemoryBudget`](crate::MemoryBudget) is checked against.
pub fn estimate_engine_bytes<T: Scalar>(bounds: &[u64], n: usize) -> u64 {
    let total: u64 = bounds.iter().sum();
    let max_row = bounds
        .iter()
        .map(|&ub| row_scratch_bytes::<T>(ub, n))
        .max()
        .unwrap_or(0);
    total
        .saturating_mul(entry_bytes::<T>())
        .saturating_mul(2)
        .saturating_add(max_row)
}

/// Accounting report of a [`spgemm_chunked`] run: how the row-streamed
/// execution stayed inside its scratch budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedRun {
    /// Number of row chunks the numeric pass was split into.
    pub chunks: usize,
    /// Peak transient scratch across all chunks (upper-bound accounting:
    /// staged entries at their symbolic bound plus the chunk's widest
    /// accumulator). Guaranteed `<= budget_bytes` on success.
    pub peak_scratch_bytes: u64,
    /// The scratch budget the run was held to.
    pub budget_bytes: u64,
}

/// Row-chunked Gustavson SpGEMM: identical output to [`spgemm`], with the
/// transient engine memory (per-chunk staging plus accumulator scratch)
/// capped at `scratch_budget` bytes. Rows are processed in ascending
/// order through the same per-row body as the unchunked engine
/// (`gustavson_rows` via the chunk packager), and each chunk is spliced
/// into the output builder before the next chunk's staging is allocated —
/// so the result is **bit-identical** to [`spgemm`], only the peak
/// scratch differs.
///
/// The exact-sized output CSR itself is exempt from the budget (it is the
/// caller's requested result, not engine scratch); the budget caps what
/// the engine allocates *on top of* the output.
///
/// # Errors
///
/// Returns [`SmashError::ResourceExhausted`] if even a single row's
/// staging plus accumulator cannot fit the budget — there is no smaller
/// execution unit to degrade to. `needed` reports that minimum.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `bounds.len() != a.rows()`
/// (callers obtain `bounds` from [`symbolic_bounds`]).
pub fn spgemm_chunked<T: Scalar>(
    a: &Csr<T>,
    b: &Csr<T>,
    bounds: &[u64],
    scratch_budget: u64,
) -> Result<(Csr<T>, ChunkedRun), SmashError> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(bounds.len(), a.rows(), "one symbolic bound per output row");
    let n = b.cols();
    let mut builder = CsrBuilder::new(n);
    let mut run = ChunkedRun {
        chunks: 0,
        peak_scratch_bytes: 0,
        budget_bytes: scratch_budget,
    };
    // Greedy chunking: extend the current chunk while its staging (counts
    // plus staged entries at their symbolic bound) plus the widest
    // accumulator seen still fits the budget.
    let mut start = 0usize;
    let mut stage = 0u64;
    let mut acc = 0u64;
    let mut flush = |start: usize, end: usize, footprint: u64, run: &mut ChunkedRun| {
        let chunk = spgemm_chunk(a, b, start..end, bounds);
        builder.push_row_chunk(&chunk.counts, &chunk.cols, &chunk.vals);
        run.chunks += 1;
        run.peak_scratch_bytes = run.peak_scratch_bytes.max(footprint);
    };
    for (i, &ub) in bounds.iter().enumerate() {
        let row_stage = ub.saturating_mul(entry_bytes::<T>()) + 4;
        let row_acc = row_scratch_bytes::<T>(ub, n);
        let row_min = row_stage.saturating_add(row_acc);
        if row_min > scratch_budget {
            return Err(SmashError::ResourceExhausted {
                needed: row_min,
                budget: scratch_budget,
            });
        }
        let grown = stage
            .saturating_add(row_stage)
            .saturating_add(acc.max(row_acc));
        if i > start && grown > scratch_budget {
            flush(start, i, stage.saturating_add(acc), &mut run);
            start = i;
            stage = 0;
            acc = 0;
        }
        stage = stage.saturating_add(row_stage);
        acc = acc.max(row_acc);
    }
    if start < bounds.len() || bounds.is_empty() {
        flush(start, bounds.len(), stage.saturating_add(acc), &mut run);
    }
    Ok((builder.finish(), run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use smash_matrix::generators;

    fn oracle(a: &Csr<f64>, b: &Csr<f64>) -> Vec<(u32, u32, f64)> {
        a.spmm_inner(&b.to_csc()).unwrap().entries().to_vec()
    }

    #[test]
    fn serial_matches_inner_product_oracle_exactly() {
        let a = generators::power_law(96, 80, 1_500, 1.3, 3);
        let b = generators::clustered(80, 72, 1_200, 5, 4);
        assert_eq!(spgemm(&a, &b).to_coo().entries(), oracle(&a, &b));
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let a = generators::power_law(200, 200, 6_000, 1.4, 11);
        let want = spgemm(&a, &a);
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(par_spgemm(&pool, &a, &a), want, "threads={threads}");
        }
    }

    #[test]
    fn accumulator_choice_is_size_driven() {
        // Small outputs always dense; wide sparse rows go to the hash.
        assert!(use_dense_accumulator(1, DENSE_ACCUM_MIN_COLS));
        assert!(!use_dense_accumulator(10, 100_000));
        assert!(use_dense_accumulator(25_000, 100_000));
    }

    #[test]
    fn symbolic_bounds_count_stored_work() {
        let a = generators::uniform(40, 40, 300, 5);
        let (bounds, total) = symbolic_bounds(&a, &a);
        assert_eq!(total, bounds.iter().sum::<u64>());
        assert_eq!(total, stored_work(&a, &a));
        let (cols, _) = a.row(7);
        let want: u64 = cols.iter().map(|&k| a.row_nnz(k as usize) as u64).sum();
        assert_eq!(bounds[7], want);
    }

    #[test]
    fn smash_emission_matches_encode_of_csr_product() {
        let a = generators::clustered(64, 64, 900, 4, 9);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let c = spgemm(&a, &a);
        let want = SmashMatrix::encode(&c, cfg.clone());
        assert_eq!(spgemm_smash(&a, &a, cfg.clone()), want);
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                par_spgemm_smash(&pool, &a, &a, cfg.clone()),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunked_run_is_bit_identical_and_respects_budget() {
        let a = generators::power_law(150, 150, 4_000, 1.3, 7);
        let want = spgemm(&a, &a);
        let (bounds, _) = symbolic_bounds(&a, &a);

        // A budget covering the whole unchunked estimate: one chunk.
        let full = estimate_engine_bytes::<f64>(&bounds, a.cols());
        let (c, run) = spgemm_chunked(&a, &a, &bounds, full).unwrap();
        assert_eq!(c, want, "roomy budget");
        assert_eq!(run.chunks, 1);
        assert!(run.peak_scratch_bytes <= run.budget_bytes);

        // The tightest budget every row fits alone in: many chunks, the
        // same bits, and the peak-accumulator accounting stays inside.
        let tight = bounds
            .iter()
            .map(|&ub| ub * entry_bytes::<f64>() + 4 + row_scratch_bytes::<f64>(ub, a.cols()))
            .max()
            .unwrap();
        let (c, run) = spgemm_chunked(&a, &a, &bounds, tight).unwrap();
        assert_eq!(c, want, "tight budget");
        assert!(run.chunks > 1, "tight budget must force chunking");
        assert!(
            run.peak_scratch_bytes <= run.budget_bytes,
            "peak {} must stay within budget {}",
            run.peak_scratch_bytes,
            run.budget_bytes
        );
    }

    #[test]
    fn chunked_run_reports_exhaustion_when_one_row_cannot_fit() {
        let a = generators::uniform(32, 32, 300, 5);
        let (bounds, _) = symbolic_bounds(&a, &a);
        let err = spgemm_chunked(&a, &a, &bounds, 1).expect_err("1 byte fits nothing");
        match err {
            SmashError::ResourceExhausted { needed, budget } => {
                assert_eq!(budget, 1);
                assert!(needed > 1);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn engine_estimate_scales_with_work() {
        let small = estimate_engine_bytes::<f64>(&[1, 2, 3], 64);
        let big = estimate_engine_bytes::<f64>(&[100, 200, 300], 64);
        assert!(big > small);
        // f32 entries are smaller than f64 entries.
        assert!(
            estimate_engine_bytes::<f32>(&[100], 64) < estimate_engine_bytes::<f64>(&[100], 64)
        );
        assert_eq!(estimate_engine_bytes::<f64>(&[], 64), 0);
    }

    #[test]
    fn par_spmm_smash_matches_serial_kernel() {
        let a = generators::uniform(56, 64, 700, 3);
        let b = generators::clustered(64, 48, 500, 4, 4);
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        let want = native::spmm_smash(&sa, &sb);
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(
                par_spmm_smash(&pool, &sa, &sb).entries(),
                want.entries(),
                "threads={threads}"
            );
        }
    }
}
