//! Instrumented format conversions (paper §4.1.3 and the Fig. 20
//! conversion-overhead experiment): CSR → SMASH and SMASH → CSR.

use crate::common::{lanes_of, sites, streams, vector_ops_of};
use smash_core::{SmashConfig, SmashMatrix};
use smash_matrix::{Csr, Scalar};
use smash_sim::{Engine, UopId};

/// Converts CSR to the hierarchical bitmap encoding, charging the engine
/// for the three steps of §4.1.3: discovering non-zero blocks, appending
/// them to the NZA, and building the bitmap hierarchy bottom-up.
pub fn csr_to_smash<E: Engine, T: Scalar>(
    e: &mut E,
    a: &Csr<T>,
    config: SmashConfig,
) -> SmashMatrix<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    let sm = SmashMatrix::encode(a, config);

    let col_a = e.alloc(4 * a.nnz(), 64);
    let val_a = e.alloc(vs as usize * a.nnz(), 64);
    let nza_a = e.alloc(vs as usize * sm.nza().len(), 64);
    let levels = sm.hierarchy().num_levels();
    let bitmap_addrs: Vec<u64> = (0..levels)
        .map(|l| e.alloc(sm.hierarchy().stored_level(l).len().div_ceil(8), 64))
        .collect();

    // Step 1 + Bitmap-0 marking: stream the CSR entries; per non-zero,
    // compute its block index and set the bit (read-modify-write on the
    // bitmap word).
    let mut j = 0u64;
    for i in 0..a.rows() {
        let (cols_i, _) = a.row(i);
        for _ in cols_i {
            let cld = e.load(streams::IND, col_a + 4 * j, &[]);
            let blk = e.alu(&[cld]); // block index = f(i, col)
            let word = e.load(streams::bitmap(0), bitmap_addrs[0] + (j / 16) * 8, &[blk]);
            let or = e.alu(&[word]);
            e.store(streams::bitmap(0), bitmap_addrs[0] + (j / 16) * 8, &[or]);
            j += 1;
            e.branch(sites::SPMV_INNER, true, &[]);
        }
    }
    // Step 2: materialize the NZA: zero-fill each block (SIMD stores), then
    // scatter the values.
    let b0 = sm.config().block_size();
    for blk in 0..sm.num_blocks() {
        for lane in 0..vector_ops_of::<T>(b0) {
            let off = (blk * b0 + lane * lanes) as u64;
            e.store(streams::NZA_A, nza_a + vs * off, &[]);
        }
    }
    let mut j = 0u64;
    for i in 0..a.rows() {
        let (cols_i, _) = a.row(i);
        for _ in cols_i {
            let vld = e.load(streams::VAL, val_a + vs * j, &[]);
            let addr = e.alu(&[]); // destination slot within the block
            e.store(streams::NZA_A, nza_a + (j % 64) * vs, &[vld, addr]);
            j += 1;
        }
    }
    // Step 3: build the upper levels bottom-up — stream each child level
    // word-wise, OR-reduce groups, store parent words.
    for l in 1..levels {
        let child_words = sm.hierarchy().stored_level(l - 1).len().div_ceil(64);
        let mut dep = UopId::NONE;
        for w in 0..child_words {
            let ld = e.load(
                streams::bitmap(l - 1),
                bitmap_addrs[l - 1] + 8 * w as u64,
                &[],
            );
            dep = e.alu(&[ld, dep]); // OR-reduce into the parent word
        }
        let parent_words = sm.hierarchy().stored_level(l).len().div_ceil(64);
        for w in 0..parent_words {
            e.store(streams::bitmap(l), bitmap_addrs[l] + 8 * w as u64, &[dep]);
        }
    }
    sm
}

/// Converts a SMASH matrix back to CSR, charging the engine for the scan of
/// the hierarchy (software cursor) and the per-element zero tests and
/// output stores.
pub fn smash_to_csr<E: Engine, T: Scalar>(e: &mut E, sm: &SmashMatrix<T>) -> Csr<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    let csr = sm.decode();

    let levels = sm.hierarchy().num_levels();
    let nza_a = e.alloc(vs as usize * sm.nza().len(), 64);
    let out_ind = e.alloc(4 * csr.nnz(), 64);
    let out_val = e.alloc(vs as usize * csr.nnz(), 64);
    let bitmap_addrs: Vec<u64> = (0..levels)
        .map(|l| e.alloc(sm.hierarchy().stored_level(l).len().div_ceil(8), 64))
        .collect();

    // Scan the hierarchy exactly like the software-only kernel.
    let mut next_word = vec![0usize; levels];
    let mut out = 0u64;
    let b0 = sm.config().block_size();
    for visit in sm.hierarchy().visits() {
        let word = visit.storage / 64;
        while next_word[visit.level] <= word {
            e.load(
                streams::bitmap(visit.level),
                bitmap_addrs[visit.level] + 8 * next_word[visit.level] as u64,
                &[],
            );
            next_word[visit.level] += 1;
        }
        let ctz = e.alu(&[]);
        e.alu(&[ctz]);
        if visit.level > 0 {
            continue;
        }
        // A block: load its values, test each for zero, store survivors.
        let ord = out as usize; // monotone proxy for the NZA cursor
        let _ = ord;
        for lane in 0..vector_ops_of::<T>(b0) {
            e.load(streams::NZA_A, nza_a + vs * (lane * lanes) as u64, &[]);
        }
        for _ in 0..b0 {
            e.branch(sites::ZERO_TEST, false, &[]);
        }
    }
    for _ in 0..csr.nnz() {
        e.store(streams::OUT, out_ind + 4 * out, &[]);
        e.store(streams::OUT, out_val + vs * out, &[]);
        e.alu(&[]);
        out += 1;
    }
    csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::generators;
    use smash_sim::CountEngine;

    #[test]
    fn roundtrip_preserves_matrix() {
        let a = generators::uniform(64, 64, 400, 3);
        let cfg = SmashConfig::row_major(&[2, 4, 16]).unwrap();
        let mut e = CountEngine::new();
        let sm = csr_to_smash(&mut e, &a, cfg);
        let mut e2 = CountEngine::new();
        let back = smash_to_csr(&mut e2, &sm);
        assert_eq!(back, a);
    }

    #[test]
    fn conversion_cost_scales_with_nnz() {
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let small = generators::uniform(64, 64, 200, 5);
        let large = generators::uniform(64, 64, 800, 5);
        let mut e1 = CountEngine::new();
        csr_to_smash(&mut e1, &small, cfg.clone());
        let mut e2 = CountEngine::new();
        csr_to_smash(&mut e2, &large, cfg);
        assert!(e2.finish().instructions() > e1.finish().instructions() * 2);
    }

    #[test]
    fn conversion_is_comparable_to_one_spmv() {
        // Fig. 20: for SpMV the conversions dominate a single kernel run
        // (roughly 30 % + 25 % vs 45 % of total time).
        let a = generators::uniform(96, 96, 900, 7);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let mut e = CountEngine::new();
        let sm = csr_to_smash(&mut e, &a, cfg);
        let conv = e.finish().instructions();
        let mut e = CountEngine::new();
        crate::spmv::spmv_hw_smash(
            &mut e,
            &mut smash_bmu::Bmu::new(),
            0,
            &sm,
            &crate::common::test_vector(96),
        );
        let kernel = e.finish().instructions();
        let ratio = conv as f64 / kernel as f64;
        assert!((0.3..3.0).contains(&ratio), "conversion/kernel = {ratio}");
    }
}
