//! Instrumented Sparse Matrix–Vector multiplication (`y = A * x`) for every
//! mechanism of the paper's evaluation.
//!
//! Each kernel both *computes* the result (returned, and checked against the
//! dense reference in tests) and *describes* its instruction stream to an
//! [`Engine`], including the data dependencies that make CSR's
//! `x[col_ind[j]]` a pointer chase (paper §2.1.1).

use crate::common::{lanes_of, sites, streams, vector_ops_of};
use smash_bmu::{Bmu, BmuBinding, MAX_HW_LEVELS};
use smash_core::SmashMatrix;
use smash_matrix::{Bcsr, Csr, Scalar};
use smash_sim::{Engine, UopId};

/// CSR SpMV exactly as TACO emits it (paper Code Listing 1): for each
/// non-zero, load the column index, use it to address `x` (a dependent
/// load), multiply with the value and accumulate.
pub fn spmv_csr<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, x: &[T]) -> Vec<T> {
    let vs = std::mem::size_of::<T>() as u64;
    assert_eq!(x.len(), a.cols(), "vector length must equal cols");
    let rows = a.rows();
    let row_ptr_a = e.alloc(4 * (rows + 1), 64);
    let col_a = e.alloc(4 * a.nnz(), 64);
    let val_a = e.alloc(vs as usize * a.nnz(), 64);
    let x_a = e.alloc(vs as usize * x.len(), 64);
    let y_a = e.alloc(vs as usize * rows, 64);

    let mut y = vec![T::ZERO; rows];
    // Hoisted load of row_ptr[0].
    let mut hi_load = e.load(streams::PTR, row_ptr_a, &[]);
    let _ = hi_load;
    for (i, yi) in y.iter_mut().enumerate() {
        let lo = a.row_ptr()[i] as u64;
        let (cols_i, vals_i) = a.row(i);
        // Load row_ptr[i + 1]; the inner-loop bound depends on it.
        hi_load = e.load(streams::PTR, row_ptr_a + 4 * (i as u64 + 1), &[]);
        let mut acc = UopId::NONE;
        let mut yv = T::ZERO;
        let n = cols_i.len();
        for (k, (&c, &v)) in cols_i.iter().zip(vals_i).enumerate() {
            let j = lo + k as u64;
            // j = A2_crd[jA]  — the indexing load...
            let cld = e.load(streams::IND, col_a + 4 * j, &[]);
            // ...sign-extend + address generation depend on it...
            let addr = e.alu(&[cld]);
            // ...and x[j] is the dependent (pointer-chasing) load.
            let xld = e.load(streams::X, x_a + vs * c as u64, &[addr]);
            let vld = e.load(streams::VAL, val_a + vs * j, &[]);
            let m = e.fmul(&[xld, vld]);
            acc = e.fadd(&[m, acc]);
            yv += v * x[c as usize];
            e.alu(&[]); // jA++
            e.branch(sites::SPMV_INNER, k + 1 < n, &[hi_load]);
        }
        *yi = yv;
        e.store(streams::OUT, y_a + vs * i as u64, &[acc]);
        e.alu(&[]); // i++
        e.branch(sites::SPMV_OUTER, i + 1 < rows, &[]);
    }
    y
}

/// Idealized CSR SpMV (paper Fig. 3): identical computation, but the
/// positions of non-zeros are known for free — no `col_ind` loads, no
/// dependent address generation, no `row_ptr` loads.
pub fn spmv_ideal<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, x: &[T]) -> Vec<T> {
    let vs = std::mem::size_of::<T>() as u64;
    assert_eq!(x.len(), a.cols(), "vector length must equal cols");
    let rows = a.rows();
    let val_a = e.alloc(vs as usize * a.nnz(), 64);
    let x_a = e.alloc(vs as usize * x.len(), 64);
    let y_a = e.alloc(vs as usize * rows, 64);

    let mut y = vec![T::ZERO; rows];
    let mut j = 0u64;
    for (i, yi) in y.iter_mut().enumerate() {
        let (cols_i, vals_i) = a.row(i);
        let mut acc = UopId::NONE;
        let mut yv = T::ZERO;
        let n = cols_i.len();
        for (k, (&c, &v)) in cols_i.iter().zip(vals_i).enumerate() {
            // Position is known: x is loaded with no producing dependency.
            let xld = e.load(streams::X, x_a + vs * c as u64, &[]);
            let vld = e.load(streams::VAL, val_a + vs * j, &[]);
            let m = e.fmul(&[xld, vld]);
            acc = e.fadd(&[m, acc]);
            yv += v * x[c as usize];
            e.alu(&[]); // loop counter
            e.branch(sites::SPMV_INNER, k + 1 < n, &[]);
            j += 1;
        }
        *yi = yv;
        e.store(streams::OUT, y_a + vs * i as u64, &[acc]);
        e.branch(sites::SPMV_OUTER, i + 1 < rows, &[]);
    }
    y
}

/// BCSR SpMV (TACO-BCSR baseline): one index per block, dense SIMD compute
/// inside each block — including its explicit zeros.
pub fn spmv_bcsr<E: Engine, T: Scalar>(e: &mut E, a: &Bcsr<T>, x: &[T]) -> Vec<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    assert_eq!(x.len(), a.cols(), "vector length must equal cols");
    let (br, bc) = a.block_shape();
    let n_block_rows = a.num_block_rows();
    let ptr_a = e.alloc(4 * (n_block_rows + 1), 64);
    let ind_a = e.alloc(4 * a.num_blocks(), 64);
    let val_a = e.alloc(vs as usize * a.nnz_stored(), 64);
    let x_a = e.alloc(vs as usize * x.len(), 64);
    let y_a = e.alloc(vs as usize * a.rows(), 64);

    let mut y = vec![T::ZERO; a.rows()];
    let bs = br * bc;
    let mut hi_load = e.load(streams::PTR, ptr_a, &[]);
    let _ = hi_load;
    for bi in 0..n_block_rows {
        hi_load = e.load(streams::PTR, ptr_a + 4 * (bi as u64 + 1), &[]);
        let lo = a.block_row_ptr()[bi] as usize;
        let hi = a.block_row_ptr()[bi + 1] as usize;
        // One accumulator chain per row of the block row.
        let mut accs = vec![UopId::NONE; br];
        let mut yvs = vec![T::ZERO; br];
        for k in lo..hi {
            let bcol = a.block_col_ind()[k] as usize;
            // Block index load + x base address generation (the only
            // indexing work per block).
            let ild = e.load(streams::IND, ind_a + 4 * k as u64, &[]);
            let addr = e.alu(&[ild]);
            let tile = &a.values()[k * bs..(k + 1) * bs];
            for lr in 0..br {
                let row = bi * br + lr;
                if row >= a.rows() {
                    break;
                }
                for lane in 0..vector_ops_of::<T>(bc) {
                    let off = (k * bs + lr * bc + lane * lanes) as u64;
                    let vld = e.load(streams::VAL, val_a + vs * off, &[]);
                    let xoff = (bcol * bc + lane * lanes) as u64;
                    let xld = e.load(streams::X, x_a + vs * xoff, &[addr]);
                    let m = e.fmul(&[vld, xld]);
                    accs[lr] = e.fadd(&[m, accs[lr]]);
                }
                for lc in 0..bc {
                    let col = bcol * bc + lc;
                    if col < a.cols() {
                        yvs[lr] += tile[lr * bc + lc] * x[col];
                    }
                }
            }
            e.alu(&[]); // k++
            e.branch(sites::BLOCK_LOOP, k + 1 < hi, &[hi_load]);
        }
        for lr in 0..br {
            let row = bi * br + lr;
            if row >= a.rows() {
                break;
            }
            y[row] = yvs[lr];
            e.store(streams::OUT, y_a + vs * row as u64, &[accs[lr]]);
        }
        e.alu(&[]);
        e.branch(sites::SPMV_OUTER, bi + 1 < n_block_rows, &[]);
    }
    y
}

/// Software-only SMASH SpMV (paper §4.4): the bitmap hierarchy is scanned in
/// software — word loads, count-trailing-zeros and AND-masking per set bit —
/// then each non-zero block is processed with SIMD, explicit zeros included.
pub fn spmv_sw_smash<E: Engine, T: Scalar>(e: &mut E, a: &SmashMatrix<T>, x: &[T]) -> Vec<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    assert_eq!(x.len(), a.cols(), "vector length must equal cols");
    let levels = a.hierarchy().num_levels();
    let b0 = a.config().block_size();
    let nza_a = e.alloc(vs as usize * a.nza().len(), 64);
    let x_a = e.alloc(vs as usize * x.len(), 64);
    let y_a = e.alloc(vs as usize * a.rows(), 64);
    let bitmap_addrs: Vec<u64> = (0..levels)
        .map(|l| e.alloc(a.hierarchy().stored_level(l).len().div_ceil(8), 64))
        .collect();

    let mut y = vec![T::ZERO; a.rows()];
    // Per-level scanning state: last word loaded, its uop, and the serial
    // CTZ/mask chain (each "find next set bit" consumes the previous
    // masked word — the §4.4 software loop is inherently sequential).
    let mut next_word = vec![0usize; levels];
    let mut word_uop = vec![UopId::NONE; levels];
    let mut scan_chain = vec![UopId::NONE; levels];
    let load_words =
        |e: &mut E, level: usize, upto: usize, next_word: &mut [usize], word_uop: &mut [UopId]| {
            while next_word[level] <= upto {
                word_uop[level] = e.load(
                    streams::bitmap(level),
                    bitmap_addrs[level] + 8 * next_word[level] as u64,
                    &[],
                );
                next_word[level] += 1;
            }
        };

    let mut ordinal = 0usize;
    let mut acc = UopId::NONE;
    let mut yv = T::ZERO;
    let mut cur_row = usize::MAX;
    for visit in a.hierarchy().visits() {
        let word = visit.storage / 64;
        load_words(e, visit.level, word, &mut next_word, &mut word_uop);
        // Find the set bit: CTZ on the (previously masked) word, then mask
        // it off for the next search — a serial dependence chain.
        let ctz = e.alu(&[word_uop[visit.level], scan_chain[visit.level]]);
        let mask = e.alu(&[ctz]); // AND-mask
        scan_chain[visit.level] = mask;
        e.branch(sites::SCAN_FOUND, true, &[ctz]);
        if visit.level > 0 {
            // Descend: update the child-level scan pointer.
            e.alu(&[ctz]);
            continue;
        }
        // A non-zero block: compute its row/column (2 ALU: div/mod by the
        // padded stride) and run the SIMD block kernel.
        let idx1 = e.alu(&[ctz]);
        let idx2 = e.alu(&[idx1]);
        let (row, col) = a.block_row_col(visit.logical);
        if row != cur_row {
            if cur_row != usize::MAX {
                y[cur_row] = yv;
                e.store(streams::OUT, y_a + vs * cur_row as u64, &[acc]);
            }
            e.branch(sites::LINE_CHANGE, true, &[idx2]);
            cur_row = row;
            yv = T::ZERO;
            acc = UopId::NONE;
        }
        let block = a.nza().block(ordinal);
        for lane in 0..vector_ops_of::<T>(b0) {
            let off = (ordinal * b0 + lane * lanes) as u64;
            let vld = e.load(streams::NZA_A, nza_a + vs * off, &[]);
            let xld = e.load(streams::X, x_a + vs * (col + lane * lanes) as u64, &[idx2]);
            let m = e.fmul(&[vld, xld]);
            acc = e.fadd(&[m, acc]);
        }
        for (k, &v) in block.iter().enumerate() {
            let c = col + k;
            if c < a.cols() {
                yv += v * x[c];
            }
        }
        ordinal += 1;
    }
    if cur_row != usize::MAX {
        y[cur_row] = yv;
        e.store(streams::OUT, y_a + vs * cur_row as u64, &[acc]);
    }
    // The scan reads each stored bitmap to its end.
    for level in 0..levels {
        let total = a.hierarchy().stored_level(level).len().div_ceil(64);
        while next_word[level] < total {
            e.load(
                streams::bitmap(level),
                bitmap_addrs[level] + 8 * next_word[level] as u64,
                &[],
            );
            next_word[level] += 1;
        }
    }
    y
}

/// Full SMASH SpMV (paper Algorithm 1): the BMU scans the hierarchy; the
/// core executes one `pbmap`/`rdind` pair per non-zero block and SIMD
/// compute over the block's elements.
pub fn spmv_hw_smash<E: Engine, T: Scalar>(
    e: &mut E,
    bmu: &mut Bmu,
    grp: usize,
    a: &SmashMatrix<T>,
    x: &[T],
) -> Vec<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    assert_eq!(x.len(), a.cols(), "vector length must equal cols");
    let levels = a.hierarchy().num_levels();
    assert!(
        levels <= MAX_HW_LEVELS,
        "hardware buffers at most {MAX_HW_LEVELS} levels"
    );
    let b0 = a.config().block_size();
    let nza_a = e.alloc(vs as usize * a.nza().len(), 64);
    let x_a = e.alloc(vs as usize * x.len(), 64);
    let y_a = e.alloc(vs as usize * a.rows(), 64);
    let mut level_addrs = [0u64; MAX_HW_LEVELS];
    for (l, addr) in level_addrs.iter_mut().enumerate().take(levels) {
        *addr = e.alloc(a.hierarchy().stored_level(l).len().div_ceil(8), 64);
    }
    let binding = BmuBinding {
        hierarchy: a.hierarchy(),
        level_addrs,
    };

    // Algorithm 1 lines 2-8: matinfo, bmapinfo per level, rdbmap per level
    // (top first, which arms the scan).
    bmu.matinfo(e, grp, a.rows() as u32, a.cols() as u32);
    for (lvl, &r) in a.config().ratios().iter().enumerate() {
        bmu.bmapinfo(e, grp, lvl, r);
    }
    for lvl in (0..levels).rev() {
        bmu.rdbmap(e, grp, lvl, level_addrs[lvl], &binding);
    }

    let mut y = vec![T::ZERO; a.rows()];
    let mut acc = UopId::NONE;
    let mut yv = T::ZERO;
    let mut cur_row = usize::MAX;
    let mut ordinal = 0usize;
    let num_blocks = a.num_blocks();
    loop {
        // Lines 11-12: scan, then read the indices.
        let p = bmu.pbmap(e, grp, &binding);
        let Some(block_logical) = p.block else { break };
        let ind = bmu.rdind(e, grp);
        let (row, col) = a.block_row_col(block_logical);
        debug_assert_eq!((ind.row as usize, ind.col as usize), (row, col));

        if row != cur_row {
            if cur_row != usize::MAX {
                y[cur_row] = yv;
                e.store(streams::OUT, y_a + vs * cur_row as u64, &[acc]);
            }
            e.branch(sites::LINE_CHANGE, true, &[ind.uop]);
            cur_row = row;
            yv = T::ZERO;
            acc = UopId::NONE;
        }
        // x base address from the column index register.
        let addr = e.alu(&[ind.uop]);
        let block = a.nza().block(ordinal);
        for lane in 0..vector_ops_of::<T>(b0) {
            let off = (ordinal * b0 + lane * lanes) as u64;
            let vld = e.load(streams::NZA_A, nza_a + vs * off, &[]);
            let xld = e.load(streams::X, x_a + vs * (col + lane * lanes) as u64, &[addr]);
            let m = e.fmul(&[vld, xld]);
            acc = e.fadd(&[m, acc]);
        }
        for (k, &v) in block.iter().enumerate() {
            let c = col + k;
            if c < a.cols() {
                yv += v * x[c];
            }
        }
        ordinal += 1;
        e.alu(&[]); // ctrNZ++
        e.branch(sites::SPMV_OUTER, ordinal < num_blocks, &[]);
    }
    if cur_row != usize::MAX {
        y[cur_row] = yv;
        e.store(streams::OUT, y_a + vs * cur_row as u64, &[acc]);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_vector;
    use smash_core::SmashConfig;
    use smash_matrix::generators;
    use smash_sim::{CountEngine, SimEngine, SystemConfig, UopClass};

    fn check(y: &[f64], want: &[f64]) {
        assert_eq!(y.len(), want.len());
        for (a, b) in y.iter().zip(want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    fn matrices() -> Vec<Csr<f64>> {
        vec![
            generators::uniform(60, 80, 400, 3),
            generators::banded(64, 64, 3, 300, 4),
            generators::clustered(50, 70, 350, 5, 5),
            generators::block_dense(48, 48, 400, 4, 6),
        ]
    }

    #[test]
    fn all_mechanisms_compute_the_same_product() {
        for a in matrices() {
            let x = test_vector(a.cols());
            let want = a.spmv(&x);

            let mut e = CountEngine::new();
            check(&spmv_csr(&mut e, &a, &x), &want);

            let mut e = CountEngine::new();
            check(&spmv_ideal(&mut e, &a, &x), &want);

            let mut e = CountEngine::new();
            let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
            check(&spmv_bcsr(&mut e, &bcsr, &x), &want);

            for ratios in [&[2u32][..], &[2, 4], &[2, 4, 16], &[8, 4, 2]] {
                let sm = SmashMatrix::encode(&a, SmashConfig::row_major(ratios).unwrap());
                let mut e = CountEngine::new();
                check(&spmv_sw_smash(&mut e, &sm, &x), &want);

                let mut e = CountEngine::new();
                let mut bmu = Bmu::new();
                check(&spmv_hw_smash(&mut e, &mut bmu, 0, &sm, &x), &want);
            }
        }
    }

    #[test]
    fn ideal_executes_fewer_instructions_than_csr() {
        let a = generators::uniform(100, 100, 1000, 7);
        let x = test_vector(100);
        let mut e1 = CountEngine::new();
        spmv_csr(&mut e1, &a, &x);
        let csr = e1.finish();
        let mut e2 = CountEngine::new();
        spmv_ideal(&mut e2, &a, &x);
        let ideal = e2.finish();
        let ratio = ideal.instructions() as f64 / csr.instructions() as f64;
        assert!(
            (0.45..0.85).contains(&ratio),
            "ideal/csr instruction ratio {ratio}"
        );
    }

    #[test]
    fn smash_executes_fewer_instructions_than_csr() {
        let a = generators::clustered(128, 128, 1600, 4, 9);
        let x = test_vector(128);
        let mut e1 = CountEngine::new();
        spmv_csr(&mut e1, &a, &x);
        let csr = e1.finish();

        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        let mut e2 = CountEngine::new();
        let mut bmu = Bmu::new();
        spmv_hw_smash(&mut e2, &mut bmu, 0, &sm, &x);
        let smash = e2.finish();
        let ratio = smash.instructions() as f64 / csr.instructions() as f64;
        assert!(ratio < 0.8, "smash/csr instruction ratio {ratio}");
        // And the coproc (SMASH ISA) instructions appear.
        assert!(smash.count(UopClass::Coproc) > 0);
    }

    #[test]
    fn smash_is_faster_than_csr_in_simulation() {
        let a = generators::uniform(196, 196, 4000, 11);
        let x = test_vector(196);
        let mut e1 = SimEngine::new(SystemConfig::paper_table2());
        spmv_csr(&mut e1, &a, &x);
        let csr = e1.finish();

        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        let mut e2 = SimEngine::new(SystemConfig::paper_table2());
        let mut bmu = Bmu::new();
        spmv_hw_smash(&mut e2, &mut bmu, 0, &sm, &x);
        let smash = e2.finish();
        let speedup = csr.cycles as f64 / smash.cycles as f64;
        assert!(speedup > 1.05, "speedup {speedup}");
    }

    #[test]
    fn sw_smash_charges_bitmap_word_loads() {
        let a = generators::uniform(64, 64, 256, 13);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        let x = test_vector(64);
        let mut e = CountEngine::new();
        spmv_sw_smash(&mut e, &sm, &x);
        let s = e.finish();
        let min_words: u64 = (0..2)
            .map(|l| sm.hierarchy().stored_level(l).len().div_ceil(64) as u64)
            .sum();
        assert!(
            s.count(UopClass::Load) >= min_words,
            "only {} loads for {min_words} bitmap words",
            s.count(UopClass::Load)
        );
    }

    #[test]
    fn empty_matrix_yields_zero_vector() {
        let a = Csr::<f64>::from_coo(&smash_matrix::Coo::new(8, 8));
        let x = test_vector(8);
        let mut e = CountEngine::new();
        assert_eq!(spmv_csr(&mut e, &a, &x), vec![0.0; 8]);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        assert_eq!(spmv_hw_smash(&mut e, &mut bmu, 0, &sm, &x), vec![0.0; 8]);
    }
}
