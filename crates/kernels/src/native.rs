//! Native (wall-clock) kernels for the real-system experiment (paper §7.1,
//! Fig. 9) and the Criterion benches.
//!
//! These run on the host CPU with no instrumentation. Four mechanisms
//! mirror the paper's software-only comparison:
//!
//! * [`spmv_csr`] / [`spmm_csr`] — straightforward CSR (TACO-CSR stand-in),
//! * [`spmv_csr_opt`] / [`spmm_csr_opt`] — branch-light CSR (MKL-CSR
//!   stand-in: same format, more software tuning),
//! * [`spmv_bcsr`] — blocked (TACO-BCSR stand-in),
//! * [`spmv_smash`] / [`spmm_smash`] — Software-only SMASH: word-level
//!   bitmap scanning with `trailing_zeros`, block-wise multiply.
//!
//! Every kernel is generic over [`Scalar`], so the same loop bodies serve
//! `f64` and `f32` (and any future precision). The hot reductions all run
//! through the lane-striped `smash_matrix::simd` dispatch layer (AVX2 /
//! SSE4.2 / scalar, chosen at runtime), whose fixed accumulation order is
//! identical at every precision *and* ISA tier — which is what lets the
//! parallel variants in `smash-parallel` stay bit-identical for all of
//! them. See `docs/SIMD.md`.
//!
//! # Cancellation policy (sparse × sparse)
//!
//! Every sparse×sparse kernel in this workspace — [`spmm_csr`],
//! [`spmm_csr_opt`], [`spmm_bcsr`], [`spmm_smash`] and the Gustavson
//! engine in [`spgemm`](crate::spgemm) — follows one output policy:
//! **exact zeros are dropped**. An output position whose accumulated
//! value cancels to exactly `±0.0` is not stored, even when it had
//! structural hits, and a position with no structural hit is never
//! probed. Stored results therefore contain no explicit zeros, and two
//! kernels that share an accumulation order produce identical triplet
//! lists (`tests/spgemm.rs` pins this with adversarial cancelling
//! inputs).

use crate::operand::{check_smash_spmm_operands, spmm_smash_row, SmashMergeOperand};
use smash_core::SmashMatrix;
use smash_matrix::{spmm_dense_rows, spmv_rows, Bcsr, Coo, Csc, Csr, CsrBuilder, Dense, Scalar};

/// Plain CSR SpMV (paper Code Listing 1). The per-row body is
/// [`Csr::row_dot`], shared with `smash_parallel::par_spmv_csr`.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_csr<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    spmv_rows(a, x, y);
}

/// Optimized CSR SpMV — the "more software tuning over the same format"
/// slot (MKL-CSR stand-in). Since the SIMD dispatch layer landed, the
/// tuned body *is* [`Csr::row_dot`]: the historical 4-way hand-unrolled
/// variant was folded into the single lane-striped definition in
/// `smash_matrix::simd`, so this mechanism is now distinguished from
/// [`spmv_csr`] only in the planner's cost model (the two share one body
/// and are bit-identical). It is kept as a separate entry point so
/// dispatch tables, calibration rows, and the experiment grids keep their
/// mechanism axis.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_csr_opt<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    spmv_rows(a, x, y);
}

/// BCSR SpMV (blocked baseline), allocation-free. The per-block-row body
/// is [`Bcsr::block_row_spmv`], shared with
/// `smash_parallel::par_spmv_bcsr`, which keeps serial and parallel
/// bit-identical under every `smash_matrix::simd` ISA tier.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn spmv_bcsr<T: Scalar>(a: &Bcsr<T>, x: &[T], y: &mut [T]) {
    spmv_rows(a, x, y);
}

/// Software-only SMASH SpMV: scans the stored bitmap hierarchy with
/// word-level `trailing_zeros` (the CLZ/AND loop of §4.4) and multiplies
/// whole NZA blocks against contiguous `x` elements.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or the matrix is not row-major.
pub fn spmv_smash<T: Scalar>(a: &SmashMatrix<T>, x: &[T], y: &mut [T]) {
    spmv_rows(a, x, y);
}

/// Batched CSR sparse × dense multiply (`C = A * B`, `B` a dense batch of
/// right-hand-side columns): the SpMM shape that amortizes the sparse
/// operand over many concurrent queries. The per-row body is
/// [`Csr::row_spmm_dense`], shared with
/// `smash_parallel::par_spmm_dense_csr` — columns of `B` are processed in
/// register-blocked tiles of width 8/4/1, so the matrix is streamed once
/// per tile instead of once per right-hand side, and column `j` of `C` is
/// bit-identical to [`spmv_csr`] against column `j` of `B`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn spmm_dense_csr<T: Scalar>(a: &Csr<T>, b: &Dense<T>, c: &mut Dense<T>) {
    spmm_dense_rows(a, b, c);
}

/// Batched BCSR sparse × dense multiply. The per-block-row body is
/// [`Bcsr::block_row_spmm_dense`], shared with
/// `smash_parallel::par_spmm_dense_bcsr`; column `j` of `C` is
/// bit-identical to [`spmv_bcsr`] against column `j` of `B`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn spmm_dense_bcsr<T: Scalar>(a: &Bcsr<T>, b: &Dense<T>, c: &mut Dense<T>) {
    spmm_dense_rows(a, b, c);
}

/// Batched software-SMASH sparse × dense multiply over the compressed
/// form: the same bitmap scan as [`spmv_smash`] (word-level
/// `trailing_zeros` on one level, depth-first cursor otherwise), with the
/// per-block body `block_axpy_dense` shared with
/// `smash_parallel::par_spmm_dense_smash`. Column `j` of `C` is
/// bit-identical to [`spmv_smash`] against column `j` of `B`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`,
/// `c.cols() != b.cols()`, or the matrix is not row-major.
pub fn spmm_dense_smash<T: Scalar>(a: &SmashMatrix<T>, b: &Dense<T>, c: &mut Dense<T>) {
    spmm_dense_rows(a, b, c);
}

/// Plain CSR×CSC inner-product SpMM (paper Code Listing 2).
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn spmm_csr<T: Scalar>(a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    a.spmm_inner(b).expect("dimensions checked by caller")
}

/// Optimized inner-product SpMM: skips empty rows/columns upfront and uses
/// a branch-light merge.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn spmm_csr_opt<T: Scalar>(a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    assert_eq!(a.cols(), b.rows());
    let mut c = Coo::new(a.rows(), b.cols());
    let cols: Vec<usize> = (0..b.cols()).filter(|&j| b.col_nnz(j) > 0).collect();
    for i in 0..a.rows() {
        let (ac, av) = a.row(i);
        if ac.is_empty() {
            continue;
        }
        for &j in &cols {
            let (bc, bv) = b.col(j);
            let (mut p, mut q) = (0usize, 0usize);
            let mut acc = T::ZERO;
            let mut hit = false;
            while p < ac.len() && q < bc.len() {
                let x = ac[p];
                let z = bc[q];
                if x == z {
                    acc += av[p] * bv[q];
                    hit = true;
                    p += 1;
                    q += 1;
                } else {
                    p += usize::from(x < z);
                    q += usize::from(z < x);
                }
            }
            if hit && !acc.is_zero() {
                c.push(i, j, acc);
            }
        }
    }
    c.compress();
    c
}

/// BCSR SpMM: block-index merge of `A` (BCSR) against `Bᵀ` (BCSR of the
/// transpose), dense tile product per match.
///
/// # Panics
///
/// Panics if the block shapes differ, are non-square, or the inner
/// dimensions disagree.
pub fn spmm_bcsr<T: Scalar>(a: &Bcsr<T>, bt: &Bcsr<T>) -> Coo<T> {
    let (s, s2) = a.block_shape();
    assert_eq!((s, s2), bt.block_shape(), "block shapes must agree");
    assert_eq!(s, s2, "blocks must be square");
    assert_eq!(a.cols(), bt.cols(), "inner dimensions must agree");
    let bs = s * s;
    let mut c = Coo::new(a.rows(), bt.rows());
    let mut tile = vec![T::ZERO; bs];
    // Prefilter the non-empty block rows of `bt` once (the blocked twin of
    // the `cols` prefilter in `spmm_csr_opt`): the inner loop then scans
    // O(occupied block rows) per `bi` instead of O(all block rows), which
    // is the difference between quadratic and output-sensitive work on
    // matrices whose transpose has many empty block rows.
    let occupied: Vec<usize> = (0..bt.num_block_rows())
        .filter(|&bj| bt.block_row_ptr()[bj] < bt.block_row_ptr()[bj + 1])
        .collect();
    for bi in 0..a.num_block_rows() {
        let (alo, ahi) = (
            a.block_row_ptr()[bi] as usize,
            a.block_row_ptr()[bi + 1] as usize,
        );
        if alo == ahi {
            continue;
        }
        for &bj in &occupied {
            let (blo, bhi) = (
                bt.block_row_ptr()[bj] as usize,
                bt.block_row_ptr()[bj + 1] as usize,
            );
            tile.iter_mut().for_each(|v| *v = T::ZERO);
            let mut hit = false;
            let (mut p, mut q) = (alo, blo);
            while p < ahi && q < bhi {
                match a.block_col_ind()[p].cmp(&bt.block_col_ind()[q]) {
                    std::cmp::Ordering::Equal => {
                        hit = true;
                        let ta = &a.values()[p * bs..(p + 1) * bs];
                        let tb = &bt.values()[q * bs..(q + 1) * bs];
                        for lr in 0..s {
                            for lc in 0..s {
                                let mut dot = T::ZERO;
                                for k in 0..s {
                                    dot += ta[lr * s + k] * tb[lc * s + k];
                                }
                                tile[lr * s + lc] += dot;
                            }
                        }
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                }
            }
            if hit {
                for lr in 0..s {
                    let row = bi * s + lr;
                    if row >= a.rows() {
                        break;
                    }
                    for lc in 0..s {
                        let col = bj * s + lc;
                        if col < bt.rows() && !tile[lr * s + lc].is_zero() {
                            c.push(row, col, tile[lr * s + lc]);
                        }
                    }
                }
            }
        }
    }
    c.compress();
    c
}

/// Software-only SMASH SpMM: block-granular index matching over the two
/// bitmaps (`A` row-major, `B` column-major), dense multiply per match.
///
/// # Panics
///
/// Panics if the operands are not 1-level row-major/col-major with matching
/// block sizes, or dimensions disagree.
pub fn spmm_smash<T: Scalar>(a: &SmashMatrix<T>, b: &SmashMatrix<T>) -> Coo<T> {
    check_smash_spmm_operands(a, b);
    let a_op = SmashMergeOperand::new(a);
    let b_op = SmashMergeOperand::new(b);
    let mut c = Coo::new(a.rows(), b.cols());
    for i in 0..a.rows() {
        spmm_smash_row(i, &a_op, &b_op, |j, v| c.push(i, j, v));
    }
    c.compress();
    c
}

/// First-class native sparse + sparse addition `C = A + B`, both operands
/// CSR: a per-row two-cursor merge with direct [`CsrBuilder`] emission.
///
/// The cancellation policy matches the SpGEMM engine's (see the module
/// docs) and the instrumented [`spadd_csr`](crate::spadd::spadd_csr):
/// **exact zeros are dropped** — an output position whose value is exactly
/// `±0.0` is not stored, whether it cancelled on a structural overlap or
/// arrived as a stored zero from a single side. Stored results therefore
/// contain no explicit zeros, and this kernel's triplets equal the
/// instrumented kernel's result exactly.
///
/// # Panics
///
/// Panics if the operand shapes disagree.
pub fn spadd<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    assert_eq!(a.rows(), b.rows(), "row counts must agree");
    assert_eq!(a.cols(), b.cols(), "column counts must agree");
    let mut out = CsrBuilder::with_capacity(a.cols(), a.rows(), a.nnz() + b.nnz());
    let (mut cols, mut vals) = (Vec::new(), Vec::new());
    for i in 0..a.rows() {
        cols.clear();
        vals.clear();
        let mut push = |c: u32, v: T| {
            if !v.is_zero() {
                cols.push(c);
                vals.push(v);
            }
        };
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            match ac[p].cmp(&bc[q]) {
                std::cmp::Ordering::Less => {
                    push(ac[p], av[p]);
                    p += 1;
                }
                std::cmp::Ordering::Greater => {
                    push(bc[q], bv[q]);
                    q += 1;
                }
                std::cmp::Ordering::Equal => {
                    push(ac[p], av[p] + bv[q]);
                    p += 1;
                    q += 1;
                }
            }
        }
        while p < ac.len() {
            push(ac[p], av[p]);
            p += 1;
        }
        while q < bc.len() {
            push(bc[q], bv[q]);
            q += 1;
        }
        out.push_row(&cols, &vals);
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_vector;
    use smash_core::SmashConfig;
    use smash_matrix::generators;

    #[test]
    fn all_native_spmv_agree() {
        let a = generators::clustered(80, 90, 700, 5, 3);
        let x = test_vector(90);
        let want = a.spmv(&x);
        let mut y = vec![0.0; 80];

        spmv_csr(&a, &x, &mut y);
        assert_close(&y, &want);

        spmv_csr_opt(&a, &x, &mut y);
        assert_close(&y, &want);

        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        spmv_bcsr(&bcsr, &x, &mut y);
        assert_close(&y, &want);

        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        spmv_smash(&sm, &x, &mut y);
        assert_close(&y, &want);
    }

    #[test]
    fn all_native_spmv_agree_in_f32() {
        // The same kernels, monomorphized to f32, against the f64 oracle.
        let a64 = generators::clustered(80, 90, 700, 5, 3);
        let a = a64.cast::<f32>();
        let x = test_vector::<f32>(90);
        let want = a64.spmv(&test_vector::<f64>(90));
        let mut y = vec![0.0f32; 80];

        let check = |y: &[f32]| {
            for (g, w) in y.iter().zip(&want) {
                assert!(g.approx_eq(f32::from_f64(*w), f32::TOLERANCE), "{g} vs {w}");
            }
        };
        spmv_csr(&a, &x, &mut y);
        check(&y);
        spmv_csr_opt(&a, &x, &mut y);
        check(&y);
        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        spmv_bcsr(&bcsr, &x, &mut y);
        check(&y);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        spmv_smash(&sm, &x, &mut y);
        check(&y);
    }

    #[test]
    fn all_native_spmm_agree() {
        let a = generators::uniform(40, 50, 400, 7);
        let b = generators::uniform(50, 30, 350, 8);
        let bc = b.to_csc();
        let want = spmm_csr(&a, &bc).to_dense();

        // Compare with a tolerance: the reference uses fused multiply-adds,
        // the tuned kernels separate multiplies and adds.
        let check = |got: &smash_matrix::Dense<f64>| {
            for i in 0..want.rows() {
                for j in 0..want.cols() {
                    assert!(
                        (got.get(i, j) - want.get(i, j)).abs() < 1e-9,
                        "({i},{j}): {} vs {}",
                        got.get(i, j),
                        want.get(i, j)
                    );
                }
            }
        };
        check(&spmm_csr_opt(&a, &bc).to_dense());

        let ab = Bcsr::from_csr(&a, 2, 2).unwrap();
        let btb = Bcsr::from_csr(&b.transpose(), 2, 2).unwrap();
        check(&spmm_bcsr(&ab, &btb).to_dense());

        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        check(&spmm_smash(&sa, &sb).to_dense());
    }

    #[test]
    fn spmm_bcsr_block_diagonal_and_mostly_empty_transpose() {
        // Regression for the occupied-block-row prefilter: a block-diagonal
        // operand (every block row of the transpose holds exactly one
        // block) and a B whose transpose has almost all block rows empty
        // (entries confined to a few columns). Both shapes must match the
        // CSR reference exactly on the structural level and closely on
        // values.
        let n = 64;
        let mut diag = Coo::<f64>::new(n, n);
        for i in 0..n {
            diag.push(i, i, 1.0 + i as f64);
            diag.push(i, i ^ 1, 0.5); // fills each 2x2 diagonal block
        }
        let a = Csr::from_coo(&diag);

        let mut narrow = Coo::<f64>::new(n, n);
        for i in 0..n {
            narrow.push(i, i % 3, 2.0 + (i % 5) as f64); // cols 0..3 only
        }
        let b = Csr::from_coo(&narrow);

        for (lhs, rhs) in [(&a, &b), (&a, &a), (&b, &a)] {
            let want = spmm_csr(lhs, &rhs.to_csc()).to_dense();
            let lb = Bcsr::from_csr(lhs, 2, 2).unwrap();
            let rtb = Bcsr::from_csr(&rhs.transpose(), 2, 2).unwrap();
            let got = spmm_bcsr(&lb, &rtb).to_dense();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (got.get(i, j) - want.get(i, j)).abs() < 1e-9,
                        "({i},{j}): {} vs {}",
                        got.get(i, j),
                        want.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn spadd_matches_instrumented_kernel_exactly() {
        let a = generators::uniform(50, 60, 300, 3);
        let b = generators::banded(50, 60, 4, 250, 4);
        let mut e = smash_sim::CountEngine::new();
        let want = crate::spadd::spadd_csr(&mut e, &a, &b);
        assert_eq!(spadd(&a, &b), want);
        // Empty + empty, and identity-like sanity.
        let z = Csr::<f64>::from_coo(&Coo::new(50, 60));
        assert_eq!(spadd(&a, &z), a);
        assert_eq!(spadd(&z, &z).nnz(), 0);
    }

    #[test]
    fn spadd_drops_exact_cancellations() {
        // a holds +v where b holds -v at overlapping positions: the merged
        // sum is exactly ±0.0 and must not be stored.
        let mut ca = Coo::<f64>::new(4, 4);
        let mut cb = Coo::<f64>::new(4, 4);
        ca.push(1, 2, 3.5);
        cb.push(1, 2, -3.5);
        ca.push(2, 0, 1.0);
        cb.push(2, 0, 2.0);
        cb.push(3, 3, -7.0);
        let c = spadd(&Csr::from_coo(&ca), &Csr::from_coo(&cb));
        assert_eq!(c.nnz(), 2, "cancelled entry must vanish");
        assert_eq!(c.row(2), (&[0u32][..], &[3.0][..]));
        assert_eq!(c.row(3), (&[3u32][..], &[-7.0][..]));
    }

    fn assert_close(y: &[f64], want: &[f64]) {
        for (a, b) in y.iter().zip(want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
        generators::dense_batch(rows, cols, 5)
    }

    #[test]
    fn spmm_dense_columns_are_bit_identical_to_spmv() {
        let a = generators::clustered(80, 90, 700, 5, 3);
        // Widths that exercise the 8-tile, 4-tile and scalar remainders.
        for n in [1usize, 3, 4, 7, 8, 11, 16] {
            let b = test_batch(90, n);
            let mut c = Dense::zeros(80, n);
            let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
            let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
            let sm_flat = SmashMatrix::encode(&a, SmashConfig::row_major(&[4]).unwrap());

            spmm_dense_csr(&a, &b, &mut c);
            for j in 0..n {
                let x = b.col(j);
                let mut y = vec![0.0; 80];
                spmv_csr(&a, &x, &mut y);
                assert_eq!(c.col(j), y, "csr column {j} of {n}");
            }

            spmm_dense_bcsr(&bcsr, &b, &mut c);
            for j in 0..n {
                let x = b.col(j);
                let mut y = vec![0.0; 80];
                spmv_bcsr(&bcsr, &x, &mut y);
                assert_eq!(c.col(j), y, "bcsr column {j} of {n}");
            }

            for m in [&sm, &sm_flat] {
                spmm_dense_smash(m, &b, &mut c);
                for j in 0..n {
                    let x = b.col(j);
                    let mut y = vec![0.0; 80];
                    spmv_smash(m, &x, &mut y);
                    assert_eq!(c.col(j), y, "smash column {j} of {n}");
                }
            }
        }
    }

    #[test]
    fn spmm_dense_matches_dense_reference() {
        let a = generators::uniform(40, 50, 400, 7);
        let b = test_batch(50, 9);
        let want = a.to_dense().matmul(&b).unwrap();
        let mut c = Dense::zeros(40, 9);
        spmm_dense_csr(&a, &b, &mut c);
        for i in 0..40 {
            for j in 0..9 {
                assert!(
                    (c.get(i, j) - want.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    c.get(i, j),
                    want.get(i, j)
                );
            }
        }
    }

    #[test]
    fn spmm_dense_overwrites_stale_output() {
        let a = generators::banded(32, 32, 3, 120, 5);
        let b = test_batch(32, 8);
        let mut c1 = Dense::zeros(32, 8);
        spmm_dense_csr(&a, &b, &mut c1);
        let mut c2 = Dense::from_vec(32, 8, vec![f64::NAN; 32 * 8]).unwrap();
        spmm_dense_csr(&a, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
