//! Native (wall-clock) kernels for the real-system experiment (paper §7.1,
//! Fig. 9) and the Criterion benches.
//!
//! These run on the host CPU with no instrumentation. Four mechanisms
//! mirror the paper's software-only comparison:
//!
//! * [`spmv_csr`] / [`spmm_csr`] — straightforward CSR (TACO-CSR stand-in),
//! * [`spmv_csr_opt`] / [`spmm_csr_opt`] — branch-light CSR (MKL-CSR
//!   stand-in: same format, more software tuning),
//! * [`spmv_bcsr`] — blocked (TACO-BCSR stand-in),
//! * [`spmv_smash`] / [`spmm_smash`] — Software-only SMASH: word-level
//!   bitmap scanning with `trailing_zeros`, block-wise multiply.
//!
//! Every kernel is generic over [`Scalar`], so the same loop bodies serve
//! `f64` and `f32` (and any future precision). The hot reductions all run
//! through the lane-striped `smash_matrix::simd` dispatch layer (AVX2 /
//! SSE4.2 / scalar, chosen at runtime), whose fixed accumulation order is
//! identical at every precision *and* ISA tier — which is what lets the
//! parallel variants in `smash-parallel` stay bit-identical for all of
//! them. See `docs/SIMD.md`.
//!
//! # Cancellation policy (sparse × sparse)
//!
//! Every sparse×sparse kernel in this workspace — [`spmm_csr`],
//! [`spmm_csr_opt`], [`spmm_bcsr`], [`spmm_smash`] and the Gustavson
//! engine in [`spgemm`](crate::spgemm) — follows one output policy:
//! **exact zeros are dropped**. An output position whose accumulated
//! value cancels to exactly `±0.0` is not stored, even when it had
//! structural hits, and a position with no structural hit is never
//! probed. Stored results therefore contain no explicit zeros, and two
//! kernels that share an accumulation order produce identical triplet
//! lists (`tests/spgemm.rs` pins this with adversarial cancelling
//! inputs).

use smash_core::{block_axpy_dense, block_dot, for_each_nz_block, Layout, SmashMatrix};
use smash_matrix::{Bcsr, Coo, Csc, Csr, Dense, Scalar};

/// Plain CSR SpMV (paper Code Listing 1). The per-row body is
/// [`Csr::row_dot`], shared with `smash_parallel::par_spmv_csr`.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_csr<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.cols());
    assert_eq!(y.len(), a.rows());
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = a.row_dot(i, x);
    }
}

/// Optimized CSR SpMV — the "more software tuning over the same format"
/// slot (MKL-CSR stand-in). Since the SIMD dispatch layer landed, the
/// tuned body *is* [`Csr::row_dot`]: the historical 4-way hand-unrolled
/// variant was folded into the single lane-striped definition in
/// `smash_matrix::simd`, so this mechanism is now distinguished from
/// [`spmv_csr`] only in the planner's cost model (the two share one body
/// and are bit-identical). It is kept as a separate entry point so
/// dispatch tables, calibration rows, and the experiment grids keep their
/// mechanism axis.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`.
pub fn spmv_csr_opt<T: Scalar>(a: &Csr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.cols());
    assert_eq!(y.len(), a.rows());
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = a.row_dot(i, x);
    }
}

/// BCSR SpMV (blocked baseline), allocation-free. The per-block-row body
/// is [`Bcsr::block_row_spmv`], shared with
/// `smash_parallel::par_spmv_bcsr`, which keeps serial and parallel
/// bit-identical under every `smash_matrix::simd` ISA tier.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn spmv_bcsr<T: Scalar>(a: &Bcsr<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.cols());
    assert_eq!(y.len(), a.rows());
    y.fill(T::ZERO);
    let (br, _) = a.block_shape();
    for bi in 0..a.num_block_rows() {
        let ylo = bi * br;
        let yhi = (ylo + br).min(a.rows());
        a.block_row_spmv(bi, x, &mut y[ylo..yhi]);
    }
}

/// Software-only SMASH SpMV: scans the stored bitmap hierarchy with
/// word-level `trailing_zeros` (the CLZ/AND loop of §4.4) and multiplies
/// whole NZA blocks against contiguous `x` elements.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or the matrix is not row-major.
pub fn spmv_smash<T: Scalar>(a: &SmashMatrix<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.cols());
    assert_eq!(y.len(), a.rows());
    assert_eq!(a.config().layout(), Layout::RowMajor, "row-major SpMV");
    y.fill(T::ZERO);
    let b0 = a.config().block_size();
    let nza = a.nza().values();
    for_each_nz_block(a, |row, col, ordinal| {
        let block = &nza[ordinal * b0..(ordinal + 1) * b0];
        let n = b0.min(a.cols() - col);
        y[row] += block_dot(block, x, col, n);
    });
}

/// Batched CSR sparse × dense multiply (`C = A * B`, `B` a dense batch of
/// right-hand-side columns): the SpMM shape that amortizes the sparse
/// operand over many concurrent queries. The per-row body is
/// [`Csr::row_spmm_dense`], shared with
/// `smash_parallel::par_spmm_dense_csr` — columns of `B` are processed in
/// register-blocked tiles of width 8/4/1, so the matrix is streamed once
/// per tile instead of once per right-hand side, and column `j` of `C` is
/// bit-identical to [`spmv_csr`] against column `j` of `B`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn spmm_dense_csr<T: Scalar>(a: &Csr<T>, b: &Dense<T>, c: &mut Dense<T>) {
    assert_eq!(b.rows(), a.cols(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must equal a.rows()");
    assert_eq!(c.cols(), b.cols(), "output cols must equal b.cols()");
    for i in 0..a.rows() {
        a.row_spmm_dense(i, b, c.row_mut(i));
    }
}

/// Batched BCSR sparse × dense multiply. The per-block-row body is
/// [`Bcsr::block_row_spmm_dense`], shared with
/// `smash_parallel::par_spmm_dense_bcsr`; column `j` of `C` is
/// bit-identical to [`spmv_bcsr`] against column `j` of `B`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn spmm_dense_bcsr<T: Scalar>(a: &Bcsr<T>, b: &Dense<T>, c: &mut Dense<T>) {
    assert_eq!(b.rows(), a.cols(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must equal a.rows()");
    assert_eq!(c.cols(), b.cols(), "output cols must equal b.cols()");
    c.as_mut_slice().fill(T::ZERO);
    let (br, _) = a.block_shape();
    let n = b.cols();
    let rows = a.rows();
    for bi in 0..a.num_block_rows() {
        let row_lo = bi * br;
        let row_hi = (row_lo + br).min(rows);
        a.block_row_spmm_dense(bi, b, &mut c.as_mut_slice()[row_lo * n..row_hi * n]);
    }
}

/// Batched software-SMASH sparse × dense multiply over the compressed
/// form: the same bitmap scan as [`spmv_smash`] (word-level
/// `trailing_zeros` on one level, depth-first cursor otherwise), with the
/// per-block body [`block_axpy_dense`] shared with
/// `smash_parallel::par_spmm_dense_smash`. Column `j` of `C` is
/// bit-identical to [`spmv_smash`] against column `j` of `B`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`,
/// `c.cols() != b.cols()`, or the matrix is not row-major.
pub fn spmm_dense_smash<T: Scalar>(a: &SmashMatrix<T>, b: &Dense<T>, c: &mut Dense<T>) {
    assert_eq!(b.rows(), a.cols(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must equal a.rows()");
    assert_eq!(c.cols(), b.cols(), "output cols must equal b.cols()");
    assert_eq!(a.config().layout(), Layout::RowMajor, "row-major SpMM");
    c.as_mut_slice().fill(T::ZERO);
    let b0 = a.config().block_size();
    let nza = a.nza().values();
    for_each_nz_block(a, |row, col, ordinal| {
        let block = &nza[ordinal * b0..(ordinal + 1) * b0];
        let n = b0.min(a.cols() - col);
        block_axpy_dense(block, b, col, n, c.row_mut(row));
    });
}

/// Plain CSR×CSC inner-product SpMM (paper Code Listing 2).
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn spmm_csr<T: Scalar>(a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    a.spmm_inner(b).expect("dimensions checked by caller")
}

/// Optimized inner-product SpMM: skips empty rows/columns upfront and uses
/// a branch-light merge.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn spmm_csr_opt<T: Scalar>(a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    assert_eq!(a.cols(), b.rows());
    let mut c = Coo::new(a.rows(), b.cols());
    let cols: Vec<usize> = (0..b.cols()).filter(|&j| b.col_nnz(j) > 0).collect();
    for i in 0..a.rows() {
        let (ac, av) = a.row(i);
        if ac.is_empty() {
            continue;
        }
        for &j in &cols {
            let (bc, bv) = b.col(j);
            let (mut p, mut q) = (0usize, 0usize);
            let mut acc = T::ZERO;
            let mut hit = false;
            while p < ac.len() && q < bc.len() {
                let x = ac[p];
                let z = bc[q];
                if x == z {
                    acc += av[p] * bv[q];
                    hit = true;
                    p += 1;
                    q += 1;
                } else {
                    p += usize::from(x < z);
                    q += usize::from(z < x);
                }
            }
            if hit && !acc.is_zero() {
                c.push(i, j, acc);
            }
        }
    }
    c.compress();
    c
}

/// BCSR SpMM: block-index merge of `A` (BCSR) against `Bᵀ` (BCSR of the
/// transpose), dense tile product per match.
///
/// # Panics
///
/// Panics if the block shapes differ, are non-square, or the inner
/// dimensions disagree.
pub fn spmm_bcsr<T: Scalar>(a: &Bcsr<T>, bt: &Bcsr<T>) -> Coo<T> {
    let (s, s2) = a.block_shape();
    assert_eq!((s, s2), bt.block_shape(), "block shapes must agree");
    assert_eq!(s, s2, "blocks must be square");
    assert_eq!(a.cols(), bt.cols(), "inner dimensions must agree");
    let bs = s * s;
    let mut c = Coo::new(a.rows(), bt.rows());
    let mut tile = vec![T::ZERO; bs];
    // Prefilter the non-empty block rows of `bt` once (the blocked twin of
    // the `cols` prefilter in `spmm_csr_opt`): the inner loop then scans
    // O(occupied block rows) per `bi` instead of O(all block rows), which
    // is the difference between quadratic and output-sensitive work on
    // matrices whose transpose has many empty block rows.
    let occupied: Vec<usize> = (0..bt.num_block_rows())
        .filter(|&bj| bt.block_row_ptr()[bj] < bt.block_row_ptr()[bj + 1])
        .collect();
    for bi in 0..a.num_block_rows() {
        let (alo, ahi) = (
            a.block_row_ptr()[bi] as usize,
            a.block_row_ptr()[bi + 1] as usize,
        );
        if alo == ahi {
            continue;
        }
        for &bj in &occupied {
            let (blo, bhi) = (
                bt.block_row_ptr()[bj] as usize,
                bt.block_row_ptr()[bj + 1] as usize,
            );
            tile.iter_mut().for_each(|v| *v = T::ZERO);
            let mut hit = false;
            let (mut p, mut q) = (alo, blo);
            while p < ahi && q < bhi {
                match a.block_col_ind()[p].cmp(&bt.block_col_ind()[q]) {
                    std::cmp::Ordering::Equal => {
                        hit = true;
                        let ta = &a.values()[p * bs..(p + 1) * bs];
                        let tb = &bt.values()[q * bs..(q + 1) * bs];
                        for lr in 0..s {
                            for lc in 0..s {
                                let mut dot = T::ZERO;
                                for k in 0..s {
                                    dot += ta[lr * s + k] * tb[lc * s + k];
                                }
                                tile[lr * s + lc] += dot;
                            }
                        }
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                }
            }
            if hit {
                for lr in 0..s {
                    let row = bi * s + lr;
                    if row >= a.rows() {
                        break;
                    }
                    for lc in 0..s {
                        let col = bj * s + lc;
                        if col < bt.rows() && !tile[lr * s + lc].is_zero() {
                            c.push(row, col, tile[lr * s + lc]);
                        }
                    }
                }
            }
        }
    }
    c.compress();
    c
}

/// Software-only SMASH SpMM: block-granular index matching over the two
/// bitmaps (`A` row-major, `B` column-major), dense multiply per match.
///
/// # Panics
///
/// Panics if the operands are not 1-level row-major/col-major with matching
/// block sizes, or dimensions disagree.
pub fn spmm_smash<T: Scalar>(a: &SmashMatrix<T>, b: &SmashMatrix<T>) -> Coo<T> {
    check_smash_spmm_operands(a, b);
    let a_op = SmashMergeOperand::new(a);
    let b_op = SmashMergeOperand::new(b);
    let mut c = Coo::new(a.rows(), b.cols());
    for i in 0..a.rows() {
        spmm_smash_row(i, &a_op, &b_op, |j, v| c.push(i, j, v));
    }
    c.compress();
    c
}

/// Validates the operand pair for a SMASH × SMASH product: `a` row-major,
/// `b` column-major, one-level hierarchies with equal block sizes and
/// conforming dimensions.
pub(crate) fn check_smash_spmm_operands<T: Scalar>(a: &SmashMatrix<T>, b: &SmashMatrix<T>) {
    assert_eq!(a.cols(), b.rows());
    assert_eq!(a.config().layout(), Layout::RowMajor);
    assert_eq!(b.config().layout(), Layout::ColMajor);
    assert_eq!(a.config().block_size(), b.config().block_size());
}

/// A SMASH operand prepared for block-granular line merges: per-line in-line
/// block offsets, flattened and addressed through the directory's per-line
/// starts — O(nnz blocks + lines) auxiliary memory, never the O(dense) full
/// Bitmap-0 expansion.
///
/// Shared between the serial [`spmm_smash`] loop and the row-parallel variant
/// in the SpGEMM engine so that both run the identical per-row arithmetic.
pub(crate) struct SmashMergeOperand<'a, T> {
    offs: Vec<u32>,
    starts: &'a [u32],
    nza: &'a [T],
    b0: usize,
    lines: usize,
}

impl<'a, T: Scalar> SmashMergeOperand<'a, T> {
    pub(crate) fn new(sm: &'a SmashMatrix<T>) -> Self {
        let bpl = sm.blocks_per_line();
        let mut offs = vec![0u32; sm.num_blocks()];
        for (ordinal, logical) in sm.hierarchy().blocks().enumerate() {
            offs[ordinal] = (logical % bpl) as u32;
        }
        let lines = sm.line_block_starts().len() - 1;
        Self {
            offs,
            starts: sm.line_block_starts(),
            nza: sm.nza().values(),
            b0: sm.config().block_size(),
            lines,
        }
    }

    /// `(base ordinal, in-line offsets)` for line `l`.
    fn line(&self, l: usize) -> (usize, &[u32]) {
        let base = self.starts[l] as usize;
        (base, &self.offs[base..self.starts[l + 1] as usize])
    }
}

/// One output row of the SMASH × SMASH product: merges row-line `i` of `a`
/// against every column-line of `b`, emitting `(col, value)` for each
/// structural hit whose accumulated dot is non-zero (the cancellation policy
/// documented in the module docs).
///
/// This is the exact per-row body of [`spmm_smash`]; the parallel variant
/// dispatches disjoint row ranges to it, so outputs are bit-identical to the
/// serial kernel at any thread count.
pub(crate) fn spmm_smash_row<T: Scalar>(
    i: usize,
    a: &SmashMergeOperand<'_, T>,
    b: &SmashMergeOperand<'_, T>,
    mut emit: impl FnMut(usize, T),
) {
    let b0 = a.b0;
    let (a_base, al) = a.line(i);
    if al.is_empty() {
        return;
    }
    for j in 0..b.lines {
        let (b_base, bl) = b.line(j);
        if bl.is_empty() {
            continue;
        }
        let (mut p, mut q) = (0usize, 0usize);
        let mut acc = T::ZERO;
        let mut hit = false;
        while p < al.len() && q < bl.len() {
            match al[p].cmp(&bl[q]) {
                std::cmp::Ordering::Equal => {
                    let oa = (a_base + p) * b0;
                    let ob = (b_base + q) * b0;
                    for k in 0..b0 {
                        acc += a.nza[oa + k] * b.nza[ob + k];
                    }
                    hit = true;
                    p += 1;
                    q += 1;
                }
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
            }
        }
        if hit && !acc.is_zero() {
            emit(j, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_vector;
    use smash_core::SmashConfig;
    use smash_matrix::generators;

    #[test]
    fn all_native_spmv_agree() {
        let a = generators::clustered(80, 90, 700, 5, 3);
        let x = test_vector(90);
        let want = a.spmv(&x);
        let mut y = vec![0.0; 80];

        spmv_csr(&a, &x, &mut y);
        assert_close(&y, &want);

        spmv_csr_opt(&a, &x, &mut y);
        assert_close(&y, &want);

        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        spmv_bcsr(&bcsr, &x, &mut y);
        assert_close(&y, &want);

        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        spmv_smash(&sm, &x, &mut y);
        assert_close(&y, &want);
    }

    #[test]
    fn all_native_spmv_agree_in_f32() {
        // The same kernels, monomorphized to f32, against the f64 oracle.
        let a64 = generators::clustered(80, 90, 700, 5, 3);
        let a = a64.cast::<f32>();
        let x = test_vector::<f32>(90);
        let want = a64.spmv(&test_vector::<f64>(90));
        let mut y = vec![0.0f32; 80];

        let check = |y: &[f32]| {
            for (g, w) in y.iter().zip(&want) {
                assert!(g.approx_eq(f32::from_f64(*w), f32::TOLERANCE), "{g} vs {w}");
            }
        };
        spmv_csr(&a, &x, &mut y);
        check(&y);
        spmv_csr_opt(&a, &x, &mut y);
        check(&y);
        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        spmv_bcsr(&bcsr, &x, &mut y);
        check(&y);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        spmv_smash(&sm, &x, &mut y);
        check(&y);
    }

    #[test]
    fn all_native_spmm_agree() {
        let a = generators::uniform(40, 50, 400, 7);
        let b = generators::uniform(50, 30, 350, 8);
        let bc = b.to_csc();
        let want = spmm_csr(&a, &bc).to_dense();

        // Compare with a tolerance: the reference uses fused multiply-adds,
        // the tuned kernels separate multiplies and adds.
        let check = |got: &smash_matrix::Dense<f64>| {
            for i in 0..want.rows() {
                for j in 0..want.cols() {
                    assert!(
                        (got.get(i, j) - want.get(i, j)).abs() < 1e-9,
                        "({i},{j}): {} vs {}",
                        got.get(i, j),
                        want.get(i, j)
                    );
                }
            }
        };
        check(&spmm_csr_opt(&a, &bc).to_dense());

        let ab = Bcsr::from_csr(&a, 2, 2).unwrap();
        let btb = Bcsr::from_csr(&b.transpose(), 2, 2).unwrap();
        check(&spmm_bcsr(&ab, &btb).to_dense());

        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        check(&spmm_smash(&sa, &sb).to_dense());
    }

    #[test]
    fn spmm_bcsr_block_diagonal_and_mostly_empty_transpose() {
        // Regression for the occupied-block-row prefilter: a block-diagonal
        // operand (every block row of the transpose holds exactly one
        // block) and a B whose transpose has almost all block rows empty
        // (entries confined to a few columns). Both shapes must match the
        // CSR reference exactly on the structural level and closely on
        // values.
        let n = 64;
        let mut diag = Coo::<f64>::new(n, n);
        for i in 0..n {
            diag.push(i, i, 1.0 + i as f64);
            diag.push(i, i ^ 1, 0.5); // fills each 2x2 diagonal block
        }
        let a = Csr::from_coo(&diag);

        let mut narrow = Coo::<f64>::new(n, n);
        for i in 0..n {
            narrow.push(i, i % 3, 2.0 + (i % 5) as f64); // cols 0..3 only
        }
        let b = Csr::from_coo(&narrow);

        for (lhs, rhs) in [(&a, &b), (&a, &a), (&b, &a)] {
            let want = spmm_csr(lhs, &rhs.to_csc()).to_dense();
            let lb = Bcsr::from_csr(lhs, 2, 2).unwrap();
            let rtb = Bcsr::from_csr(&rhs.transpose(), 2, 2).unwrap();
            let got = spmm_bcsr(&lb, &rtb).to_dense();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (got.get(i, j) - want.get(i, j)).abs() < 1e-9,
                        "({i},{j}): {} vs {}",
                        got.get(i, j),
                        want.get(i, j)
                    );
                }
            }
        }
    }

    fn assert_close(y: &[f64], want: &[f64]) {
        for (a, b) in y.iter().zip(want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
        generators::dense_batch(rows, cols, 5)
    }

    #[test]
    fn spmm_dense_columns_are_bit_identical_to_spmv() {
        let a = generators::clustered(80, 90, 700, 5, 3);
        // Widths that exercise the 8-tile, 4-tile and scalar remainders.
        for n in [1usize, 3, 4, 7, 8, 11, 16] {
            let b = test_batch(90, n);
            let mut c = Dense::zeros(80, n);
            let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
            let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
            let sm_flat = SmashMatrix::encode(&a, SmashConfig::row_major(&[4]).unwrap());

            spmm_dense_csr(&a, &b, &mut c);
            for j in 0..n {
                let x = b.col(j);
                let mut y = vec![0.0; 80];
                spmv_csr(&a, &x, &mut y);
                assert_eq!(c.col(j), y, "csr column {j} of {n}");
            }

            spmm_dense_bcsr(&bcsr, &b, &mut c);
            for j in 0..n {
                let x = b.col(j);
                let mut y = vec![0.0; 80];
                spmv_bcsr(&bcsr, &x, &mut y);
                assert_eq!(c.col(j), y, "bcsr column {j} of {n}");
            }

            for m in [&sm, &sm_flat] {
                spmm_dense_smash(m, &b, &mut c);
                for j in 0..n {
                    let x = b.col(j);
                    let mut y = vec![0.0; 80];
                    spmv_smash(m, &x, &mut y);
                    assert_eq!(c.col(j), y, "smash column {j} of {n}");
                }
            }
        }
    }

    #[test]
    fn spmm_dense_matches_dense_reference() {
        let a = generators::uniform(40, 50, 400, 7);
        let b = test_batch(50, 9);
        let want = a.to_dense().matmul(&b).unwrap();
        let mut c = Dense::zeros(40, 9);
        spmm_dense_csr(&a, &b, &mut c);
        for i in 0..40 {
            for j in 0..9 {
                assert!(
                    (c.get(i, j) - want.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    c.get(i, j),
                    want.get(i, j)
                );
            }
        }
    }

    #[test]
    fn spmm_dense_overwrites_stale_output() {
        let a = generators::banded(32, 32, 3, 120, 5);
        let b = test_batch(32, 8);
        let mut c1 = Dense::zeros(32, 8);
        spmm_dense_csr(&a, &b, &mut c1);
        let mut c2 = Dense::from_vec(32, 8, vec![f64::NAN; 32 * 8]).unwrap();
        spmm_dense_csr(&a, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
