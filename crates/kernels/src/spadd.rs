//! Instrumented Sparse Matrix Addition (`C = A + B`), the third kernel of
//! the paper's Fig. 3 motivation experiment.
//!
//! CSR SpAdd merges each pair of sorted rows: every step loads both column
//! indices, compares, branches on the data-dependent outcome, and emits one
//! output entry — so *all* of its memory-index traffic is indexing work.

use crate::common::{sites, streams};
use smash_matrix::{Coo, Csr, Scalar};
use smash_sim::{Engine, UopId};

/// CSR SpAdd via row-wise sorted merge.
///
/// # Panics
///
/// Panics if the operand shapes differ.
pub fn spadd_csr<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    let vs = std::mem::size_of::<T>() as u64;
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "operand shapes must agree"
    );
    let a_ind = e.alloc(4 * a.nnz(), 64);
    let a_val = e.alloc(vs as usize * a.nnz(), 64);
    let b_ind = e.alloc(4 * b.nnz(), 64);
    let b_val = e.alloc(vs as usize * b.nnz(), 64);
    let c_ind = e.alloc(4 * (a.nnz() + b.nnz()), 64);
    let c_val = e.alloc(vs as usize * (a.nnz() + b.nnz()), 64);

    let mut c = Coo::with_capacity(a.rows(), a.cols(), a.nnz() + b.nnz());
    let mut out = 0u64;
    for i in 0..a.rows() {
        let a_lo = a.row_ptr()[i] as u64;
        let b_lo = b.row_ptr()[i] as u64;
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        e.load(streams::PTR, a_ind, &[]);
        e.load(streams::PTR_B, b_ind, &[]);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let take_a = q >= bc.len() || (p < ac.len() && ac[p] <= bc[q]);
            let take_b = p >= ac.len() || (q < bc.len() && bc[q] <= ac[p]);
            // Load whichever indices are still live and compare.
            let mut deps: Vec<UopId> = Vec::with_capacity(2);
            if p < ac.len() {
                deps.push(e.load(streams::IND, a_ind + 4 * (a_lo + p as u64), &[]));
            }
            if q < bc.len() {
                deps.push(e.load(streams::IND_B, b_ind + 4 * (b_lo + q as u64), &[]));
            }
            let cmp = e.alu(&deps);
            e.branch(sites::ADD_CMP, take_a && take_b, &[cmp]);
            let (col, val, vdep) = match (take_a, take_b) {
                (true, true) => {
                    let va = e.load(streams::VAL, a_val + vs * (a_lo + p as u64), &[]);
                    let vb = e.load(streams::VAL_B, b_val + vs * (b_lo + q as u64), &[]);
                    let s = e.fadd(&[va, vb]);
                    let out = (ac[p], av[p] + bv[q], s);
                    p += 1;
                    q += 1;
                    out
                }
                (true, false) => {
                    let va = e.load(streams::VAL, a_val + vs * (a_lo + p as u64), &[]);
                    let out = (ac[p], av[p], va);
                    p += 1;
                    out
                }
                (false, true) => {
                    let vb = e.load(streams::VAL_B, b_val + vs * (b_lo + q as u64), &[]);
                    let out = (bc[q], bv[q], vb);
                    q += 1;
                    out
                }
                (false, false) => unreachable!("merge invariant"),
            };
            // Emit the output entry: column index and value.
            e.store(streams::OUT, c_ind + 4 * out, &[cmp]);
            e.store(streams::OUT, c_val + vs * out, &[vdep]);
            if !val.is_zero() {
                c.push(i, col as usize, val);
            }
            out += 1;
        }
        e.alu(&[]);
        e.branch(sites::SPMV_OUTER, i + 1 < a.rows(), &[]);
    }
    Csr::from_coo(&c)
}

/// Idealized SpAdd (Fig. 3): output positions are known for free — only the
/// value loads, adds and stores remain.
///
/// # Panics
///
/// Panics if the operand shapes differ.
pub fn spadd_ideal<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    let vs = std::mem::size_of::<T>() as u64;
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "operand shapes must agree"
    );
    let a_val = e.alloc(vs as usize * a.nnz(), 64);
    let b_val = e.alloc(vs as usize * b.nnz(), 64);
    let c_val = e.alloc(vs as usize * (a.nnz() + b.nnz()), 64);

    let mut c = Coo::with_capacity(a.rows(), a.cols(), a.nnz() + b.nnz());
    let mut out = 0u64;
    for i in 0..a.rows() {
        let a_lo = a.row_ptr()[i] as u64;
        let b_lo = b.row_ptr()[i] as u64;
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let take_a = q >= bc.len() || (p < ac.len() && ac[p] <= bc[q]);
            let take_b = p >= ac.len() || (q < bc.len() && bc[q] <= ac[p]);
            // Positions are free but the merge still compares and branches.
            let cmp = e.alu(&[]);
            e.branch(sites::ADD_CMP, take_a && take_b, &[cmp]);
            let (col, val, vdep) = match (take_a, take_b) {
                (true, true) => {
                    let va = e.load(streams::VAL, a_val + vs * (a_lo + p as u64), &[]);
                    let vb = e.load(streams::VAL_B, b_val + vs * (b_lo + q as u64), &[]);
                    let s = e.fadd(&[va, vb]);
                    let o = (ac[p], av[p] + bv[q], s);
                    p += 1;
                    q += 1;
                    o
                }
                (true, false) => {
                    let va = e.load(streams::VAL, a_val + vs * (a_lo + p as u64), &[]);
                    let o = (ac[p], av[p], va);
                    p += 1;
                    o
                }
                (false, true) => {
                    let vb = e.load(streams::VAL_B, b_val + vs * (b_lo + q as u64), &[]);
                    let o = (bc[q], bv[q], vb);
                    q += 1;
                    o
                }
                (false, false) => unreachable!("merge invariant"),
            };
            e.store(streams::OUT, c_val + vs * out, &[vdep]);
            if !val.is_zero() {
                c.push(i, col as usize, val);
            }
            out += 1;
        }
        e.branch(sites::SPMV_OUTER, i + 1 < a.rows(), &[]);
    }
    Csr::from_coo(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::generators;
    use smash_sim::CountEngine;

    #[test]
    fn both_variants_match_reference() {
        let a = generators::uniform(50, 60, 300, 3);
        let b = generators::banded(50, 60, 4, 250, 4);
        let want = a.add(&b).unwrap();
        let mut e = CountEngine::new();
        assert_eq!(spadd_csr(&mut e, &a, &b), want);
        let mut e = CountEngine::new();
        assert_eq!(spadd_ideal(&mut e, &a, &b), want);
    }

    #[test]
    fn ideal_cuts_instructions_roughly_in_half() {
        let a = generators::uniform(80, 80, 600, 5);
        let b = generators::uniform(80, 80, 600, 6);
        let mut e1 = CountEngine::new();
        spadd_csr(&mut e1, &a, &b);
        let csr = e1.finish().instructions();
        let mut e2 = CountEngine::new();
        spadd_ideal(&mut e2, &a, &b);
        let ideal = e2.finish().instructions();
        let ratio = ideal as f64 / csr as f64;
        // Paper Fig. 3 reports ~0.51 normalized instructions for SpMatAdd;
        // our model lands somewhat lower because the ideal variant also
        // skips the output-index stores.
        assert!((0.25..0.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn disjoint_and_overlapping_entries_combine() {
        let mut ca = Coo::new(2, 4);
        ca.push(0, 1, 1.0);
        ca.push(1, 2, 2.0);
        let mut cb = Coo::new(2, 4);
        cb.push(0, 1, 3.0);
        cb.push(1, 3, 4.0);
        let a = Csr::from_coo(&ca);
        let b = Csr::from_coo(&cb);
        let mut e = CountEngine::new();
        let c = spadd_csr(&mut e, &a, &b);
        let d = c.to_dense();
        assert_eq!(d.get(0, 1), 4.0);
        assert_eq!(d.get(1, 2), 2.0);
        assert_eq!(d.get(1, 3), 4.0);
    }
}
