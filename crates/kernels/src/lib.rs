//! Sparse kernels for every mechanism of the SMASH paper's evaluation.
//!
//! Two families:
//!
//! * **Instrumented kernels** ([`spmv`], [`spmm`], [`spmdm`], [`spadd`],
//!   [`convert`]) —
//!   compute the real result *and* describe their instruction stream
//!   (with data dependencies) to a `smash-sim` [`Engine`](smash_sim::Engine),
//!   so the simulator can time them on the Table 2 machine. These power the
//!   Fig. 3 and Figs. 10–17/20 experiments.
//! * **Native kernels** ([`native`]) — plain Rust for wall-clock runs on
//!   the host (the paper's real-system Fig. 9 experiment and the Criterion
//!   benches).
//!
//! The [`parallel`] module adds multi-threaded variants of the native hot
//! paths (via `smash-parallel`) that stay bit-identical to the serial
//! kernels at every thread count.
//!
//! The [`spgemm`] module is the native sparse × sparse engine: row-wise
//! Gustavson multiplication with symbolic sizing, per-row dense/hash
//! accumulators and direct CSR or SMASH emission — triplet-exact to the
//! inner-product oracle and bit-identical at every thread count.
//!
//! The [`harness`] module dispatches by [`Mechanism`], building the right
//! operand encodings (CSR, 2x2 BCSR, SMASH bitmaps + NZA) internally.
//!
//! The [`executor`] module is the native-side counterpart: one
//! [`Executor`] entry point over *format × precision × serial/parallel*,
//! so callers stop hand-picking among the per-format kernel functions.
//! Its `Auto` mode delegates to the [`planner`] module — a measured
//! cost model scoring *(format × kernel × threads × tile)* candidates
//! against a checked-in calibration table, with the old shape/nnz
//! thresholds as its fallback tier. All kernels are generic over
//! [`smash_matrix::Scalar`] (`f64` and `f32` out of the box).
//!
//! A map of how these modules fit the wider workspace lives in
//! `docs/ARCHITECTURE.md` at the repository root; the planner's design
//! and calibration workflow in `docs/DISPATCH.md`.
//!
//! # Example
//!
//! ```
//! use smash_kernels::{harness, Mechanism};
//! use smash_core::SmashConfig;
//! use smash_matrix::generators;
//! use smash_sim::SystemConfig;
//!
//! let a = generators::uniform(64, 64, 400, 1);
//! let cfg = SmashConfig::row_major(&[2, 4, 16])?;
//! let csr = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &SystemConfig::paper_table2());
//! let smash = harness::sim_spmv(Mechanism::Smash, &a, &cfg, &SystemConfig::paper_table2());
//! assert!(smash.cycles < csr.cycles, "SMASH must win on this workload");
//! # Ok::<(), smash_core::SmashError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod convert;
pub mod error;
pub mod executor;
pub mod harness;
pub mod native;
pub mod operand;
pub mod parallel;
pub mod planner;
pub mod spadd;
pub mod spgemm;
pub mod spmdm;
pub mod spmm;
pub mod spmv;

pub use common::{test_vector, Mechanism, VEC_WIDTH};
pub use error::SmashError;
pub use executor::{
    Degradation, ExecMode, ExecReport, Executor, MemoryBudget, NonFinitePolicy, SpmvOperand,
};
pub use planner::{MatrixProfile, Op, Plan, PlanRequest, Planner};
