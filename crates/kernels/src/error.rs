//! The unified error taxonomy of the fallible executor tier.
//!
//! The panicking kernels assert their preconditions (the right contract
//! for trusted, performance-critical callers); the [`Executor`]'s `try_*`
//! methods instead validate untrusted operands up front and report every
//! failure mode through this one enum — absorbing the format layer's
//! [`MatrixError`] and the encoding layer's
//! [`smash_core::SmashError`] as sources, and adding the
//! executor-level conditions (budget exhaustion, pool loss, caught
//! panics) neither lower layer can know about.
//!
//! [`Executor`]: crate::Executor

use smash_matrix::MatrixError;
use std::fmt;

/// Everything the fallible executor tier can report. Marked
/// `#[non_exhaustive]`: robustness work keeps adding failure modes, and
/// callers must be ready for variants they don't know.
#[non_exhaustive]
#[derive(Debug)]
pub enum SmashError {
    /// Operand shapes don't agree for the requested operation. Vectors
    /// are reported as `(len, 1)`.
    DimensionMismatch {
        /// The operation that was requested.
        op: &'static str,
        /// The shape the left-hand operand implies.
        expected: (usize, usize),
        /// The shape actually supplied.
        got: (usize, usize),
    },
    /// An operand failed its format's structural validation
    /// (`Csr::validate`, `Bcsr::validate`).
    InvalidStructure {
        /// The format that failed ("csr", "bcsr").
        format: &'static str,
        /// The underlying structural violation.
        source: MatrixError,
    },
    /// An operand holds a NaN or ±infinity and the executor's
    /// [`NonFinitePolicy`](crate::NonFinitePolicy) is `Reject`.
    NonFinite {
        /// The operation that was requested.
        op: &'static str,
        /// Which operand held the non-finite value ("A", "x", "B").
        operand: &'static str,
    },
    /// The operation's estimated transient memory exceeds the executor's
    /// [`MemoryBudget`](crate::MemoryBudget) and the budget does not
    /// permit degradation.
    ResourceExhausted {
        /// Estimated bytes the operation needs.
        needed: u64,
        /// The configured cap in bytes.
        budget: u64,
    },
    /// A thread pool could not be built (OS spawn refusal, or a rejected
    /// `SMASH_THREADS` override).
    PoolUnavailable {
        /// Human-readable cause.
        detail: String,
    },
    /// A kernel panicked and the panic could not be absorbed by
    /// degradation (the serial retry panicked too, or there was no
    /// fallback left).
    Panicked {
        /// The operation that was running.
        op: &'static str,
        /// The stringified panic payload.
        detail: String,
    },
    /// The operand/operation combination is outside the executor's
    /// contract (e.g. a column-major SMASH operand for a row-major
    /// kernel).
    Unsupported {
        /// The operation that was requested.
        op: &'static str,
        /// What exactly is unsupported.
        detail: String,
    },
    /// A format-layer error outside the structural-validation path
    /// (parsing, I/O, construction).
    Matrix(MatrixError),
    /// An encoding-layer error from the SMASH compression machinery.
    Encoding(smash_core::SmashError),
}

impl fmt::Display for SmashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmashError::DimensionMismatch { op, expected, got } => write!(
                f,
                "{op}: dimension mismatch (expected {}x{}, got {}x{})",
                expected.0, expected.1, got.0, got.1
            ),
            SmashError::InvalidStructure { format, source } => {
                write!(f, "invalid {format} structure: {source}")
            }
            SmashError::NonFinite { op, operand } => {
                write!(f, "{op}: operand {operand} holds a NaN or infinity")
            }
            SmashError::ResourceExhausted { needed, budget } => write!(
                f,
                "resource exhausted: needs ~{needed} bytes of scratch, budget is {budget}"
            ),
            SmashError::PoolUnavailable { detail } => {
                write!(f, "thread pool unavailable: {detail}")
            }
            SmashError::Panicked { op, detail } => {
                write!(f, "{op}: kernel panicked: {detail}")
            }
            SmashError::Unsupported { op, detail } => write!(f, "{op}: unsupported: {detail}"),
            SmashError::Matrix(e) => write!(f, "matrix error: {e}"),
            SmashError::Encoding(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl std::error::Error for SmashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmashError::InvalidStructure { source, .. } => Some(source),
            SmashError::Matrix(e) => Some(e),
            SmashError::Encoding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for SmashError {
    fn from(e: MatrixError) -> Self {
        SmashError::Matrix(e)
    }
}

impl From<smash_core::SmashError> for SmashError {
    fn from(e: smash_core::SmashError) -> Self {
        SmashError::Encoding(e)
    }
}

/// Renders a caught panic payload for [`SmashError::Panicked`] /
/// degradation reports: `&str` and `String` payloads verbatim, anything
/// else a placeholder.
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SmashError::DimensionMismatch {
            op: "spmv",
            expected: (4, 1),
            got: (3, 1),
        };
        assert!(e.to_string().contains("spmv"));
        assert!(e.to_string().contains("4x1"));

        let e = SmashError::ResourceExhausted {
            needed: 1024,
            budget: 512,
        };
        assert!(e.to_string().contains("1024"));
        assert!(e.to_string().contains("512"));
    }

    #[test]
    fn sources_chain_to_the_lower_layers() {
        use std::error::Error;
        let e = SmashError::InvalidStructure {
            format: "csr",
            source: MatrixError::InvalidStructure("row_ptr must start at 0".into()),
        };
        assert!(e.source().is_some());

        let e: SmashError = smash_core::SmashError::NoLevels.into();
        assert!(matches!(e, SmashError::Encoding(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn panic_detail_prefers_string_payloads() {
        let caught =
            std::panic::catch_unwind(|| panic!("typed message {}", 7)).expect_err("panics");
        assert_eq!(panic_detail(caught.as_ref()), "typed message 7");
        let caught = std::panic::catch_unwind(|| panic!("static message")).expect_err("panics");
        assert_eq!(panic_detail(caught.as_ref()), "static message");
    }
}
