//! The unified **executor** layer: one `spmv`/`spmm` entry point over
//! *format × precision × serial/parallel*.
//!
//! The native kernel families of this crate expose roughly ten per-format
//! functions (`spmv_csr`, `spmv_bcsr`, `spmv_smash`, their `par_*` twins,
//! the SpMM variants, the compressor…). The [`Executor`] hides that fan-out
//! behind a single dispatcher: callers hand it any supported operand
//! format — [`Csr`], [`Bcsr`](smash_matrix::Bcsr), a compressed
//! [`SmashMatrix`] or a [`DynamicMatrix`] overlay — at any
//! [`Scalar`] precision, and the executor picks the matching kernel and
//! decides whether to run it serially or across a thread pool.
//!
//! Three [`ExecMode`]s exist:
//!
//! * [`ExecMode::Serial`] — always the single-threaded native kernel.
//! * [`ExecMode::Parallel`] — always the thread-pool kernel (worker count
//!   from [`SMASH_THREADS`](smash_parallel::THREADS_ENV) or the available cores).
//! * [`ExecMode::Auto`] — per-call choice delegated to the measured
//!   cost-model [`Planner`]: the operand is
//!   profiled ([`MatrixProfile`]) and
//!   scored against the checked-in calibration table; when no
//!   calibration row matches, the legacy shape/nnz threshold tier
//!   ([`AUTO_PARALLEL_NNZ`], [`AUTO_MIN_ROWS_PER_THREAD`]) decides,
//!   exactly as before the planner existed. `Executor::plan_*` expose
//!   the decision — with its rationale — without running anything.
//!
//! **Determinism guarantee:** because every parallel kernel in
//! `smash-parallel` is bit-identical to its serial counterpart, the
//! executor's output is bit-identical across all three modes, every
//! thread count, and both precisions — `Auto` never trades accuracy for
//! speed.
//!
//! # Example
//!
//! ```
//! use smash_kernels::Executor;
//! use smash_matrix::generators;
//!
//! let a = generators::uniform(64, 64, 400, 1);
//! let x = vec![1.0f64; 64];
//! let mut y = vec![0.0f64; 64];
//! let exec = Executor::auto();
//! exec.spmv(&a, &x, &mut y);            // same entry point for every format
//!
//! let mut serial = vec![0.0f64; 64];
//! Executor::serial().spmv(&a, &x, &mut serial);
//! assert_eq!(y, serial);                // bit-identical across modes
//! ```

use crate::error::{panic_detail, SmashError};
use crate::native;
pub use crate::operand::SpmvOperand;
use crate::planner::{Format, MatrixProfile, Op, Plan, PlanRequest, Planner};
use smash_core::{DynamicMatrix, Layout, SmashConfig, SmashMatrix};
use smash_matrix::{spmm_dense_rows, spmv_rows, Coo, Csc, Csr, Dense, Scalar};
use smash_parallel::{
    default_threads, par_csr_to_smash, par_spmm_dense_rows, par_spmv_rows, threads_from_env,
    ThreadPool,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Minimum work items before the **threshold fallback tier** reaches for
/// the thread pool: below this, partitioning + wakeup overhead dominates
/// the kernel. Since the planner refactor this constant only decides when
/// no calibration row matches the operand (see
/// [`Planner`]).
pub const AUTO_PARALLEL_NNZ: usize = 16_384;

/// Minimum rows-per-worker before the threshold fallback tier
/// parallelizes: with fewer, the contiguous row ranges are too small to
/// amortize dispatch.
pub const AUTO_MIN_ROWS_PER_THREAD: usize = 4;

/// Serial/parallel dispatch policy of an [`Executor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Always run the single-threaded native kernel.
    Serial,
    /// Always run the thread-pool kernel.
    Parallel,
    /// Decide per call from the operand's shape and density.
    Auto,
}

/// A cap on the **transient engine memory** (accumulators plus per-chunk
/// staging) an [`Executor::try_spgemm`] run may allocate. The exact-sized
/// output itself is exempt — the budget bounds what the engine uses *on
/// top of* the result the caller asked for.
///
/// Two flavours: [`reject_over`](Self::reject_over) fails an over-budget
/// product with [`SmashError::ResourceExhausted`];
/// [`degrade_over`](Self::degrade_over) instead re-plans it as a serial
/// row-chunked streaming run ([`crate::spgemm::spgemm_chunked`]) whose
/// peak scratch stays within the cap — bit-identical output, reported in
/// the [`ExecReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: u64,
    degrade: bool,
}

impl MemoryBudget {
    /// A budget that fails over-budget operations with
    /// [`SmashError::ResourceExhausted`].
    pub fn reject_over(bytes: u64) -> Self {
        MemoryBudget {
            bytes,
            degrade: false,
        }
    }

    /// A budget that degrades over-budget operations to a row-chunked
    /// streaming execution capped at `bytes` of scratch.
    pub fn degrade_over(bytes: u64) -> Self {
        MemoryBudget {
            bytes,
            degrade: true,
        }
    }

    /// The cap in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether over-budget operations degrade to chunked execution
    /// instead of failing.
    pub fn degrades(&self) -> bool {
        self.degrade
    }
}

/// How the fallible tier treats NaN/±infinity in operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// IEEE semantics: non-finite inputs flow through the arithmetic
    /// (the panicking tier's only behaviour).
    #[default]
    Propagate,
    /// `try_*` calls scan operand values up front and fail with
    /// [`SmashError::NonFinite`] before running any kernel.
    Reject,
}

/// One rung of the graceful-degradation ladder a `try_*` call descended,
/// reported in its [`ExecReport`] (and appended to the plan's rationale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// The parallel kernel panicked; the call was retried serially.
    WorkerPanic {
        /// The stringified panic payload.
        detail: String,
    },
    /// The executor wanted a pool but has none (spawn failed at
    /// construction); the call ran serially.
    PoolUnavailable {
        /// Why the pool is missing.
        detail: String,
    },
    /// The product exceeded the [`MemoryBudget`] and ran as a serial
    /// row-chunked streaming execution instead.
    ChunkedSpgemm {
        /// Number of row chunks the run was split into.
        chunks: usize,
        /// Peak transient scratch of the chunked run (≤ the budget).
        peak_scratch_bytes: u64,
        /// The budget the run was held to.
        budget_bytes: u64,
    },
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::WorkerPanic { detail } => {
                write!(
                    f,
                    "degraded: parallel kernel panicked ({detail}), retried serially"
                )
            }
            Degradation::PoolUnavailable { detail } => {
                write!(f, "degraded: pool unavailable ({detail}), ran serially")
            }
            Degradation::ChunkedSpgemm {
                chunks,
                peak_scratch_bytes,
                budget_bytes,
            } => write!(
                f,
                "degraded: over budget, ran as {chunks} serial chunks \
                 (peak scratch {peak_scratch_bytes} of {budget_bytes} bytes)"
            ),
        }
    }
}

/// What a `try_*` call actually did: the [`Plan`] it acted on, plus any
/// degradations taken on the way to the (always correct) result. Each
/// degradation is also appended to `plan.rationale`, so the one-line
/// explanation stays self-contained.
#[derive(Debug)]
pub struct ExecReport {
    /// The dispatch plan the call acted on, rationale extended with any
    /// degradations.
    pub plan: Plan,
    /// The degradation ladder rungs descended, in order. Empty on a clean
    /// run.
    pub degradations: Vec<Degradation>,
}

impl ExecReport {
    fn new(plan: Plan) -> Self {
        ExecReport {
            plan,
            degradations: Vec::new(),
        }
    }

    fn note(&mut self, d: Degradation) {
        self.plan.rationale.push_str("; ");
        self.plan.rationale.push_str(&d.to_string());
        self.degradations.push(d);
    }

    /// Whether the call had to degrade from its planned execution.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

/// Format × precision × serial/parallel dispatcher for the native kernels.
///
/// One executor serves every [`Scalar`] precision — it owns a thread pool
/// (for the parallel modes), not per-type state — so a single instance can
/// run an `f64` solve and an `f32` inference pass back to back.
///
/// See the [module docs](self) for the dispatch rules and the determinism
/// guarantee, and [`Executor::spmv`] / [`Executor::spmm`] for the entry
/// points.
#[derive(Debug)]
pub struct Executor {
    mode: ExecMode,
    /// Present iff `mode` may parallelize (`Parallel` or `Auto`).
    pool: Option<ThreadPool>,
    /// Present iff `mode` is `Auto`: the cost model its per-call
    /// decisions delegate to.
    planner: Option<Planner>,
    /// Why `pool` is `None` although the mode wanted one (resilient
    /// construction after a spawn failure) — reported as a
    /// [`Degradation::PoolUnavailable`] by every `try_*` call.
    pool_error: Option<String>,
    /// Transient-memory cap for `try_spgemm` (`None`: unbounded).
    budget: Option<MemoryBudget>,
    /// NaN/infinity policy of the `try_*` tier.
    nonfinite: NonFinitePolicy,
}

impl Executor {
    fn assemble(mode: ExecMode, pool: Option<ThreadPool>, planner: Option<Planner>) -> Self {
        Executor {
            mode,
            pool,
            planner,
            pool_error: None,
            budget: None,
            nonfinite: NonFinitePolicy::default(),
        }
    }

    /// An executor that always runs the serial native kernels.
    pub fn serial() -> Self {
        Executor::assemble(ExecMode::Serial, None, None)
    }

    /// An executor that always uses the thread pool, sized from
    /// [`SMASH_THREADS`](smash_parallel::THREADS_ENV) (or the available cores when unset).
    pub fn parallel() -> Self {
        Executor::with_threads(default_threads())
    }

    /// An executor that always uses a pool of exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the OS refuses to spawn a worker.
    /// [`Executor::try_with_threads`] is the fallible front door.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "an executor needs at least one thread");
        Executor::assemble(ExecMode::Parallel, Some(ThreadPool::new(threads)), None)
    }

    /// Fallible [`Executor::with_threads`]: a rejected thread count or an
    /// OS spawn refusal comes back as [`SmashError::PoolUnavailable`]
    /// instead of a panic.
    ///
    /// # Errors
    ///
    /// [`SmashError::PoolUnavailable`] when `threads == 0` or the pool
    /// cannot be spawned.
    pub fn try_with_threads(threads: usize) -> Result<Self, SmashError> {
        if threads == 0 {
            return Err(SmashError::PoolUnavailable {
                detail: "0 worker threads requested".into(),
            });
        }
        let pool = ThreadPool::try_new(threads).map_err(|e| SmashError::PoolUnavailable {
            detail: e.to_string(),
        })?;
        Ok(Executor::assemble(ExecMode::Parallel, Some(pool), None))
    }

    /// Fallible [`Executor::parallel`]: unlike the panicking constructor,
    /// a malformed `SMASH_THREADS` override is rejected with a typed
    /// error instead of being silently replaced by the hardware count.
    ///
    /// # Errors
    ///
    /// [`SmashError::PoolUnavailable`] for a malformed override or a
    /// failed spawn.
    pub fn try_parallel() -> Result<Self, SmashError> {
        let threads = threads_from_env()
            .map_err(|e| SmashError::PoolUnavailable {
                detail: e.to_string(),
            })?
            .unwrap_or_else(default_threads);
        Executor::try_with_threads(threads)
    }

    /// An executor that chooses serial or parallel per call through the
    /// built-in calibrated [`Planner`] (threshold fallback when no
    /// calibration row matches). The pool is sized from
    /// [`SMASH_THREADS`](smash_parallel::THREADS_ENV) (or the available cores), so
    /// `SMASH_THREADS=1` pins `Auto` to serial execution globally.
    pub fn auto() -> Self {
        Executor::auto_with(Planner::built_in())
    }

    /// An `Auto` executor driven by a caller-supplied [`Planner`] —
    /// e.g. [`Planner::empty`] to get the pure threshold dispatch, or a
    /// planner parsed from a site-specific calibration table.
    pub fn auto_with(planner: Planner) -> Self {
        Executor::assemble(
            ExecMode::Auto,
            Some(ThreadPool::new(default_threads())),
            Some(planner),
        )
    }

    /// An `Auto` executor that **degrades instead of panicking** when the
    /// pool cannot be built: on a spawn failure the executor comes up
    /// serial, and every `try_*` call reports the missing pool as a
    /// [`Degradation::PoolUnavailable`] in its [`ExecReport`] — the
    /// construction rung of the degradation ladder.
    pub fn auto_resilient() -> Self {
        let planner = Some(Planner::built_in());
        match ThreadPool::try_new(default_threads()) {
            Ok(pool) => Executor::assemble(ExecMode::Auto, Some(pool), planner),
            Err(e) => {
                let mut exec = Executor::assemble(ExecMode::Auto, None, planner);
                exec.pool_error = Some(e.to_string());
                exec
            }
        }
    }

    /// Sets the transient-memory budget consulted by
    /// [`Executor::try_spgemm`].
    #[must_use]
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the NaN/infinity policy of the `try_*` tier.
    #[must_use]
    pub fn with_non_finite_policy(mut self, policy: NonFinitePolicy) -> Self {
        self.nonfinite = policy;
        self
    }

    /// The transient-memory budget, if one is set.
    pub fn budget(&self) -> Option<MemoryBudget> {
        self.budget
    }

    /// The NaN/infinity policy of the `try_*` tier.
    pub fn non_finite_policy(&self) -> NonFinitePolicy {
        self.nonfinite
    }

    /// The planner driving `Auto` decisions (`None` for the fixed
    /// `Serial`/`Parallel` modes).
    pub fn planner(&self) -> Option<&Planner> {
        self.planner.as_ref()
    }

    /// The dispatch mode of this executor.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Worker threads the parallel path would use (1 for a serial
    /// executor).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ThreadPool::threads)
    }

    /// Whether a call over `rows` output rows and `work` stored values
    /// runs on the pool under the current mode, judged by the legacy
    /// **threshold tier** alone. This is the planner's fallback rule;
    /// ops the planner doesn't model (block-granular SMASH×SMASH SpMM)
    /// still use it directly.
    fn parallelize(&self, rows: usize, work: usize) -> bool {
        match self.mode {
            ExecMode::Serial => false,
            ExecMode::Parallel => self.pool.is_some(),
            ExecMode::Auto => {
                let threads = self.threads();
                threads > 1
                    && work >= AUTO_PARALLEL_NNZ
                    && rows >= AUTO_MIN_ROWS_PER_THREAD * threads
            }
        }
    }

    /// Whether an `Auto` call dispatches wide, as judged by the planner
    /// over the operand's profile. `Serial`/`Parallel` modes keep their
    /// unconditional answer.
    fn planned_wide(
        &self,
        op: Op,
        format: Format,
        profile: impl FnOnce() -> MatrixProfile,
        rhs_cols: usize,
        work: Option<u64>,
    ) -> bool {
        match self.mode {
            ExecMode::Serial => false,
            ExecMode::Parallel => self.pool.is_some(),
            ExecMode::Auto => self
                .make_plan(op, format, &profile(), rhs_cols, work)
                .choice
                .parallel(),
        }
    }

    /// Builds the plan an `Auto` dispatch would act on (the fixed modes
    /// consult the built-in planner, so explainability never requires an
    /// `Auto` executor).
    fn make_plan(
        &self,
        op: Op,
        format: Format,
        profile: &MatrixProfile,
        rhs_cols: usize,
        work: Option<u64>,
    ) -> Plan {
        let mut req = PlanRequest::pinned(op, format, self.threads()).with_rhs(rhs_cols);
        if let Some(w) = work {
            req = req.with_work(w);
        }
        match &self.planner {
            Some(p) => p.plan(profile, &req),
            None => Planner::built_in().plan(profile, &req),
        }
    }

    /// The [`Plan`] — choice, predicted cost, rationale — that
    /// [`Executor::spmv`] would act on for this operand, without running
    /// anything.
    pub fn plan_spmv<'a, T: Scalar>(&self, a: impl Into<SpmvOperand<'a, T>>) -> Plan {
        let a = a.into();
        self.make_plan(a.op_spmv(), a.format(), &a.profile(), 1, None)
    }

    /// The [`Plan`] that [`Executor::spmm_dense`] would act on for this
    /// operand and a `rhs_cols`-wide batch.
    pub fn plan_spmm_dense<'a, T: Scalar>(
        &self,
        a: impl Into<SpmvOperand<'a, T>>,
        rhs_cols: usize,
    ) -> Plan {
        let a = a.into();
        self.make_plan(a.op_spmm_dense(), a.format(), &a.profile(), rhs_cols, None)
    }

    /// The [`Plan`] that [`Executor::spgemm`] would act on, including
    /// the symbolic flop count it weighs.
    pub fn plan_spgemm<T: Scalar>(&self, a: &Csr<T>, b: &Csr<T>) -> Plan {
        let work = crate::spgemm::stored_work(a, b);
        self.make_plan(
            Op::Spgemm,
            Format::Csr,
            &MatrixProfile::of_csr(a),
            1,
            Some(work),
        )
    }

    /// The [`Plan`] that [`Executor::encode`] would act on.
    pub fn plan_encode<T: Scalar>(&self, a: &Csr<T>) -> Plan {
        self.make_plan(Op::Encode, Format::Csr, &MatrixProfile::of_csr(a), 1, None)
    }

    /// Sparse matrix-vector product `y = A * x` over any supported format
    /// and precision.
    ///
    /// Dispatches to the serial or parallel kernel of the operand's format
    /// per the executor's [`ExecMode`]; the result is bit-identical
    /// whichever path runs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != a.cols()`, `y.len() != a.rows()`, or (for
    /// SMASH operands) the matrix is not row-major.
    ///
    /// # Example
    ///
    /// ```
    /// use smash_core::{SmashConfig, SmashMatrix};
    /// use smash_kernels::Executor;
    /// use smash_matrix::generators;
    ///
    /// let exec = Executor::auto();
    /// let a = generators::banded(96, 96, 3, 500, 7);
    /// let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4])?);
    /// let x = vec![0.5f64; 96];
    /// let (mut y_csr, mut y_sm) = (vec![0.0; 96], vec![0.0; 96]);
    /// exec.spmv(&a, &x, &mut y_csr);   // CSR operand
    /// exec.spmv(&sm, &x, &mut y_sm);   // compressed operand, same call
    /// # Ok::<(), smash_core::SmashError>(())
    /// ```
    pub fn spmv<'a, T: Scalar>(&self, a: impl Into<SpmvOperand<'a, T>>, x: &[T], y: &mut [T]) {
        let a = a.into();
        let wide = self.planned_wide(a.op_spmv(), a.format(), || a.profile(), 1, None);
        let r = a.row_read();
        if wide {
            par_spmv_rows(self.pool(), r, x, y);
        } else {
            spmv_rows(r, x, y);
        }
    }

    /// Batched sparse × dense multiply `C = A * B` over any supported
    /// sparse format: `B` is a dense batch of right-hand-side columns
    /// (e.g. many concurrent queries against one served matrix), processed
    /// in register-blocked column tiles so the sparse operand is streamed
    /// once per tile instead of once per vector.
    ///
    /// Dispatches to the serial or parallel kernel of the operand's format
    /// per the executor's [`ExecMode`]. Under [`ExecMode::Auto`] the
    /// decision weighs the *total* work — stored values × right-hand
    /// sides — against [`AUTO_PARALLEL_NNZ`], so a matrix too small to
    /// parallelize one SpMV can still go wide once enough right-hand
    /// sides are batched. Whichever path runs, the result is bit-identical
    /// — and column `j` of `C` is bit-identical to [`Executor::spmv`]
    /// against column `j` of `B`.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`,
    /// `c.cols() != b.cols()`, or (for SMASH operands) the matrix is not
    /// row-major.
    ///
    /// # Example
    ///
    /// ```
    /// use smash_kernels::Executor;
    /// use smash_matrix::{generators, Dense};
    ///
    /// let a = generators::banded(64, 64, 3, 400, 7);
    /// let b = Dense::from_vec(64, 8, vec![0.5f64; 64 * 8])?;
    /// let mut c = Dense::zeros(64, 8);
    /// Executor::auto().spmm_dense(&a, &b, &mut c);
    ///
    /// let mut serial = Dense::zeros(64, 8);
    /// Executor::serial().spmm_dense(&a, &b, &mut serial);
    /// assert_eq!(c, serial); // bit-identical across modes
    /// # Ok::<(), smash_matrix::MatrixError>(())
    /// ```
    pub fn spmm_dense<'a, T: Scalar>(
        &self,
        a: impl Into<SpmvOperand<'a, T>>,
        b: &Dense<T>,
        c: &mut Dense<T>,
    ) {
        let a = a.into();
        let wide = self.planned_wide(
            a.op_spmm_dense(),
            a.format(),
            || a.profile(),
            b.cols(),
            None,
        );
        let r = a.row_read();
        if wide {
            par_spmm_dense_rows(self.pool(), r, b, c);
        } else {
            spmm_dense_rows(r, b, c);
        }
    }

    /// Sparse × sparse multiply `C = A · B`, both operands CSR, through
    /// the row-wise Gustavson engine ([`crate::spgemm`]): symbolic sizing,
    /// per-row dense/hash accumulators, direct CSR emission with exact
    /// allocation.
    ///
    /// Under [`ExecMode::Auto`] the serial/parallel decision weighs the
    /// **stored work** `Σ_{(i,k) ∈ A} nnz(B[k,:])` — the flop count
    /// Gustavson actually performs, which for sparse × sparse can dwarf
    /// (or undercut) either operand's nnz. Whichever path runs, the
    /// output is bit-identical — and triplet-exact to the
    /// `Csr::spmm_inner` inner-product oracle.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    ///
    /// # Example
    ///
    /// ```
    /// use smash_kernels::Executor;
    /// use smash_matrix::generators;
    ///
    /// let a = generators::power_law(96, 96, 1_200, 1.3, 5);
    /// let c = Executor::auto().spgemm(&a, &a);
    /// assert_eq!(c, Executor::serial().spgemm(&a, &a)); // bit-identical
    /// ```
    pub fn spgemm<T: Scalar>(&self, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
        let work = crate::spgemm::stored_work(a, b);
        if self.planned_wide(
            Op::Spgemm,
            Format::Csr,
            || MatrixProfile::of_csr(a),
            1,
            Some(work),
        ) {
            crate::spgemm::par_spgemm(self.pool(), a, b)
        } else {
            crate::spgemm::spgemm(a, b)
        }
    }

    /// Sparse × sparse multiply emitted straight into the SMASH encoding
    /// (compress-on-the-fly): `==` to compressing
    /// [`Executor::spgemm`]'s result with `SmashMatrix::encode`, without
    /// materializing the intermediate CSR. Serial/parallel dispatch as in
    /// [`Executor::spgemm`].
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()` or `config` is not row-major.
    pub fn spgemm_smash<T: Scalar>(
        &self,
        a: &Csr<T>,
        b: &Csr<T>,
        config: SmashConfig,
    ) -> SmashMatrix<T> {
        let work = crate::spgemm::stored_work(a, b);
        if self.planned_wide(
            Op::Spgemm,
            Format::Csr,
            || MatrixProfile::of_csr(a),
            1,
            Some(work),
        ) {
            crate::spgemm::par_spgemm_smash(self.pool(), a, b, config)
        } else {
            crate::spgemm::spgemm_smash(a, b, config)
        }
    }

    /// Inner-product sparse matrix-matrix multiply `C = A * B` with `B` in
    /// CSC form, backed by the Gustavson engine ([`Executor::spgemm`])
    /// since the two produce identical triplet lists — the engine's
    /// ascending-`k` `mul_add` fold is exactly the inner-product merge's.
    /// Serial or parallel per the executor's mode; identical output
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn spmm<T: Scalar>(&self, a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        self.spgemm(a, &b.to_csr()).to_coo()
    }

    /// Block-granular SMASH SpMM (`A` row-major × `B` column-major, both
    /// 1-level), serial or row-parallel per the executor's mode. The
    /// parallel variant runs the serial per-row merge body over disjoint
    /// row ranges, so every mode returns the identical triplet list.
    ///
    /// (Earlier revisions ignored the mode here and always ran serially —
    /// a silent downgrade for `Parallel`/`Auto` callers.)
    ///
    /// # Panics
    ///
    /// Panics if the operands are not 1-level row-major/col-major with
    /// matching block sizes, or dimensions disagree.
    pub fn spmm_smash<T: Scalar>(&self, a: &SmashMatrix<T>, b: &SmashMatrix<T>) -> Coo<T> {
        assert_eq!(a.config().layout(), Layout::RowMajor, "A must be row-major");
        if self.parallelize(a.rows(), a.nza().len() + b.nza().len()) {
            crate::spgemm::par_spmm_smash(self.pool(), a, b)
        } else {
            native::spmm_smash(a, b)
        }
    }

    /// Compresses a CSR matrix into the SMASH encoding, in parallel when
    /// the executor's mode and the matrix size call for it. The produced
    /// matrix is `==` to `SmashMatrix::encode(a, config)` either way.
    pub fn encode<T: Scalar>(&self, a: &Csr<T>, config: SmashConfig) -> SmashMatrix<T> {
        if self.planned_wide(
            Op::Encode,
            Format::Csr,
            || MatrixProfile::of_csr(a),
            1,
            None,
        ) {
            par_csr_to_smash(self.pool(), a, config)
        } else {
            SmashMatrix::encode(a, config)
        }
    }

    /// Merges a dynamic matrix's overlay into its base tier
    /// ([`DynamicMatrix::compact`]), re-encoding a SMASH base through the
    /// executor's serial/parallel encoder dispatch. The compacted base is
    /// `==` to building it from scratch from the merged matrix, whichever
    /// path runs.
    pub fn compact<T: Scalar>(&self, m: &mut DynamicMatrix<T>) {
        m.compact_with(|merged, config| {
            if self.planned_wide(
                Op::Encode,
                Format::Csr,
                || MatrixProfile::of_csr(merged),
                1,
                None,
            ) {
                par_csr_to_smash(self.pool(), merged, config)
            } else {
                SmashMatrix::encode(merged, config)
            }
        });
    }

    // ------------------------------------------------------------------
    // The fallible tier: validated operands, typed errors, graceful
    // degradation. The documented front door for untrusted input — the
    // panicking methods above stay the zero-overhead contract for
    // trusted callers.
    // ------------------------------------------------------------------

    /// Whether this plan dispatches onto the pool under the current mode.
    fn wide_for(&self, plan: &Plan) -> bool {
        match self.mode {
            ExecMode::Serial => false,
            ExecMode::Parallel => self.pool.is_some(),
            ExecMode::Auto => self.pool.is_some() && plan.choice.parallel(),
        }
    }

    /// Starts a report on `plan`, recording up front the construction
    /// rung of the ladder (a pool that failed to spawn) if it applies.
    fn start_report(&self, plan: Plan) -> ExecReport {
        let mut report = ExecReport::new(plan);
        if let Some(detail) = &self.pool_error {
            report.note(Degradation::PoolUnavailable {
                detail: detail.clone(),
            });
        }
        report
    }

    /// The [`NonFinitePolicy::Reject`] scan over a matrix operand —
    /// operand-level (not a slice scan) because a dynamic operand's
    /// values live in both its base tier and its overlay.
    fn check_operand_finite<T: Scalar>(
        &self,
        op: &'static str,
        a: &SpmvOperand<'_, T>,
    ) -> Result<(), SmashError> {
        if self.nonfinite == NonFinitePolicy::Reject && !a.values_finite() {
            return Err(SmashError::NonFinite { op, operand: "A" });
        }
        Ok(())
    }

    /// The [`NonFinitePolicy::Reject`] scan over one operand's values.
    fn check_finite<T: Scalar>(
        &self,
        op: &'static str,
        operand: &'static str,
        values: &[T],
    ) -> Result<(), SmashError> {
        if self.nonfinite == NonFinitePolicy::Reject && values.iter().any(|v| !v.is_finite()) {
            return Err(SmashError::NonFinite { op, operand });
        }
        Ok(())
    }

    /// Whether the fault-injection harness forces this budget check to
    /// report exhaustion (always `false` outside the `fault-injection`
    /// feature).
    fn budget_fault_injected() -> bool {
        #[cfg(feature = "fault-injection")]
        {
            smash_parallel::faultinject::should_fail(smash_parallel::faultinject::Site::BudgetCheck)
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            false
        }
    }

    /// Fallible [`Executor::spmv`]: validates the operands up front
    /// (dimensions, cached structural [`validate`](Csr::validate), the
    /// [`NonFinitePolicy`]) and descends the degradation ladder instead
    /// of panicking — a parallel kernel panic is caught, reported, and
    /// retried serially (the output is zeroed first, so the retry is
    /// bit-identical to a clean serial run).
    ///
    /// # Errors
    ///
    /// [`SmashError::DimensionMismatch`], [`SmashError::InvalidStructure`]
    /// / [`SmashError::Encoding`] / [`SmashError::Unsupported`] from
    /// operand validation, [`SmashError::NonFinite`] under the `Reject`
    /// policy, [`SmashError::Panicked`] if the serial retry panics too.
    pub fn try_spmv<'a, T: Scalar>(
        &self,
        a: impl Into<SpmvOperand<'a, T>>,
        x: &[T],
        y: &mut [T],
    ) -> Result<ExecReport, SmashError> {
        const OP: &str = "spmv";
        let a = a.into();
        if x.len() != a.cols() {
            return Err(SmashError::DimensionMismatch {
                op: OP,
                expected: (a.cols(), 1),
                got: (x.len(), 1),
            });
        }
        if y.len() != a.rows() {
            return Err(SmashError::DimensionMismatch {
                op: OP,
                expected: (a.rows(), 1),
                got: (y.len(), 1),
            });
        }
        a.check(OP)?;
        self.check_operand_finite(OP, &a)?;
        self.check_finite(OP, "x", x)?;
        let plan = self.make_plan(a.op_spmv(), a.format(), &a.profile(), 1, None);
        let mut report = self.start_report(plan);
        let r = a.row_read();
        if self.wide_for(&report.plan) {
            let wide = catch_unwind(AssertUnwindSafe(|| par_spmv_rows(self.pool(), r, x, y)));
            match wide {
                Ok(()) => return Ok(report),
                Err(payload) => {
                    report.note(Degradation::WorkerPanic {
                        detail: panic_detail(payload.as_ref()),
                    });
                    // A panicked parallel run may have written part of the
                    // output; reset so the serial retry starts clean.
                    y.fill(T::ZERO);
                }
            }
        }
        let serial = catch_unwind(AssertUnwindSafe(|| spmv_rows(r, x, y)));
        match serial {
            Ok(()) => Ok(report),
            Err(payload) => Err(SmashError::Panicked {
                op: OP,
                detail: panic_detail(payload.as_ref()),
            }),
        }
    }

    /// Fallible [`Executor::spmm_dense`]: the batched sparse × dense
    /// product with validated operands and the same degradation ladder as
    /// [`Executor::try_spmv`].
    ///
    /// # Errors
    ///
    /// As [`Executor::try_spmv`], with `B` covered by the non-finite scan
    /// as well.
    pub fn try_spmm_dense<'a, T: Scalar>(
        &self,
        a: impl Into<SpmvOperand<'a, T>>,
        b: &Dense<T>,
        c: &mut Dense<T>,
    ) -> Result<ExecReport, SmashError> {
        const OP: &str = "spmm_dense";
        let a = a.into();
        if b.rows() != a.cols() {
            return Err(SmashError::DimensionMismatch {
                op: OP,
                expected: (a.cols(), b.cols()),
                got: (b.rows(), b.cols()),
            });
        }
        if c.rows() != a.rows() || c.cols() != b.cols() {
            return Err(SmashError::DimensionMismatch {
                op: OP,
                expected: (a.rows(), b.cols()),
                got: (c.rows(), c.cols()),
            });
        }
        a.check(OP)?;
        self.check_operand_finite(OP, &a)?;
        self.check_finite(OP, "B", b.as_slice())?;
        let plan = self.make_plan(a.op_spmm_dense(), a.format(), &a.profile(), b.cols(), None);
        let mut report = self.start_report(plan);
        let r = a.row_read();
        if self.wide_for(&report.plan) {
            let wide = catch_unwind(AssertUnwindSafe(|| {
                par_spmm_dense_rows(self.pool(), r, b, c)
            }));
            match wide {
                Ok(()) => return Ok(report),
                Err(payload) => {
                    report.note(Degradation::WorkerPanic {
                        detail: panic_detail(payload.as_ref()),
                    });
                    c.as_mut_slice().fill(T::ZERO);
                }
            }
        }
        let serial = catch_unwind(AssertUnwindSafe(|| spmm_dense_rows(r, b, c)));
        match serial {
            Ok(()) => Ok(report),
            Err(payload) => Err(SmashError::Panicked {
                op: OP,
                detail: panic_detail(payload.as_ref()),
            }),
        }
    }

    /// Fallible [`Executor::spgemm`], the resource-governed one: operands
    /// are validated up front, and when a [`MemoryBudget`] is set the
    /// product's transient engine memory is estimated from the symbolic
    /// bounds **before any allocation** — an over-budget product either
    /// fails with [`SmashError::ResourceExhausted`] or (for a
    /// [`MemoryBudget::degrade_over`] budget) runs as a serial
    /// row-chunked streaming execution with bounded peak scratch,
    /// bit-identical to the unchunked engine. Parallel kernel panics
    /// degrade to a serial retry as in [`Executor::try_spmv`].
    ///
    /// # Errors
    ///
    /// The validation errors of [`Executor::try_spmv`], plus
    /// [`SmashError::ResourceExhausted`] for an over-budget product
    /// without degradation (or one whose single widest row cannot fit
    /// even chunked).
    pub fn try_spgemm<T: Scalar>(
        &self,
        a: &Csr<T>,
        b: &Csr<T>,
    ) -> Result<(Csr<T>, ExecReport), SmashError> {
        const OP: &str = "spgemm";
        if a.cols() != b.rows() {
            return Err(SmashError::DimensionMismatch {
                op: OP,
                expected: (a.cols(), b.cols()),
                got: (b.rows(), b.cols()),
            });
        }
        SpmvOperand::Csr(a).check(OP)?;
        SpmvOperand::Csr(b).check(OP)?;
        self.check_finite(OP, "A", a.values())?;
        self.check_finite(OP, "B", b.values())?;
        let (bounds, work) = crate::spgemm::symbolic_bounds(a, b);
        let plan = self.make_plan(
            Op::Spgemm,
            Format::Csr,
            &MatrixProfile::of_csr(a),
            1,
            Some(work),
        );
        let mut report = self.start_report(plan);
        if let Some(budget) = self.budget {
            let needed = crate::spgemm::estimate_engine_bytes::<T>(&bounds, b.cols());
            if needed > budget.bytes() || Self::budget_fault_injected() {
                if !budget.degrades() {
                    return Err(SmashError::ResourceExhausted {
                        needed,
                        budget: budget.bytes(),
                    });
                }
                let (c, run) = crate::spgemm::spgemm_chunked(a, b, &bounds, budget.bytes())?;
                report.note(Degradation::ChunkedSpgemm {
                    chunks: run.chunks,
                    peak_scratch_bytes: run.peak_scratch_bytes,
                    budget_bytes: run.budget_bytes,
                });
                return Ok((c, report));
            }
        }
        if self.wide_for(&report.plan) {
            match catch_unwind(AssertUnwindSafe(|| {
                crate::spgemm::par_spgemm(self.pool(), a, b)
            })) {
                Ok(c) => return Ok((c, report)),
                Err(payload) => report.note(Degradation::WorkerPanic {
                    detail: panic_detail(payload.as_ref()),
                }),
            }
        }
        match catch_unwind(AssertUnwindSafe(|| crate::spgemm::spgemm(a, b))) {
            Ok(c) => Ok((c, report)),
            Err(payload) => Err(SmashError::Panicked {
                op: OP,
                detail: panic_detail(payload.as_ref()),
            }),
        }
    }

    /// Fallible [`Executor::encode`]: validates the CSR operand (cached
    /// structural check plus the [`NonFinitePolicy`] scan) and descends
    /// the degradation ladder — a panicking parallel encoder is caught,
    /// reported, and retried serially; the result is `==` either way.
    ///
    /// # Errors
    ///
    /// [`SmashError::InvalidStructure`] / [`SmashError::NonFinite`] from
    /// validation, [`SmashError::Panicked`] if the serial retry panics.
    pub fn try_encode<T: Scalar>(
        &self,
        a: &Csr<T>,
        config: SmashConfig,
    ) -> Result<(SmashMatrix<T>, ExecReport), SmashError> {
        const OP: &str = "encode";
        SpmvOperand::Csr(a).check(OP)?;
        self.check_finite(OP, "A", a.values())?;
        let plan = self.make_plan(Op::Encode, Format::Csr, &MatrixProfile::of_csr(a), 1, None);
        let mut report = self.start_report(plan);
        if self.wide_for(&report.plan) {
            match catch_unwind(AssertUnwindSafe(|| {
                par_csr_to_smash(self.pool(), a, config.clone())
            })) {
                Ok(sm) => return Ok((sm, report)),
                Err(payload) => report.note(Degradation::WorkerPanic {
                    detail: panic_detail(payload.as_ref()),
                }),
            }
        }
        match catch_unwind(AssertUnwindSafe(|| SmashMatrix::encode(a, config))) {
            Ok(sm) => Ok((sm, report)),
            Err(payload) => Err(SmashError::Panicked {
                op: OP,
                detail: panic_detail(payload.as_ref()),
            }),
        }
    }

    fn pool(&self) -> &ThreadPool {
        self.pool
            .as_ref()
            .expect("parallel dispatch implies a pool")
    }
}

impl Default for Executor {
    /// The default executor is [`Executor::auto`].
    fn default() -> Self {
        Executor::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_vector;
    use smash_matrix::{generators, Bcsr};

    fn modes() -> Vec<(&'static str, Executor)> {
        vec![
            ("serial", Executor::serial()),
            ("parallel", Executor::parallel()),
            ("threads2", Executor::with_threads(2)),
            ("auto", Executor::auto()),
            ("default", Executor::default()),
        ]
    }

    #[test]
    fn all_modes_agree_bitwise_on_all_formats() {
        // Big enough that Auto takes the parallel path for CSR.
        let a = generators::clustered(256, 256, 20_000, 5, 3);
        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        let x = test_vector::<f64>(a.cols());
        let mut want = vec![0.0; a.rows()];

        for (fmt, serial_y) in [
            ("csr", {
                native::spmv_csr(&a, &x, &mut want);
                want.clone()
            }),
            ("bcsr", {
                native::spmv_bcsr(&bcsr, &x, &mut want);
                want.clone()
            }),
            ("smash", {
                native::spmv_smash(&sm, &x, &mut want);
                want.clone()
            }),
        ] {
            for (mode, exec) in modes() {
                let mut y = vec![f64::NAN; a.rows()];
                match fmt {
                    "csr" => exec.spmv(&a, &x, &mut y),
                    "bcsr" => exec.spmv(&bcsr, &x, &mut y),
                    _ => exec.spmv(&sm, &x, &mut y),
                }
                assert_eq!(y, serial_y, "{fmt} via {mode}");
            }
        }
    }

    #[test]
    fn auto_stays_serial_below_the_thresholds() {
        let exec = Executor::auto();
        // Tiny matrix: never worth dispatching.
        assert!(!exec.parallelize(8, 64));
        // Heavy but short: row ranges would be degenerate.
        assert!(!exec.parallelize(2, 1_000_000));
        if exec.threads() > 1 {
            assert!(exec.parallelize(4 * exec.threads(), AUTO_PARALLEL_NNZ));
        }
    }

    #[test]
    fn serial_mode_reports_one_thread() {
        assert_eq!(Executor::serial().threads(), 1);
        assert_eq!(Executor::serial().mode(), ExecMode::Serial);
        assert_eq!(Executor::with_threads(3).threads(), 3);
    }

    #[test]
    fn spmm_modes_agree() {
        let a = generators::uniform(96, 80, 6_000, 7);
        let b = generators::uniform(80, 64, 4_000, 8).to_csc();
        let want = native::spmm_csr(&a, &b);
        for (mode, exec) in modes() {
            assert_eq!(exec.spmm(&a, &b).entries(), want.entries(), "{mode}");
        }
    }

    #[test]
    fn encode_modes_agree() {
        let a = generators::power_law(128, 128, 20_000, 1.3, 5);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let want = SmashMatrix::encode(&a, cfg.clone());
        for (mode, exec) in modes() {
            assert_eq!(exec.encode(&a, cfg.clone()), want, "{mode}");
        }
    }

    #[test]
    fn executor_is_precision_agnostic() {
        let a64 = generators::uniform(64, 64, 2_000, 9);
        let a32 = a64.cast::<f32>();
        let exec = Executor::auto();
        let mut y64 = vec![0.0f64; 64];
        let mut y32 = vec![0.0f32; 64];
        exec.spmv(&a64, &test_vector::<f64>(64), &mut y64);
        exec.spmv(&a32, &test_vector::<f32>(64), &mut y32);
        for (w, n) in y64.iter().zip(&y32) {
            assert!(n.approx_eq(f32::from_f64(*w), f32::TOLERANCE));
        }
    }

    fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
        generators::dense_batch(rows, cols, 5)
    }

    #[test]
    fn spmm_dense_modes_agree_bitwise_on_all_formats() {
        // Small nnz but many right-hand sides: nnz * cols crosses the Auto
        // threshold, exercising the batched parallel path.
        let a = generators::clustered(256, 256, 8_000, 5, 3);
        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        let b = test_batch(256, 8);
        let mut want = Dense::zeros(256, 8);
        let mut got = Dense::zeros(256, 8);
        for (fmt, serial_c) in [
            ("csr", {
                native::spmm_dense_csr(&a, &b, &mut want);
                want.clone()
            }),
            ("bcsr", {
                native::spmm_dense_bcsr(&bcsr, &b, &mut want);
                want.clone()
            }),
            ("smash", {
                native::spmm_dense_smash(&sm, &b, &mut want);
                want.clone()
            }),
        ] {
            for (mode, exec) in modes() {
                got.as_mut_slice().fill(f64::NAN);
                match fmt {
                    "csr" => exec.spmm_dense(&a, &b, &mut got),
                    "bcsr" => exec.spmm_dense(&bcsr, &b, &mut got),
                    _ => exec.spmm_dense(&sm, &b, &mut got),
                }
                assert_eq!(got, serial_c, "{fmt} via {mode}");
            }
        }
    }

    #[test]
    fn spmm_dense_columns_match_spmv_through_executor() {
        let a = generators::uniform(96, 80, 2_000, 9);
        let b = test_batch(80, 6);
        let exec = Executor::auto();
        let mut c = Dense::zeros(96, 6);
        exec.spmm_dense(&a, &b, &mut c);
        for j in 0..6 {
            let mut y = vec![0.0; 96];
            exec.spmv(&a, &b.col(j), &mut y);
            assert_eq!(c.col(j), y, "column {j}");
        }
    }

    #[test]
    fn auto_weighs_batched_work_by_rhs_count() {
        let exec = Executor::auto();
        if exec.threads() <= 1 {
            return; // single-core host: Auto never parallelizes
        }
        let rows = 4 * exec.threads();
        // One vector of work below the threshold...
        assert!(!exec.parallelize(rows, AUTO_PARALLEL_NNZ / 8));
        // ...crosses it once 8 right-hand sides are batched (the executor
        // multiplies stored work by the batch width).
        assert!(exec.parallelize(rows, (AUTO_PARALLEL_NNZ / 8) * 8));
    }

    #[test]
    fn try_spmv_matches_panicking_tier_on_clean_input() {
        let a = generators::clustered(256, 256, 20_000, 5, 3);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        let x = test_vector::<f64>(256);
        let mut want = vec![0.0; 256];
        Executor::serial().spmv(&a, &x, &mut want);
        for (mode, exec) in modes() {
            let mut y = vec![f64::NAN; 256];
            let report = exec.try_spmv(&a, &x, &mut y).unwrap();
            assert_eq!(y, want, "csr via {mode}");
            assert!(!report.degraded(), "clean run must not degrade");
            let mut y = vec![f64::NAN; 256];
            exec.try_spmv(&sm, &x, &mut y).unwrap();
            let mut want_sm = vec![0.0; 256];
            Executor::serial().spmv(&sm, &x, &mut want_sm);
            assert_eq!(y, want_sm, "smash via {mode}");
        }
    }

    #[test]
    fn try_spmv_rejects_bad_dimensions_with_typed_errors() {
        let a = generators::uniform(8, 6, 20, 1);
        let exec = Executor::serial();
        let mut y = vec![0.0; 8];
        let err = exec.try_spmv(&a, &[0.0; 5], &mut y).unwrap_err();
        assert!(
            matches!(err, SmashError::DimensionMismatch { op: "spmv", .. }),
            "short x: {err}"
        );
        let err = exec.try_spmv(&a, &[0.0; 6], &mut [0.0; 7]).unwrap_err();
        assert!(
            matches!(err, SmashError::DimensionMismatch { .. }),
            "short y: {err}"
        );
    }

    #[test]
    fn try_spmv_surfaces_corrupt_structure_as_error_not_panic() {
        // Adversarial CSR: row_ptr points past the value arrays.
        let bad = Csr::<f64>::from_parts_unchecked(2, 2, vec![0, 5, 5], vec![0], vec![1.0]);
        let exec = Executor::serial();
        let mut y = vec![0.0; 2];
        let err = exec.try_spmv(&bad, &[1.0, 1.0], &mut y).unwrap_err();
        assert!(
            matches!(err, SmashError::InvalidStructure { format: "csr", .. }),
            "{err}"
        );
    }

    #[test]
    fn non_finite_policy_rejects_nan_and_infinity() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 0, f64::NAN);
        let a = Csr::from_coo(&coo);
        let exec = Executor::serial().with_non_finite_policy(NonFinitePolicy::Reject);
        let mut y = vec![0.0; 2];
        let err = exec.try_spmv(&a, &[1.0, 1.0], &mut y).unwrap_err();
        assert!(
            matches!(err, SmashError::NonFinite { operand: "A", .. }),
            "{err}"
        );
        // A finite matrix with an infinite x is also rejected…
        let good = generators::uniform(2, 2, 2, 3);
        let err = exec
            .try_spmv(&good, &[1.0, f64::INFINITY], &mut y)
            .unwrap_err();
        assert!(matches!(err, SmashError::NonFinite { operand: "x", .. }));
        // …while the default policy lets IEEE semantics flow through.
        let report = Executor::serial().try_spmv(&a, &[1.0, 1.0], &mut y);
        assert!(report.is_ok());
        assert!(y[0].is_nan());
    }

    #[test]
    fn try_spmm_dense_validates_and_matches() {
        let a = generators::uniform(48, 40, 900, 5);
        let b = test_batch(40, 6);
        let mut want = Dense::zeros(48, 6);
        native::spmm_dense_csr(&a, &b, &mut want);
        for (mode, exec) in modes() {
            let mut c = Dense::zeros(48, 6);
            exec.try_spmm_dense(&a, &b, &mut c).unwrap();
            assert_eq!(c, want, "{mode}");
        }
        let err = Executor::serial()
            .try_spmm_dense(&a, &b, &mut Dense::zeros(48, 5))
            .unwrap_err();
        assert!(matches!(err, SmashError::DimensionMismatch { .. }), "{err}");
    }

    #[test]
    fn try_spgemm_budget_rejects_or_degrades() {
        let a = generators::power_law(128, 128, 3_000, 1.3, 5);
        let want = Executor::serial().spgemm(&a, &a);
        // Unbudgeted: plain engine.
        let (c, report) = Executor::serial().try_spgemm(&a, &a).unwrap();
        assert_eq!(c, want);
        assert!(!report.degraded());
        // A 64 KiB cap is far below this product's engine estimate.
        let cap = 64 * 1024;
        let err = Executor::serial()
            .with_budget(MemoryBudget::reject_over(cap))
            .try_spgemm(&a, &a)
            .unwrap_err();
        match err {
            SmashError::ResourceExhausted { needed, budget } => {
                assert_eq!(budget, cap);
                assert!(needed > cap);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Same cap with degradation: chunked run, bit-identical output,
        // peak scratch within the budget.
        let (c, report) = Executor::serial()
            .with_budget(MemoryBudget::degrade_over(cap))
            .try_spgemm(&a, &a)
            .unwrap();
        assert_eq!(c, want, "chunked degradation must be bit-identical");
        assert!(report.degraded());
        match &report.degradations[0] {
            Degradation::ChunkedSpgemm {
                chunks,
                peak_scratch_bytes,
                budget_bytes,
            } => {
                assert!(*chunks > 1);
                assert!(peak_scratch_bytes <= budget_bytes);
                assert_eq!(*budget_bytes, cap);
            }
            other => panic!("expected ChunkedSpgemm, got {other:?}"),
        }
        assert!(
            report.plan.rationale.contains("degraded"),
            "rationale records the ladder: {}",
            report.plan.rationale
        );
        // A roomy budget stays on the plain engine.
        let (c, report) = Executor::serial()
            .with_budget(MemoryBudget::reject_over(u64::MAX))
            .try_spgemm(&a, &a)
            .unwrap();
        assert_eq!(c, want);
        assert!(!report.degraded());
    }

    #[test]
    fn try_spgemm_matches_across_modes() {
        let a = generators::power_law(150, 150, 5_000, 1.4, 9);
        let want = Executor::serial().spgemm(&a, &a);
        for (mode, exec) in modes() {
            let (c, _) = exec.try_spgemm(&a, &a).unwrap();
            assert_eq!(c, want, "{mode}");
        }
        let b = generators::uniform(7, 7, 10, 2);
        let err = Executor::serial().try_spgemm(&a, &b).unwrap_err();
        assert!(matches!(err, SmashError::DimensionMismatch { .. }));
    }

    #[test]
    fn try_encode_matches_across_modes() {
        let a = generators::power_law(128, 128, 20_000, 1.3, 5);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let want = SmashMatrix::encode(&a, cfg.clone());
        for (mode, exec) in modes() {
            let (sm, report) = exec.try_encode(&a, cfg.clone()).unwrap();
            assert_eq!(sm, want, "{mode}");
            assert!(!report.degraded(), "{mode}");
        }
    }

    #[test]
    fn try_with_threads_reports_typed_pool_errors() {
        let err = Executor::try_with_threads(0).unwrap_err();
        assert!(matches!(err, SmashError::PoolUnavailable { .. }), "{err}");
        let exec = Executor::try_with_threads(2).unwrap();
        assert_eq!(exec.threads(), 2);
    }

    #[test]
    fn auto_resilient_matches_auto_on_a_healthy_host() {
        let exec = Executor::auto_resilient();
        let a = generators::uniform(64, 64, 1_500, 4);
        let x = test_vector::<f64>(64);
        let (mut y, mut want) = (vec![0.0; 64], vec![0.0; 64]);
        Executor::serial().spmv(&a, &x, &mut want);
        let report = exec.try_spmv(&a, &x, &mut y).unwrap();
        assert_eq!(y, want);
        // Spawn succeeded here, so no degradation is recorded.
        assert!(!report.degraded());
    }

    #[test]
    fn budget_accessors_roundtrip() {
        let exec = Executor::serial()
            .with_budget(MemoryBudget::degrade_over(1 << 20))
            .with_non_finite_policy(NonFinitePolicy::Reject);
        assert_eq!(exec.budget(), Some(MemoryBudget::degrade_over(1 << 20)));
        assert_eq!(exec.non_finite_policy(), NonFinitePolicy::Reject);
        assert!(exec.budget().unwrap().degrades());
        assert!(!MemoryBudget::reject_over(8).degrades());
        assert_eq!(MemoryBudget::reject_over(8).bytes(), 8);
        assert_eq!(Executor::serial().budget(), None);
    }

    #[test]
    fn dynamic_operand_matches_rebuilt_matrix_across_modes() {
        use smash_core::DynamicMatrix;
        let a = generators::clustered(256, 256, 20_000, 5, 3);
        let mut dm = DynamicMatrix::from_csr(a.clone());
        dm.set(3, 7, 2.5);
        dm.add(100, 100, -1.25);
        dm.delete(0, a.row(0).0.first().map_or(0, |&c| c as usize));
        let rebuilt = dm.merged_csr();
        let x = test_vector::<f64>(256);
        let b = test_batch(256, 8);
        let mut want = vec![0.0; 256];
        Executor::serial().spmv(&rebuilt, &x, &mut want);
        let mut want_c = Dense::zeros(256, 8);
        Executor::serial().spmm_dense(&rebuilt, &b, &mut want_c);
        for (mode, exec) in modes() {
            let mut y = vec![f64::NAN; 256];
            exec.spmv(&dm, &x, &mut y);
            assert_eq!(y, want, "spmv dynamic via {mode}");
            let mut c = Dense::zeros(256, 8);
            c.as_mut_slice().fill(f64::NAN);
            exec.spmm_dense(&dm, &b, &mut c);
            assert_eq!(c, want_c, "spmm_dense dynamic via {mode}");
            let mut y = vec![f64::NAN; 256];
            let report = exec.try_spmv(&dm, &x, &mut y).unwrap();
            assert_eq!(y, want, "try_spmv dynamic via {mode}");
            assert!(!report.degraded());
        }
        // The plan names the dynamic op and format, and (with no
        // calibration rows for it) lands in the threshold tier.
        let plan = Executor::auto().plan_spmv(&dm);
        assert!(!plan.calibrated, "{}", plan.rationale);
        assert_eq!(plan.choice.format, Format::Dynamic);
        assert!(plan.rationale.contains("dyn_spmv"), "{}", plan.rationale);
    }

    #[test]
    fn dynamic_operand_non_finite_overlay_is_rejected() {
        use smash_core::DynamicMatrix;
        let a = generators::uniform(16, 16, 60, 3);
        let mut dm = DynamicMatrix::from_csr(a);
        dm.set(2, 2, f64::NAN);
        let exec = Executor::serial().with_non_finite_policy(NonFinitePolicy::Reject);
        let mut y = vec![0.0; 16];
        let err = exec
            .try_spmv(&dm, &test_vector::<f64>(16), &mut y)
            .unwrap_err();
        assert!(
            matches!(err, SmashError::NonFinite { operand: "A", .. }),
            "{err}"
        );
        // Deletes carry no value, so deleting the bad entry clears the scan.
        let mut dm2 = DynamicMatrix::from_csr(generators::uniform(16, 16, 60, 3));
        dm2.delete(2, 2);
        assert!(exec.try_spmv(&dm2, &test_vector::<f64>(16), &mut y).is_ok());
    }

    #[test]
    fn executor_compact_matches_direct_compaction() {
        use smash_core::DynamicMatrix;
        let a = generators::power_law(128, 128, 20_000, 1.3, 5);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
        for (mode, exec) in modes() {
            let mut dm = DynamicMatrix::from_smash(sm.clone());
            dm.set(5, 9, 4.0);
            dm.delete(17, 3);
            let want = SmashMatrix::encode(&dm.merged_csr(), sm.config().clone());
            exec.compact(&mut dm);
            assert!(dm.overlay().is_empty(), "{mode}");
            match dm.base() {
                smash_core::DynamicBase::Smash(got) => assert_eq!(*got, want, "{mode}"),
                other => panic!("expected a SMASH base, got {other:?}"),
            }
        }
    }

    #[test]
    fn smash_spmm_through_executor_matches_native() {
        let a = generators::uniform(40, 48, 300, 3);
        let b = generators::clustered(48, 36, 250, 4, 4);
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        let want = native::spmm_smash(&sa, &sb);
        for (mode, exec) in modes() {
            assert_eq!(
                exec.spmm_smash(&sa, &sb).entries(),
                want.entries(),
                "{mode}"
            );
        }
    }
}
