//! The executor's unified operand layer.
//!
//! Exactly one type describes "a matrix the kernel stack can read":
//! [`SpmvOperand`], a borrowed enum over every format — CSR, BCSR,
//! row-major SMASH and the dynamic base + overlay tier. The enum exists
//! only at the *boundary* (dispatch keys, validation, profiles); compute
//! never matches on it per format. Instead [`SpmvOperand::row_read`]
//! hands kernels the format's [`RowRead`] view, and the generic drivers
//! (`smash_matrix::spmv_rows`, `smash_parallel::par_spmv_rows`, …) do the
//! rest — that single match arm is the only per-format dispatch in the
//! executor's SpMV/SpMM paths.
//!
//! The block-merge view for SMASH × SMASH products
//! (`SmashMergeOperand`, historically a second, parallel operand enum
//! in the native kernels) lives here too, so the operand abstractions
//! have one home.

use crate::planner::{Format, MatrixProfile, Op};
use crate::SmashError;
use smash_core::{Delta, DynamicBase, DynamicMatrix, Layout, SmashMatrix};
use smash_matrix::{Bcsr, Csr, RowRead, Scalar};

/// Any matrix format the executor can run an SpMV over, borrowed from the
/// caller. Construct it implicitly through `Into` (`exec.spmv(&csr, …)`)
/// or explicitly for dynamic format choice.
#[derive(Debug, Clone, Copy)]
pub enum SpmvOperand<'a, T> {
    /// Plain compressed sparse row.
    Csr(&'a Csr<T>),
    /// Blocked CSR.
    Bcsr(&'a Bcsr<T>),
    /// SMASH-compressed (hierarchical bitmap + NZA), row-major.
    Smash(&'a SmashMatrix<T>),
    /// Dynamic matrix: immutable base tier + delta overlay, merged on
    /// access.
    Dynamic(&'a DynamicMatrix<T>),
}

impl<'a, T> From<&'a Csr<T>> for SpmvOperand<'a, T> {
    fn from(a: &'a Csr<T>) -> Self {
        SpmvOperand::Csr(a)
    }
}

impl<'a, T> From<&'a Bcsr<T>> for SpmvOperand<'a, T> {
    fn from(a: &'a Bcsr<T>) -> Self {
        SpmvOperand::Bcsr(a)
    }
}

impl<'a, T> From<&'a SmashMatrix<T>> for SpmvOperand<'a, T> {
    fn from(a: &'a SmashMatrix<T>) -> Self {
        SpmvOperand::Smash(a)
    }
}

impl<'a, T> From<&'a DynamicMatrix<T>> for SpmvOperand<'a, T> {
    fn from(a: &'a DynamicMatrix<T>) -> Self {
        SpmvOperand::Dynamic(a)
    }
}

impl<'a, T: Scalar> SpmvOperand<'a, T> {
    /// The operand's [`RowRead`] view — the **only** per-format dispatch
    /// the executor's SpMV/SpMM paths perform. Everything downstream
    /// (serial drivers, parallel drivers, validation sweeps) is generic
    /// over the returned trait object.
    pub fn row_read(&self) -> &'a dyn RowRead<T> {
        match self {
            SpmvOperand::Csr(a) => *a,
            SpmvOperand::Bcsr(a) => *a,
            SpmvOperand::Smash(a) => *a,
            SpmvOperand::Dynamic(a) => *a,
        }
    }

    /// Rows of the operand.
    pub fn rows(&self) -> usize {
        self.row_read().rows()
    }

    /// Columns of the operand.
    pub fn cols(&self) -> usize {
        self.row_read().cols()
    }

    /// Stored work items: true non-zeros for CSR, stored (padded) values
    /// for the blocked formats, base + overlay entries for dynamic — the
    /// quantity dispatch cost competes with.
    pub fn work(&self) -> usize {
        self.row_read().stored_work()
    }

    /// The planner [`Format`] of this operand.
    pub fn format(&self) -> Format {
        match self {
            SpmvOperand::Csr(_) => Format::Csr,
            SpmvOperand::Bcsr(_) => Format::Bcsr,
            SpmvOperand::Smash(_) => Format::Smash,
            SpmvOperand::Dynamic(_) => Format::Dynamic,
        }
    }

    /// The planner [`Op`] an `spmv` over this operand dispatches as
    /// (dynamic operands run the merge-on-access kernels, a different
    /// cost regime, so they plan under their own op).
    pub fn op_spmv(&self) -> Op {
        match self {
            SpmvOperand::Dynamic(_) => Op::DynSpmv,
            _ => Op::Spmv,
        }
    }

    /// The planner [`Op`] an `spmm_dense` over this operand dispatches
    /// as.
    pub fn op_spmm_dense(&self) -> Op {
        match self {
            SpmvOperand::Dynamic(_) => Op::DynSpmmDense,
            _ => Op::SpmmDense,
        }
    }

    /// The structural [`MatrixProfile`] dispatch decisions key on —
    /// `O(rows)` for CSR/BCSR/dynamic, `O(lines)` for SMASH (the line
    /// directory and block fill are already materialized at encode time).
    pub fn profile(&self) -> MatrixProfile {
        match self {
            SpmvOperand::Csr(a) => MatrixProfile::of_csr(a),
            SpmvOperand::Bcsr(a) => MatrixProfile::of_bcsr(a),
            SpmvOperand::Smash(a) => MatrixProfile::of_smash(a),
            SpmvOperand::Dynamic(a) => {
                let r = self.row_read();
                let per_row = (0..r.granules()).map(|g| r.granule_weight(g) as usize);
                MatrixProfile::from_row_lengths(
                    a.rows().max(1),
                    a.cols(),
                    a.nnz(),
                    r.stored_work(),
                    per_row,
                )
            }
        }
    }

    /// Whether every stored value of the operand is finite — what the
    /// `NonFinitePolicy::Reject` scan inspects. For a dynamic operand
    /// this sweeps the base tier's values *and* the overlay's pending
    /// `Set`/`Add` deltas (a `Delete` carries no value).
    pub fn values_finite(&self) -> bool {
        fn all_finite<T: Scalar>(values: &[T]) -> bool {
            values.iter().all(|v| v.is_finite())
        }
        match self {
            SpmvOperand::Csr(a) => all_finite(a.values()),
            SpmvOperand::Bcsr(a) => all_finite(a.values()),
            SpmvOperand::Smash(a) => all_finite(a.nza().values()),
            SpmvOperand::Dynamic(a) => {
                let base_ok = match a.base() {
                    DynamicBase::Csr(b) => all_finite(b.values()),
                    DynamicBase::Smash(b) => all_finite(b.nza().values()),
                };
                base_ok
                    && a.overlay().deltas().all(|(_, _, d)| match d {
                        Delta::Set(v) | Delta::Add(v) => v.is_finite(),
                        Delta::Delete => true,
                    })
            }
        }
    }

    /// Structural validation of the operand, routed to its format's
    /// `validate()` (cached after the first success) and mapped into the
    /// unified taxonomy. Row-major is required of SMASH operands: the
    /// executor's kernels walk row lines. Dynamic operands validate
    /// their base tier (the overlay is sorted and bounds-checked by
    /// construction).
    pub(crate) fn check(&self, op: &'static str) -> Result<(), SmashError> {
        match self {
            SpmvOperand::Csr(a) => check_csr(a),
            SpmvOperand::Bcsr(a) => a.validate().map_err(|source| SmashError::InvalidStructure {
                format: "bcsr",
                source,
            }),
            SpmvOperand::Smash(a) => check_smash(a, op),
            SpmvOperand::Dynamic(a) => match a.base() {
                DynamicBase::Csr(b) => check_csr(b),
                DynamicBase::Smash(b) => check_smash(b, op),
            },
        }
    }
}

fn check_csr<T: Scalar>(a: &Csr<T>) -> Result<(), SmashError> {
    a.validate().map_err(|source| SmashError::InvalidStructure {
        format: "csr",
        source,
    })
}

fn check_smash<T: Scalar>(a: &SmashMatrix<T>, op: &'static str) -> Result<(), SmashError> {
    if a.config().layout() != Layout::RowMajor {
        return Err(SmashError::Unsupported {
            op,
            detail: "SMASH operand must be row-major".into(),
        });
    }
    a.validate().map_err(SmashError::Encoding)
}

/// Validates the operand pair for a SMASH × SMASH product: `a` row-major,
/// `b` column-major, one-level hierarchies with equal block sizes and
/// conforming dimensions.
pub(crate) fn check_smash_spmm_operands<T: Scalar>(a: &SmashMatrix<T>, b: &SmashMatrix<T>) {
    assert_eq!(a.cols(), b.rows());
    assert_eq!(a.config().layout(), Layout::RowMajor);
    assert_eq!(b.config().layout(), Layout::ColMajor);
    assert_eq!(a.config().block_size(), b.config().block_size());
}

/// A SMASH operand prepared for block-granular line merges: per-line in-line
/// block offsets, flattened and addressed through the directory's per-line
/// starts — O(nnz blocks + lines) auxiliary memory, never the O(dense) full
/// Bitmap-0 expansion.
///
/// Shared between the serial `spmm_smash` loop and the row-parallel variant
/// in the SpGEMM engine so that both run the identical per-row arithmetic.
pub(crate) struct SmashMergeOperand<'a, T> {
    offs: Vec<u32>,
    starts: &'a [u32],
    nza: &'a [T],
    b0: usize,
    lines: usize,
}

impl<'a, T: Scalar> SmashMergeOperand<'a, T> {
    pub(crate) fn new(sm: &'a SmashMatrix<T>) -> Self {
        let bpl = sm.blocks_per_line();
        let mut offs = vec![0u32; sm.num_blocks()];
        for (ordinal, logical) in sm.hierarchy().blocks().enumerate() {
            offs[ordinal] = (logical % bpl) as u32;
        }
        let lines = sm.line_block_starts().len() - 1;
        Self {
            offs,
            starts: sm.line_block_starts(),
            nza: sm.nza().values(),
            b0: sm.config().block_size(),
            lines,
        }
    }

    /// `(base ordinal, in-line offsets)` for line `l`.
    fn line(&self, l: usize) -> (usize, &[u32]) {
        let base = self.starts[l] as usize;
        (base, &self.offs[base..self.starts[l + 1] as usize])
    }
}

/// One output row of the SMASH × SMASH product: merges row-line `i` of `a`
/// against every column-line of `b`, emitting `(col, value)` for each
/// structural hit whose accumulated dot is non-zero (the cancellation policy
/// documented in the native-kernel module docs).
///
/// This is the exact per-row body of `spmm_smash`; the parallel variant
/// dispatches disjoint row ranges to it, so outputs are bit-identical to the
/// serial kernel at any thread count.
pub(crate) fn spmm_smash_row<T: Scalar>(
    i: usize,
    a: &SmashMergeOperand<'_, T>,
    b: &SmashMergeOperand<'_, T>,
    mut emit: impl FnMut(usize, T),
) {
    let b0 = a.b0;
    let (a_base, al) = a.line(i);
    if al.is_empty() {
        return;
    }
    for j in 0..b.lines {
        let (b_base, bl) = b.line(j);
        if bl.is_empty() {
            continue;
        }
        let (mut p, mut q) = (0usize, 0usize);
        let mut acc = T::ZERO;
        let mut hit = false;
        while p < al.len() && q < bl.len() {
            match al[p].cmp(&bl[q]) {
                std::cmp::Ordering::Equal => {
                    let oa = (a_base + p) * b0;
                    let ob = (b_base + q) * b0;
                    for k in 0..b0 {
                        acc += a.nza[oa + k] * b.nza[ob + k];
                    }
                    hit = true;
                    p += 1;
                    q += 1;
                }
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
            }
        }
        if hit && !acc.is_zero() {
            emit(j, acc);
        }
    }
}
