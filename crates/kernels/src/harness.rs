//! Mechanism-dispatch harness used by the experiment binaries and the
//! integration tests: builds the right operand format for a [`Mechanism`]
//! and runs the corresponding instrumented kernel on a caller-supplied
//! engine.

use crate::common::{test_vector, Mechanism};
use crate::executor::Executor;
use crate::{native, spmdm, spmm, spmv};
use smash_bmu::Bmu;
use smash_core::{SmashConfig, SmashMatrix};
use smash_matrix::{Bcsr, Coo, Csr, Dense, Scalar};
use smash_sim::{CountEngine, Engine, SimEngine, SimStats, SystemConfig};

/// Block shape of the TACO-BCSR baseline (see DESIGN.md).
pub const BCSR_BLOCK: usize = 2;

/// Runs the *native* (wall-clock, uninstrumented) SpMV of `mech` through
/// the [`Executor`]: the harness builds the mechanism's operand encoding
/// (CSR, 2x2 BCSR, or the SMASH compressed form per `cfg`) and the
/// executor picks the serial or parallel kernel. `IdealCsr` has no native
/// counterpart (free position discovery is a simulation idealization), so
/// it maps to the most-tuned software CSR, `spmv_csr_opt`.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn native_spmv<T: Scalar>(
    exec: &Executor,
    mech: Mechanism,
    a: &Csr<T>,
    cfg: &SmashConfig,
    x: &[T],
    y: &mut [T],
) {
    match mech {
        Mechanism::TacoCsr => exec.spmv(a, x, y),
        Mechanism::IdealCsr => native::spmv_csr_opt(a, x, y),
        Mechanism::TacoBcsr => {
            let b = Bcsr::from_csr(a, BCSR_BLOCK, BCSR_BLOCK).expect("non-zero block");
            exec.spmv(&b, x, y);
        }
        Mechanism::SwSmash | Mechanism::Smash => {
            let sm = exec.encode(a, cfg.clone());
            exec.spmv(&sm, x, y);
        }
    }
}

/// Runs the instrumented SpMV of `mech` on the given engine and returns the
/// product. `cfg` selects the bitmap hierarchy for the SMASH mechanisms.
pub fn run_spmv<E: Engine, T: Scalar>(
    e: &mut E,
    mech: Mechanism,
    a: &Csr<T>,
    cfg: &SmashConfig,
) -> Vec<T> {
    let x = test_vector(a.cols());
    match mech {
        Mechanism::TacoCsr => spmv::spmv_csr(e, a, &x),
        Mechanism::IdealCsr => spmv::spmv_ideal(e, a, &x),
        Mechanism::TacoBcsr => {
            let b = Bcsr::from_csr(a, BCSR_BLOCK, BCSR_BLOCK).expect("non-zero block");
            spmv::spmv_bcsr(e, &b, &x)
        }
        Mechanism::SwSmash => {
            let sm = SmashMatrix::encode(a, cfg.clone());
            spmv::spmv_sw_smash(e, &sm, &x)
        }
        Mechanism::Smash => {
            let sm = SmashMatrix::encode(a, cfg.clone());
            let mut bmu = Bmu::new();
            spmv::spmv_hw_smash(e, &mut bmu, 0, &sm, &x)
        }
    }
}

/// Runs the instrumented SpMM of `mech` (`C = A * B`) on the given engine.
/// SMASH mechanisms use single-level bitmaps with the Bitmap-0 ratio of
/// `cfg`, per the paper's §5.2 SpMM formulation.
pub fn run_spmm<E: Engine, T: Scalar>(
    e: &mut E,
    mech: Mechanism,
    a: &Csr<T>,
    b: &Csr<T>,
    cfg: &SmashConfig,
) -> Coo<T> {
    let b0 = cfg.block_size() as u32;
    match mech {
        Mechanism::TacoCsr => spmm::spmm_csr(e, a, &b.to_csc()),
        Mechanism::IdealCsr => spmm::spmm_ideal(e, a, &b.to_csc()),
        Mechanism::TacoBcsr => {
            let ab = Bcsr::from_csr(a, BCSR_BLOCK, BCSR_BLOCK).expect("non-zero block");
            let btb =
                Bcsr::from_csr(&b.transpose(), BCSR_BLOCK, BCSR_BLOCK).expect("non-zero block");
            spmm::spmm_bcsr(e, &ab, &btb)
        }
        Mechanism::SwSmash => {
            let sa = SmashMatrix::encode(a, SmashConfig::row_major(&[b0]).expect("valid b0"));
            let sb = SmashMatrix::encode(b, SmashConfig::col_major(&[b0]).expect("valid b0"));
            spmm::spmm_sw_smash(e, &sa, &sb)
        }
        Mechanism::Smash => {
            let sa = SmashMatrix::encode(a, SmashConfig::row_major(&[b0]).expect("valid b0"));
            let sb = SmashMatrix::encode(b, SmashConfig::col_major(&[b0]).expect("valid b0"));
            let mut bmu = Bmu::new();
            spmm::spmm_hw_smash(e, &mut bmu, &sa, &sb)
        }
    }
}

/// Runs the *native* (wall-clock, uninstrumented) batched sparse × dense
/// SpMM of `mech` through the [`Executor`]: the harness builds the
/// mechanism's operand encoding and the executor picks the serial or
/// parallel column-tiled kernel. `IdealCsr` maps to the plain CSR kernel
/// (free position discovery is a simulation idealization with no native
/// counterpart).
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn native_spmm_dense<T: Scalar>(
    exec: &Executor,
    mech: Mechanism,
    a: &Csr<T>,
    cfg: &SmashConfig,
    b: &Dense<T>,
    c: &mut Dense<T>,
) {
    match mech {
        Mechanism::TacoCsr | Mechanism::IdealCsr => exec.spmm_dense(a, b, c),
        Mechanism::TacoBcsr => {
            let blocked = Bcsr::from_csr(a, BCSR_BLOCK, BCSR_BLOCK).expect("non-zero block");
            exec.spmm_dense(&blocked, b, c);
        }
        Mechanism::SwSmash | Mechanism::Smash => {
            let sm = exec.encode(a, cfg.clone());
            exec.spmm_dense(&sm, b, c);
        }
    }
}

/// Runs the instrumented batched sparse × dense SpMM of `mech` on the
/// given engine and returns the product. `cfg` selects the bitmap
/// hierarchy for the SMASH mechanisms. The result is bit-identical to the
/// native `spmm_dense_*` kernel of the same mechanism.
pub fn run_spmm_dense<E: Engine, T: Scalar>(
    e: &mut E,
    mech: Mechanism,
    a: &Csr<T>,
    b: &Dense<T>,
    cfg: &SmashConfig,
) -> Dense<T> {
    match mech {
        Mechanism::TacoCsr => spmdm::spmm_dense_csr(e, a, b),
        Mechanism::IdealCsr => spmdm::spmm_dense_ideal(e, a, b),
        Mechanism::TacoBcsr => {
            let blocked = Bcsr::from_csr(a, BCSR_BLOCK, BCSR_BLOCK).expect("non-zero block");
            spmdm::spmm_dense_bcsr(e, &blocked, b)
        }
        Mechanism::SwSmash => {
            let sm = SmashMatrix::encode(a, cfg.clone());
            spmdm::spmm_dense_sw_smash(e, &sm, b)
        }
        Mechanism::Smash => {
            let sm = SmashMatrix::encode(a, cfg.clone());
            let mut bmu = Bmu::new();
            spmdm::spmm_dense_hw_smash(e, &mut bmu, 0, &sm, b)
        }
    }
}

/// Full timing simulation of one SpMV (returns the statistics).
pub fn sim_spmv<T: Scalar>(
    mech: Mechanism,
    a: &Csr<T>,
    cfg: &SmashConfig,
    sys: &SystemConfig,
) -> SimStats {
    let mut e = SimEngine::new(sys.clone());
    run_spmv(&mut e, mech, a, cfg);
    e.finish()
}

/// Instruction-count-only run of one SpMV.
pub fn count_spmv<T: Scalar>(mech: Mechanism, a: &Csr<T>, cfg: &SmashConfig) -> SimStats {
    let mut e = CountEngine::new();
    run_spmv(&mut e, mech, a, cfg);
    e.finish()
}

/// Full timing simulation of one SpMM.
pub fn sim_spmm<T: Scalar>(
    mech: Mechanism,
    a: &Csr<T>,
    b: &Csr<T>,
    cfg: &SmashConfig,
    sys: &SystemConfig,
) -> SimStats {
    let mut e = SimEngine::new(sys.clone());
    run_spmm(&mut e, mech, a, b, cfg);
    e.finish()
}

/// Instruction-count-only run of one SpMM.
pub fn count_spmm<T: Scalar>(
    mech: Mechanism,
    a: &Csr<T>,
    b: &Csr<T>,
    cfg: &SmashConfig,
) -> SimStats {
    let mut e = CountEngine::new();
    run_spmm(&mut e, mech, a, b, cfg);
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::generators;

    #[test]
    fn all_spmv_mechanisms_agree_through_harness() {
        let a = generators::uniform(48, 48, 300, 3);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let want = a.spmv(&test_vector(48));
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let y = run_spmv(&mut e, mech, &a, &cfg);
            for (got, exp) in y.iter().zip(&want) {
                assert!((got - exp).abs() < 1e-9, "{mech}: {got} vs {exp}");
            }
        }
    }

    #[test]
    fn all_spmm_mechanisms_agree_through_harness() {
        let a = generators::uniform(24, 30, 140, 5);
        let b = generators::uniform(30, 20, 120, 6);
        let cfg = SmashConfig::row_major(&[2]).unwrap();
        let want = a.spmm_inner(&b.to_csc()).unwrap().to_dense();
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let c = run_spmm(&mut e, mech, &a, &b, &cfg).to_dense();
            for i in 0..want.rows() {
                for j in 0..want.cols() {
                    assert!(
                        (c.get(i, j) - want.get(i, j)).abs() < 1e-9,
                        "{mech} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn native_spmv_matches_reference_for_all_mechanisms() {
        let a = generators::clustered(64, 64, 800, 4, 11);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let x = test_vector::<f64>(64);
        let want = a.spmv(&x);
        for exec in [Executor::serial(), Executor::auto()] {
            for mech in Mechanism::ALL {
                let mut y = vec![f64::NAN; 64];
                native_spmv(&exec, mech, &a, &cfg, &x, &mut y);
                for (g, w) in y.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "{mech}: {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn all_spmm_dense_mechanisms_agree_through_harness() {
        let a = generators::uniform(48, 48, 300, 3);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let mut b = Dense::zeros(48, 9);
        for (i, v) in test_vector::<f64>(48 * 9).into_iter().enumerate() {
            b.set(i / 9, i % 9, v);
        }
        let want = a.to_dense().matmul(&b).unwrap();
        let exec = Executor::serial();
        for mech in Mechanism::ALL {
            let mut e = CountEngine::new();
            let c = run_spmm_dense(&mut e, mech, &a, &b, &cfg);
            let mut cn = Dense::zeros(48, 9);
            native_spmm_dense(&exec, mech, &a, &cfg, &b, &mut cn);
            // Instrumented and native paths share their loop bodies:
            // exact equality.
            assert_eq!(c, cn, "{mech}");
            for i in 0..48 {
                for j in 0..9 {
                    assert!(
                        (c.get(i, j) - want.get(i, j)).abs() < 1e-9,
                        "{mech} ({i},{j})"
                    );
                }
            }
            assert!(e.finish().instructions() > 0, "{mech}");
        }
    }

    #[test]
    fn sim_and_count_report_same_instruction_totals() {
        let a = generators::uniform(40, 40, 240, 9);
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        for mech in Mechanism::ALL {
            let sim = sim_spmv(mech, &a, &cfg, &SystemConfig::paper_table2());
            let cnt = count_spmv(mech, &a, &cfg);
            assert_eq!(
                sim.instructions(),
                cnt.instructions(),
                "{mech} instruction totals diverge"
            );
            assert!(sim.cycles > 0);
            assert_eq!(cnt.cycles, 0);
        }
    }
}
