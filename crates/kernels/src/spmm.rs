//! Instrumented inner-product Sparse Matrix–Matrix multiplication
//! (`C = A * B`) for every mechanism (paper §2.1.2, Code Listing 2,
//! Algorithm 2).
//!
//! `A` is row-compressed, `B` column-compressed. Every dot product requires
//! *index matching* — advancing two sorted position streams and comparing —
//! which is the dominant indexing cost of SpMM and the reason the paper's
//! SpMM speedups exceed its SpMV speedups.

use crate::common::{lanes_of, sites, streams, vector_ops_of};
use smash_bmu::{Bmu, BmuBinding, MAX_HW_LEVELS};
use smash_core::{Layout, SmashMatrix};
use smash_matrix::{Bcsr, Coo, Csc, Csr, Scalar};
use smash_sim::{Engine, UopId};

/// CSR×CSC inner-product SpMM with element-granularity index matching
/// (paper Code Listing 2). For every `(row, column)` pair the two sorted
/// index lists are merged; each step loads an index from memory, compares,
/// and branches on the data-dependent outcome.
pub fn spmm_csr<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    let vs = std::mem::size_of::<T>() as u64;
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let a_ptr = e.alloc(4 * (a.rows() + 1), 64);
    let a_ind = e.alloc(4 * a.nnz(), 64);
    let a_val = e.alloc(vs as usize * a.nnz(), 64);
    let b_ptr = e.alloc(4 * (b.cols() + 1), 64);
    let b_ind = e.alloc(4 * b.nnz(), 64);
    let b_val = e.alloc(vs as usize * b.nnz(), 64);
    let c_out = e.alloc(vs as usize * a.rows() * b.cols(), 64);

    let mut c = Coo::new(a.rows(), b.cols());
    for i in 0..a.rows() {
        let a_lo = a.row_ptr()[i] as u64;
        let (ac, av) = a.row(i);
        e.load(streams::PTR, a_ptr + 4 * (i as u64 + 1), &[]);
        e.alu(&[]);
        if ac.is_empty() {
            e.branch(sites::SPMM_ROW, true, &[]);
            continue;
        }
        for j in 0..b.cols() {
            let b_lo = b.col_ptr()[j] as u64;
            let (bc, bv) = b.col(j);
            e.load(streams::PTR_B, b_ptr + 4 * (j as u64 + 1), &[]);
            let (mut p, mut q) = (0usize, 0usize);
            let mut acc_u = UopId::NONE;
            let mut acc = T::ZERO;
            let mut hit = false;
            // TACO's co-iteration merge re-loads both coordinates every
            // iteration (the increments are data-dependent, so nothing
            // stays in registers across iterations):
            //   while (jA < endA && jB < endB) {
            //     kA = A2_crd[jA]; kB = B2_crd[jB]; k = min(kA, kB);
            //     if (kA == k && kB == k) c += A_vals[jA] * B_vals[jB];
            //     jA += (kA == k); jB += (kB == k);
            //   }
            while p < ac.len() && q < bc.len() {
                let a_cur = e.load(streams::IND, a_ind + 4 * (a_lo + p as u64), &[]);
                let b_cur = e.load(streams::IND_B, b_ind + 4 * (b_lo + q as u64), &[]);
                let cmp = e.alu(&[a_cur, b_cur]); // k = min(kA, kB)
                let matched = ac[p] == bc[q];
                e.branch(sites::MATCH_CMP, matched, &[cmp]);
                if matched {
                    let va = e.load(streams::VAL, a_val + vs * (a_lo + p as u64), &[]);
                    let vb = e.load(streams::VAL_B, b_val + vs * (b_lo + q as u64), &[]);
                    let m = e.fmul(&[va, vb]);
                    acc_u = e.fadd(&[m, acc_u]);
                    acc += av[p] * bv[q];
                    hit = true;
                    p += 1;
                    q += 1;
                } else if ac[p] < bc[q] {
                    p += 1;
                } else {
                    q += 1;
                }
                e.alu(&[cmp]); // jA += (kA == k)
                e.alu(&[cmp]); // jB += (kB == k)
                let more = p < ac.len() && q < bc.len();
                e.branch(sites::MERGE_BOUND, more, &[]); // loop bound
            }
            if hit && !acc.is_zero() {
                let addr = (i * b.cols() + j) as u64;
                e.store(streams::OUT, c_out + vs * addr, &[acc_u]);
                c.push(i, j, acc);
            }
            e.branch(sites::SPMM_COL, j + 1 < b.cols(), &[]);
        }
        e.branch(sites::SPMM_ROW, i + 1 < a.rows(), &[]);
    }
    c
}

/// Idealized SpMM (paper Fig. 3): *accessing* positions is free — the
/// merge still iterates and compares (positions arrive in registers), but
/// every coordinate load and its dependent address work vanish.
pub fn spmm_ideal<E: Engine, T: Scalar>(e: &mut E, a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    let vs = std::mem::size_of::<T>() as u64;
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let a_val = e.alloc(vs as usize * a.nnz(), 64);
    let b_val = e.alloc(vs as usize * b.nnz(), 64);
    let c_out = e.alloc(vs as usize * a.rows() * b.cols(), 64);

    let mut c = Coo::new(a.rows(), b.cols());
    for i in 0..a.rows() {
        let (ac, av) = a.row(i);
        if ac.is_empty() {
            e.branch(sites::SPMM_ROW, true, &[]);
            continue;
        }
        let a_lo = a.row_ptr()[i] as u64;
        for j in 0..b.cols() {
            let (bc, bv) = b.col(j);
            let b_lo = b.col_ptr()[j] as u64;
            let mut acc_u = UopId::NONE;
            let mut acc = T::ZERO;
            let mut hit = false;
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                // Positions are in registers: one compare + one branch per
                // merge step remains.
                let cmp = e.alu(&[]);
                let matched = ac[p] == bc[q];
                e.branch(sites::MATCH_CMP, matched, &[cmp]);
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Equal => {
                        let va = e.load(streams::VAL, a_val + vs * (a_lo + p as u64), &[]);
                        let vb = e.load(streams::VAL_B, b_val + vs * (b_lo + q as u64), &[]);
                        let m = e.fmul(&[va, vb]);
                        acc_u = e.fadd(&[m, acc_u]);
                        acc += av[p] * bv[q];
                        hit = true;
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                }
            }
            if hit && !acc.is_zero() {
                let addr = (i * b.cols() + j) as u64;
                e.store(streams::OUT, c_out + vs * addr, &[acc_u]);
                c.push(i, j, acc);
            }
            e.branch(sites::SPMM_COL, j + 1 < b.cols(), &[]);
        }
        e.branch(sites::SPMM_ROW, i + 1 < a.rows(), &[]);
    }
    c
}

/// BCSR SpMM: index matching at block granularity over `A` (BCSR) and
/// `Bᵀ` (BCSR of the transpose, giving column-major access to `B`), with a
/// dense SIMD tile product per match.
///
/// # Panics
///
/// Panics if the two operands' block shapes differ or are non-square, or if
/// the inner dimensions disagree.
pub fn spmm_bcsr<E: Engine, T: Scalar>(e: &mut E, a: &Bcsr<T>, bt: &Bcsr<T>) -> Coo<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    let (s, s2) = a.block_shape();
    assert_eq!((s, s2), bt.block_shape(), "block shapes must agree");
    assert_eq!(s, s2, "blocks must be square");
    assert_eq!(a.cols(), bt.cols(), "inner dimensions must agree");
    let a_ind = e.alloc(4 * a.num_blocks(), 64);
    let b_ind = e.alloc(4 * bt.num_blocks(), 64);
    let a_val = e.alloc(vs as usize * a.nnz_stored(), 64);
    let b_val = e.alloc(vs as usize * bt.nnz_stored(), 64);
    let c_out = e.alloc(vs as usize * a.rows() * bt.rows(), 64);

    let bs = s * s;
    let mut c = Coo::new(a.rows(), bt.rows());
    for bi in 0..a.num_block_rows() {
        let (alo, ahi) = (
            a.block_row_ptr()[bi] as usize,
            a.block_row_ptr()[bi + 1] as usize,
        );
        e.load(streams::PTR, a_ind, &[]);
        if alo == ahi {
            e.branch(sites::SPMM_ROW, true, &[]);
            continue;
        }
        for bj in 0..bt.num_block_rows() {
            let (blo, bhi) = (
                bt.block_row_ptr()[bj] as usize,
                bt.block_row_ptr()[bj + 1] as usize,
            );
            e.load(streams::PTR_B, b_ind, &[]);
            let mut tile_acc = vec![T::ZERO; bs];
            let mut acc_u = vec![UopId::NONE; bs];
            let mut hit = false;
            let (mut p, mut q) = (alo, blo);
            while p < ahi && q < bhi {
                let pa = e.load(streams::IND, a_ind + 4 * p as u64, &[]);
                let pb = e.load(streams::IND_B, b_ind + 4 * q as u64, &[]);
                let cmp = e.alu(&[pa, pb]);
                e.alu(&[cmp]); // increments
                e.alu(&[cmp]);
                e.branch(sites::MERGE_BOUND, true, &[]);
                match a.block_col_ind()[p].cmp(&bt.block_col_ind()[q]) {
                    std::cmp::Ordering::Equal => {
                        e.branch(sites::MATCH_CMP, true, &[cmp]);
                        hit = true;
                        let ta = &a.values()[p * bs..(p + 1) * bs];
                        let tb = &bt.values()[q * bs..(q + 1) * bs];
                        // C_tile[lr][lc] += sum_k A[lr][k] * Bt[lc][k],
                        // vectorized along k.
                        for lr in 0..s {
                            for lc in 0..s {
                                for lane in 0..vector_ops_of::<T>(s) {
                                    let ka = (p * bs + lr * s + lane * lanes) as u64;
                                    let kb = (q * bs + lc * s + lane * lanes) as u64;
                                    let va = e.load(streams::VAL, a_val + vs * ka, &[]);
                                    let vb = e.load(streams::VAL_B, b_val + vs * kb, &[]);
                                    let m = e.fmul(&[va, vb]);
                                    acc_u[lr * s + lc] = e.fadd(&[m, acc_u[lr * s + lc]]);
                                }
                                let dot: T = (0..s).map(|k| ta[lr * s + k] * tb[lc * s + k]).sum();
                                tile_acc[lr * s + lc] += dot;
                            }
                        }
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => {
                        e.branch(sites::MATCH_CMP, false, &[cmp]);
                        p += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        e.branch(sites::MATCH_CMP, false, &[cmp]);
                        q += 1;
                    }
                }
            }
            if hit {
                for lr in 0..s {
                    let row = bi * s + lr;
                    if row >= a.rows() {
                        break;
                    }
                    for lc in 0..s {
                        let col = bj * s + lc;
                        let v = tile_acc[lr * s + lc];
                        if col < bt.rows() && !v.is_zero() {
                            let addr = (row * bt.rows() + col) as u64;
                            e.store(streams::OUT, c_out + vs * addr, &[acc_u[lr * s + lc]]);
                            c.push(row, col, v);
                        }
                    }
                }
            }
            e.branch(sites::SPMM_COL, bj + 1 < bt.num_block_rows(), &[]);
        }
        e.branch(sites::SPMM_ROW, bi + 1 < a.num_block_rows(), &[]);
    }
    c.compress();
    c
}

/// Per-operand state for the SMASH SpMM merges: the block lists of each
/// line, read straight off the compressed form through the matrix's
/// [`LineDirectory`](smash_core::LineDirectory) cursors — the full
/// Bitmap-0 is never expanded.
struct SmashLines {
    /// For each line, the logical Bitmap-0 indices of its blocks.
    blocks: Vec<Vec<usize>>,
    /// NZA block ordinal where each line starts.
    starts: Vec<u32>,
}

fn smash_lines<T: Scalar>(sm: &SmashMatrix<T>) -> SmashLines {
    let mut blocks = vec![Vec::new(); sm.line_count()];
    for (line, list) in blocks.iter_mut().enumerate() {
        list.extend(sm.line_cursor(line).map(|(_, logical)| logical));
    }
    SmashLines {
        blocks,
        starts: sm.line_block_starts().to_vec(),
    }
}

/// Full SMASH SpMM (paper Algorithm 2): `A` row-major and `B` column-major,
/// each with a single-level bitmap; two BMU groups perform the index
/// matching at *block* granularity, and matches run a SIMD block dot
/// product.
///
/// The merge advances the group whose current index is smaller (the paper's
/// pseudocode advances both unconditionally, which would skip matches; we
/// implement the correct two-cursor merge, see DESIGN.md).
///
/// # Panics
///
/// Panics if either operand has more than one bitmap level, if block sizes
/// differ, or if inner dimensions disagree.
pub fn spmm_hw_smash<E: Engine, T: Scalar>(
    e: &mut E,
    bmu: &mut Bmu,
    a: &SmashMatrix<T>,
    b: &SmashMatrix<T>,
) -> Coo<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.config().layout(), Layout::RowMajor, "A must be row-major");
    assert_eq!(b.config().layout(), Layout::ColMajor, "B must be col-major");
    assert_eq!(
        a.hierarchy().num_levels(),
        1,
        "per-line rescans need a 1-level hierarchy (paper §5.2)"
    );
    assert_eq!(b.hierarchy().num_levels(), 1, "B must be 1-level too");
    let b0 = a.config().block_size();
    assert_eq!(b0, b.config().block_size(), "block sizes must agree");

    let nza_a = e.alloc(vs as usize * a.nza().len(), 64);
    let nza_b = e.alloc(vs as usize * b.nza().len(), 64);
    let bm_a = e.alloc(a.hierarchy().stored_level(0).len().div_ceil(8), 64);
    let bm_b = e.alloc(b.hierarchy().stored_level(0).len().div_ceil(8), 64);
    let starts_a_addr = e.alloc(4 * (a.line_count() + 1), 64);
    let starts_b_addr = e.alloc(4 * (b.line_count() + 1), 64);
    let c_out = e.alloc(vs as usize * a.rows() * b.cols(), 64);

    let mut level_addrs_a = [0u64; MAX_HW_LEVELS];
    level_addrs_a[0] = bm_a;
    let mut level_addrs_b = [0u64; MAX_HW_LEVELS];
    level_addrs_b[0] = bm_b;
    let bind_a = BmuBinding {
        hierarchy: a.hierarchy(),
        level_addrs: level_addrs_a,
    };
    let bind_b = BmuBinding {
        hierarchy: b.hierarchy(),
        level_addrs: level_addrs_b,
    };

    // Algorithm 2 lines 2-5: matinfo/bmapinfo for both operands.
    bmu.matinfo(e, 0, a.rows() as u32, a.cols() as u32);
    bmu.matinfo(e, 1, b.cols() as u32, b.rows() as u32);
    bmu.bmapinfo(e, 0, 0, b0 as u32);
    bmu.bmapinfo(e, 1, 0, b0 as u32);

    let lines_a = smash_lines(a);
    let lines_b = smash_lines(b);
    let bpl_a = a.blocks_per_line();
    let bpl_b = b.blocks_per_line();
    let mut c = Coo::new(a.rows(), b.cols());

    // Scratch array for the current A row's block positions — the inner
    // (per-column) loop replays the row many times, so the kernel scans it
    // through the BMU once per row and caches the indices (a register/stack
    // buffer in a real implementation).
    let row_cache = e.alloc(4 * (bpl_a + 1), 64);

    for i in 0..a.rows() {
        let ablocks = &lines_a.blocks[i];
        if ablocks.is_empty() {
            e.branch(sites::SPMM_ROW, true, &[]);
            continue;
        }
        let row_bit = i * bpl_a;
        // rdbmap A at the row offset (Algorithm 2 line 7), then pump the
        // whole row through pbmap/rdind once, caching block positions.
        bmu.rdbmap(e, 0, 0, bm_a + (row_bit / 8) as u64, &bind_a);
        let sa = e.load(streams::LINE_STARTS, starts_a_addr + 4 * i as u64, &[]);
        let mut cached = 0usize;
        while cached < ablocks.len() {
            let p = bmu.pbmap(e, 0, &bind_a);
            match p.block {
                Some(blk) if blk < row_bit => continue, // byte-aligned early start
                Some(_) => {
                    let ind = bmu.rdind(e, 0);
                    e.store(
                        streams::LINE_STARTS,
                        row_cache + 4 * cached as u64,
                        &[ind.uop],
                    );
                    cached += 1;
                }
                None => unreachable!("line block count bounds the scan"),
            }
        }

        for j in 0..b.cols() {
            let bblocks = &lines_b.blocks[j];
            e.branch(sites::SPMM_COL, j + 1 < b.cols(), &[]);
            if bblocks.is_empty() {
                continue;
            }
            let sb = e.load(streams::LINE_STARTS, starts_b_addr + 4 * j as u64, &[]);
            // rdbmap B at the column offset (line 9); the window is usually
            // still buffered, making this a one-cycle re-arm.
            let col_bit = j * bpl_b;
            bmu.rdbmap(e, 1, 0, bm_b + (col_bit / 8) as u64, &bind_b);

            // Advance the B cursor: pbmap past any pre-line blocks (byte-
            // granular rdbmap may start up to 7 bits early) then read the
            // indices. The per-line block count bounds the probes.
            let adv_b = |bmu: &mut Bmu, e: &mut E| -> (usize, UopId) {
                loop {
                    let p = bmu.pbmap(e, 1, &bind_b);
                    match p.block {
                        Some(blk) if blk < col_bit => continue,
                        Some(blk) => {
                            let ind = bmu.rdind(e, 1);
                            return (blk, ind.uop);
                        }
                        None => unreachable!("line block count bounds the scan"),
                    }
                }
            };
            let n_a = ablocks.len();
            let n_b = bblocks.len();
            // A side comes from the cached row scan (a hot load per step);
            // B side streams from the BMU.
            let mut ind_a = e.load(streams::LINE_STARTS, row_cache, &[]);
            let (mut cur_b, mut ind_b) = adv_b(bmu, e);
            let (mut k_a, mut k_b) = (0usize, 0usize);
            let mut ord_a = lines_a.starts[i] as usize;
            let mut ord_b = lines_b.starts[j] as usize;

            let mut acc_u = UopId::NONE;
            let mut acc = T::ZERO;
            let mut hit = false;
            loop {
                // Compare the inner-dimension positions of the two current
                // blocks (Algorithm 2 line 14: colIndA == rowIndB). The
                // indices live in core registers after rdind, so only the
                // compare, the counter update and the bound check execute
                // per step.
                let cmp = e.alu(&[ind_a, ind_b]);
                e.alu(&[cmp]); // counter update
                e.branch(sites::MERGE_BOUND, true, &[]);
                let pos_a = (ablocks[k_a] - row_bit) * b0; // column of A's block
                let pos_b = (cur_b - col_bit) * b0; // row of B's block
                match pos_a.cmp(&pos_b) {
                    std::cmp::Ordering::Equal => {
                        e.branch(sites::MATCH_CMP, true, &[cmp]);
                        hit = true;
                        // SIMD dot product of the two NZA blocks.
                        let a_addr = e.alu(&[sa]);
                        let b_addr = e.alu(&[sb]);
                        let blk_a = a.nza().block(ord_a);
                        let blk_b = b.nza().block(ord_b);
                        for lane in 0..vector_ops_of::<T>(b0) {
                            let oa = (ord_a * b0 + lane * lanes) as u64;
                            let ob = (ord_b * b0 + lane * lanes) as u64;
                            let va = e.load(streams::NZA_A, nza_a + vs * oa, &[a_addr]);
                            let vb = e.load(streams::NZA_B, nza_b + vs * ob, &[b_addr]);
                            let m = e.fmul(&[va, vb]);
                            acc_u = e.fadd(&[m, acc_u]);
                        }
                        acc += blk_a.iter().zip(blk_b).map(|(&x, &y)| x * y).sum::<T>();
                        k_a += 1;
                        k_b += 1;
                        ord_a += 1;
                        ord_b += 1;
                        if k_a >= n_a || k_b >= n_b {
                            break;
                        }
                        ind_a = e.load(streams::LINE_STARTS, row_cache + 4 * k_a as u64, &[]);
                        let (nb, ub) = adv_b(bmu, e);
                        cur_b = nb;
                        ind_b = ub;
                    }
                    std::cmp::Ordering::Less => {
                        e.branch(sites::MATCH_CMP, false, &[cmp]);
                        k_a += 1;
                        ord_a += 1;
                        if k_a >= n_a {
                            break;
                        }
                        ind_a = e.load(streams::LINE_STARTS, row_cache + 4 * k_a as u64, &[]);
                    }
                    std::cmp::Ordering::Greater => {
                        e.branch(sites::MATCH_CMP, false, &[cmp]);
                        k_b += 1;
                        ord_b += 1;
                        if k_b >= n_b {
                            break;
                        }
                        let (nb, ub) = adv_b(bmu, e);
                        cur_b = nb;
                        ind_b = ub;
                    }
                }
            }
            if hit && !acc.is_zero() {
                let addr = (i * b.cols() + j) as u64;
                e.store(streams::OUT, c_out + vs * addr, &[acc_u]);
                c.push(i, j, acc);
            }
        }
        e.branch(sites::SPMM_ROW, i + 1 < a.rows(), &[]);
    }
    c
}

/// Software-only SMASH SpMM: the same block-granular index matching as the
/// hardware version, but each line's bitmap slice is scanned in software
/// (word loads + CTZ + masking, §4.4) for every dot product.
pub fn spmm_sw_smash<E: Engine, T: Scalar>(
    e: &mut E,
    a: &SmashMatrix<T>,
    b: &SmashMatrix<T>,
) -> Coo<T> {
    let vs = std::mem::size_of::<T>() as u64;
    let lanes = lanes_of::<T>();
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.config().layout(), Layout::RowMajor, "A must be row-major");
    assert_eq!(b.config().layout(), Layout::ColMajor, "B must be col-major");
    assert_eq!(a.hierarchy().num_levels(), 1, "1-level per-line scans");
    assert_eq!(b.hierarchy().num_levels(), 1, "1-level per-line scans");
    let b0 = a.config().block_size();
    assert_eq!(b0, b.config().block_size(), "block sizes must agree");

    let nza_a = e.alloc(vs as usize * a.nza().len(), 64);
    let nza_b = e.alloc(vs as usize * b.nza().len(), 64);
    let bm_a = e.alloc(a.hierarchy().stored_level(0).len().div_ceil(8), 64);
    let bm_b = e.alloc(b.hierarchy().stored_level(0).len().div_ceil(8), 64);
    let c_out = e.alloc(vs as usize * a.rows() * b.cols(), 64);
    // Scratch arrays holding the positions extracted from each line's
    // bitmap slice (hot, reused across the merge).
    let scratch_a = e.alloc(4 * (a.blocks_per_line() + 1), 64);
    let scratch_b = e.alloc(4 * (b.blocks_per_line() + 1), 64);

    let lines_a = smash_lines(a);
    let lines_b = smash_lines(b);
    let bpl_a = a.blocks_per_line();
    let bpl_b = b.blocks_per_line();
    let mut c = Coo::new(a.rows(), b.cols());

    // Scanning a line costs one load per touched 64-bit word plus a serial
    // CTZ+mask chain per set bit (§4.4).
    let scan_line = |e: &mut E, base: u64, bpl: usize, line: usize, nblocks: usize| {
        let w_lo = (line * bpl) / 64;
        let w_hi = (line * bpl + bpl - 1) / 64;
        let mut dep = UopId::NONE;
        for w in w_lo..=w_hi {
            dep = e.load(streams::bitmap(0), base + 8 * w as u64, &[]);
        }
        let mut chain = dep;
        for _ in 0..nblocks {
            let ctz = e.alu(&[dep, chain]);
            chain = e.alu(&[ctz]);
            e.branch(sites::SCAN_FOUND, true, &[]);
        }
        chain
    };

    for i in 0..a.rows() {
        let ablocks = &lines_a.blocks[i];
        if ablocks.is_empty() {
            e.branch(sites::SPMM_ROW, true, &[]);
            continue;
        }
        // Scan row i's bitmap once and keep its block positions in a hot
        // scratch array for the whole column loop.
        let da = scan_line(e, bm_a, bpl_a, i, ablocks.len());
        for j in 0..b.cols() {
            e.branch(sites::SPMM_COL, j + 1 < b.cols(), &[]);
            let bblocks = &lines_b.blocks[j];
            if bblocks.is_empty() {
                continue;
            }
            let db = scan_line(e, bm_b, bpl_b, j, bblocks.len());
            let mut acc_u = UopId::NONE;
            let mut acc = T::ZERO;
            let mut hit = false;
            let (mut p, mut q) = (0usize, 0usize);
            while p < ablocks.len() && q < bblocks.len() {
                // Software-extracted positions are re-read from the scratch
                // arrays every iteration, like the CSR merge.
                let la = e.load(streams::LINE_STARTS, scratch_a + 4 * p as u64, &[da]);
                let lb = e.load(streams::LINE_STARTS, scratch_b + 4 * q as u64, &[db]);
                let cmp = e.alu(&[la, lb]);
                e.alu(&[cmp]); // increments
                e.alu(&[cmp]);
                e.branch(sites::MERGE_BOUND, true, &[]);
                let pos_a = ablocks[p] - i * bpl_a;
                let pos_b = bblocks[q] - j * bpl_b;
                match pos_a.cmp(&pos_b) {
                    std::cmp::Ordering::Equal => {
                        e.branch(sites::MATCH_CMP, true, &[cmp]);
                        hit = true;
                        let ord_a = lines_a.starts[i] as usize + p;
                        let ord_b = lines_b.starts[j] as usize + q;
                        for lane in 0..vector_ops_of::<T>(b0) {
                            let oa = (ord_a * b0 + lane * lanes) as u64;
                            let ob = (ord_b * b0 + lane * lanes) as u64;
                            let va = e.load(streams::NZA_A, nza_a + vs * oa, &[]);
                            let vb = e.load(streams::NZA_B, nza_b + vs * ob, &[]);
                            let m = e.fmul(&[va, vb]);
                            acc_u = e.fadd(&[m, acc_u]);
                        }
                        acc += a
                            .nza()
                            .block(ord_a)
                            .iter()
                            .zip(b.nza().block(ord_b))
                            .map(|(&x, &y)| x * y)
                            .sum::<T>();
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => {
                        e.branch(sites::MATCH_CMP, false, &[cmp]);
                        p += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        e.branch(sites::MATCH_CMP, false, &[cmp]);
                        q += 1;
                    }
                }
            }
            if hit && !acc.is_zero() {
                let addr = (i * b.cols() + j) as u64;
                e.store(streams::OUT, c_out + vs * addr, &[acc_u]);
                c.push(i, j, acc);
            }
        }
        e.branch(sites::SPMM_ROW, i + 1 < a.rows(), &[]);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_core::SmashConfig;
    use smash_matrix::generators;
    use smash_sim::{CountEngine, SimEngine, SystemConfig};

    fn operands() -> (Csr<f64>, Csr<f64>) {
        (
            generators::uniform(40, 48, 300, 3),
            generators::clustered(48, 36, 250, 4, 4),
        )
    }

    fn reference(a: &Csr<f64>, b: &Csr<f64>) -> Coo<f64> {
        a.spmm_inner(&b.to_csc()).unwrap()
    }

    fn assert_same(c: &Coo<f64>, want: &Coo<f64>) {
        let (cd, wd) = (c.to_dense(), want.to_dense());
        assert_eq!(cd.rows(), wd.rows());
        for i in 0..cd.rows() {
            for j in 0..cd.cols() {
                let (x, y) = (cd.get(i, j), wd.get(i, j));
                assert!(
                    (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                    "({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn csr_and_ideal_match_reference() {
        let (a, b) = operands();
        let want = reference(&a, &b);
        let bc = b.to_csc();
        let mut e = CountEngine::new();
        assert_same(&spmm_csr(&mut e, &a, &bc), &want);
        let csr_instr = e.finish().instructions();

        let mut e = CountEngine::new();
        assert_same(&spmm_ideal(&mut e, &a, &bc), &want);
        let ideal_instr = e.finish().instructions();
        let ratio = ideal_instr as f64 / csr_instr as f64;
        assert!(
            ratio < 0.6,
            "ideal/csr = {ratio} (index matching should dominate)"
        );
    }

    #[test]
    fn bcsr_matches_reference() {
        let (a, b) = operands();
        let want = reference(&a, &b);
        let ab = Bcsr::from_csr(&a, 2, 2).unwrap();
        let btb = Bcsr::from_csr(&b.transpose(), 2, 2).unwrap();
        let mut e = CountEngine::new();
        assert_same(&spmm_bcsr(&mut e, &ab, &btb), &want);
    }

    #[test]
    fn hw_smash_matches_reference() {
        let (a, b) = operands();
        let want = reference(&a, &b);
        for b0 in [2u32, 4] {
            let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[b0]).unwrap());
            let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[b0]).unwrap());
            let mut e = CountEngine::new();
            let mut bmu = Bmu::new();
            assert_same(&spmm_hw_smash(&mut e, &mut bmu, &sa, &sb), &want);
        }
    }

    #[test]
    fn sw_smash_matches_reference() {
        let (a, b) = operands();
        let want = reference(&a, &b);
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        let mut e = CountEngine::new();
        assert_same(&spmm_sw_smash(&mut e, &sa, &sb), &want);
    }

    #[test]
    fn smash_beats_csr_in_cycles() {
        // ~1.6% density, in the range of the paper's Table 3 suite.
        let a = generators::uniform(128, 128, 260, 7);
        let b = generators::uniform(128, 128, 260, 8);
        let bc = b.to_csc();
        let mut e1 = SimEngine::new(SystemConfig::paper_table2());
        spmm_csr(&mut e1, &a, &bc);
        let csr = e1.finish();

        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).unwrap());
        let mut e2 = SimEngine::new(SystemConfig::paper_table2());
        let mut bmu = Bmu::new();
        spmm_hw_smash(&mut e2, &mut bmu, &sa, &sb);
        let smash = e2.finish();
        let speedup = csr.cycles as f64 / smash.cycles as f64;
        assert!(speedup > 1.0, "speedup {speedup}");
    }

    #[test]
    fn empty_operands_give_empty_product() {
        let a = Csr::<f64>::from_coo(&Coo::new(8, 8));
        let b = generators::uniform(8, 8, 16, 1);
        let mut e = CountEngine::new();
        let c = spmm_csr(&mut e, &a, &b.to_csc());
        assert_eq!(c.nnz(), 0);
    }
}
