use crate::{Coo, Csr, Dense, Result, Scalar};

#[cfg(doc)]
use crate::MatrixError;

/// Compressed Sparse Column matrix (paper §2.1).
///
/// The column-major mirror of [`Csr`]. The paper's inner-product SpMM keeps
/// the `B` operand in CSC so each column's non-zeros are contiguous and can
/// be index-matched against a CSR row of `A`.
///
/// # Example
///
/// ```
/// use smash_matrix::{Coo, Csr};
///
/// let mut coo = Coo::<f64>::new(2, 3);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 2, 2.0);
/// let csc = Csr::from_coo(&coo).to_csc();
/// let (rows, vals) = csc.col(2);
/// assert_eq!(rows, &[1]);
/// assert_eq!(vals, &[2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T> {
    rows: usize,
    cols: usize,
    col_ptr: Vec<u32>,
    row_ind: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Builds a CSC matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Mirrors [`Csr::from_parts`]: [`MatrixError::InvalidStructure`] for
    /// inconsistent arrays, [`MatrixError::IndexOutOfBounds`] for a row index
    /// that exceeds `rows`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<u32>,
        row_ind: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self> {
        // Validate by building the transposed CSR view, which shares the
        // exact same structural invariants.
        Csr::from_parts(cols, rows, col_ptr.clone(), row_ind.clone(), values.clone())?;
        Ok(Csc {
            rows,
            cols,
            col_ptr,
            row_ind,
            values,
        })
    }

    /// Internal constructor for conversions that already uphold the
    /// invariants (sorted, in-bounds, consistent lengths).
    pub(crate) fn from_raw_unchecked(
        rows: usize,
        cols: usize,
        col_ptr: Vec<u32>,
        row_ind: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        // Trust contract (crate-internal): only conversion routines that
        // construct the arrays themselves may call this — currently
        // `Csr::to_csc`, whose counting sort establishes monotone col_ptr
        // and ascending in-bounds rows per column. Violations cannot cause
        // UB (all access is bounds-checked) but would panic in kernels;
        // debug builds cross-check the cheap shape invariants here.
        debug_assert_eq!(col_ptr.len(), cols + 1);
        debug_assert_eq!(row_ind.len(), values.len());
        debug_assert_eq!(col_ptr.first(), Some(&0));
        debug_assert_eq!(col_ptr.last().copied().unwrap_or(0) as usize, row_ind.len());
        debug_assert!(col_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(row_ind.iter().all(|&r| (r as usize) < rows));
        Csc {
            rows,
            cols,
            col_ptr,
            row_ind,
            values,
        }
    }

    /// Builds a CSC matrix from a COO matrix.
    pub fn from_coo(coo: &Coo<T>) -> Self {
        Csr::from_coo(coo).to_csc()
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> Csr<T> {
        // A CSC matrix is the transpose of the CSR matrix with the same raw
        // arrays; transposing that view back yields the CSR form of `self`.
        let view = Csr::from_parts(
            self.cols,
            self.rows,
            self.col_ptr.clone(),
            self.row_ind.clone(),
            self.values.clone(),
        )
        .expect("CSC invariants imply valid transposed CSR view");
        view.transpose()
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Dense<T> {
        let mut d = Dense::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                d.set(r as usize, j, v);
            }
        }
        d
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero elements.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[u32] {
        &self.col_ptr
    }

    /// Row index of each stored non-zero, column-major.
    pub fn row_ind(&self) -> &[u32] {
        &self.row_ind
    }

    /// Stored non-zero values, column-major.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        assert!(j < self.cols, "column out of bounds");
        let (lo, hi) = (self.col_ptr[j] as usize, self.col_ptr[j + 1] as usize);
        (&self.row_ind[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_nnz(&self, j: usize) -> usize {
        assert!(j < self.cols, "column out of bounds");
        (self.col_ptr[j + 1] - self.col_ptr[j]) as usize
    }

    /// CSC footprint in bytes (same accounting as [`Csr::storage_bytes`]).
    pub fn storage_bytes(&self) -> usize {
        4 * (self.cols + 1) + 4 * self.nnz() + self.nnz() * std::mem::size_of::<T>()
    }

    /// Reference product `y = A * x` computed column-wise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![T::ZERO; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj.is_zero() {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r as usize] = v.mul_add(xj, y[r as usize]);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        let mut coo = Coo::new(3, 4);
        for &(r, c, v) in &[
            (0, 1, 1.0),
            (0, 3, 2.0),
            (1, 0, 3.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(r, c, v);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn csr_csc_roundtrip() {
        let a = sample();
        assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn col_accessor() {
        let csc = sample().to_csc();
        let (rows, vals) = csc.col(1);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        assert_eq!(csc.col_nnz(1), 2);
        assert_eq!(csc.col_nnz(0), 1);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = sample();
        let x = [0.5, 1.5, -2.0, 3.0];
        let want = a.spmv(&x);
        let got = a.to_csc().spmv(&x);
        assert_eq!(want, got);
    }

    #[test]
    fn dense_matches() {
        let a = sample();
        assert_eq!(a.to_csc().to_dense(), a.to_dense());
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csc::<f64>::from_parts(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        assert!(Csc::<f64>::from_parts(2, 2, vec![0, 1, 1], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn from_coo_matches_via_csr() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 0, 1.0);
        coo.push(0, 2, 2.0);
        let c1 = Csc::from_coo(&coo);
        let c2 = Csr::from_coo(&coo).to_csc();
        assert_eq!(c1, c2);
    }
}
