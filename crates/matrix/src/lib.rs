//! Sparse-matrix substrate for the SMASH reproduction.
//!
//! This crate provides the storage formats the paper builds on and compares
//! against (dense, COO, CSR, CSC, BCSR), conversions between them, and the
//! seeded synthetic workload generators that stand in for the SuiteSparse
//! matrices of Table 3 and the locality-of-sparsity experiments of §7.2.3.
//!
//! # Example
//!
//! ```
//! use smash_matrix::{Coo, Csr};
//!
//! let mut coo = Coo::<f64>::new(4, 4);
//! coo.push(0, 0, 3.2);
//! coo.push(1, 0, 1.2);
//! coo.push(1, 2, 4.2);
//! coo.push(2, 3, 5.1);
//! coo.push(3, 0, 5.3);
//! coo.push(3, 1, 3.3);
//! let csr = Csr::from_coo(&coo);
//! assert_eq!(csr.nnz(), 6);
//! let y = csr.spmv(&[1.0, 1.0, 1.0, 1.0]);
//! assert_eq!(y[1], 1.2 + 4.2);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bcsr;
mod coo;
mod csc;
mod csr;
mod dense;
mod error;
pub mod generators;
pub mod locality;
pub mod market;
mod rowread;
mod scalar;
pub mod simd;
pub mod suite;

pub use bcsr::Bcsr;
pub use coo::Coo;
pub use csc::Csc;
pub use csr::{Csr, CsrBuilder};
pub use dense::{axpy_dense_tiles, for_each_rhs_tile, Dense};
pub use error::MatrixError;
pub use rowread::{spmm_dense_rows, spmv_rows, RowRead};
pub use scalar::Scalar;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, MatrixError>;
