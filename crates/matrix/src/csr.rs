use crate::{Coo, Csc, Dense, MatrixError, Result, Scalar};
use std::sync::atomic::{AtomicBool, Ordering};

/// Compressed Sparse Row matrix (paper §2.1, Fig. 1).
///
/// Three arrays: `row_ptr` (per-row extent into the other two), `col_ind`
/// (column index of each non-zero) and `values`. This is the baseline format
/// whose indexing cost SMASH attacks; the index arrays use 4-byte integers,
/// matching the storage model of the paper's Fig. 19.
///
/// # Example
///
/// ```
/// use smash_matrix::{Coo, Csr};
///
/// // The 4x4 example of the paper's Figure 1.
/// let mut coo = Coo::<f64>::new(4, 4);
/// for &(r, c, v) in &[(0, 0, 3.2), (1, 0, 1.2), (1, 2, 4.2),
///                     (2, 3, 5.1), (3, 0, 5.3), (3, 1, 3.3)] {
///     coo.push(r, c, v);
/// }
/// let a = Csr::from_coo(&coo);
/// assert_eq!(a.row_ptr(), &[0, 1, 3, 4, 6]);
/// assert_eq!(a.col_ind(), &[0, 0, 2, 3, 0, 1]);
/// ```
#[derive(Debug)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_ind: Vec<u32>,
    values: Vec<T>,
    /// Cached result of a successful structural check: set by every
    /// validating constructor and by [`Csr::validate`] on success, so hot
    /// loops (the executor's `try_*` tier validates per call) never re-pay
    /// the O(nnz) walk. Purely an acceleration — never consulted for
    /// correctness decisions, excluded from `Clone` origin / `PartialEq`.
    verified: AtomicBool,
}

impl<T: Clone> Clone for Csr<T> {
    fn clone(&self) -> Self {
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_ind: self.col_ind.clone(),
            values: self.values.clone(),
            verified: AtomicBool::new(self.verified.load(Ordering::Acquire)),
        }
    }
}

impl<T: PartialEq> PartialEq for Csr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_ind == other.col_ind
            && self.values == other.values
    }
}

impl<T: Scalar> Csr<T> {
    /// Builds a CSR matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if the arrays are
    /// inconsistent (wrong lengths, non-monotone `row_ptr`, unsorted or
    /// duplicate column indices) and [`MatrixError::IndexOutOfBounds`] if a
    /// column index exceeds `cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_ind: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self> {
        let m = Csr::from_parts_unchecked(rows, cols, row_ptr, col_ind, values);
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix from raw parts **without checking the
    /// invariants** — the trusted fast path for callers that hold arrays
    /// already known to be valid (e.g. sliced out of another CSR).
    ///
    /// # Trust contract
    ///
    /// The arrays are expected to satisfy everything
    /// [`Csr::from_parts`] checks: `row_ptr` of length `rows + 1`,
    /// starting at 0, non-decreasing, ending at `col_ind.len()`;
    /// `col_ind.len() == values.len()`; per row, strictly increasing
    /// in-bounds column indices. **No undefined behaviour** can result
    /// from violating the contract — every access is bounds-checked — but
    /// kernels may panic or silently compute garbage. The matrix is
    /// marked unverified: [`Csr::validate`] (and therefore the executor's
    /// `try_*` tier) runs the full O(nnz) check and returns
    /// `Err(InvalidStructure)` instead of panicking, which is the
    /// documented front door for operands of untrusted provenance.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_ind: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        Csr {
            rows,
            cols,
            row_ptr,
            col_ind,
            values,
            verified: AtomicBool::new(false),
        }
    }

    /// Whether this matrix has already passed a structural check (at
    /// construction or through [`Csr::validate`]).
    pub fn is_verified(&self) -> bool {
        self.verified.load(Ordering::Acquire)
    }

    /// Checks every CSR invariant — `row_ptr` shape/monotonicity, array
    /// length agreement, strictly increasing in-bounds columns per row —
    /// in O(nnz + rows), caching success so repeated calls are O(1).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] /
    /// [`MatrixError::IndexOutOfBounds`] exactly as [`Csr::from_parts`]
    /// would for the same arrays.
    pub fn validate(&self) -> Result<()> {
        if self.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        self.check_structure()?;
        self.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// The uncached O(nnz) structural walk behind [`Csr::validate`].
    fn check_structure(&self) -> Result<()> {
        let (rows, cols) = (self.rows, self.cols);
        let (row_ptr, col_ind, values) = (&self.row_ptr, &self.col_ind, &self.values);
        if row_ptr.len() != rows + 1 {
            return Err(MatrixError::InvalidStructure(format!(
                "row_ptr length {} != rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr.first() != Some(&0) {
            return Err(MatrixError::InvalidStructure(
                "row_ptr must start at 0".into(),
            ));
        }
        if col_ind.len() != values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "col_ind length {} != values length {}",
                col_ind.len(),
                values.len()
            )));
        }
        if *row_ptr.last().unwrap() as usize != col_ind.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "row_ptr end {} != nnz {}",
                row_ptr.last().unwrap(),
                col_ind.len()
            )));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::InvalidStructure(
                    "row_ptr must be non-decreasing".into(),
                ));
            }
        }
        for i in 0..rows {
            let (lo, hi) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
            let row_cols = &col_ind[lo..hi];
            for w in row_cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidStructure(format!(
                        "row {i} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&c) = row_cols.last() {
                if c as usize >= cols {
                    return Err(MatrixError::IndexOutOfBounds {
                        row: i,
                        col: c as usize,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds a CSR matrix from a COO matrix (compressing a clone first if
    /// the COO entries are unsorted).
    pub fn from_coo(coo: &Coo<T>) -> Self {
        let owned;
        let coo = if coo.is_compressed() {
            coo
        } else {
            let mut c = coo.clone();
            c.compress();
            owned = c;
            &owned
        };
        let rows = coo.rows();
        let mut row_ptr = vec![0u32; rows + 1];
        for &(r, _, _) in coo.entries() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_ind = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        for &(_, c, v) in coo.entries() {
            col_ind.push(c);
            values.push(v);
        }
        Csr {
            rows,
            cols: coo.cols(),
            row_ptr,
            col_ind,
            values,
            // A compressed COO is sorted, deduplicated and in bounds — the
            // prefix sum above preserves exactly the CSR invariants.
            verified: AtomicBool::new(true),
        }
    }

    /// Builds a CSR matrix from the non-zeros of a dense matrix.
    pub fn from_dense(dense: &Dense<T>) -> Self {
        Csr::from_coo(&Coo::from_dense(dense))
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Dense<T> {
        let mut d = Dense::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(i, c as usize, v);
            }
        }
        d
    }

    /// Converts to COO triplets.
    pub fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::with_capacity(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(i, c as usize, v);
            }
        }
        coo
    }

    /// Converts to compressed sparse column.
    pub fn to_csc(&self) -> Csc<T> {
        let mut col_ptr = vec![0u32; self.cols + 1];
        for &c in &self.col_ind {
            col_ptr[c as usize + 1] += 1;
        }
        for j in 0..self.cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut row_ind = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut next = col_ptr.clone();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize] as usize;
                row_ind[slot] = i as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        Csc::from_raw_unchecked(self.rows, self.cols, col_ptr, row_ind, values)
    }

    /// Transposed copy (also a CSR matrix).
    pub fn transpose(&self) -> Csr<T> {
        let csc = self.to_csc();
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr: csc.col_ptr().to_vec(),
            col_ind: csc.row_ind().to_vec(),
            values: csc.values().to_vec(),
            // The CSC counting sort emits each column's rows in ascending
            // order, which is exactly the transposed CSR's row invariant.
            verified: AtomicBool::new(true),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero elements.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero elements over all elements.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row-pointer array (`rows + 1` entries, first 0, last `nnz`).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column index of each stored non-zero, row-major.
    pub fn col_ind(&self) -> &[u32] {
        &self.col_ind
    }

    /// Stored non-zero values, row-major.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        assert!(i < self.rows, "row out of bounds");
        let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
        (&self.col_ind[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_nnz(&self, i: usize) -> usize {
        assert!(i < self.rows, "row out of bounds");
        (self.row_ptr[i + 1] - self.row_ptr[i]) as usize
    }

    /// Iterates over all entries as `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// CSR footprint in bytes: `4 * (rows + 1)` for `row_ptr`, `4 * nnz` for
    /// `col_ind`, plus the values. This is the CSR side of paper Fig. 19.
    pub fn storage_bytes(&self) -> usize {
        4 * (self.rows + 1) + 4 * self.nnz() + self.nnz() * std::mem::size_of::<T>()
    }

    /// Returns a copy with every value converted to scalar type `U`
    /// (through `f64`, so `f64 -> f32` truncates). The sparsity structure
    /// is shared verbatim, which is what makes a `Csr<f32>` built this way
    /// a faithful reduced-precision twin of its `f64` original in the
    /// mixed-precision equivalence tests.
    pub fn cast<U: Scalar>(&self) -> Csr<U> {
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_ind: self.col_ind.clone(),
            values: self
                .values
                .iter()
                .map(|v| U::from_f64(v.to_f64()))
                .collect(),
            // Structure is shared verbatim, so verification carries over.
            verified: AtomicBool::new(self.verified.load(Ordering::Acquire)),
        }
    }

    /// Dot product of row `i` against the dense vector `x`, accumulated in
    /// the lane-striped order of [`crate::simd`] (stripe `k % LANES`, then
    /// a pairwise fold) by whichever ISA body [`crate::simd::active`]
    /// dispatches — AVX2, SSE4.2, or the scalar emulation of the same
    /// order. This is *the* per-row body of the plain CSR SpMV: both the
    /// serial `smash_kernels::native::spmv_csr` and the parallel
    /// `smash_parallel::par_spmv_csr` call it, and because every ISA body
    /// realizes the same accumulation order the results stay bit-identical
    /// across ISAs *and* thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or a column index of the row is `>= x.len()`.
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[T]) -> T {
        let (cols, vals) = self.row(i);
        T::simd_dot_indexed(cols, vals, x)
    }

    /// Multiplies row `i` against every column of the dense right-hand-side
    /// batch `b`, writing the full output row into `out`
    /// (`out[j] = Σ_k A[i][k] * b[k][j]`).
    ///
    /// This is *the* per-row body of the batched CSR SpMM: the serial
    /// `smash_kernels::native::spmm_dense_csr` and the parallel
    /// `smash_parallel::par_spmm_dense_csr` both call it, which keeps the
    /// two bit-identical at every thread count. The columns of `b` are
    /// processed in register-blocked tiles of width 8, then 4, then one —
    /// the row's indices and values are streamed once per *tile* instead
    /// of once per right-hand side, and within each tile every output
    /// column follows exactly the lane-striped order of
    /// [`row_dot`](Csr::row_dot), so column `j` of the result is
    /// bit-identical to an independent SpMV against column `j`, under
    /// every [`crate::simd`] ISA tier.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`, `out.len() != b.cols()`, or a column index of
    /// the row is `>= b.rows()`.
    #[inline]
    pub fn row_spmm_dense(&self, i: usize, b: &Dense<T>, out: &mut [T]) {
        let (cols, vals) = self.row(i);
        let n = b.cols();
        assert_eq!(out.len(), n, "output row length must equal b.cols()");
        crate::for_each_rhs_tile(n, |j0, w| {
            T::simd_row_tile(cols, vals, b.as_slice(), n, j0, w, out)
        });
    }

    /// Reference sparse matrix-vector product `y = A * x`
    /// (paper Code Listing 1).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![T::ZERO; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = T::ZERO;
            for (&c, &v) in cols.iter().zip(vals) {
                acc = v.mul_add(x[c as usize], acc);
            }
            *yi = acc;
        }
        y
    }

    /// Reference inner-product sparse matrix-matrix multiply `C = A * B`
    /// with `B` in CSC form (paper Code Listing 2, index matching via merge).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn spmm_inner(&self, b: &Csc<T>) -> Result<Coo<T>> {
        if self.cols != b.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "spmm",
                lhs: (self.rows, self.cols),
                rhs: (b.rows(), b.cols()),
            });
        }
        let mut c = Coo::new(self.rows, b.cols());
        for i in 0..self.rows {
            self.spmm_inner_row(i, b, |j, acc| c.push(i, j, acc));
        }
        c.compress();
        Ok(c)
    }

    /// Computes one row of the inner-product SpMM against `b` (CSC),
    /// invoking `emit(col, dot)` for each surviving output entry in column
    /// order. Both [`spmm_inner`](Csr::spmm_inner) and the parallel SpMM
    /// (`smash_parallel::par_spmm_csr`) drive this single row routine —
    /// sharing it is what keeps the two bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn spmm_inner_row(&self, i: usize, b: &Csc<T>, mut emit: impl FnMut(usize, T)) {
        let (a_cols, a_vals) = self.row(i);
        if a_cols.is_empty() {
            return;
        }
        for j in 0..b.cols() {
            let (b_rows, b_vals) = b.col(j);
            // Index matching: advance two sorted cursors.
            let (mut p, mut q) = (0usize, 0usize);
            let mut acc = T::ZERO;
            let mut hit = false;
            while p < a_cols.len() && q < b_rows.len() {
                match a_cols[p].cmp(&b_rows[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        acc = a_vals[p].mul_add(b_vals[q], acc);
                        hit = true;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if hit && !acc.is_zero() {
                emit(j, acc);
            }
        }
    }

    /// Reference sparse matrix addition `C = A + B` (merge of sorted rows).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, b: &Csr<T>) -> Result<Csr<T>> {
        if self.rows != b.rows || self.cols != b.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "spadd",
                lhs: (self.rows, self.cols),
                rhs: (b.rows, b.cols),
            });
        }
        let mut coo = Coo::with_capacity(self.rows, self.cols, self.nnz() + b.nnz());
        for i in 0..self.rows {
            let (ac, av) = self.row(i);
            let (bc, bv) = b.row(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                let take_a = q >= bc.len() || (p < ac.len() && ac[p] <= bc[q]);
                let take_b = p >= ac.len() || (q < bc.len() && bc[q] <= ac[p]);
                match (take_a, take_b) {
                    (true, true) => {
                        coo.push(i, ac[p] as usize, av[p] + bv[q]);
                        p += 1;
                        q += 1;
                    }
                    (true, false) => {
                        coo.push(i, ac[p] as usize, av[p]);
                        p += 1;
                    }
                    (false, true) => {
                        coo.push(i, bc[q] as usize, bv[q]);
                        q += 1;
                    }
                    (false, false) => unreachable!(),
                }
            }
        }
        Ok(Csr::from_coo(&coo))
    }
}

/// Incremental row-by-row CSR constructor for kernels that emit their
/// output directly in compressed form (no COO detour, no sort, no
/// duplicate merge).
///
/// The SpGEMM engine in `smash-kernels` is the primary caller: its
/// Gustavson rows come out sorted and duplicate-free, so the builder only
/// has to append them and maintain `row_ptr`. Rows are validated as they
/// are pushed (strictly increasing columns, in bounds), which makes
/// [`CsrBuilder::finish`] O(1) — the finished matrix holds exactly the
/// invariants [`Csr::from_parts`] would re-check.
///
/// # Example
///
/// ```
/// use smash_matrix::CsrBuilder;
///
/// let mut b = CsrBuilder::<f64>::with_capacity(4, 2, 3);
/// b.push_row(&[0, 2], &[1.0, 2.0]);
/// b.push_row(&[3], &[4.0]);
/// let m = b.finish();
/// assert_eq!((m.rows(), m.cols(), m.nnz()), (2, 4, 3));
/// assert_eq!(m.row_ptr(), &[0, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder<T> {
    cols: usize,
    row_ptr: Vec<u32>,
    col_ind: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CsrBuilder<T> {
    /// An empty builder for a matrix with `cols` columns; rows are added
    /// one [`push_row`](CsrBuilder::push_row) at a time.
    pub fn new(cols: usize) -> Self {
        CsrBuilder::with_capacity(cols, 0, 0)
    }

    /// An empty builder with storage pre-allocated for `rows` rows and
    /// `nnz` non-zeros — pass exact counts (e.g. from a symbolic pass) and
    /// assembly never reallocates.
    pub fn with_capacity(cols: usize, rows: usize, nnz: usize) -> Self {
        CsrBuilder {
            cols,
            row_ptr: {
                let mut p = Vec::with_capacity(rows + 1);
                p.push(0);
                p
            },
            col_ind: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Non-zeros pushed so far.
    pub fn nnz(&self) -> usize {
        self.col_ind.len()
    }

    /// Appends the next row from its sorted column indices and values
    /// (empty slices append an empty row).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths, the columns are not
    /// strictly increasing, or a column is `>= cols`.
    pub fn push_row(&mut self, cols: &[u32], vals: &[T]) {
        assert_eq!(cols.len(), vals.len(), "row slices must have equal length");
        let mut prev: Option<u32> = None;
        for &c in cols {
            assert!(
                prev.is_none_or(|p| p < c),
                "row {} columns not strictly increasing",
                self.rows()
            );
            assert!(
                (c as usize) < self.cols,
                "column {c} out of bounds for {} columns",
                self.cols
            );
            prev = Some(c);
        }
        self.col_ind.extend_from_slice(cols);
        self.values.extend_from_slice(vals);
        self.row_ptr.push(self.col_ind.len() as u32);
    }

    /// Splices a pre-computed chunk of consecutive rows: `counts[r]` gives
    /// the non-zero count of the chunk's `r`-th row inside the flat
    /// `cols`/`vals` arrays. This is how the parallel SpGEMM engine
    /// concatenates its workers' disjoint row-range outputs in range
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to the slice lengths, or any row
    /// violates the [`push_row`](CsrBuilder::push_row) invariants.
    pub fn push_row_chunk(&mut self, counts: &[u32], cols: &[u32], vals: &[T]) {
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        assert_eq!(total, cols.len(), "counts must sum to the chunk length");
        let mut at = 0usize;
        for &c in counts {
            let hi = at + c as usize;
            self.push_row(&cols[at..hi], &vals[at..hi]);
            at = hi;
        }
    }

    /// Finishes the matrix. O(1) in release builds: every invariant was
    /// enforced by [`push_row`](CsrBuilder::push_row) as the rows landed.
    /// Debug builds route the result through the full structural check
    /// once more, so a builder bug (or a future push path that forgets a
    /// check) is caught at the construction site rather than inside a
    /// kernel.
    pub fn finish(self) -> Csr<T> {
        let m = Csr {
            rows: self.row_ptr.len() - 1,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_ind: self.col_ind,
            values: self.values,
            verified: AtomicBool::new(true),
        };
        debug_assert!(
            m.check_structure().is_ok(),
            "CsrBuilder emitted an invalid matrix: {:?}",
            m.check_structure().err()
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4x4 matrix of the paper's Figure 1.
    fn fig1() -> Csr<f64> {
        let mut coo = Coo::new(4, 4);
        for &(r, c, v) in &[
            (0, 0, 3.2),
            (1, 0, 1.2),
            (1, 2, 4.2),
            (2, 3, 5.1),
            (3, 0, 5.3),
            (3, 1, 3.3),
        ] {
            coo.push(r, c, v);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn fig1_arrays_match_paper() {
        let a = fig1();
        assert_eq!(a.row_ptr(), &[0, 1, 3, 4, 6]);
        assert_eq!(a.col_ind(), &[0, 0, 2, 3, 0, 1]);
        assert_eq!(a.values(), &[3.2, 1.2, 4.2, 5.1, 5.3, 3.3]);
    }

    #[test]
    fn row_accessor_counts_nonzeros() {
        let a = fig1();
        assert_eq!(a.row_nnz(1), 2);
        let (cols, vals) = a.row(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.2, 4.2]);
    }

    #[test]
    fn dense_roundtrip() {
        let a = fig1();
        let d = a.to_dense();
        assert_eq!(Csr::from_dense(&d), a);
    }

    #[test]
    fn coo_roundtrip() {
        let a = fig1();
        assert_eq!(Csr::from_coo(&a.to_coo()), a);
    }

    #[test]
    fn csc_roundtrip_preserves_dense() {
        let a = fig1();
        assert_eq!(a.to_csc().to_dense(), a.to_dense());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = fig1();
        assert_eq!(a.transpose().to_dense(), a.to_dense().transpose());
    }

    #[test]
    fn spmv_matches_dense() {
        let a = fig1();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.spmv(&x), a.to_dense().spmv(&x));
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = fig1();
        let b = fig1().transpose();
        let c = a.spmm_inner(&b.to_csc()).unwrap().to_dense();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((c.get(i, j) - expect.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_matches_dense_add() {
        let a = fig1();
        let b = fig1().transpose();
        let c = a.add(&b).unwrap();
        let expect = a.to_dense().add(&b.to_dense()).unwrap();
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn from_parts_validates() {
        // Non-monotone row_ptr.
        assert!(Csr::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        // col_ind / values length mismatch.
        assert!(Csr::<f64>::from_parts(1, 2, vec![0, 1], vec![0, 1], vec![1.0]).is_err());
        // Column out of bounds.
        assert!(Csr::<f64>::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Unsorted columns within a row.
        assert!(Csr::<f64>::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // A valid one.
        assert!(Csr::<f64>::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn unchecked_parts_validate_lazily_with_typed_errors() {
        // The same adversarial inputs from_parts rejects, but routed
        // through the unchecked constructor: construction succeeds (the
        // trust contract), validate() reports the typed error, and the
        // verified marker stays clear.
        let cases: Vec<Csr<f64>> = vec![
            // Non-monotone row_ptr.
            Csr::from_parts_unchecked(2, 2, vec![0, 2, 1], vec![0], vec![1.0]),
            // Unsorted columns within a row.
            Csr::from_parts_unchecked(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]),
            // Duplicate column within a row.
            Csr::from_parts_unchecked(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]),
            // Column out of bounds.
            Csr::from_parts_unchecked(1, 2, vec![0, 1], vec![5], vec![1.0]),
            // row_ptr shorter than rows + 1.
            Csr::from_parts_unchecked(3, 3, vec![0, 1], vec![0], vec![1.0]),
            // row_ptr end disagrees with nnz.
            Csr::from_parts_unchecked(1, 3, vec![0, 7], vec![0], vec![1.0]),
        ];
        for (i, m) in cases.iter().enumerate() {
            assert!(!m.is_verified(), "case {i} must start unverified");
            let err = m.validate().expect_err("case must fail validation");
            assert!(
                matches!(
                    err,
                    MatrixError::InvalidStructure(_) | MatrixError::IndexOutOfBounds { .. }
                ),
                "case {i}: unexpected error {err:?}"
            );
            assert!(!m.is_verified(), "case {i} must stay unverified");
        }
    }

    #[test]
    fn validate_caches_the_verified_marker() {
        let a = fig1();
        assert!(a.is_verified(), "from_coo constructs verified");
        let parts = Csr::<f64>::from_parts_unchecked(
            a.rows(),
            a.cols(),
            a.row_ptr().to_vec(),
            a.col_ind().to_vec(),
            a.values().to_vec(),
        );
        assert!(!parts.is_verified());
        parts.validate().unwrap();
        assert!(parts.is_verified(), "success sets the cached marker");
        // Clone carries the marker; equality ignores it.
        assert!(parts.clone().is_verified());
        assert_eq!(parts, a);
        let fresh = Csr::<f64>::from_parts_unchecked(
            a.rows(),
            a.cols(),
            a.row_ptr().to_vec(),
            a.col_ind().to_vec(),
            a.values().to_vec(),
        );
        assert_eq!(fresh, parts, "equality must not consult the marker");
    }

    #[test]
    fn storage_matches_paper_model() {
        let a = fig1();
        // 4*(rows+1) + 4*nnz + 8*nnz = 4*5 + 4*6 + 8*6 = 92
        assert_eq!(a.storage_bytes(), 92);
    }

    #[test]
    fn empty_matrix_ok() {
        let a = Csr::<f64>::from_coo(&Coo::new(3, 3));
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.spmv(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }

    #[test]
    fn row_dot_variants_match_spmv() {
        let a = fig1();
        let x = [1.0, 2.0, 3.0, 4.0];
        for (i, want) in a.spmv(&x).into_iter().enumerate() {
            assert!((a.row_dot(i, &x) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn cast_preserves_structure_and_truncates_values() {
        let a = fig1();
        let f = a.cast::<f32>();
        assert_eq!(f.row_ptr(), a.row_ptr());
        assert_eq!(f.col_ind(), a.col_ind());
        for (w, n) in a.values().iter().zip(f.values()) {
            assert_eq!(*n, *w as f32);
        }
        // Round-tripping back to f64 keeps structure, loses only precision.
        let back = f.cast::<f64>();
        assert_eq!(back.row_ptr(), a.row_ptr());
        for (w, b) in a.values().iter().zip(back.values()) {
            assert!((w - b).abs() < 1e-6);
        }
    }

    #[test]
    fn builder_matches_from_coo() {
        let a = fig1();
        let mut b = CsrBuilder::with_capacity(a.cols(), a.rows(), a.nnz());
        for i in 0..a.rows() {
            let (cols, vals) = a.row(i);
            b.push_row(cols, vals);
        }
        assert_eq!(b.rows(), a.rows());
        assert_eq!(b.nnz(), a.nnz());
        assert_eq!(b.finish(), a);
    }

    #[test]
    fn builder_chunk_splice_matches_row_pushes() {
        let a = fig1();
        // Two chunks: rows [0, 2) and [2, 4), as the parallel engine
        // splices them.
        let mut b = CsrBuilder::new(a.cols());
        for range in [0..2usize, 2..4] {
            let lo = a.row_ptr()[range.start] as usize;
            let hi = a.row_ptr()[range.end] as usize;
            let counts: Vec<u32> = range
                .clone()
                .map(|i| a.row_ptr()[i + 1] - a.row_ptr()[i])
                .collect();
            b.push_row_chunk(&counts, &a.col_ind()[lo..hi], &a.values()[lo..hi]);
        }
        assert_eq!(b.finish(), a);
    }

    #[test]
    fn builder_accepts_empty_rows_and_empty_matrix() {
        let mut b = CsrBuilder::<f64>::new(5);
        b.push_row(&[], &[]);
        b.push_row(&[4], &[2.0]);
        b.push_row(&[], &[]);
        let m = b.finish();
        assert_eq!((m.rows(), m.nnz()), (3, 1));
        assert_eq!(m.row_ptr(), &[0, 0, 1, 1]);
        let empty = CsrBuilder::<f64>::new(0).finish();
        assert_eq!((empty.rows(), empty.cols(), empty.nnz()), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn builder_rejects_unsorted_row() {
        CsrBuilder::<f64>::new(4).push_row(&[2, 1], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_out_of_bounds_column() {
        CsrBuilder::<f64>::new(2).push_row(&[2], &[1.0]);
    }

    #[test]
    fn iter_visits_row_major() {
        let a = fig1();
        let order: Vec<_> = a.iter().map(|(r, c, _)| (r, c)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order.len(), 6);
    }
}
