use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// Numeric element type stored in the matrix formats of this workspace.
///
/// The SMASH paper evaluates double-precision kernels; this trait keeps the
/// formats generic over `f32`/`f64` without pulling in a numerics crate.
///
/// # Example
///
/// ```
/// use smash_matrix::Scalar;
///
/// fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
///     a.iter().zip(b).fold(T::ZERO, |acc, (&x, &y)| acc + x * y)
/// }
/// assert_eq!(dot(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + MulAssign
    + Sum
    + Send
    + Sync
    + 'static
    + crate::simd::SimdElem
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the type (distance from 1 to the next larger
    /// representable value), widened to `f64` for tolerance arithmetic.
    const EPSILON: f64;
    /// Default relative tolerance for kernel-equivalence checks: wide
    /// enough to absorb the reassociation error of unrolled/blocked
    /// kernels at this precision, tight enough to catch index mix-ups.
    /// (`~1e-9` for `f64`, `~1e-4` for `f32`.)
    const TOLERANCE: f64;

    /// Converts from `f64`, truncating precision if necessary.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`, widening if necessary.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused (or at least combined) multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Returns `true` when the value is neither NaN nor ±infinity — the
    /// predicate behind the executor's non-finite rejection policy for
    /// untrusted operands.
    fn is_finite(self) -> bool;

    /// Returns `true` for the exact additive identity.
    ///
    /// Sparse formats treat exactly-zero values as absent; this is the
    /// predicate they use.
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Approximate equality with an absolute/relative tolerance, used by
    /// kernel-equivalence tests.
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        let (a, b) = (self.to_f64(), other.to_f64());
        let scale = 1.0_f64.max(a.abs()).max(b.abs());
        (a - b).abs() <= tol * scale
    }

    /// [`approx_eq`](Scalar::approx_eq) at the type's own
    /// [`TOLERANCE`](Scalar::TOLERANCE) — the check kernel-equivalence
    /// tests use when comparing a result against an oracle computed in
    /// this precision (or widened from it).
    fn approx_eq_default(self, other: Self) -> bool {
        self.approx_eq(other, Self::TOLERANCE)
    }
}

macro_rules! impl_scalar_float {
    ($t:ty, $tol:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: f64 = <$t>::EPSILON as f64;
            const TOLERANCE: f64 = $tol;

            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar_float!(f32, 1e-4);
impl_scalar_float!(f64, 1e-9);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert!(f32::ZERO.is_zero());
        assert!(!f32::ONE.is_zero());
    }

    #[test]
    fn conversion_roundtrip() {
        assert_eq!(f64::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(f32::from_f64(2.5).to_f64(), 2.5);
    }

    #[test]
    fn is_finite_flags_nan_and_infinities() {
        assert!(1.0f64.is_finite());
        assert!(Scalar::is_finite(f32::ZERO));
        assert!(!Scalar::is_finite(f64::NAN));
        assert!(!Scalar::is_finite(f64::INFINITY));
        assert!(!Scalar::is_finite(f32::NEG_INFINITY));
    }

    #[test]
    fn mul_add_matches_manual() {
        let x: f64 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        assert!(1.0f64.approx_eq(1.0 + 1e-12, 1e-9));
        assert!(!1.0f64.approx_eq(1.1, 1e-9));
        // Relative tolerance for large magnitudes.
        assert!(1e12f64.approx_eq(1e12 + 1.0, 1e-9));
    }

    #[test]
    fn tolerance_constants_track_precision() {
        // The per-type tolerance sits well above machine epsilon (room for
        // accumulated rounding) and f32 is the coarser of the two. Checked
        // through a generic helper so the comparison is not a clippy-level
        // constant: this is exactly how kernel tests consume the constants.
        fn spread<T: Scalar>() -> (f64, f64) {
            (T::EPSILON, T::TOLERANCE)
        }
        let (eps64, tol64) = spread::<f64>();
        let (eps32, tol32) = spread::<f32>();
        assert!(tol64 > eps64);
        assert!(tol32 > eps32);
        assert!(tol32 > tol64);
        assert_eq!(eps32, f32::EPSILON as f64);
    }

    #[test]
    fn approx_eq_default_uses_per_type_tolerance() {
        // An error of 1e-6 passes at f32 tolerance but fails at f64's.
        assert!(1.0f32.approx_eq_default(1.0 + 1e-6));
        assert!(!1.0f64.approx_eq_default(1.0 + 1e-6));
        assert!(1.0f64.approx_eq_default(1.0 + 1e-12));
        assert!(!1.0f32.approx_eq_default(1.01));
    }

    #[test]
    fn f32_impl_roundtrips_and_computes() {
        let x: f32 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
        assert_eq!((-2.5f32).abs(), 2.5);
        assert_eq!(f32::from_f64(0.25).to_f64(), 0.25);
        // Truncation: a value not representable in f32 rounds.
        let fine = 1.0 + 1e-12;
        assert_eq!(f32::from_f64(fine), 1.0f32);
    }
}
