use crate::{Csr, Dense, MatrixError, Result, Scalar};
use std::sync::atomic::{AtomicBool, Ordering};

/// Block Compressed Sparse Row matrix (paper’s TACO-BCSR baseline, reference 38).
///
/// The matrix is tiled into `block_rows x block_cols` dense blocks; only
/// blocks containing at least one non-zero are stored, each as a dense
/// row-major tile. This trades explicit zeros inside stored blocks for one
/// index per *block* instead of one per *element* — the same storage/compute
/// trade-off SMASH generalizes with its bitmap hierarchy.
///
/// # Example
///
/// ```
/// use smash_matrix::{Bcsr, Coo, Csr};
///
/// let mut coo = Coo::<f64>::new(4, 4);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 1, 2.0); // same 2x2 block as (0,0)
/// coo.push(3, 3, 3.0);
/// let bcsr = Bcsr::from_csr(&Csr::from_coo(&coo), 2, 2).unwrap();
/// assert_eq!(bcsr.num_blocks(), 2);
/// assert_eq!(bcsr.nnz_stored(), 8); // two 2x2 tiles
/// ```
#[derive(Debug)]
pub struct Bcsr<T> {
    rows: usize,
    cols: usize,
    block_rows: usize,
    block_cols: usize,
    /// Per block-row extent into `block_col_ind`, length `ceil(rows/br) + 1`.
    block_row_ptr: Vec<u32>,
    /// Block-column index of each stored block.
    block_col_ind: Vec<u32>,
    /// Dense tiles, `block_rows * block_cols` values each, row-major.
    values: Vec<T>,
    /// Number of logical (non-padding) non-zeros.
    nnz_logical: usize,
    /// Cached result of a successful structural check (see
    /// [`Csr`](crate::Csr): same acceleration, same exclusion from
    /// `Clone` origin / `PartialEq`).
    verified: AtomicBool,
}

impl<T: Clone> Clone for Bcsr<T> {
    fn clone(&self) -> Self {
        Bcsr {
            rows: self.rows,
            cols: self.cols,
            block_rows: self.block_rows,
            block_cols: self.block_cols,
            block_row_ptr: self.block_row_ptr.clone(),
            block_col_ind: self.block_col_ind.clone(),
            values: self.values.clone(),
            nnz_logical: self.nnz_logical,
            verified: AtomicBool::new(self.verified.load(Ordering::Acquire)),
        }
    }
}

impl<T: PartialEq> PartialEq for Bcsr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.block_rows == other.block_rows
            && self.block_cols == other.block_cols
            && self.block_row_ptr == other.block_row_ptr
            && self.block_col_ind == other.block_col_ind
            && self.values == other.values
            && self.nnz_logical == other.nnz_logical
    }
}

impl<T: Scalar> Bcsr<T> {
    /// Converts a CSR matrix to BCSR with the given block shape.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if either block dimension
    /// is zero.
    pub fn from_csr(csr: &Csr<T>, block_rows: usize, block_cols: usize) -> Result<Self> {
        if block_rows == 0 || block_cols == 0 {
            return Err(MatrixError::InvalidStructure(
                "block dimensions must be non-zero".into(),
            ));
        }
        let rows = csr.rows();
        let cols = csr.cols();
        let n_block_rows = rows.div_ceil(block_rows);
        let block_size = block_rows * block_cols;

        let mut block_row_ptr = Vec::with_capacity(n_block_rows + 1);
        block_row_ptr.push(0u32);
        let mut block_col_ind = Vec::new();
        let mut values = Vec::new();

        // For each block-row, merge the member rows' columns into block
        // columns, then fill the tiles.
        let mut tile_of_block_col: Vec<(u32, usize)> = Vec::new();
        for bi in 0..n_block_rows {
            tile_of_block_col.clear();
            let r_lo = bi * block_rows;
            let r_hi = (r_lo + block_rows).min(rows);
            // Discover which block columns are occupied.
            let mut occupied: Vec<u32> = Vec::new();
            for r in r_lo..r_hi {
                let (row_cols, _) = csr.row(r);
                for &c in row_cols {
                    occupied.push(c / block_cols as u32);
                }
            }
            occupied.sort_unstable();
            occupied.dedup();
            // Allocate tiles in block-column order.
            for &bc in &occupied {
                tile_of_block_col.push((bc, values.len()));
                block_col_ind.push(bc);
                values.extend(std::iter::repeat_n(T::ZERO, block_size));
            }
            // Scatter values into tiles.
            for r in r_lo..r_hi {
                let (row_cols, row_vals) = csr.row(r);
                for (&c, &v) in row_cols.iter().zip(row_vals) {
                    let bc = c / block_cols as u32;
                    let tile_base = tile_of_block_col
                        .iter()
                        .find(|&&(b, _)| b == bc)
                        .expect("occupied block column must have a tile")
                        .1;
                    let local = (r - r_lo) * block_cols + (c as usize % block_cols);
                    values[tile_base + local] = v;
                }
            }
            block_row_ptr.push(block_col_ind.len() as u32);
        }

        Ok(Bcsr {
            rows,
            cols,
            block_rows,
            block_cols,
            block_row_ptr,
            block_col_ind,
            values,
            nnz_logical: csr.nnz(),
            // The merge walks block columns in sorted, deduplicated order
            // per block row — the conversion establishes every invariant.
            verified: AtomicBool::new(true),
        })
    }

    /// Builds a BCSR matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if the arrays are
    /// inconsistent (zero block dimensions, wrong pointer/tile lengths,
    /// non-monotone `block_row_ptr`, unsorted or duplicate block columns,
    /// an impossible `nnz_logical`) and [`MatrixError::IndexOutOfBounds`]
    /// if a block column lies outside the matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        block_rows: usize,
        block_cols: usize,
        block_row_ptr: Vec<u32>,
        block_col_ind: Vec<u32>,
        values: Vec<T>,
        nnz_logical: usize,
    ) -> Result<Self> {
        let m = Bcsr::from_parts_unchecked(
            rows,
            cols,
            block_rows,
            block_cols,
            block_row_ptr,
            block_col_ind,
            values,
            nnz_logical,
        );
        m.validate()?;
        Ok(m)
    }

    /// Builds a BCSR matrix from raw parts **without checking the
    /// invariants**.
    ///
    /// # Trust contract
    ///
    /// Same shape as [`Csr::from_parts_unchecked`](crate::Csr::from_parts_unchecked):
    /// the arrays are expected to satisfy everything
    /// [`Bcsr::from_parts`] checks. Violations can never cause undefined
    /// behaviour (all access is bounds-checked) but kernels may panic or
    /// compute garbage. The matrix is marked unverified, so
    /// [`Bcsr::validate`] — and the executor's `try_*` tier — reports
    /// `Err(InvalidStructure)` instead.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        block_rows: usize,
        block_cols: usize,
        block_row_ptr: Vec<u32>,
        block_col_ind: Vec<u32>,
        values: Vec<T>,
        nnz_logical: usize,
    ) -> Self {
        Bcsr {
            rows,
            cols,
            block_rows,
            block_cols,
            block_row_ptr,
            block_col_ind,
            values,
            nnz_logical,
            verified: AtomicBool::new(false),
        }
    }

    /// Whether this matrix has already passed a structural check.
    pub fn is_verified(&self) -> bool {
        self.verified.load(Ordering::Acquire)
    }

    /// Checks every BCSR invariant in O(blocks), caching success so
    /// repeated calls are O(1).
    ///
    /// # Errors
    ///
    /// Returns the same typed errors as [`Bcsr::from_parts`].
    pub fn validate(&self) -> Result<()> {
        if self.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        self.check_structure()?;
        self.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// The uncached structural walk behind [`Bcsr::validate`].
    fn check_structure(&self) -> Result<()> {
        if self.block_rows == 0 || self.block_cols == 0 {
            return Err(MatrixError::InvalidStructure(
                "block dimensions must be non-zero".into(),
            ));
        }
        let n_block_rows = self.rows.div_ceil(self.block_rows);
        let n_block_cols = self.cols.div_ceil(self.block_cols);
        if self.block_row_ptr.len() != n_block_rows + 1 {
            return Err(MatrixError::InvalidStructure(format!(
                "block_row_ptr length {} != block rows + 1 = {}",
                self.block_row_ptr.len(),
                n_block_rows + 1
            )));
        }
        if self.block_row_ptr.first() != Some(&0) {
            return Err(MatrixError::InvalidStructure(
                "block_row_ptr must start at 0".into(),
            ));
        }
        if *self.block_row_ptr.last().unwrap() as usize != self.block_col_ind.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "block_row_ptr end {} != stored blocks {}",
                self.block_row_ptr.last().unwrap(),
                self.block_col_ind.len()
            )));
        }
        for w in self.block_row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(MatrixError::InvalidStructure(
                    "block_row_ptr must be non-decreasing".into(),
                ));
            }
        }
        let block_size = self.block_rows * self.block_cols;
        if self.values.len() != self.block_col_ind.len() * block_size {
            return Err(MatrixError::InvalidStructure(format!(
                "tile storage {} != blocks {} x block size {}",
                self.values.len(),
                self.block_col_ind.len(),
                block_size
            )));
        }
        for bi in 0..n_block_rows {
            let lo = self.block_row_ptr[bi] as usize;
            let hi = self.block_row_ptr[bi + 1] as usize;
            let row_blocks = &self.block_col_ind[lo..hi];
            for w in row_blocks.windows(2) {
                if w[0] >= w[1] {
                    return Err(MatrixError::InvalidStructure(format!(
                        "block row {bi} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&bc) = row_blocks.last() {
                if bc as usize >= n_block_cols {
                    return Err(MatrixError::IndexOutOfBounds {
                        row: bi * self.block_rows,
                        col: bc as usize * self.block_cols,
                        rows: self.rows,
                        cols: self.cols,
                    });
                }
            }
        }
        if self.nnz_logical > self.values.len() {
            return Err(MatrixError::InvalidStructure(format!(
                "nnz_logical {} exceeds stored values {}",
                self.nnz_logical,
                self.values.len()
            )));
        }
        Ok(())
    }

    /// Converts back to CSR (padding zeros inside tiles are dropped).
    pub fn to_csr(&self) -> Csr<T> {
        let mut coo = crate::Coo::with_capacity(self.rows, self.cols, self.nnz_logical);
        let bs = self.block_rows * self.block_cols;
        for bi in 0..self.num_block_rows() {
            let lo = self.block_row_ptr[bi] as usize;
            let hi = self.block_row_ptr[bi + 1] as usize;
            for k in lo..hi {
                let bc = self.block_col_ind[k] as usize;
                let tile = &self.values[k * bs..(k + 1) * bs];
                for lr in 0..self.block_rows {
                    let r = bi * self.block_rows + lr;
                    if r >= self.rows {
                        break;
                    }
                    for lc in 0..self.block_cols {
                        let c = bc * self.block_cols + lc;
                        if c >= self.cols {
                            break;
                        }
                        let v = tile[lr * self.block_cols + lc];
                        if !v.is_zero() {
                            coo.push(r, c, v);
                        }
                    }
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Dense<T> {
        self.to_csr().to_dense()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block shape as `(block_rows, block_cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.block_rows, self.block_cols)
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_col_ind.len()
    }

    /// Number of block rows.
    pub fn num_block_rows(&self) -> usize {
        self.block_row_ptr.len() - 1
    }

    /// Per-block-row extent array.
    pub fn block_row_ptr(&self) -> &[u32] {
        &self.block_row_ptr
    }

    /// Block-column index of each stored block.
    pub fn block_col_ind(&self) -> &[u32] {
        &self.block_col_ind
    }

    /// Raw tile storage (stored values including explicit zeros).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of values physically stored (logical non-zeros plus padding
    /// zeros inside tiles).
    pub fn nnz_stored(&self) -> usize {
        self.values.len()
    }

    /// Number of logical non-zeros (as in the source matrix).
    pub fn nnz_logical(&self) -> usize {
        self.nnz_logical
    }

    /// Fraction of stored values that are logical non-zeros — the block-level
    /// analogue of the paper's "locality of sparsity".
    pub fn fill_ratio(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.nnz_logical as f64 / self.values.len() as f64
        }
    }

    /// BCSR footprint in bytes: block pointers and indices (4 bytes each)
    /// plus all stored tile values.
    pub fn storage_bytes(&self) -> usize {
        4 * self.block_row_ptr.len()
            + 4 * self.block_col_ind.len()
            + self.values.len() * std::mem::size_of::<T>()
    }

    /// Reference blocked product `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![T::ZERO; self.rows];
        let bs = self.block_rows * self.block_cols;
        for bi in 0..self.num_block_rows() {
            let lo = self.block_row_ptr[bi] as usize;
            let hi = self.block_row_ptr[bi + 1] as usize;
            for k in lo..hi {
                let bc = self.block_col_ind[k] as usize;
                let tile = &self.values[k * bs..(k + 1) * bs];
                for lr in 0..self.block_rows {
                    let r = bi * self.block_rows + lr;
                    if r >= self.rows {
                        break;
                    }
                    let mut acc = T::ZERO;
                    for lc in 0..self.block_cols {
                        let c = bc * self.block_cols + lc;
                        if c >= self.cols {
                            break;
                        }
                        acc = tile[lr * self.block_cols + lc].mul_add(x[c], acc);
                    }
                    y[r] += acc;
                }
            }
        }
        y
    }

    /// Multiplies block row `bi` against the dense vector `x`, accumulating
    /// into `out` — the clipped output rows of this block row
    /// (`min(block_rows, rows - bi * block_rows)` entries). `out` must be
    /// zero-initialized (or hold a partial sum) by the caller.
    ///
    /// This is *the* per-block-row body of the blocked SpMV, shared by the
    /// serial `smash_kernels::native::spmv_bcsr` and the parallel
    /// `smash_parallel::par_spmv_bcsr`: per stored block, each clipped row
    /// takes one lane-striped [`crate::simd`] contiguous dot against the
    /// matching slice of `x` and adds it into `out`. That is exactly the
    /// per-column order of [`block_row_spmm_dense`](Bcsr::block_row_spmm_dense),
    /// which is what keeps batched column `j` bit-identical to this SpMV on
    /// column `j` — under every ISA tier and thread count.
    ///
    /// # Panics
    ///
    /// Panics if `bi >= num_block_rows()`, `x.len() != cols`, or
    /// `out.len() != min(block_rows, rows - bi * block_rows)`.
    #[inline]
    pub fn block_row_spmv(&self, bi: usize, x: &[T], out: &mut [T]) {
        assert!(bi < self.num_block_rows(), "block row out of bounds");
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let (br, bc) = (self.block_rows, self.block_cols);
        let rows_here = br.min(self.rows - bi * br);
        assert_eq!(
            out.len(),
            rows_here,
            "output must cover the clipped block row"
        );
        let bs = br * bc;
        let lo = self.block_row_ptr[bi] as usize;
        let hi = self.block_row_ptr[bi + 1] as usize;
        for k in lo..hi {
            let cbase = self.block_col_ind[k] as usize * bc;
            let lc_max = bc.min(self.cols - cbase);
            let tile = &self.values[k * bs..(k + 1) * bs];
            let xs = &x[cbase..cbase + lc_max];
            for (lr, o) in out.iter_mut().enumerate() {
                let trow = &tile[lr * bc..lr * bc + lc_max];
                *o += T::simd_dot_contiguous(trow, xs);
            }
        }
    }

    /// Multiplies block row `bi` against every column of the dense
    /// right-hand-side batch `b`, accumulating into `out` — the flattened
    /// (row-major, `b.cols()`-wide) output rows of this block row, clipped
    /// to the matrix height. `out` must be zero-initialized by the caller.
    ///
    /// This is *the* per-block-row body of the batched BCSR SpMM, shared by
    /// the serial `smash_kernels::native::spmm_dense_bcsr` and the parallel
    /// `smash_parallel::par_spmm_dense_bcsr`. The columns of `b` are
    /// processed in register-blocked tiles of width 8/4/1; within a tile,
    /// every column follows the lane-striped per-column order of
    /// [`block_row_spmv`](Bcsr::block_row_spmv) (per stored block, a striped
    /// dot over the block's columns, then add into the output), so column
    /// `j` of the result is bit-identical to a blocked SpMV against
    /// column `j`, under every [`crate::simd`] ISA tier.
    ///
    /// # Panics
    ///
    /// Panics if `bi >= num_block_rows()` or
    /// `out.len() != min(block_rows, rows - bi * block_rows) * b.cols()`.
    #[inline]
    pub fn block_row_spmm_dense(&self, bi: usize, b: &Dense<T>, out: &mut [T]) {
        assert!(bi < self.num_block_rows(), "block row out of bounds");
        let n = b.cols();
        let (br, bc) = (self.block_rows, self.block_cols);
        let rows_here = br.min(self.rows - bi * br);
        assert_eq!(
            out.len(),
            rows_here * n,
            "output must cover the clipped block row"
        );
        let bs = br * bc;
        let lo = self.block_row_ptr[bi] as usize;
        let hi = self.block_row_ptr[bi + 1] as usize;
        for k in lo..hi {
            let cbase = self.block_col_ind[k] as usize * bc;
            let lc_max = bc.min(self.cols - cbase);
            let tile = &self.values[k * bs..(k + 1) * bs];
            for lr in 0..rows_here {
                let trow = &tile[lr * bc..lr * bc + lc_max];
                crate::axpy_dense_tiles(trow, b, cbase, &mut out[lr * n..(lr + 1) * n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr<f64> {
        let mut coo = Coo::new(5, 6);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 5, 2.0),
            (1, 1, 3.0),
            (2, 2, 4.0),
            (3, 3, 5.0),
            (4, 0, 6.0),
            (4, 4, 7.0),
        ] {
            coo.push(r, c, v);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let a = sample();
        for &(br, bc) in &[(1, 1), (2, 2), (2, 3), (4, 4), (3, 2)] {
            let b = Bcsr::from_csr(&a, br, bc).unwrap();
            assert_eq!(b.to_csr(), a, "block {br}x{bc}");
        }
    }

    #[test]
    fn one_by_one_blocks_store_no_padding() {
        let a = sample();
        let b = Bcsr::from_csr(&a, 1, 1).unwrap();
        assert_eq!(b.nnz_stored(), a.nnz());
        assert_eq!(b.fill_ratio(), 1.0);
    }

    #[test]
    fn spmv_matches_csr() {
        let a = sample();
        let x: Vec<f64> = (0..6).map(|i| i as f64 * 0.5 - 1.0).collect();
        let want = a.spmv(&x);
        for &(br, bc) in &[(2, 2), (3, 3), (2, 4)] {
            let b = Bcsr::from_csr(&a, br, bc).unwrap();
            let got = b.spmv(&x);
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn padding_grows_with_block_size() {
        let a = sample();
        let b2 = Bcsr::from_csr(&a, 2, 2).unwrap();
        let b4 = Bcsr::from_csr(&a, 4, 4).unwrap();
        assert!(b4.fill_ratio() <= b2.fill_ratio());
        assert_eq!(b2.nnz_logical(), a.nnz());
    }

    #[test]
    fn rejects_zero_block() {
        assert!(Bcsr::from_csr(&sample(), 0, 2).is_err());
        assert!(Bcsr::from_csr(&sample(), 2, 0).is_err());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let a = sample();
        let b = Bcsr::from_csr(&a, 2, 2).unwrap();
        assert!(b.is_verified());
        let rebuilt = Bcsr::from_parts(
            b.rows(),
            b.cols(),
            2,
            2,
            b.block_row_ptr().to_vec(),
            b.block_col_ind().to_vec(),
            b.values().to_vec(),
            b.nnz_logical(),
        )
        .unwrap();
        assert_eq!(rebuilt, b);
        assert!(rebuilt.is_verified());
    }

    #[test]
    fn unchecked_parts_validate_lazily_with_typed_errors() {
        let cases: Vec<Bcsr<f64>> = vec![
            // Zero block dimension.
            Bcsr::from_parts_unchecked(4, 4, 0, 2, vec![0, 0, 0], vec![], vec![], 0),
            // Non-monotone block_row_ptr.
            Bcsr::from_parts_unchecked(4, 4, 2, 2, vec![0, 2, 1], vec![0, 1], vec![0.0; 8], 2),
            // Unsorted block columns within a block row.
            Bcsr::from_parts_unchecked(2, 4, 2, 2, vec![0, 2], vec![1, 0], vec![0.0; 8], 2),
            // Block column out of bounds.
            Bcsr::from_parts_unchecked(2, 4, 2, 2, vec![0, 1], vec![9], vec![0.0; 4], 1),
            // Tile storage disagrees with block count.
            Bcsr::from_parts_unchecked(2, 4, 2, 2, vec![0, 1], vec![0], vec![0.0; 3], 1),
            // nnz_logical larger than anything stored.
            Bcsr::from_parts_unchecked(2, 4, 2, 2, vec![0, 1], vec![0], vec![0.0; 4], 99),
        ];
        for (i, m) in cases.iter().enumerate() {
            assert!(!m.is_verified(), "case {i} must start unverified");
            let err = m.validate().expect_err("case must fail validation");
            assert!(
                matches!(
                    err,
                    MatrixError::InvalidStructure(_) | MatrixError::IndexOutOfBounds { .. }
                ),
                "case {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn ragged_edges_handled() {
        // 5x6 with 4x4 blocks: bottom/right blocks are clipped.
        let a = sample();
        let b = Bcsr::from_csr(&a, 4, 4).unwrap();
        assert_eq!(b.to_dense(), a.to_dense());
    }

    #[test]
    fn storage_counts_padding() {
        let a = sample();
        let b = Bcsr::from_csr(&a, 2, 2).unwrap();
        assert_eq!(
            b.storage_bytes(),
            4 * b.block_row_ptr().len() + 4 * b.num_blocks() + 8 * b.nnz_stored()
        );
    }
}
