//! The row-operand abstraction: one trait every matrix format implements
//! so the kernel stack can dispatch format-agnostically.
//!
//! Historically each kernel family (native serial, parallel, executor
//! `try_*`) re-stated per-format row access: a `match` over CSR / BCSR /
//! SMASH in every SpMV and SpMM body. [`RowRead`] collapses those into a
//! single definition. A format describes itself as a sequence of
//! **granules** — contiguous bands of output rows that must be computed
//! together (individual rows for CSR and row-major SMASH, block rows for
//! BCSR) — and provides the exact serial loop body for any contiguous
//! granule range. Everything else is generic:
//!
//! * [`spmv_rows`] / [`spmm_dense_rows`] run the whole granule range in
//!   order — these *are* the serial kernels;
//! * `smash_parallel::par_spmv_rows` / `par_spmm_dense_rows` partition the
//!   granules by weight and run each range on a worker, writing disjoint
//!   output slices — bit-identical to the serial drivers at every thread
//!   count because each granule is computed by the same single body.
//!
//! The granule decomposition is what makes the bit-identity contract
//! composable: a parallel driver may cut the granule sequence anywhere,
//! and every cut yields the same per-row arithmetic as the uncut serial
//! sweep.
//!
//! ```
//! use smash_matrix::{generators, spmv_rows, RowRead};
//!
//! let a = generators::uniform(64, 48, 400, 7);
//! let x = vec![1.0f64; 48];
//! let mut y = vec![0.0f64; 64];
//! spmv_rows(&a, &x, &mut y);
//!
//! // The generic driver is the serial CSR kernel: row i is row_dot(i, x).
//! for i in 0..64 {
//!     assert_eq!(y[i], a.row_dot(i, &x));
//! }
//! // Per-row (cols, vals) access works through the same trait.
//! let (mut cols, mut vals) = (Vec::new(), Vec::new());
//! a.row_into(3, &mut cols, &mut vals);
//! assert_eq!((cols.as_slice(), vals.as_slice()), a.row(3));
//! ```

use std::ops::Range;

use crate::bcsr::Bcsr;
use crate::csr::Csr;
use crate::dense::Dense;
use crate::scalar::Scalar;

/// Row-granular read access to a sparse matrix, the operand interface of
/// the kernel stack.
///
/// A format partitions its output rows into `granules()` contiguous
/// granules; granule `g` covers rows `granule_row(g)..granule_row(g + 1)`.
/// The two `*_granules` methods compute the format's exact serial kernel
/// body over any contiguous granule range, writing **every** element of
/// the output slice (either by assignment or by zero-fill + accumulate).
/// That contract is what lets serial and parallel drivers share one
/// definition per format and stay bit-identical to each other.
pub trait RowRead<T: Scalar>: Sync {
    /// Number of (logical) rows.
    fn rows(&self) -> usize;

    /// Number of (logical) columns.
    fn cols(&self) -> usize;

    /// Stored work items — true non-zeros for CSR, stored (padded) values
    /// for the blocked formats — the quantity dispatch thresholds weigh.
    fn stored_work(&self) -> usize;

    /// Number of scheduling granules. Rows for CSR and row-major SMASH,
    /// block rows for BCSR.
    fn granules(&self) -> usize;

    /// Load-balancing weight of granule `g` (its stored entry count).
    /// The parallel drivers partition granules by this weight; it must be
    /// a pure function of the matrix so partitions are deterministic.
    fn granule_weight(&self, g: usize) -> u64;

    /// First output row covered by granule `g`; `granule_row(granules())`
    /// is the total number of rows the granules cover (equal to `rows()`
    /// except for degenerate empty decompositions, whose uncovered tail
    /// the drivers zero-fill).
    fn granule_row(&self, g: usize) -> usize;

    /// Copies row `i`'s sparse entries into `cols`/`vals` (cleared first),
    /// columns strictly increasing. Blocked formats emit their *logical*
    /// row — explicit padding zeros are skipped, exactly as `decode()` /
    /// `to_csr()` would reproduce the row.
    fn row_into(&self, i: usize, cols: &mut Vec<u32>, vals: &mut Vec<T>);

    /// Computes `y = A·x` restricted to the granule range `g`. `y` covers
    /// exactly rows `granule_row(g.start)..granule_row(g.end)` and every
    /// element is written. The arithmetic must be identical to this
    /// format's serial kernel over the same rows.
    fn spmv_granules(&self, g: Range<usize>, x: &[T], y: &mut [T]);

    /// Computes `C = A·B` (B dense, row-major) restricted to the granule
    /// range `g`. `c` is the row-major slab of `C` covering rows
    /// `granule_row(g.start)..granule_row(g.end)` (length
    /// `rows_covered * b.cols()`); every element is written.
    fn spmm_dense_granules(&self, g: Range<usize>, b: &Dense<T>, c: &mut [T]);
}

impl<T: Scalar> RowRead<T> for Csr<T> {
    fn rows(&self) -> usize {
        Csr::rows(self)
    }

    fn cols(&self) -> usize {
        Csr::cols(self)
    }

    fn stored_work(&self) -> usize {
        self.nnz()
    }

    fn granules(&self) -> usize {
        Csr::rows(self)
    }

    fn granule_weight(&self, g: usize) -> u64 {
        let ptr = self.row_ptr();
        u64::from(ptr[g + 1] - ptr[g])
    }

    fn granule_row(&self, g: usize) -> usize {
        g
    }

    fn row_into(&self, i: usize, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        cols.clear();
        vals.clear();
        let (rc, rv) = self.row(i);
        cols.extend_from_slice(rc);
        vals.extend_from_slice(rv);
    }

    fn spmv_granules(&self, g: Range<usize>, x: &[T], y: &mut [T]) {
        let lo = g.start;
        for i in g {
            y[i - lo] = self.row_dot(i, x);
        }
    }

    fn spmm_dense_granules(&self, g: Range<usize>, b: &Dense<T>, c: &mut [T]) {
        let n = b.cols();
        let lo = g.start;
        for i in g {
            self.row_spmm_dense(i, b, &mut c[(i - lo) * n..(i - lo + 1) * n]);
        }
    }
}

impl<T: Scalar> RowRead<T> for Bcsr<T> {
    fn rows(&self) -> usize {
        Bcsr::rows(self)
    }

    fn cols(&self) -> usize {
        Bcsr::cols(self)
    }

    fn stored_work(&self) -> usize {
        self.nnz_stored()
    }

    fn granules(&self) -> usize {
        self.num_block_rows()
    }

    fn granule_weight(&self, g: usize) -> u64 {
        let ptr = self.block_row_ptr();
        u64::from(ptr[g + 1] - ptr[g])
    }

    fn granule_row(&self, g: usize) -> usize {
        let (br, _) = self.block_shape();
        (g * br).min(Bcsr::rows(self))
    }

    fn row_into(&self, i: usize, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        cols.clear();
        vals.clear();
        let (br, bc) = self.block_shape();
        let bi = i / br;
        let lr = i % br;
        let ptr = self.block_row_ptr();
        for p in ptr[bi] as usize..ptr[bi + 1] as usize {
            let cbase = self.block_col_ind()[p] as usize * bc;
            let block = &self.values()[p * br * bc..(p + 1) * br * bc];
            for lc in 0..bc {
                let col = cbase + lc;
                if col >= Bcsr::cols(self) {
                    break;
                }
                let v = block[lr * bc + lc];
                if !v.is_zero() {
                    cols.push(col as u32);
                    vals.push(v);
                }
            }
        }
    }

    fn spmv_granules(&self, g: Range<usize>, x: &[T], y: &mut [T]) {
        let (br, _) = self.block_shape();
        let rows = Bcsr::rows(self);
        let row_lo = (g.start * br).min(rows);
        y.fill(T::ZERO);
        for bi in g {
            let ylo = bi * br - row_lo;
            let yhi = ((bi + 1) * br).min(rows) - row_lo;
            self.block_row_spmv(bi, x, &mut y[ylo..yhi]);
        }
    }

    fn spmm_dense_granules(&self, g: Range<usize>, b: &Dense<T>, c: &mut [T]) {
        let (br, _) = self.block_shape();
        let rows = Bcsr::rows(self);
        let n = b.cols();
        let row_lo = (g.start * br).min(rows);
        c.fill(T::ZERO);
        for bi in g {
            let lo = bi * br - row_lo;
            let hi = ((bi + 1) * br).min(rows) - row_lo;
            self.block_row_spmm_dense(bi, b, &mut c[lo * n..hi * n]);
        }
    }
}

/// Serial `y = A·x` over any [`RowRead`] operand — *the* serial SpMV body
/// of the kernel stack. Runs every granule in order, then zero-fills any
/// rows an empty granule decomposition leaves uncovered.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn spmv_rows<T: Scalar, R: RowRead<T> + ?Sized>(a: &R, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.cols(), "x length must equal matrix cols");
    assert_eq!(y.len(), a.rows(), "y length must equal matrix rows");
    let g = a.granules();
    let covered = a.granule_row(g);
    a.spmv_granules(0..g, x, &mut y[..covered]);
    y[covered..].fill(T::ZERO);
}

/// Serial `C = A·B` (B dense) over any [`RowRead`] operand — *the* serial
/// dense-SpMM body of the kernel stack.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows() × b.cols()`.
pub fn spmm_dense_rows<T: Scalar, R: RowRead<T> + ?Sized>(a: &R, b: &Dense<T>, c: &mut Dense<T>) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "C rows must equal A rows");
    assert_eq!(c.cols(), b.cols(), "C cols must equal B cols");
    let g = a.granules();
    let covered = a.granule_row(g);
    let n = b.cols();
    let slab = c.as_mut_slice();
    a.spmm_dense_granules(0..g, b, &mut slab[..covered * n]);
    slab[covered * n..].fill(T::ZERO);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn csr_driver_matches_reference_spmv() {
        let a = generators::uniform(40, 30, 250, 11);
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.25 - 3.0).collect();
        let mut y = vec![0.0; 40];
        spmv_rows(&a, &x, &mut y);
        let want: Vec<f64> = (0..40).map(|i| a.row_dot(i, &x)).collect();
        assert_eq!(y, want);
        for (got, approx) in y.iter().zip(a.spmv(&x)) {
            assert!((got - approx).abs() < 1e-9);
        }
    }

    #[test]
    fn bcsr_driver_matches_reference_spmv() {
        let a = generators::banded(37, 41, 5, 160, 3);
        let b = Bcsr::from_csr(&a, 4, 4).unwrap();
        let x: Vec<f64> = (0..41).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; 37];
        spmv_rows(&b, &x, &mut y);
        let mut want = vec![0.0; 37];
        for bi in 0..b.num_block_rows() {
            let (lo, hi) = (bi * 4, ((bi + 1) * 4).min(37));
            b.block_row_spmv(bi, &x, &mut want[lo..hi]);
        }
        assert_eq!(y, want);
        for (got, approx) in y.iter().zip(b.spmv(&x)) {
            assert!((got - approx).abs() < 1e-9);
        }
    }

    #[test]
    fn bcsr_row_into_matches_to_csr() {
        let a = generators::uniform(33, 29, 300, 5);
        let b = Bcsr::from_csr(&a, 4, 2).unwrap();
        let back = b.to_csr();
        let (mut cols, mut vals) = (Vec::new(), Vec::new());
        for i in 0..33 {
            b.row_into(i, &mut cols, &mut vals);
            assert_eq!((cols.as_slice(), vals.as_slice()), back.row(i), "row {i}");
        }
    }

    #[test]
    fn spmm_dense_driver_matches_dense_matmul() {
        let a = generators::uniform(24, 18, 120, 9);
        let b_cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..18).map(|i| (i * 5 + j) as f64 * 0.5 - 2.0).collect())
            .collect();
        let b = Dense::from_columns(18, &b_cols).unwrap();
        let mut c = Dense::zeros(24, 5);
        spmm_dense_rows(&a, &b, &mut c);
        let want = a.to_dense().matmul(&b).unwrap();
        for i in 0..24 {
            for j in 0..5 {
                assert!((c.get(i, j) - want.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn granule_geometry_covers_all_rows() {
        let a = generators::uniform(37, 37, 200, 3);
        let b = Bcsr::from_csr(&a, 4, 4).unwrap();
        assert_eq!(RowRead::<f64>::granule_row(&a, a.granules()), 37);
        assert_eq!(
            RowRead::<f64>::granule_row(&b, RowRead::<f64>::granules(&b)),
            37
        );
    }
}
