//! Runtime-dispatched SIMD bodies for the hot-path reductions.
//!
//! This module is the **single definition** of the accumulation order used by
//! every hot kernel loop in the workspace: [`crate::Csr::row_dot`], the BCSR
//! block dots, `smash_core::block_dot`, and the 8/4/1-wide RHS column tiles
//! driven by [`crate::for_each_rhs_tile`]. Three implementations of that one
//! order exist — AVX2, SSE4.2, and a portable scalar emulation — selected at
//! runtime by [`active`] from CPU feature detection, the `SMASH_SIMD`
//! environment variable, and an in-process test override.
//!
//! # The lane-striped contract
//!
//! Floating-point addition is not associative, so "vectorize the loop" would
//! normally change results and break this repo's web of exact `==`
//! invariants (serial ↔ parallel, SpMDM column ↔ SpMV, auto ↔ explicit).
//! Instead, every implementation — including the scalar one — commits to one
//! fixed reduction shape:
//!
//! 1. **Striping.** Term `k` of a reduction is accumulated into partial sum
//!    `s[k % L]`, where the stripe count `L` is fixed *per element type*
//!    (`f32`: `L = 8`, `f64`: `L = 4`) and does **not** vary with the ISA
//!    that happens to execute the loop.
//! 2. **Fold.** The `L` partial sums are combined by pairwise halving:
//!    `s[l] += s[l + L/2]` for `l < L/2`, then the same on the front half,
//!    down to `s[0]`.
//! 3. **No FMA.** Every body uses a separate multiply and add. The `avx2`
//!    tier requires the FMA feature (it is the natural "AVX2-class CPU"
//!    marker and leaves headroom for fused variants behind a future opt-in),
//!    but fusing today would make AVX2 results differ from SSE4.2/scalar in
//!    the last ulp and break the cross-ISA `==` guarantee.
//!
//! For the column tiles the same contract applies per output column: stripe
//! `l` holds a vector of `w` column partial sums, and the fold adds whole
//! stripes lane-wise, so every output column sees exactly the striped-dot
//! order. A `w = 8` tile computed as two `w = 4` halves (the SSE4.2 path)
//! is bit-identical because columns never interact.
//!
//! Because the *scalar* body emulates the same stripe/fold order, any
//! supported ISA can be compared against any other with exact `==` at any
//! thread count — which is exactly what `tests/simd_identity.rs` pins.
//!
//! The fused references (`Csr::spmv`, `Bcsr::spmv`, `Dense::spmv`,
//! `Dense::matmul`) intentionally keep their simple serial `mul_add` order;
//! kernels are compared against them with tolerances, never `==`.
//!
//! # Dispatch ladder
//!
//! [`active`] resolves, in priority order:
//!
//! 1. the in-process override set by [`set_override`] (tests and benches),
//! 2. the `SMASH_SIMD` environment variable (`auto` / `avx2` / `sse42` /
//!    `scalar`), read once per process; an unknown or unsupported value
//!    panics rather than silently falling back,
//! 3. cached CPU feature detection: `avx2 && fma` → [`Isa::Avx2`], else
//!    `sse4.2` → [`Isa::Sse42`], else [`Isa::Scalar`]. Non-x86_64 targets
//!    always resolve to [`Isa::Scalar`].
//!
//! # Safety and bounds
//!
//! The vector bodies preserve the crate's "invalid matrices panic, never
//! UB" contract. The AVX2 gather paths mask-check every index vector
//! against `x.len()` *before* issuing the gather and fall back to the
//! scalar striped continuation when any lane fails, so an out-of-range
//! column index produces the ordinary slice-index panic instead of an
//! out-of-bounds read. The SSE4.2 paths gather through safe slice indexing.
//! All raw-pointer loads/stores are within bounds proven by the preceding
//! slice operations.

use core::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// An instruction-set tier the kernel bodies can execute under.
///
/// Tiers are ordered from widest to narrowest; [`detected`] picks the first
/// supported one. Every tier computes bit-identical results (see the module
/// docs for the lane-striped contract that makes this true).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Isa {
    /// 256-bit AVX2 bodies (requires the `avx2` **and** `fma` CPU features;
    /// see the module docs for why the bodies still use unfused mul+add).
    Avx2 = 1,
    /// 128-bit SSE4.2 bodies.
    Sse42 = 2,
    /// Portable scalar emulation of the same lane-striped order; the only
    /// tier on non-x86_64 targets.
    Scalar = 3,
}

impl Isa {
    /// Every tier, widest first — the order [`detected`] probes them in.
    pub const ALL: [Isa; 3] = [Isa::Avx2, Isa::Sse42, Isa::Scalar];

    /// Stable lowercase name (`"avx2"` / `"sse42"` / `"scalar"`), as used by
    /// `SMASH_SIMD`, plan rationales, and the calibration-table `meta`
    /// record.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Sse42 => "sse42",
            Isa::Scalar => "scalar",
        }
    }

    /// Parse a [`name`](Isa::name) back into a tier. Returns `None` for
    /// anything else (including `"auto"`, which is not a tier).
    pub fn parse(s: &str) -> Option<Isa> {
        match s {
            "avx2" => Some(Isa::Avx2),
            "sse42" => Some(Isa::Sse42),
            "scalar" => Some(Isa::Scalar),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this tier.
    ///
    /// [`Isa::Scalar`] is supported everywhere. The vector tiers probe CPU
    /// features at runtime (cached by the standard library) and are never
    /// supported on non-x86_64 targets.
    pub fn is_supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Sse42 => std::arch::is_x86_feature_detected!("sse4.2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The widest tier the running CPU supports, detected once and cached.
pub fn detected() -> Isa {
    static DET: OnceLock<Isa> = OnceLock::new();
    *DET.get_or_init(|| {
        for isa in Isa::ALL {
            if isa.is_supported() {
                return isa;
            }
        }
        Isa::Scalar
    })
}

/// `SMASH_SIMD` resolution, computed once per process.
///
/// # Panics
///
/// Panics (once, poisoning every later call) if `SMASH_SIMD` names an
/// unknown tier or one this CPU cannot execute — a mis-typed override must
/// not silently time or test the wrong bodies.
fn resolved() -> Isa {
    static RES: OnceLock<Isa> = OnceLock::new();
    *RES.get_or_init(|| match std::env::var("SMASH_SIMD") {
        Err(_) => detected(),
        Ok(v) if v == "auto" => detected(),
        Ok(v) => {
            let isa = Isa::parse(&v).unwrap_or_else(|| {
                panic!("SMASH_SIMD: unknown value '{v}' (expected auto|avx2|sse42|scalar)")
            });
            assert!(
                isa.is_supported(),
                "SMASH_SIMD={v}: this CPU does not support the {v} tier"
            );
            isa
        }
    })
}

/// In-process override, stored as the `Isa` discriminant (0 = none).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force every subsequent kernel call in this process onto `isa`
/// (`None` clears the override and returns control to `SMASH_SIMD` /
/// detection). Takes effect immediately on all threads.
///
/// This is a **test and bench hook**: it is process-global, so concurrent
/// tests that use it must serialize (see `tests/simd_identity.rs`).
///
/// # Panics
///
/// Panics if `isa` is not supported on the running CPU — forcing an
/// unexecutable tier would be instant `SIGILL`.
pub fn set_override(isa: Option<Isa>) {
    let code = match isa {
        None => 0,
        Some(i) => {
            assert!(
                i.is_supported(),
                "simd::set_override({}): this CPU does not support that tier",
                i.name()
            );
            i as u8
        }
    };
    OVERRIDE.store(code, Ordering::Relaxed);
}

/// The tier every kernel body dispatches on **right now**: the
/// [`set_override`] value if one is set, else the cached `SMASH_SIMD` /
/// detection result. One relaxed atomic load on the fast path.
pub fn active() -> Isa {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Isa::Avx2,
        2 => Isa::Sse42,
        3 => Isa::Scalar,
        _ => resolved(),
    }
}

/// Element types with runtime-dispatched SIMD reduction bodies.
///
/// This is a supertrait of [`crate::Scalar`]; the four methods are the only
/// reduction shapes the hot kernels need, and every implementation follows
/// the module-level lane-striped contract, so results are bit-identical
/// across [`Isa`] tiers.
pub trait SimdElem: Copy + Sized + 'static {
    /// Stripe count `L` of the accumulation contract for this type —
    /// **fixed per type**, independent of the executing ISA (`f32`: 8,
    /// `f64`: 4).
    const LANES: usize;

    /// Indexed dot product `Σₖ vals[k] * x[cols[k]]` in lane-striped order.
    ///
    /// Extra entries in the longer of `cols`/`vals` are ignored (zip
    /// semantics). Panics via ordinary slice indexing if any `cols[k]` is
    /// out of range for `x`.
    fn simd_dot_indexed(cols: &[u32], vals: &[Self], x: &[Self]) -> Self;

    /// Contiguous dot product `Σₖ a[k] * b[k]` (zip semantics) in
    /// lane-striped order.
    fn simd_dot_contiguous(a: &[Self], b: &[Self]) -> Self;

    /// Sparse-row × dense-RHS column tile, **assigning**
    /// `out[j0 + c] = Σₖ vals[k] * bdata[cols[k] * stride + j0 + c]` for
    /// `c < w` in lane-striped order. `w` must be ≤ 8 (the widest tile
    /// [`crate::for_each_rhs_tile`] emits). Panics via slice indexing when
    /// a row index or the tile range is out of bounds for `bdata`.
    fn simd_row_tile(
        cols: &[u32],
        vals: &[Self],
        bdata: &[Self],
        stride: usize,
        j0: usize,
        w: usize,
        out: &mut [Self],
    );

    /// Dense-block × dense-RHS column tile, **accumulating**
    /// `out[j0 + c] += Σₖ vals[k] * bdata[(cbase + k) * stride + j0 + c]`
    /// for `c < w` in lane-striped order. `w` must be ≤ 8.
    fn simd_axpy_tile(
        vals: &[Self],
        bdata: &[Self],
        stride: usize,
        cbase: usize,
        j0: usize,
        w: usize,
        out: &mut [Self],
    );
}

/// Minimal arithmetic bound for the private scalar contract bodies.
trait Lane: Copy + Default + core::ops::AddAssign + core::ops::Mul<Output = Self> {}
impl Lane for f32 {}
impl Lane for f64 {}

/// Pairwise-halving fold of the stripe array — step 2 of the contract.
fn fold<T: Lane, const L: usize>(mut s: [T; L]) -> T {
    let mut width = L;
    while width > 1 {
        let half = width / 2;
        let (lo, hi) = s.split_at_mut(half);
        for (d, &v) in lo.iter_mut().zip(hi.iter()) {
            *d += v;
        }
        width = half;
    }
    s[0]
}

/// Scalar emulation of the striped indexed dot.
fn dot_indexed_striped<T: Lane, const L: usize>(cols: &[u32], vals: &[T], x: &[T]) -> T {
    let mut s = [T::default(); L];
    for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
        s[k % L] += v * x[c as usize];
    }
    fold(s)
}

/// Scalar emulation of the striped contiguous dot.
fn dot_seq_striped<T: Lane, const L: usize>(a: &[T], b: &[T]) -> T {
    let mut s = [T::default(); L];
    for (k, (&av, &bv)) in a.iter().zip(b).enumerate() {
        s[k % L] += av * bv;
    }
    fold(s)
}

/// Lane-wise pairwise fold of the tile stripe matrix down into `acc[0]`.
fn fold_tile<T: Lane, const L: usize>(acc: &mut [[T; 8]; L], w: usize) {
    let mut width = L;
    while width > 1 {
        let half = width / 2;
        let (lo, hi) = acc.split_at_mut(half);
        for (dst, src) in lo.iter_mut().zip(hi.iter()) {
            for (d, &v) in dst[..w].iter_mut().zip(&src[..w]) {
                *d += v;
            }
        }
        width = half;
    }
}

/// Scalar emulation of the striped row tile (assigns `out[j0..j0+w]`).
fn row_tile_striped<T: Lane, const L: usize>(
    cols: &[u32],
    vals: &[T],
    bdata: &[T],
    stride: usize,
    j0: usize,
    w: usize,
    out: &mut [T],
) {
    let mut acc = [[T::default(); 8]; L];
    for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
        let base = c as usize * stride + j0;
        let brow = &bdata[base..base + w];
        for (a, &bv) in acc[k % L][..w].iter_mut().zip(brow) {
            *a += v * bv;
        }
    }
    fold_tile(&mut acc, w);
    out[j0..j0 + w].copy_from_slice(&acc[0][..w]);
}

/// Scalar emulation of the striped axpy tile (accumulates into
/// `out[j0..j0+w]`).
fn axpy_tile_striped<T: Lane, const L: usize>(
    vals: &[T],
    bdata: &[T],
    stride: usize,
    cbase: usize,
    j0: usize,
    w: usize,
    out: &mut [T],
) {
    let mut acc = [[T::default(); 8]; L];
    for (k, &v) in vals.iter().enumerate() {
        let base = (cbase + k) * stride + j0;
        let brow = &bdata[base..base + w];
        for (a, &bv) in acc[k % L][..w].iter_mut().zip(brow) {
            *a += v * bv;
        }
    }
    fold_tile(&mut acc, w);
    for (o, &a) in out[j0..j0 + w].iter_mut().zip(&acc[0][..w]) {
        *o += a;
    }
}

macro_rules! impl_simd_elem {
    ($t:ty, $lanes:expr,
     $dot_idx_avx2:ident, $dot_idx_sse42:ident,
     $dot_seq_avx2:ident, $dot_seq_sse42:ident,
     $row8_avx2:ident, $row4_sse42:ident,
     $axpy8_avx2:ident, $axpy4_sse42:ident) => {
        impl SimdElem for $t {
            const LANES: usize = $lanes;

            fn simd_dot_indexed(cols: &[u32], vals: &[Self], x: &[Self]) -> Self {
                // Dots shorter than two full vector chunks go straight to
                // the scalar striped body: vector setup + the stack spill
                // cost more than they save there, and the cutoff is pure
                // perf routing — length is data-independent and every tier
                // produces the same bits, so determinism is unaffected.
                #[cfg(target_arch = "x86_64")]
                if vals.len() >= 2 * $lanes {
                    match active() {
                        // SAFETY: the tier was feature-checked by `active()`'s
                        // resolution chain (detection / validated override).
                        Isa::Avx2 => return unsafe { x86::$dot_idx_avx2(cols, vals, x) },
                        // SAFETY: as above.
                        Isa::Sse42 => return unsafe { x86::$dot_idx_sse42(cols, vals, x) },
                        Isa::Scalar => {}
                    }
                }
                dot_indexed_striped::<$t, $lanes>(cols, vals, x)
            }

            fn simd_dot_contiguous(a: &[Self], b: &[Self]) -> Self {
                // Same short-dot cutoff as `simd_dot_indexed`; SMASH block
                // dots are often only a few elements long.
                #[cfg(target_arch = "x86_64")]
                if a.len() >= 2 * $lanes {
                    match active() {
                        // SAFETY: tier feature-checked by `active()`.
                        Isa::Avx2 => return unsafe { x86::$dot_seq_avx2(a, b) },
                        // SAFETY: as above.
                        Isa::Sse42 => return unsafe { x86::$dot_seq_sse42(a, b) },
                        Isa::Scalar => {}
                    }
                }
                dot_seq_striped::<$t, $lanes>(a, b)
            }

            fn simd_row_tile(
                cols: &[u32],
                vals: &[Self],
                bdata: &[Self],
                stride: usize,
                j0: usize,
                w: usize,
                out: &mut [Self],
            ) {
                #[cfg(target_arch = "x86_64")]
                match active() {
                    Isa::Avx2 => {
                        if w == 8 {
                            // SAFETY: tier feature-checked by `active()`.
                            return unsafe { x86::$row8_avx2(cols, vals, bdata, stride, j0, out) };
                        }
                        if w == 4 {
                            // SAFETY: avx2 implies sse4.2.
                            return unsafe { x86::$row4_sse42(cols, vals, bdata, stride, j0, out) };
                        }
                    }
                    Isa::Sse42 => {
                        if w == 8 {
                            // Two w = 4 halves: columns never interact, so
                            // the per-column order is unchanged.
                            // SAFETY: tier feature-checked by `active()`.
                            unsafe {
                                x86::$row4_sse42(cols, vals, bdata, stride, j0, out);
                                x86::$row4_sse42(cols, vals, bdata, stride, j0 + 4, out);
                            }
                            return;
                        }
                        if w == 4 {
                            // SAFETY: tier feature-checked by `active()`.
                            return unsafe { x86::$row4_sse42(cols, vals, bdata, stride, j0, out) };
                        }
                    }
                    Isa::Scalar => {}
                }
                row_tile_striped::<$t, $lanes>(cols, vals, bdata, stride, j0, w, out)
            }

            fn simd_axpy_tile(
                vals: &[Self],
                bdata: &[Self],
                stride: usize,
                cbase: usize,
                j0: usize,
                w: usize,
                out: &mut [Self],
            ) {
                #[cfg(target_arch = "x86_64")]
                match active() {
                    Isa::Avx2 => {
                        if w == 8 {
                            // SAFETY: tier feature-checked by `active()`.
                            return unsafe {
                                x86::$axpy8_avx2(vals, bdata, stride, cbase, j0, out)
                            };
                        }
                        if w == 4 {
                            // SAFETY: avx2 implies sse4.2.
                            return unsafe {
                                x86::$axpy4_sse42(vals, bdata, stride, cbase, j0, out)
                            };
                        }
                    }
                    Isa::Sse42 => {
                        if w == 8 {
                            // SAFETY: tier feature-checked by `active()`.
                            unsafe {
                                x86::$axpy4_sse42(vals, bdata, stride, cbase, j0, out);
                                x86::$axpy4_sse42(vals, bdata, stride, cbase, j0 + 4, out);
                            }
                            return;
                        }
                        if w == 4 {
                            // SAFETY: tier feature-checked by `active()`.
                            return unsafe {
                                x86::$axpy4_sse42(vals, bdata, stride, cbase, j0, out)
                            };
                        }
                    }
                    Isa::Scalar => {}
                }
                axpy_tile_striped::<$t, $lanes>(vals, bdata, stride, cbase, j0, w, out)
            }
        }
    };
}

impl_simd_elem!(
    f32,
    8,
    dot_idx_f32_avx2,
    dot_idx_f32_sse42,
    dot_seq_f32_avx2,
    dot_seq_f32_sse42,
    row_tile8_f32_avx2,
    row_tile4_f32_sse42,
    axpy_tile8_f32_avx2,
    axpy_tile4_f32_sse42
);
impl_simd_elem!(
    f64,
    4,
    dot_idx_f64_avx2,
    dot_idx_f64_sse42,
    dot_seq_f64_avx2,
    dot_seq_f64_sse42,
    row_tile8_f64_avx2,
    row_tile4_f64_sse42,
    axpy_tile8_f64_avx2,
    axpy_tile4_f64_sse42
);

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The vector bodies. Every function here realizes the module-level
    //! lane-striped contract exactly; none of them use FMA.

    use core::arch::x86_64::*;

    /// Dots: vector-accumulate full-`L` chunks, spill the stripe registers
    /// to a stack array, finish the tail (and any bounds-check bailout)
    /// with the scalar striped continuation, then run the shared scalar
    /// fold. Sharing the spill + scalar fold with the fallback body is what
    /// makes cross-ISA identity trivially auditable.
    use super::fold;

    /// `Σ vals[k] * x[cols[k]]`, f32, AVX2 gather path.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` (checked by
    /// `simd::active()`). Gather lanes are mask-checked against `x.len()`
    /// (clamped to 2³¹ so the signed-index gather cannot wrap) before the
    /// gather issues; any failing lane falls back to the scalar striped
    /// continuation, which panics like ordinary slice indexing.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_idx_f32_avx2(cols: &[u32], vals: &[f32], x: &[f32]) -> f32 {
        let n = cols.len().min(vals.len());
        let limit = (x.len() as u64).min(1 << 31) as u32;
        // Unsigned `idx < limit` via the signed-compare bias trick.
        let lim = _mm256_set1_epi32((limit as i32) ^ i32::MIN);
        let bias = _mm256_set1_epi32(i32::MIN);
        let mut vacc = _mm256_setzero_ps();
        let mut k = 0usize;
        while k + 8 <= n {
            let idx = _mm256_loadu_si256(cols.as_ptr().add(k).cast());
            let ok = _mm256_cmpgt_epi32(lim, _mm256_xor_si256(idx, bias));
            if _mm256_movemask_epi8(ok) != -1 {
                break; // an out-of-range lane: finish scalar (and panic there)
            }
            let xv = _mm256_i32gather_ps::<4>(x.as_ptr(), idx);
            let vv = _mm256_loadu_ps(vals.as_ptr().add(k));
            vacc = _mm256_add_ps(vacc, _mm256_mul_ps(vv, xv));
            k += 8;
        }
        let mut s = [0.0f32; 8];
        _mm256_storeu_ps(s.as_mut_ptr(), vacc);
        for (i, (&c, &v)) in cols[k..n].iter().zip(&vals[k..n]).enumerate() {
            s[(k + i) % 8] += v * x[c as usize];
        }
        fold(s)
    }

    /// `Σ vals[k] * x[cols[k]]`, f64, AVX2 gather path.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`; bounds handling as in
    /// [`dot_idx_f32_avx2`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_idx_f64_avx2(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        let n = cols.len().min(vals.len());
        let limit = (x.len() as u64).min(1 << 31) as u32;
        let lim = _mm_set1_epi32((limit as i32) ^ i32::MIN);
        let bias = _mm_set1_epi32(i32::MIN);
        let mut vacc = _mm256_setzero_pd();
        let mut k = 0usize;
        while k + 4 <= n {
            let idx = _mm_loadu_si128(cols.as_ptr().add(k).cast());
            let ok = _mm_cmpgt_epi32(lim, _mm_xor_si128(idx, bias));
            if _mm_movemask_epi8(ok) != 0xFFFF {
                break;
            }
            let xv = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
            let vv = _mm256_loadu_pd(vals.as_ptr().add(k));
            vacc = _mm256_add_pd(vacc, _mm256_mul_pd(vv, xv));
            k += 4;
        }
        let mut s = [0.0f64; 4];
        _mm256_storeu_pd(s.as_mut_ptr(), vacc);
        for (i, (&c, &v)) in cols[k..n].iter().zip(&vals[k..n]).enumerate() {
            s[(k + i) % 4] += v * x[c as usize];
        }
        fold(s)
    }

    /// `Σ vals[k] * x[cols[k]]`, f32, SSE4.2: safe scalar gathers into two
    /// xmm stripe registers (stripes 0–3 / 4–7).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`. Gathers use safe slice
    /// indexing, so out-of-range columns panic exactly like the scalar body.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn dot_idx_f32_sse42(cols: &[u32], vals: &[f32], x: &[f32]) -> f32 {
        let n = cols.len().min(vals.len());
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut k = 0usize;
        while k + 8 <= n {
            let g0 = [
                x[cols[k] as usize],
                x[cols[k + 1] as usize],
                x[cols[k + 2] as usize],
                x[cols[k + 3] as usize],
            ];
            let g1 = [
                x[cols[k + 4] as usize],
                x[cols[k + 5] as usize],
                x[cols[k + 6] as usize],
                x[cols[k + 7] as usize],
            ];
            let v0 = _mm_loadu_ps(vals.as_ptr().add(k));
            let v1 = _mm_loadu_ps(vals.as_ptr().add(k + 4));
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(v0, _mm_loadu_ps(g0.as_ptr())));
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(v1, _mm_loadu_ps(g1.as_ptr())));
            k += 8;
        }
        let mut s = [0.0f32; 8];
        _mm_storeu_ps(s.as_mut_ptr(), acc0);
        _mm_storeu_ps(s.as_mut_ptr().add(4), acc1);
        for (i, (&c, &v)) in cols[k..n].iter().zip(&vals[k..n]).enumerate() {
            s[(k + i) % 8] += v * x[c as usize];
        }
        fold(s)
    }

    /// `Σ vals[k] * x[cols[k]]`, f64, SSE4.2 (stripes 0–1 / 2–3).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`; gathers use safe slice
    /// indexing.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn dot_idx_f64_sse42(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        let n = cols.len().min(vals.len());
        let mut acc0 = _mm_setzero_pd();
        let mut acc1 = _mm_setzero_pd();
        let mut k = 0usize;
        while k + 4 <= n {
            let g0 = [x[cols[k] as usize], x[cols[k + 1] as usize]];
            let g1 = [x[cols[k + 2] as usize], x[cols[k + 3] as usize]];
            let v0 = _mm_loadu_pd(vals.as_ptr().add(k));
            let v1 = _mm_loadu_pd(vals.as_ptr().add(k + 2));
            acc0 = _mm_add_pd(acc0, _mm_mul_pd(v0, _mm_loadu_pd(g0.as_ptr())));
            acc1 = _mm_add_pd(acc1, _mm_mul_pd(v1, _mm_loadu_pd(g1.as_ptr())));
            k += 4;
        }
        let mut s = [0.0f64; 4];
        _mm_storeu_pd(s.as_mut_ptr(), acc0);
        _mm_storeu_pd(s.as_mut_ptr().add(2), acc1);
        for (i, (&c, &v)) in cols[k..n].iter().zip(&vals[k..n]).enumerate() {
            s[(k + i) % 4] += v * x[c as usize];
        }
        fold(s)
    }

    /// Contiguous `Σ a[k] * b[k]`, f32, AVX2.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`. All pointer loads are
    /// within `min(a.len(), b.len())`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_seq_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut vacc = _mm256_setzero_ps();
        let mut k = 0usize;
        while k + 8 <= n {
            let av = _mm256_loadu_ps(a.as_ptr().add(k));
            let bv = _mm256_loadu_ps(b.as_ptr().add(k));
            vacc = _mm256_add_ps(vacc, _mm256_mul_ps(av, bv));
            k += 8;
        }
        let mut s = [0.0f32; 8];
        _mm256_storeu_ps(s.as_mut_ptr(), vacc);
        for (i, (&av, &bv)) in a[k..n].iter().zip(&b[k..n]).enumerate() {
            s[(k + i) % 8] += av * bv;
        }
        fold(s)
    }

    /// Contiguous `Σ a[k] * b[k]`, f64, AVX2.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`. All pointer loads are
    /// within `min(a.len(), b.len())`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_seq_f64_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let mut vacc = _mm256_setzero_pd();
        let mut k = 0usize;
        while k + 4 <= n {
            let av = _mm256_loadu_pd(a.as_ptr().add(k));
            let bv = _mm256_loadu_pd(b.as_ptr().add(k));
            vacc = _mm256_add_pd(vacc, _mm256_mul_pd(av, bv));
            k += 4;
        }
        let mut s = [0.0f64; 4];
        _mm256_storeu_pd(s.as_mut_ptr(), vacc);
        for (i, (&av, &bv)) in a[k..n].iter().zip(&b[k..n]).enumerate() {
            s[(k + i) % 4] += av * bv;
        }
        fold(s)
    }

    /// Contiguous `Σ a[k] * b[k]`, f32, SSE4.2 (stripes 0–3 / 4–7).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`. All pointer loads are
    /// within `min(a.len(), b.len())`.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn dot_seq_f32_sse42(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut k = 0usize;
        while k + 8 <= n {
            let a0 = _mm_loadu_ps(a.as_ptr().add(k));
            let b0 = _mm_loadu_ps(b.as_ptr().add(k));
            let a1 = _mm_loadu_ps(a.as_ptr().add(k + 4));
            let b1 = _mm_loadu_ps(b.as_ptr().add(k + 4));
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(a0, b0));
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(a1, b1));
            k += 8;
        }
        let mut s = [0.0f32; 8];
        _mm_storeu_ps(s.as_mut_ptr(), acc0);
        _mm_storeu_ps(s.as_mut_ptr().add(4), acc1);
        for (i, (&av, &bv)) in a[k..n].iter().zip(&b[k..n]).enumerate() {
            s[(k + i) % 8] += av * bv;
        }
        fold(s)
    }

    /// Contiguous `Σ a[k] * b[k]`, f64, SSE4.2 (stripes 0–1 / 2–3).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`. All pointer loads are
    /// within `min(a.len(), b.len())`.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn dot_seq_f64_sse42(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm_setzero_pd();
        let mut acc1 = _mm_setzero_pd();
        let mut k = 0usize;
        while k + 4 <= n {
            let a0 = _mm_loadu_pd(a.as_ptr().add(k));
            let b0 = _mm_loadu_pd(b.as_ptr().add(k));
            let a1 = _mm_loadu_pd(a.as_ptr().add(k + 2));
            let b1 = _mm_loadu_pd(b.as_ptr().add(k + 2));
            acc0 = _mm_add_pd(acc0, _mm_mul_pd(a0, b0));
            acc1 = _mm_add_pd(acc1, _mm_mul_pd(a1, b1));
            k += 4;
        }
        let mut s = [0.0f64; 4];
        _mm_storeu_pd(s.as_mut_ptr(), acc0);
        _mm_storeu_pd(s.as_mut_ptr().add(2), acc1);
        for (i, (&av, &bv)) in a[k..n].iter().zip(&b[k..n]).enumerate() {
            s[(k + i) % 4] += av * bv;
        }
        fold(s)
    }

    /// f32 `w = 8` row tile, AVX2: one `__m256` per stripe (8 ymm live).
    /// Named accumulators + a static-index tail keep every stripe in a
    /// register. Assigns `out[j0..j0+8]`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2` and `j0 + 8 <= out.len()`
    /// is *not* assumed — all B-row and `out` accesses go through
    /// bounds-checked slicing before the raw loads/stores.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile8_f32_avx2(
        cols: &[u32],
        vals: &[f32],
        bdata: &[f32],
        stride: usize,
        j0: usize,
        out: &mut [f32],
    ) {
        let n = cols.len().min(vals.len());
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let mut a4 = _mm256_setzero_ps();
        let mut a5 = _mm256_setzero_ps();
        let mut a6 = _mm256_setzero_ps();
        let mut a7 = _mm256_setzero_ps();
        macro_rules! term {
            ($acc:ident, $kk:expr) => {{
                let kk = $kk;
                let base = cols[kk] as usize * stride + j0;
                let brow = &bdata[base..base + 8];
                let vv = _mm256_set1_ps(vals[kk]);
                $acc = _mm256_add_ps($acc, _mm256_mul_ps(vv, _mm256_loadu_ps(brow.as_ptr())));
            }};
        }
        let mut k = 0usize;
        while k + 8 <= n {
            term!(a0, k);
            term!(a1, k + 1);
            term!(a2, k + 2);
            term!(a3, k + 3);
            term!(a4, k + 4);
            term!(a5, k + 5);
            term!(a6, k + 6);
            term!(a7, k + 7);
            k += 8;
        }
        let r = n - k;
        if r > 0 {
            term!(a0, k);
        }
        if r > 1 {
            term!(a1, k + 1);
        }
        if r > 2 {
            term!(a2, k + 2);
        }
        if r > 3 {
            term!(a3, k + 3);
        }
        if r > 4 {
            term!(a4, k + 4);
        }
        if r > 5 {
            term!(a5, k + 5);
        }
        if r > 6 {
            term!(a6, k + 6);
        }
        a0 = _mm256_add_ps(a0, a4);
        a1 = _mm256_add_ps(a1, a5);
        a2 = _mm256_add_ps(a2, a6);
        a3 = _mm256_add_ps(a3, a7);
        a0 = _mm256_add_ps(a0, a2);
        a1 = _mm256_add_ps(a1, a3);
        a0 = _mm256_add_ps(a0, a1);
        _mm256_storeu_ps(out[j0..j0 + 8].as_mut_ptr(), a0);
    }

    /// f32 `w = 8` axpy tile, AVX2 (accumulates into `out[j0..j0+8]`;
    /// B rows are `cbase + k`).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_tile8_f32_avx2(
        vals: &[f32],
        bdata: &[f32],
        stride: usize,
        cbase: usize,
        j0: usize,
        out: &mut [f32],
    ) {
        let n = vals.len();
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        let mut a2 = _mm256_setzero_ps();
        let mut a3 = _mm256_setzero_ps();
        let mut a4 = _mm256_setzero_ps();
        let mut a5 = _mm256_setzero_ps();
        let mut a6 = _mm256_setzero_ps();
        let mut a7 = _mm256_setzero_ps();
        macro_rules! term {
            ($acc:ident, $kk:expr) => {{
                let kk = $kk;
                let base = (cbase + kk) * stride + j0;
                let brow = &bdata[base..base + 8];
                let vv = _mm256_set1_ps(vals[kk]);
                $acc = _mm256_add_ps($acc, _mm256_mul_ps(vv, _mm256_loadu_ps(brow.as_ptr())));
            }};
        }
        let mut k = 0usize;
        while k + 8 <= n {
            term!(a0, k);
            term!(a1, k + 1);
            term!(a2, k + 2);
            term!(a3, k + 3);
            term!(a4, k + 4);
            term!(a5, k + 5);
            term!(a6, k + 6);
            term!(a7, k + 7);
            k += 8;
        }
        let r = n - k;
        if r > 0 {
            term!(a0, k);
        }
        if r > 1 {
            term!(a1, k + 1);
        }
        if r > 2 {
            term!(a2, k + 2);
        }
        if r > 3 {
            term!(a3, k + 3);
        }
        if r > 4 {
            term!(a4, k + 4);
        }
        if r > 5 {
            term!(a5, k + 5);
        }
        if r > 6 {
            term!(a6, k + 6);
        }
        a0 = _mm256_add_ps(a0, a4);
        a1 = _mm256_add_ps(a1, a5);
        a2 = _mm256_add_ps(a2, a6);
        a3 = _mm256_add_ps(a3, a7);
        a0 = _mm256_add_ps(a0, a2);
        a1 = _mm256_add_ps(a1, a3);
        a0 = _mm256_add_ps(a0, a1);
        let dst = &mut out[j0..j0 + 8];
        let sum = _mm256_add_ps(_mm256_loadu_ps(dst.as_ptr()), a0);
        _mm256_storeu_ps(dst.as_mut_ptr(), sum);
    }

    /// f64 `w = 8` row tile, AVX2: 4 stripes × 2 `__m256d` halves
    /// (columns `j0..j0+4` / `j0+4..j0+8`). Assigns `out[j0..j0+8]`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_tile8_f64_avx2(
        cols: &[u32],
        vals: &[f64],
        bdata: &[f64],
        stride: usize,
        j0: usize,
        out: &mut [f64],
    ) {
        let n = cols.len().min(vals.len());
        let mut s0l = _mm256_setzero_pd();
        let mut s0h = _mm256_setzero_pd();
        let mut s1l = _mm256_setzero_pd();
        let mut s1h = _mm256_setzero_pd();
        let mut s2l = _mm256_setzero_pd();
        let mut s2h = _mm256_setzero_pd();
        let mut s3l = _mm256_setzero_pd();
        let mut s3h = _mm256_setzero_pd();
        macro_rules! term {
            ($lo:ident, $hi:ident, $kk:expr) => {{
                let kk = $kk;
                let base = cols[kk] as usize * stride + j0;
                let brow = &bdata[base..base + 8];
                let vv = _mm256_set1_pd(vals[kk]);
                $lo = _mm256_add_pd($lo, _mm256_mul_pd(vv, _mm256_loadu_pd(brow.as_ptr())));
                $hi = _mm256_add_pd(
                    $hi,
                    _mm256_mul_pd(vv, _mm256_loadu_pd(brow.as_ptr().add(4))),
                );
            }};
        }
        let mut k = 0usize;
        while k + 4 <= n {
            term!(s0l, s0h, k);
            term!(s1l, s1h, k + 1);
            term!(s2l, s2h, k + 2);
            term!(s3l, s3h, k + 3);
            k += 4;
        }
        let r = n - k;
        if r > 0 {
            term!(s0l, s0h, k);
        }
        if r > 1 {
            term!(s1l, s1h, k + 1);
        }
        if r > 2 {
            term!(s2l, s2h, k + 2);
        }
        s0l = _mm256_add_pd(s0l, s2l);
        s0h = _mm256_add_pd(s0h, s2h);
        s1l = _mm256_add_pd(s1l, s3l);
        s1h = _mm256_add_pd(s1h, s3h);
        s0l = _mm256_add_pd(s0l, s1l);
        s0h = _mm256_add_pd(s0h, s1h);
        let dst = &mut out[j0..j0 + 8];
        _mm256_storeu_pd(dst.as_mut_ptr(), s0l);
        _mm256_storeu_pd(dst.as_mut_ptr().add(4), s0h);
    }

    /// f64 `w = 8` axpy tile, AVX2 (accumulates; B rows are `cbase + k`).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `avx2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_tile8_f64_avx2(
        vals: &[f64],
        bdata: &[f64],
        stride: usize,
        cbase: usize,
        j0: usize,
        out: &mut [f64],
    ) {
        let n = vals.len();
        let mut s0l = _mm256_setzero_pd();
        let mut s0h = _mm256_setzero_pd();
        let mut s1l = _mm256_setzero_pd();
        let mut s1h = _mm256_setzero_pd();
        let mut s2l = _mm256_setzero_pd();
        let mut s2h = _mm256_setzero_pd();
        let mut s3l = _mm256_setzero_pd();
        let mut s3h = _mm256_setzero_pd();
        macro_rules! term {
            ($lo:ident, $hi:ident, $kk:expr) => {{
                let kk = $kk;
                let base = (cbase + kk) * stride + j0;
                let brow = &bdata[base..base + 8];
                let vv = _mm256_set1_pd(vals[kk]);
                $lo = _mm256_add_pd($lo, _mm256_mul_pd(vv, _mm256_loadu_pd(brow.as_ptr())));
                $hi = _mm256_add_pd(
                    $hi,
                    _mm256_mul_pd(vv, _mm256_loadu_pd(brow.as_ptr().add(4))),
                );
            }};
        }
        let mut k = 0usize;
        while k + 4 <= n {
            term!(s0l, s0h, k);
            term!(s1l, s1h, k + 1);
            term!(s2l, s2h, k + 2);
            term!(s3l, s3h, k + 3);
            k += 4;
        }
        let r = n - k;
        if r > 0 {
            term!(s0l, s0h, k);
        }
        if r > 1 {
            term!(s1l, s1h, k + 1);
        }
        if r > 2 {
            term!(s2l, s2h, k + 2);
        }
        s0l = _mm256_add_pd(s0l, s2l);
        s0h = _mm256_add_pd(s0h, s2h);
        s1l = _mm256_add_pd(s1l, s3l);
        s1h = _mm256_add_pd(s1h, s3h);
        s0l = _mm256_add_pd(s0l, s1l);
        s0h = _mm256_add_pd(s0h, s1h);
        let dst = &mut out[j0..j0 + 8];
        let lo = _mm256_add_pd(_mm256_loadu_pd(dst.as_ptr()), s0l);
        let hi = _mm256_add_pd(_mm256_loadu_pd(dst.as_ptr().add(4)), s0h);
        _mm256_storeu_pd(dst.as_mut_ptr(), lo);
        _mm256_storeu_pd(dst.as_mut_ptr().add(4), hi);
    }

    /// f32 `w = 4` row tile, SSE4.2: one `__m128` per stripe (8 xmm live).
    /// Also used as the `w = 4` body under AVX2 and twice per `w = 8` tile
    /// under SSE4.2. Assigns `out[j0..j0+4]`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn row_tile4_f32_sse42(
        cols: &[u32],
        vals: &[f32],
        bdata: &[f32],
        stride: usize,
        j0: usize,
        out: &mut [f32],
    ) {
        let n = cols.len().min(vals.len());
        let mut a0 = _mm_setzero_ps();
        let mut a1 = _mm_setzero_ps();
        let mut a2 = _mm_setzero_ps();
        let mut a3 = _mm_setzero_ps();
        let mut a4 = _mm_setzero_ps();
        let mut a5 = _mm_setzero_ps();
        let mut a6 = _mm_setzero_ps();
        let mut a7 = _mm_setzero_ps();
        macro_rules! term {
            ($acc:ident, $kk:expr) => {{
                let kk = $kk;
                let base = cols[kk] as usize * stride + j0;
                let brow = &bdata[base..base + 4];
                let vv = _mm_set1_ps(vals[kk]);
                $acc = _mm_add_ps($acc, _mm_mul_ps(vv, _mm_loadu_ps(brow.as_ptr())));
            }};
        }
        let mut k = 0usize;
        while k + 8 <= n {
            term!(a0, k);
            term!(a1, k + 1);
            term!(a2, k + 2);
            term!(a3, k + 3);
            term!(a4, k + 4);
            term!(a5, k + 5);
            term!(a6, k + 6);
            term!(a7, k + 7);
            k += 8;
        }
        let r = n - k;
        if r > 0 {
            term!(a0, k);
        }
        if r > 1 {
            term!(a1, k + 1);
        }
        if r > 2 {
            term!(a2, k + 2);
        }
        if r > 3 {
            term!(a3, k + 3);
        }
        if r > 4 {
            term!(a4, k + 4);
        }
        if r > 5 {
            term!(a5, k + 5);
        }
        if r > 6 {
            term!(a6, k + 6);
        }
        a0 = _mm_add_ps(a0, a4);
        a1 = _mm_add_ps(a1, a5);
        a2 = _mm_add_ps(a2, a6);
        a3 = _mm_add_ps(a3, a7);
        a0 = _mm_add_ps(a0, a2);
        a1 = _mm_add_ps(a1, a3);
        a0 = _mm_add_ps(a0, a1);
        _mm_storeu_ps(out[j0..j0 + 4].as_mut_ptr(), a0);
    }

    /// f32 `w = 4` axpy tile, SSE4.2 (accumulates; B rows are `cbase + k`).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn axpy_tile4_f32_sse42(
        vals: &[f32],
        bdata: &[f32],
        stride: usize,
        cbase: usize,
        j0: usize,
        out: &mut [f32],
    ) {
        let n = vals.len();
        let mut a0 = _mm_setzero_ps();
        let mut a1 = _mm_setzero_ps();
        let mut a2 = _mm_setzero_ps();
        let mut a3 = _mm_setzero_ps();
        let mut a4 = _mm_setzero_ps();
        let mut a5 = _mm_setzero_ps();
        let mut a6 = _mm_setzero_ps();
        let mut a7 = _mm_setzero_ps();
        macro_rules! term {
            ($acc:ident, $kk:expr) => {{
                let kk = $kk;
                let base = (cbase + kk) * stride + j0;
                let brow = &bdata[base..base + 4];
                let vv = _mm_set1_ps(vals[kk]);
                $acc = _mm_add_ps($acc, _mm_mul_ps(vv, _mm_loadu_ps(brow.as_ptr())));
            }};
        }
        let mut k = 0usize;
        while k + 8 <= n {
            term!(a0, k);
            term!(a1, k + 1);
            term!(a2, k + 2);
            term!(a3, k + 3);
            term!(a4, k + 4);
            term!(a5, k + 5);
            term!(a6, k + 6);
            term!(a7, k + 7);
            k += 8;
        }
        let r = n - k;
        if r > 0 {
            term!(a0, k);
        }
        if r > 1 {
            term!(a1, k + 1);
        }
        if r > 2 {
            term!(a2, k + 2);
        }
        if r > 3 {
            term!(a3, k + 3);
        }
        if r > 4 {
            term!(a4, k + 4);
        }
        if r > 5 {
            term!(a5, k + 5);
        }
        if r > 6 {
            term!(a6, k + 6);
        }
        a0 = _mm_add_ps(a0, a4);
        a1 = _mm_add_ps(a1, a5);
        a2 = _mm_add_ps(a2, a6);
        a3 = _mm_add_ps(a3, a7);
        a0 = _mm_add_ps(a0, a2);
        a1 = _mm_add_ps(a1, a3);
        a0 = _mm_add_ps(a0, a1);
        let dst = &mut out[j0..j0 + 4];
        let sum = _mm_add_ps(_mm_loadu_ps(dst.as_ptr()), a0);
        _mm_storeu_ps(dst.as_mut_ptr(), sum);
    }

    /// f64 `w = 4` row tile, SSE4.2: 4 stripes × 2 `__m128d` halves
    /// (columns `j0..j0+2` / `j0+2..j0+4`). Assigns `out[j0..j0+4]`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn row_tile4_f64_sse42(
        cols: &[u32],
        vals: &[f64],
        bdata: &[f64],
        stride: usize,
        j0: usize,
        out: &mut [f64],
    ) {
        let n = cols.len().min(vals.len());
        let mut s0l = _mm_setzero_pd();
        let mut s0h = _mm_setzero_pd();
        let mut s1l = _mm_setzero_pd();
        let mut s1h = _mm_setzero_pd();
        let mut s2l = _mm_setzero_pd();
        let mut s2h = _mm_setzero_pd();
        let mut s3l = _mm_setzero_pd();
        let mut s3h = _mm_setzero_pd();
        macro_rules! term {
            ($lo:ident, $hi:ident, $kk:expr) => {{
                let kk = $kk;
                let base = cols[kk] as usize * stride + j0;
                let brow = &bdata[base..base + 4];
                let vv = _mm_set1_pd(vals[kk]);
                $lo = _mm_add_pd($lo, _mm_mul_pd(vv, _mm_loadu_pd(brow.as_ptr())));
                $hi = _mm_add_pd($hi, _mm_mul_pd(vv, _mm_loadu_pd(brow.as_ptr().add(2))));
            }};
        }
        let mut k = 0usize;
        while k + 4 <= n {
            term!(s0l, s0h, k);
            term!(s1l, s1h, k + 1);
            term!(s2l, s2h, k + 2);
            term!(s3l, s3h, k + 3);
            k += 4;
        }
        let r = n - k;
        if r > 0 {
            term!(s0l, s0h, k);
        }
        if r > 1 {
            term!(s1l, s1h, k + 1);
        }
        if r > 2 {
            term!(s2l, s2h, k + 2);
        }
        s0l = _mm_add_pd(s0l, s2l);
        s0h = _mm_add_pd(s0h, s2h);
        s1l = _mm_add_pd(s1l, s3l);
        s1h = _mm_add_pd(s1h, s3h);
        s0l = _mm_add_pd(s0l, s1l);
        s0h = _mm_add_pd(s0h, s1h);
        let dst = &mut out[j0..j0 + 4];
        _mm_storeu_pd(dst.as_mut_ptr(), s0l);
        _mm_storeu_pd(dst.as_mut_ptr().add(2), s0h);
    }

    /// f64 `w = 4` axpy tile, SSE4.2 (accumulates; B rows are `cbase + k`).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports `sse4.2`; all memory accesses go
    /// through bounds-checked slicing.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn axpy_tile4_f64_sse42(
        vals: &[f64],
        bdata: &[f64],
        stride: usize,
        cbase: usize,
        j0: usize,
        out: &mut [f64],
    ) {
        let n = vals.len();
        let mut s0l = _mm_setzero_pd();
        let mut s0h = _mm_setzero_pd();
        let mut s1l = _mm_setzero_pd();
        let mut s1h = _mm_setzero_pd();
        let mut s2l = _mm_setzero_pd();
        let mut s2h = _mm_setzero_pd();
        let mut s3l = _mm_setzero_pd();
        let mut s3h = _mm_setzero_pd();
        macro_rules! term {
            ($lo:ident, $hi:ident, $kk:expr) => {{
                let kk = $kk;
                let base = (cbase + kk) * stride + j0;
                let brow = &bdata[base..base + 4];
                let vv = _mm_set1_pd(vals[kk]);
                $lo = _mm_add_pd($lo, _mm_mul_pd(vv, _mm_loadu_pd(brow.as_ptr())));
                $hi = _mm_add_pd($hi, _mm_mul_pd(vv, _mm_loadu_pd(brow.as_ptr().add(2))));
            }};
        }
        let mut k = 0usize;
        while k + 4 <= n {
            term!(s0l, s0h, k);
            term!(s1l, s1h, k + 1);
            term!(s2l, s2h, k + 2);
            term!(s3l, s3h, k + 3);
            k += 4;
        }
        let r = n - k;
        if r > 0 {
            term!(s0l, s0h, k);
        }
        if r > 1 {
            term!(s1l, s1h, k + 1);
        }
        if r > 2 {
            term!(s2l, s2h, k + 2);
        }
        s0l = _mm_add_pd(s0l, s2l);
        s0h = _mm_add_pd(s0h, s2h);
        s1l = _mm_add_pd(s1l, s3l);
        s1h = _mm_add_pd(s1h, s3h);
        s0l = _mm_add_pd(s0l, s1l);
        s0h = _mm_add_pd(s0h, s1h);
        let dst = &mut out[j0..j0 + 4];
        let lo = _mm_add_pd(_mm_loadu_pd(dst.as_ptr()), s0l);
        let hi = _mm_add_pd(_mm_loadu_pd(dst.as_ptr().add(2)), s0h);
        _mm_storeu_pd(dst.as_mut_ptr(), lo);
        _mm_storeu_pd(dst.as_mut_ptr().add(2), hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
        }
        assert_eq!(Isa::parse("auto"), None);
        assert_eq!(Isa::parse("neon"), None);
    }

    #[test]
    fn detected_tier_is_supported() {
        assert!(detected().is_supported());
        assert!(Isa::Scalar.is_supported());
    }

    #[test]
    fn fold_is_pairwise_halving() {
        // 8 stripes: ((0+4)+(2+6)) + ((1+5)+(3+7)) under f64 is exact here.
        let s = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        assert_eq!(fold(s), 255.0);
        assert_eq!(fold([3.5f32]), 3.5);
    }

    #[test]
    fn striped_dot_matches_manual_stripes() {
        let cols: Vec<u32> = (0..11).collect();
        let vals: Vec<f32> = (0..11).map(|k| 0.1 + k as f32).collect();
        let x: Vec<f32> = (0..11).map(|c| 1.0 / (1.0 + c as f32)).collect();
        let mut s = [0.0f32; 8];
        for k in 0..11 {
            s[k % 8] += vals[k] * x[k];
        }
        let want = fold(s);
        assert_eq!(dot_indexed_striped::<f32, 8>(&cols, &vals, &x), want);
        assert_eq!(dot_seq_striped::<f32, 8>(&vals, &x), want);
    }

    #[test]
    fn every_supported_isa_matches_scalar_exactly() {
        // Direct body-level check (the full kernel-level matrix lives in
        // tests/simd_identity.rs). Ragged lengths cover chunk tails.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 31, 100] {
            let cols: Vec<u32> = (0..len as u32)
                .map(|k| (k * 7) % len.max(1) as u32)
                .collect();
            let vals: Vec<f64> = (0..len).map(|k| (k as f64) * 0.3 - 1.0).collect();
            let x: Vec<f64> = (0..len).map(|c| 1.0 / (1.3 + c as f64)).collect();
            let want = dot_indexed_striped::<f64, 4>(&cols, &vals, &x);
            let want32 = dot_indexed_striped::<f32, 8>(
                &cols,
                &vals.iter().map(|&v| v as f32).collect::<Vec<_>>(),
                &x.iter().map(|&v| v as f32).collect::<Vec<_>>(),
            );
            for isa in Isa::ALL {
                if !isa.is_supported() {
                    continue;
                }
                set_override(Some(isa));
                assert_eq!(
                    f64::simd_dot_indexed(&cols, &vals, &x),
                    want,
                    "{}",
                    isa.name()
                );
                assert_eq!(
                    f32::simd_dot_indexed(
                        &cols,
                        &vals.iter().map(|&v| v as f32).collect::<Vec<_>>(),
                        &x.iter().map(|&v| v as f32).collect::<Vec<_>>(),
                    ),
                    want32,
                    "{}",
                    isa.name()
                );
                set_override(None);
            }
        }
    }
}
