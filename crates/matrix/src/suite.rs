//! The paper's Table 3 matrix suite, reproduced with seeded synthetic
//! generators.
//!
//! Each [`MatrixSpec`] records the SuiteSparse matrix's published shape
//! (rows, non-zeros) together with the qualitative structure class we use to
//! synthesize it and the per-matrix bitmap configuration `b2.b1.b0` the
//! paper's Figures 10–13 annotate. [`MatrixSpec::generate`] scales the
//! matrix down by a linear factor while *preserving its sparsity* (rows
//! shrink by `scale`, non-zeros by `scale²`), which keeps the behaviour the
//! evaluation depends on (§4.1.2) intact at simulation-friendly sizes.

use crate::{generators, Csr};

/// Qualitative non-zero structure used to synthesize a Table 3 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Structure {
    /// Non-zeros within a band around the diagonal.
    Banded {
        /// Half bandwidth (distance from the diagonal).
        half_bandwidth: usize,
    },
    /// Uniformly scattered non-zeros (low locality of sparsity).
    Uniform,
    /// Runs of consecutive non-zeros within rows.
    Clustered {
        /// Elements per run.
        run: usize,
    },
    /// Fully dense square tiles (FEM/structural matrices).
    BlockDense {
        /// Tile edge length.
        block: usize,
    },
    /// Power-law row degrees (graph/optimization matrices).
    PowerLaw {
        /// Skew exponent; larger is more skewed.
        alpha: f64,
    },
}

/// Bitmap hierarchy configuration in the paper's `b2.b1.b0` notation
/// (compression ratios of Bitmap-2, Bitmap-1 and Bitmap-0, in that order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitmapCfg {
    /// Bitmap-2 compression ratio (level-1 bits per level-2 bit).
    pub b2: u32,
    /// Bitmap-1 compression ratio (level-0 bits per level-1 bit).
    pub b1: u32,
    /// Bitmap-0 compression ratio (matrix elements per level-0 bit; the NZA
    /// block size).
    pub b0: u32,
}

impl BitmapCfg {
    /// Ratios ordered from Bitmap-0 upward, as the encoder consumes them.
    pub fn ratios_low_to_high(&self) -> [u32; 3] {
        [self.b0, self.b1, self.b2]
    }
}

impl std::fmt::Display for BitmapCfg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.b2, self.b1, self.b0)
    }
}

/// One matrix of the paper's Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Paper id, 1–15 (`M1`…`M15`).
    pub id: u8,
    /// SuiteSparse name as printed in Table 3.
    pub name: &'static str,
    /// Rows (the matrices are square).
    pub rows: usize,
    /// Non-zero elements at full scale.
    pub nnz: u64,
    /// Structure class used by the synthetic generator.
    pub structure: Structure,
    /// Paper's per-matrix bitmap configuration (Figures 10–13 annotations).
    pub bitmap_cfg: BitmapCfg,
}

impl MatrixSpec {
    /// `Mi` label as used throughout the paper.
    pub fn label(&self) -> String {
        format!("M{}", self.id)
    }

    /// Sparsity as a percentage (Table 3's rightmost column).
    pub fn sparsity_percent(&self) -> f64 {
        100.0 * self.nnz as f64 / (self.rows as f64 * self.rows as f64)
    }

    /// Rows after linear down-scaling by `scale`.
    pub fn scaled_rows(&self, scale: usize) -> usize {
        (self.rows / scale.max(1)).max(64)
    }

    /// Non-zeros after down-scaling (`scale²`, preserving density).
    pub fn scaled_nnz(&self, scale: usize) -> usize {
        let r = self.scaled_rows(scale) as f64;
        let density = self.nnz as f64 / (self.rows as f64 * self.rows as f64);
        ((r * r * density).round() as usize).max(self.scaled_rows(scale).min(256))
    }

    /// Synthesizes the matrix at the given linear `scale` (1 = full size).
    ///
    /// The result is square with [`MatrixSpec::scaled_rows`] rows and
    /// approximately [`MatrixSpec::scaled_nnz`] non-zeros; its density
    /// matches Table 3's sparsity column at every scale.
    pub fn generate(&self, scale: usize, seed: u64) -> Csr<f64> {
        let n = self.scaled_rows(scale);
        let nnz = self.scaled_nnz(scale);
        let seed = seed ^ (self.id as u64) << 32;
        match self.structure {
            Structure::Banded { half_bandwidth } => {
                // Keep the band wide enough to hold the target density.
                let hb = half_bandwidth.max(nnz.div_ceil(2 * n)).min(n / 2);
                generators::banded(n, n, hb, nnz, seed)
            }
            Structure::Uniform => generators::uniform(n, n, nnz, seed),
            Structure::Clustered { run } => generators::clustered(n, n, nnz, run, seed),
            Structure::BlockDense { block } => generators::block_dense(n, n, nnz, block, seed),
            Structure::PowerLaw { alpha } => generators::power_law(n, n, nnz, alpha, seed),
        }
    }
}

/// The 15 matrices of Table 3 in paper order (ascending sparsity), with
/// their Figures 10–13 bitmap configurations.
pub fn paper_suite() -> Vec<MatrixSpec> {
    let cfg = |b2, b1, b0| BitmapCfg { b2, b1, b0 };
    vec![
        MatrixSpec {
            id: 1,
            name: "descriptor_xingo6u",
            rows: 20_738,
            nnz: 73_916,
            structure: Structure::Banded { half_bandwidth: 24 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 2,
            name: "g7jac060sc",
            rows: 17_730,
            nnz: 183_325,
            structure: Structure::Clustered { run: 4 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 3,
            name: "Trefethen_20000",
            rows: 20_000,
            nnz: 554_466,
            structure: Structure::Banded { half_bandwidth: 64 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 4,
            name: "IG5-16",
            rows: 18_846,
            nnz: 588_326,
            structure: Structure::Uniform,
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 5,
            name: "TSOPF_RS_b162_c3",
            rows: 15_374,
            nnz: 610_299,
            structure: Structure::BlockDense { block: 8 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 6,
            name: "ns3Da",
            rows: 20_414,
            nnz: 1_679_599,
            structure: Structure::Clustered { run: 8 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 7,
            name: "tsyl201",
            rows: 20_685,
            nnz: 2_454_957,
            structure: Structure::BlockDense { block: 8 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 8,
            name: "pkustk07",
            rows: 16_860,
            nnz: 2_418_804,
            structure: Structure::BlockDense { block: 8 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 9,
            name: "ramage02",
            rows: 16_830,
            nnz: 2_866_352,
            structure: Structure::Clustered { run: 8 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 10,
            name: "pattern1",
            rows: 19_242,
            nnz: 9_323_432,
            structure: Structure::Clustered { run: 3 },
            bitmap_cfg: cfg(16, 4, 2),
        },
        MatrixSpec {
            id: 11,
            name: "gupta3",
            rows: 16_783,
            nnz: 9_323_427,
            structure: Structure::PowerLaw { alpha: 1.1 },
            bitmap_cfg: cfg(2, 4, 2),
        },
        MatrixSpec {
            id: 12,
            name: "nd3k",
            rows: 9_000,
            nnz: 3_279_690,
            structure: Structure::BlockDense { block: 16 },
            bitmap_cfg: cfg(8, 4, 2),
        },
        MatrixSpec {
            id: 13,
            name: "human_gene1",
            rows: 22_283,
            nnz: 24_669_643,
            // Gene co-expression networks are modular: short runs of
            // adjacent non-zeros, but low locality overall (the paper's
            // Fig. 19 discussion singles M13 out for low locality).
            structure: Structure::Clustered { run: 3 },
            bitmap_cfg: cfg(8, 4, 2),
        },
        MatrixSpec {
            id: 14,
            name: "exdata_1",
            rows: 6_001,
            nnz: 2_269_500,
            structure: Structure::BlockDense { block: 32 },
            bitmap_cfg: cfg(2, 4, 2),
        },
        MatrixSpec {
            id: 15,
            name: "human_gene2",
            rows: 14_340,
            nnz: 18_068_388,
            structure: Structure::Clustered { run: 3 },
            bitmap_cfg: cfg(8, 4, 2),
        },
    ]
}

/// Generates the whole suite at a given linear scale.
pub fn generate_suite(scale: usize, seed: u64) -> Vec<(MatrixSpec, Csr<f64>)> {
    paper_suite()
        .into_iter()
        .map(|spec| {
            let m = spec.generate(scale, seed);
            (spec, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_matrices_in_sparsity_order() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 15);
        for w in suite.windows(2) {
            // Table 3 is sorted by ascending sparsity; allow the two
            // near-ties (M7/M8, M10/M11 use the paper's printed order).
            assert!(
                w[0].sparsity_percent() <= w[1].sparsity_percent() * 1.25,
                "{} vs {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn sparsity_matches_table3_column() {
        let suite = paper_suite();
        // Table 3 prints M13 as 4.97% and M15 as 8.79%.
        let m13 = &suite[12];
        assert!((m13.sparsity_percent() - 4.97).abs() < 0.05);
        let m15 = &suite[14];
        assert!((m15.sparsity_percent() - 8.79).abs() < 0.05);
    }

    #[test]
    fn scaling_preserves_density() {
        let spec = &paper_suite()[9]; // pattern1, 2.52%
        let m = spec.generate(32, 7);
        let measured = 100.0 * m.nnz() as f64 / (m.rows() as f64 * m.cols() as f64);
        assert!(
            (measured - spec.sparsity_percent()).abs() < 0.5,
            "measured {measured}, want {}",
            spec.sparsity_percent()
        );
    }

    #[test]
    fn bitmap_configs_match_paper_labels() {
        let suite = paper_suite();
        assert_eq!(suite[0].bitmap_cfg.to_string(), "16.4.2"); // M1.16.4.2
        assert_eq!(suite[10].bitmap_cfg.to_string(), "2.4.2"); // M11.2.4.2
        assert_eq!(suite[11].bitmap_cfg.to_string(), "8.4.2"); // M12.8.4.2
        assert_eq!(suite[13].bitmap_cfg.to_string(), "2.4.2"); // M14.2.4.2
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = &paper_suite()[1];
        assert_eq!(spec.generate(64, 3), spec.generate(64, 3));
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(paper_suite()[4].label(), "M5");
    }

    #[test]
    fn generate_suite_small_scale_runs() {
        let suite = generate_suite(128, 1);
        assert_eq!(suite.len(), 15);
        for (spec, m) in &suite {
            assert!(m.nnz() > 0, "{} is empty", spec.name);
            assert_eq!(m.rows(), m.cols());
        }
    }
}
