//! Seeded synthetic sparse-matrix generators.
//!
//! The SMASH evaluation depends on two workload properties: *sparsity* (the
//! fraction of non-zeros, Table 3) and the *distribution of the non-zeros*
//! (§4.1.2, §7.2.3). These generators control both explicitly, standing in
//! for the SuiteSparse inputs the paper used (see DESIGN.md substitution
//! table). All generators are deterministic in their `seed`.

use crate::{Coo, Csr, Dense, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Draws a non-zero value; positive and bounded away from zero so kernels
/// never cancel an entry to exact zero.
fn draw_value(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.1..1.0)
}

/// Deterministic dense right-hand-side batch for the batched (sparse ×
/// dense) kernels: every entry is bounded away from zero, varied across
/// both rows and columns (so column mix-ups cannot cancel), and derived
/// from the same `f64` pattern at every precision — `dense_batch::<f32>`
/// is the entry-wise truncation of `dense_batch::<f64>`, letting
/// mixed-precision tests compare like against like.
///
/// # Example
///
/// ```
/// let b = smash_matrix::generators::dense_batch::<f64>(16, 4, 5);
/// assert_eq!((b.rows(), b.cols()), (16, 4));
/// assert!(b.as_slice().iter().all(|&v| v >= 0.25));
/// ```
pub fn dense_batch<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Dense<T> {
    let mut b = Dense::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let v = 0.25 + ((i * 31 + j * 17 + seed as usize) % 89) as f64 / 89.0;
            b.set(i, j, T::from_f64(v));
        }
    }
    b
}

/// Inserts up to `nnz` distinct random positions produced by `sample`.
///
/// Gives up adding a particular draw after repeated collisions, so the
/// resulting matrix may have slightly fewer than `nnz` entries when the
/// requested count approaches the matrix capacity.
fn fill_distinct(
    coo: &mut Coo<f64>,
    nnz: usize,
    rng: &mut StdRng,
    mut sample: impl FnMut(&mut StdRng) -> (usize, usize),
) {
    let capacity = coo.rows() * coo.cols();
    let target = nnz.min(capacity);
    let mut seen: HashSet<u64> = HashSet::with_capacity(target * 2);
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(20).max(1024);
    while seen.len() < target && attempts < max_attempts {
        attempts += 1;
        let (r, c) = sample(rng);
        let key = (r as u64) * coo.cols() as u64 + c as u64;
        if seen.insert(key) {
            let v = draw_value(rng);
            coo.push(r, c, v);
        }
    }
}

/// Uniformly random non-zero positions (the "low locality of sparsity"
/// extreme; models matrices like `human_gene1/2` where non-zeros do not
/// cluster).
///
/// # Example
///
/// ```
/// let m = smash_matrix::generators::uniform(100, 100, 500, 7);
/// assert!(m.nnz() >= 490 && m.nnz() <= 500);
/// ```
pub fn uniform(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(rows, cols, nnz);
    fill_distinct(&mut coo, nnz, &mut rng, |rng| {
        (rng.gen_range(0..rows), rng.gen_range(0..cols))
    });
    coo.compress();
    Csr::from_coo(&coo)
}

/// Band matrix: non-zeros within `half_bandwidth` of the diagonal, filled
/// until roughly `nnz` entries exist (models `Trefethen_20000`-style
/// operators).
pub fn banded(rows: usize, cols: usize, half_bandwidth: usize, nnz: usize, seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(rows, cols, nnz);
    // Always populate the main diagonal first: band operators are full-rank.
    let diag = rows.min(cols);
    for i in 0..diag {
        let v = draw_value(&mut rng);
        coo.push(i, i, v);
    }
    let remaining = nnz.saturating_sub(diag);
    fill_distinct(&mut coo, remaining, &mut rng, |rng| {
        let r = rng.gen_range(0..rows);
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth + 1).min(cols);
        (r, rng.gen_range(lo..hi))
    });
    coo.compress();
    Csr::from_coo(&coo)
}

/// Clustered non-zeros: runs of `run_len` consecutive elements within a row
/// (the "high locality of sparsity" regime that favours blocked formats and
/// large SMASH Bitmap-0 ratios; models FEM matrices like `ns3Da`,
/// `ramage02`).
pub fn clustered(rows: usize, cols: usize, nnz: usize, run_len: usize, seed: u64) -> Csr<f64> {
    assert!(run_len > 0, "run length must be non-zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(rows, cols, nnz);
    let mut seen: HashSet<u64> = HashSet::with_capacity(nnz * 2);
    let mut attempts = 0usize;
    let capacity = rows * cols;
    let target = nnz.min(capacity);
    while seen.len() < target && attempts < target.saturating_mul(20).max(1024) {
        attempts += 1;
        let r = rng.gen_range(0..rows);
        let run = run_len.min(cols);
        let start = rng.gen_range(0..cols.saturating_sub(run - 1).max(1));
        for c in start..(start + run).min(cols) {
            if seen.len() >= target {
                break;
            }
            let key = (r as u64) * cols as u64 + c as u64;
            if seen.insert(key) {
                let v = draw_value(&mut rng);
                coo.push(r, c, v);
            }
        }
    }
    coo.compress();
    Csr::from_coo(&coo)
}

/// Dense sub-blocks scattered over the matrix: `block x block` tiles filled
/// completely (models structural-engineering matrices like `pkustk07`,
/// `tsyl201`, `exdata_1` whose non-zeros come in dense element blocks).
pub fn block_dense(rows: usize, cols: usize, nnz: usize, block: usize, seed: u64) -> Csr<f64> {
    assert!(block > 0, "block must be non-zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let block_r = block.min(rows).max(1);
    let block_c = block.min(cols).max(1);
    let per_block = block_r * block_c;
    let n_blocks = nnz.div_ceil(per_block);
    let brows = rows.div_ceil(block_r);
    let bcols = cols.div_ceil(block_c);
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(n_blocks * 2);
    let mut attempts = 0usize;
    let max_blocks = brows * bcols;
    while chosen.len() < n_blocks.min(max_blocks)
        && attempts < n_blocks.saturating_mul(20).max(1024)
    {
        attempts += 1;
        chosen.insert((rng.gen_range(0..brows), rng.gen_range(0..bcols)));
    }
    let mut coo = Coo::with_capacity(rows, cols, nnz);
    let mut placed = 0usize;
    let mut blocks: Vec<_> = chosen.into_iter().collect();
    blocks.sort_unstable();
    'outer: for (br, bc) in blocks {
        for lr in 0..block_r {
            for lc in 0..block_c {
                if placed >= nnz {
                    break 'outer;
                }
                let (r, c) = (br * block_r + lr, bc * block_c + lc);
                if r < rows && c < cols {
                    let v = draw_value(&mut rng);
                    coo.push(r, c, v);
                    placed += 1;
                }
            }
        }
    }
    coo.compress();
    Csr::from_coo(&coo)
}

/// Power-law row degrees: row `i` receives weight `(i + 1)^-alpha` after a
/// random permutation, columns drawn uniformly (models graph adjacency and
/// optimization matrices like `gupta3` with a few very dense rows).
pub fn power_law(rows: usize, cols: usize, nnz: usize, alpha: f64, seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative weights over rows in a fixed shuffled order.
    let mut order: Vec<usize> = (0..rows).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut cum: Vec<f64> = Vec::with_capacity(rows);
    let mut total = 0.0;
    for k in 0..rows {
        total += (k as f64 + 1.0).powf(-alpha);
        cum.push(total);
    }
    let mut coo = Coo::with_capacity(rows, cols, nnz);
    fill_distinct(&mut coo, nnz, &mut rng, |rng| {
        let t = rng.gen_range(0.0..total);
        let k = cum.partition_point(|&x| x < t).min(rows - 1);
        (order[k], rng.gen_range(0..cols))
    });
    coo.compress();
    Csr::from_coo(&coo)
}

/// Diagonal matrix with the given value on every diagonal element.
pub fn diagonal(n: usize, value: f64) -> Csr<f64> {
    let mut coo = Coo::with_capacity(n, n, n);
    for i in 0..n {
        coo.push(i, i, value);
    }
    Csr::from_coo(&coo)
}

/// Identity matrix.
pub fn identity(n: usize) -> Csr<f64> {
    diagonal(n, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(50, 50, 200, 42);
        let b = uniform(50, 50, 200, 42);
        assert_eq!(a, b);
        let c = uniform(50, 50, 200, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_hits_target_nnz() {
        let a = uniform(200, 200, 1000, 1);
        assert_eq!(a.nnz(), 1000);
    }

    #[test]
    fn uniform_clamps_to_capacity() {
        let a = uniform(4, 4, 100, 1);
        assert!(a.nnz() <= 16);
        assert!(a.nnz() >= 12, "should nearly fill the matrix");
    }

    #[test]
    fn banded_respects_bandwidth() {
        let a = banded(100, 100, 3, 500, 9);
        for (r, c, _) in a.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() <= 3);
        }
        assert!(a.nnz() >= 100, "diagonal must be present");
    }

    #[test]
    fn clustered_has_runs() {
        let a = clustered(100, 100, 600, 8, 5);
        // Average run length should be well above 1 (uniform would be ~1 at
        // 6% density).
        let mut runs = 0usize;
        let mut total = 0usize;
        for r in 0..a.rows() {
            let (cols, _) = a.row(r);
            let mut prev: Option<u32> = None;
            for &c in cols {
                match prev {
                    Some(p) if c == p + 1 => {}
                    _ => runs += 1,
                }
                total += 1;
                prev = Some(c);
            }
        }
        let avg_run = total as f64 / runs.max(1) as f64;
        assert!(avg_run > 3.0, "average run {avg_run} too short");
    }

    #[test]
    fn block_dense_fills_blocks() {
        let a = block_dense(64, 64, 256, 4, 3);
        assert!(a.nnz() >= 240 && a.nnz() <= 256, "nnz = {}", a.nnz());
        // All non-zeros live in fully dense 4x4 tiles (except a possibly
        // partial final tile), so stored BCSR padding should be tiny.
        let b = crate::Bcsr::from_csr(&a, 4, 4).unwrap();
        assert!(b.fill_ratio() > 0.9, "fill ratio {}", b.fill_ratio());
    }

    #[test]
    fn power_law_skews_degrees() {
        let a = power_law(200, 200, 2000, 1.2, 11);
        let mut degrees: Vec<usize> = (0..a.rows()).map(|r| a.row_nnz(r)).collect();
        degrees.sort_unstable_by(|x, y| y.cmp(x));
        let top10: usize = degrees.iter().take(10).sum();
        assert!(
            top10 * 3 > a.nnz(),
            "top-10 rows hold {top10} of {} non-zeros — not skewed enough",
            a.nnz()
        );
    }

    #[test]
    fn identity_spmv_is_identity() {
        let i = identity(10);
        let x: Vec<f64> = (0..10).map(|k| k as f64).collect();
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn generators_produce_valid_csr() {
        // from_parts revalidates the invariants.
        for m in [
            uniform(30, 40, 100, 2),
            banded(30, 40, 2, 80, 2),
            clustered(30, 40, 100, 4, 2),
            block_dense(30, 40, 100, 4, 2),
            power_law(30, 40, 100, 1.0, 2),
        ] {
            Csr::<f64>::from_parts(
                m.rows(),
                m.cols(),
                m.row_ptr().to_vec(),
                m.col_ind().to_vec(),
                m.values().to_vec(),
            )
            .expect("generator output must be structurally valid");
        }
    }
}
