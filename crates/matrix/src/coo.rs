use crate::{Dense, MatrixError, Result, Scalar};

/// Coordinate-format ("triplet") sparse matrix.
///
/// COO is the assembly format: generators and Matrix Market parsing produce
/// COO, which is then converted to CSR/CSC/BCSR/SMASH. Entries may be pushed
/// in any order; [`Coo::compress`] sorts them row-major and sums duplicates.
///
/// # Example
///
/// ```
/// use smash_matrix::Coo;
///
/// let mut m = Coo::<f64>::new(2, 2);
/// m.push(1, 1, 2.0);
/// m.push(0, 0, 1.0);
/// m.push(1, 1, 3.0); // duplicate, summed by compress()
/// m.compress();
/// assert_eq!(m.entries(), &[(0, 0, 1.0), (1, 1, 5.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, T)>,
    compressed: bool,
}

impl<T: Scalar> Coo<T> {
    /// Creates an empty `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
            compressed: true,
        }
    }

    /// Creates an empty matrix with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
            compressed: true,
        }
    }

    /// Appends an entry. Zero values are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is outside the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "entry ({row}, {col}) outside {}x{} matrix",
            self.rows,
            self.cols
        );
        if value.is_zero() {
            return;
        }
        self.entries.push((row as u32, col as u32, value));
        self.compressed = false;
    }

    /// Fallible variant of [`Coo::push`].
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] instead of panicking.
    pub fn try_push(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.push(row, col, value);
        Ok(())
    }

    /// Sorts entries row-major and sums duplicates, dropping entries that
    /// cancel to exactly zero.
    pub fn compress(&mut self) {
        if self.compressed {
            return;
        }
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut out: Vec<(u32, u32, T)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        out.retain(|e| !e.2.is_zero());
        self.entries = out;
        self.compressed = true;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (after [`Coo::compress`], the number of
    /// non-zero elements).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether entries are sorted and duplicate-free.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// The stored `(row, col, value)` triplets.
    pub fn entries(&self) -> &[(u32, u32, T)] {
        &self.entries
    }

    /// Builds a COO matrix from the non-zero entries of a dense matrix.
    pub fn from_dense(dense: &Dense<T>) -> Self {
        let mut coo = Coo::with_capacity(dense.rows(), dense.cols(), dense.nnz());
        for (r, c, v) in dense.iter_nonzero() {
            coo.push(r, c, v);
        }
        coo.compressed = true;
        coo
    }

    /// Expands to a dense matrix (duplicates are summed).
    pub fn to_dense(&self) -> Dense<T> {
        let mut d = Dense::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            let cur = d.get(r as usize, c as usize);
            d.set(r as usize, c as usize, cur + v);
        }
        d
    }

    /// COO footprint in bytes: two 4-byte indices plus one value per entry.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * (8 + std::mem::size_of::<T>())
    }
}

impl<T: Scalar> FromIterator<(usize, usize, T)> for Coo<T> {
    /// Collects triplets into a COO matrix sized to fit the largest indices.
    fn from_iter<I: IntoIterator<Item = (usize, usize, T)>>(iter: I) -> Self {
        let triplets: Vec<_> = iter.into_iter().collect();
        let rows = triplets.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = triplets.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        let mut coo = Coo::with_capacity(rows, cols, triplets.len());
        for (r, c, v) in triplets {
            coo.push(r, c, v);
        }
        coo.compress();
        coo
    }
}

impl<T: Scalar> Extend<(usize, usize, T)> for Coo<T> {
    fn extend<I: IntoIterator<Item = (usize, usize, T)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_ignores_zeros() {
        let mut m = Coo::<f64>::new(2, 2);
        m.push(0, 0, 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn compress_sorts_and_dedups() {
        let mut m = Coo::<f64>::new(3, 3);
        m.push(2, 2, 1.0);
        m.push(0, 1, 2.0);
        m.push(2, 2, 4.0);
        m.compress();
        assert_eq!(m.entries(), &[(0, 1, 2.0), (2, 2, 5.0)]);
        assert!(m.is_compressed());
    }

    #[test]
    fn compress_drops_cancelled_entries() {
        let mut m = Coo::<f64>::new(2, 2);
        m.push(1, 1, 2.0);
        m.push(1, 1, -2.0);
        m.compress();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dense_roundtrip() {
        let mut d = Dense::<f64>::zeros(3, 4);
        d.set(0, 3, 1.5);
        d.set(2, 0, -2.5);
        let coo = Coo::from_dense(&d);
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn try_push_reports_bounds() {
        let mut m = Coo::<f64>::new(2, 2);
        assert!(m.try_push(2, 0, 1.0).is_err());
        assert!(m.try_push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let coo: Coo<f64> = vec![(0, 0, 1.0), (4, 2, 2.0)].into_iter().collect();
        assert_eq!((coo.rows(), coo.cols()), (5, 3));
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut coo = Coo::<f64>::new(4, 4);
        coo.extend(vec![(1, 1, 1.0), (2, 2, 2.0)]);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn storage_bytes_counts_indices_and_values() {
        let mut m = Coo::<f64>::new(2, 2);
        m.push(0, 0, 1.0);
        assert_eq!(m.storage_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_out_of_bounds_panics() {
        Coo::<f64>::new(1, 1).push(1, 0, 1.0);
    }
}
