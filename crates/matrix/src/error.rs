use std::fmt;

/// Errors produced when constructing or converting sparse matrices.
#[derive(Debug)]
#[non_exhaustive]
pub enum MatrixError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand.
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand.
        rhs: (usize, usize),
    },
    /// An entry refers to a position outside the matrix.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// A compressed structure is internally inconsistent (e.g. a row pointer
    /// array that is not monotonically non-decreasing).
    InvalidStructure(String),
    /// A Matrix Market stream could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O operation failed.
    Io(std::io::Error),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "entry ({row}, {col}) is outside a {rows}x{cols} matrix"),
            MatrixError::InvalidStructure(msg) => {
                write!(f, "invalid compressed structure: {msg}")
            }
            MatrixError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            MatrixError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MatrixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatrixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<MatrixError> = vec![
            MatrixError::DimensionMismatch {
                op: "spmv",
                lhs: (3, 4),
                rhs: (5, 1),
            },
            MatrixError::IndexOutOfBounds {
                row: 9,
                col: 0,
                rows: 4,
                cols: 4,
            },
            MatrixError::InvalidStructure("row_ptr not monotone".into()),
            MatrixError::Parse {
                line: 3,
                message: "expected 3 fields".into(),
            },
            MatrixError::Io(std::io::Error::other("x")),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = MatrixError::Io(std::io::Error::other("disk"));
        assert!(e.source().is_some());
    }
}
