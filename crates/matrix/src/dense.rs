use crate::{MatrixError, Result, Scalar};

/// The register-blocked right-hand-side column-tile schedule shared by
/// **every** batched sparse × dense kernel in the workspace: invokes
/// `f(start, width)` for contiguous tiles of width **8** while one fits,
/// then **4**, then **1**, covering `0..n` exactly once.
///
/// This is the single definition of the tiling — `Csr::row_spmm_dense`,
/// `Bcsr::block_row_spmm_dense`, `smash_core::block_axpy_dense` and the
/// instrumented `smash_kernels::spmdm` models all drive their tile loops
/// through it, so the instruction streams the instrumented kernels charge
/// can never diverge from the arithmetic the native kernels perform.
pub fn for_each_rhs_tile(n: usize, mut f: impl FnMut(usize, usize)) {
    let mut j0 = 0usize;
    while n - j0 >= 8 {
        f(j0, 8);
        j0 += 8;
    }
    while n - j0 >= 4 {
        f(j0, 4);
        j0 += 4;
    }
    while j0 < n {
        f(j0, 1);
        j0 += 1;
    }
}

/// The shared accumulating tile body of the blocked batched kernels:
/// multiplies the contiguous values `vals` (logical columns
/// `cbase..cbase + vals.len()`) against every column of `b`, adding into
/// the output row `out` (`out[j] += Σ_k vals[k] * b[cbase + k][j]`),
/// tiled through [`for_each_rhs_tile`].
///
/// Within each tile every column's partial sums run from zero over `vals`
/// in the lane-striped order of [`crate::simd`] and are then added into
/// `out` — the exact per-column order of the corresponding blocked SpMV
/// bodies, which is what keeps `Bcsr::block_row_spmm_dense` and
/// `smash_core::block_axpy_dense` (both one call to this) bit-identical
/// per column to their SpMV twins, under every [`crate::simd`] ISA tier.
///
/// # Panics
///
/// Panics if `out.len() != b.cols()` or `cbase + vals.len() > b.rows()`.
pub fn axpy_dense_tiles<T: Scalar>(vals: &[T], b: &Dense<T>, cbase: usize, out: &mut [T]) {
    assert_eq!(out.len(), b.cols(), "output row length must equal b.cols()");
    let n = b.cols();
    for_each_rhs_tile(n, |j0, w| {
        T::simd_axpy_tile(vals, b.as_slice(), n, cbase, j0, w, out)
    });
}

/// Row-major dense matrix.
///
/// `Dense` is the uncompressed reference representation: every conversion
/// and kernel in the workspace is ultimately validated against it, and the
/// total-compression-ratio experiment (paper Fig. 19) measures compressed
/// formats against its footprint.
///
/// # Example
///
/// ```
/// use smash_matrix::Dense;
///
/// let mut m = Dense::<f64>::zeros(2, 3);
/// m.set(0, 2, 4.5);
/// assert_eq!(m.get(0, 2), 4.5);
/// assert_eq!(m.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidStructure(format!(
                "dense data length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Dense { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The full row-major backing storage, mutably. Parallel kernels split
    /// this into disjoint per-worker row ranges.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies column `j` into a contiguous vector (e.g. to run one
    /// right-hand side of a batched operand through a vector kernel).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols, "column out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Builds a `rows x columns.len()` matrix whose `j`-th column is
    /// `columns[j]` — the natural constructor for a batch of right-hand-side
    /// vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if any column's length
    /// differs from `rows`.
    pub fn from_columns(rows: usize, columns: &[Vec<T>]) -> Result<Self> {
        let n = columns.len();
        let mut m = Dense::zeros(rows, n);
        for (j, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(MatrixError::InvalidStructure(format!(
                    "column {j} has length {}, expected {rows}",
                    col.len()
                )));
            }
            for (i, &v) in col.iter().enumerate() {
                m.data[i * n + j] = v;
            }
        }
        Ok(m)
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Fraction of non-zero elements (the paper's "sparsity" column of
    /// Table 3, expressed as a fraction rather than percent).
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Iterates over non-zero entries as `(row, col, value)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.data.iter().enumerate().filter_map(move |(k, &v)| {
            if v.is_zero() {
                None
            } else {
                Some((k / self.cols, k % self.cols, v))
            }
        })
    }

    /// Uncompressed footprint in bytes: `rows * cols * size_of::<T>()`.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Reference dense matrix-vector product `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![T::ZERO; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (a, &b) in self.row(i).iter().zip(x) {
                acc += *a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Reference dense matrix-matrix product `C = A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Dense<T>) -> Result<Dense<T>> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut c = Dense::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = c.get(i, j);
                    c.set(i, j, a.mul_add(rhs.get(k, j), cur));
                }
            }
        }
        Ok(c)
    }

    /// Reference dense matrix addition `C = A + B`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Dense<T>) -> Result<Dense<T>> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "add",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Ok(Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Dense<T> {
        let mut t = Dense::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense<f64> {
        // 3x3: [[1,0,2],[0,0,0],[3,4,0]]
        Dense::from_vec(3, 3, vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0]).unwrap()
    }

    #[test]
    fn zeros_has_no_nonzeros() {
        let m = Dense::<f64>::zeros(4, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.storage_bytes(), 4 * 5 * 8);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Dense::<f64>::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Dense::<f64>::zeros(2, 2);
        m.set(1, 0, -3.5);
        assert_eq!(m.get(1, 0), -3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn iter_nonzero_yields_coordinates() {
        let m = sample();
        let entries: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn spmv_matches_manual() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let mut id = Dense::<f64>::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        let c = m.matmul(&id).unwrap();
        assert_eq!(c, m);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Dense::<f64>::zeros(2, 3);
        let b = Dense::<f64>::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn add_sums_elementwise() {
        let m = sample();
        let s = m.add(&m).unwrap();
        assert_eq!(s.get(2, 1), 8.0);
        assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(3, 0);
    }

    #[test]
    fn from_columns_and_col_roundtrip() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![-4.0, 0.0, 6.0]];
        let m = Dense::from_columns(3, &cols).unwrap();
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.col(0), cols[0]);
        assert_eq!(m.col(1), cols[1]);
        assert_eq!(m.row(1), &[2.0, 0.0]);
        // Length mismatch is rejected.
        assert!(Dense::from_columns(2, &cols).is_err());
    }

    #[test]
    fn row_mut_and_as_mut_slice_write_through() {
        let mut m = Dense::<f64>::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[7.0, 8.0, 9.0]);
        assert_eq!(m.get(1, 2), 9.0);
        m.as_mut_slice().fill(1.5);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.as_slice(), &[1.5; 6]);
    }

    #[test]
    fn rhs_tile_schedule_covers_every_width_once() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 17, 64] {
            let mut covered = 0usize;
            crate::for_each_rhs_tile(n, |j0, w| {
                assert_eq!(j0, covered, "tiles must be contiguous");
                assert!(w == 8 || w == 4 || w == 1, "width {w}");
                covered += w;
            });
            assert_eq!(covered, n, "schedule must cover 0..{n}");
        }
    }
}
