use crate::{MatrixError, Result, Scalar};

/// Row-major dense matrix.
///
/// `Dense` is the uncompressed reference representation: every conversion
/// and kernel in the workspace is ultimately validated against it, and the
/// total-compression-ratio experiment (paper Fig. 19) measures compressed
/// formats against its footprint.
///
/// # Example
///
/// ```
/// use smash_matrix::Dense;
///
/// let mut m = Dense::<f64>::zeros(2, 3);
/// m.set(0, 2, 4.5);
/// assert_eq!(m.get(0, 2), 4.5);
/// assert_eq!(m.nnz(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidStructure`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidStructure(format!(
                "dense data length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Dense { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `col >= cols`.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full row-major backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Fraction of non-zero elements (the paper's "sparsity" column of
    /// Table 3, expressed as a fraction rather than percent).
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Iterates over non-zero entries as `(row, col, value)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.data.iter().enumerate().filter_map(move |(k, &v)| {
            if v.is_zero() {
                None
            } else {
                Some((k / self.cols, k % self.cols, v))
            }
        })
    }

    /// Uncompressed footprint in bytes: `rows * cols * size_of::<T>()`.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Reference dense matrix-vector product `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "vector length must equal cols");
        let mut y = vec![T::ZERO; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for (a, &b) in self.row(i).iter().zip(x) {
                acc += *a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Reference dense matrix-matrix product `C = A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Dense<T>) -> Result<Dense<T>> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut c = Dense::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = c.get(i, j);
                    c.set(i, j, a.mul_add(rhs.get(k, j), cur));
                }
            }
        }
        Ok(c)
    }

    /// Reference dense matrix addition `C = A + B`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Dense<T>) -> Result<Dense<T>> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "add",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Ok(Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Dense<T> {
        let mut t = Dense::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dense<f64> {
        // 3x3: [[1,0,2],[0,0,0],[3,4,0]]
        Dense::from_vec(3, 3, vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0]).unwrap()
    }

    #[test]
    fn zeros_has_no_nonzeros() {
        let m = Dense::<f64>::zeros(4, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.storage_bytes(), 4 * 5 * 8);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Dense::<f64>::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Dense::<f64>::zeros(2, 2);
        m.set(1, 0, -3.5);
        assert_eq!(m.get(1, 0), -3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn iter_nonzero_yields_coordinates() {
        let m = sample();
        let entries: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn spmv_matches_manual() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let mut id = Dense::<f64>::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        let c = m.matmul(&id).unwrap();
        assert_eq!(c, m);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Dense::<f64>::zeros(2, 3);
        let b = Dense::<f64>::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn add_sums_elementwise() {
        let m = sample();
        let s = m.add(&m).unwrap();
        assert_eq!(s.get(2, 1), 8.0);
        assert_eq!(s.nnz(), m.nnz());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(3, 0);
    }
}
