//! Locality of sparsity: the paper's §7.2.3 metric and a generator that
//! targets an exact locality value.
//!
//! The paper defines *locality of sparsity* as "the ratio of the average
//! number of non-zero elements per block of the NZA to the size of each NZA
//! block". A matrix at 100% locality has no zeros inside any non-zero block;
//! at `1/block` locality every non-zero block holds exactly one non-zero.

use crate::{Coo, Csr, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Measures the locality of sparsity of `m` for a given block size, where a
/// block covers `block` consecutive elements of a row (rows are padded to a
/// block multiple, exactly as the SMASH encoding lays them out).
///
/// Returns a value in `(0, 1]`, or 0 for an empty matrix.
///
/// # Panics
///
/// Panics if `block == 0`.
///
/// # Example
///
/// ```
/// use smash_matrix::{generators, locality};
///
/// let m = generators::clustered(64, 64, 512, 8, 1);
/// let dense_runs = locality::locality_of_sparsity(&m, 8);
/// let m2 = generators::uniform(64, 64, 512, 1);
/// let scattered = locality::locality_of_sparsity(&m2, 8);
/// assert!(dense_runs > scattered);
/// ```
pub fn locality_of_sparsity<T: Scalar>(m: &Csr<T>, block: usize) -> f64 {
    assert!(block > 0, "block must be non-zero");
    if m.nnz() == 0 {
        return 0.0;
    }
    let blocks_per_row = m.cols().div_ceil(block);
    let mut occupied: HashSet<u64> = HashSet::new();
    for (r, c, _) in m.iter() {
        occupied.insert((r as u64) * blocks_per_row as u64 + (c / block) as u64);
    }
    let avg_per_block = m.nnz() as f64 / occupied.len() as f64;
    avg_per_block / block as f64
}

/// Generates a matrix whose locality of sparsity (for the given `block`)
/// is as close as possible to `target` (a fraction in `(0, 1]`).
///
/// Non-zero blocks receive exactly `round(target * block)` non-zeros placed
/// at the start of the block, so the measured locality matches the request
/// up to rounding. Used by the Fig. 16/17 sensitivity sweep.
///
/// # Panics
///
/// Panics if `block == 0` or `target` is not in `(0, 1]`.
pub fn with_locality(
    rows: usize,
    cols: usize,
    nnz: usize,
    block: usize,
    target: f64,
    seed: u64,
) -> Csr<f64> {
    assert!(block > 0, "block must be non-zero");
    assert!(
        target > 0.0 && target <= 1.0,
        "target locality must be in (0, 1], got {target}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let per_block = ((target * block as f64).round() as usize).clamp(1, block);
    let blocks_needed = nnz.div_ceil(per_block);
    let blocks_per_row = cols / block; // only whole blocks are used
    assert!(
        blocks_per_row > 0,
        "cols ({cols}) must fit at least one block ({block})"
    );
    let max_blocks = rows * blocks_per_row;
    let n_blocks = blocks_needed.min(max_blocks);

    let mut chosen: HashSet<u64> = HashSet::with_capacity(n_blocks * 2);
    let mut attempts = 0usize;
    while chosen.len() < n_blocks && attempts < n_blocks.saturating_mul(30).max(1024) {
        attempts += 1;
        let r = rng.gen_range(0..rows) as u64;
        let b = rng.gen_range(0..blocks_per_row) as u64;
        chosen.insert(r * blocks_per_row as u64 + b);
    }

    let mut blocks: Vec<u64> = chosen.into_iter().collect();
    blocks.sort_unstable();
    let mut coo = Coo::with_capacity(rows, cols, nnz);
    let mut placed = 0usize;
    'outer: for key in blocks {
        let r = (key / blocks_per_row as u64) as usize;
        let b = (key % blocks_per_row as u64) as usize;
        for k in 0..per_block {
            if placed >= nnz {
                break 'outer;
            }
            let c = b * block + k;
            let v = rng.gen_range(0.1..1.0);
            coo.push(r, c, v);
            placed += 1;
        }
    }
    coo.compress();
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_locality_means_full_blocks() {
        let m = with_locality(64, 64, 512, 8, 1.0, 3);
        let l = locality_of_sparsity(&m, 8);
        assert!((l - 1.0).abs() < 1e-9, "locality {l}");
    }

    #[test]
    fn minimal_locality_means_one_per_block() {
        let m = with_locality(64, 64, 256, 8, 0.125, 3);
        let l = locality_of_sparsity(&m, 8);
        assert!((l - 0.125).abs() < 1e-9, "locality {l}");
    }

    #[test]
    fn intermediate_targets_are_hit() {
        for &t in &[0.25, 0.375, 0.5, 0.625, 0.75, 0.875] {
            let m = with_locality(128, 128, 1024, 8, t, 9);
            let l = locality_of_sparsity(&m, 8);
            assert!(
                (l - t).abs() < 0.05,
                "target {t} measured {l} (nnz {})",
                m.nnz()
            );
        }
    }

    #[test]
    fn nnz_is_respected() {
        let m = with_locality(128, 128, 1000, 8, 0.5, 4);
        assert!(m.nnz() >= 990 && m.nnz() <= 1000, "nnz {}", m.nnz());
    }

    #[test]
    fn metric_for_uniform_matrix_is_low() {
        let m = crate::generators::uniform(256, 256, 800, 7);
        // ~1.2% density: most blocks hold a single element.
        let l = locality_of_sparsity(&m, 8);
        assert!(l < 0.25, "locality {l}");
    }

    #[test]
    #[should_panic(expected = "target locality")]
    fn rejects_zero_target() {
        with_locality(8, 8, 4, 4, 0.0, 1);
    }

    #[test]
    fn empty_matrix_locality_is_zero() {
        let m = Csr::<f64>::from_coo(&Coo::new(4, 4));
        assert_eq!(locality_of_sparsity(&m, 2), 0.0);
    }
}
