//! Minimal Matrix Market (`.mtx`) coordinate-format reader and writer.
//!
//! Supports the subset needed to exchange the workloads of this workspace:
//! `matrix coordinate {real|double|integer|pattern}
//! {general|symmetric|skew-symmetric}`. Pattern entries read as `1.0`,
//! integer values are parsed through [`Scalar::from_f64`], symmetric
//! entries mirror their off-diagonals, and skew-symmetric entries mirror
//! them negated (with explicit diagonal entries rejected, since a
//! skew-symmetric diagonal is identically zero). Indices are 1-based on
//! disk, 0-based in memory.
//!
//! **Duplicate coordinates are summed.** A file may list the same `(row,
//! col)` pair more than once (assembled finite-element exports commonly
//! do); the parser feeds every triplet through [`Coo::compress`], whose
//! pinned semantics are to sort row-major and *sum* duplicates, dropping
//! entries that cancel to exactly zero. A regression test
//! (`duplicate_entries_are_summed`) guards this behavior.
//!
//! The writer preserves the field and symmetry of a parsed file:
//! [`read_coo_with`] returns the [`MarketHeader`] alongside the matrix, and
//! [`write_coo_as`] emits that header back — a `pattern symmetric` file
//! round-trips to the same entry count with no fabricated values, instead
//! of silently doubling as `real general`.

use crate::{Coo, MatrixError, Result, Scalar};
use std::io::{BufRead, BufReader, Read, Write};

/// Largest declared entry count the parser pre-allocates for before any
/// entry line has been seen (2^20 triplets ≈ 20 MiB of `f64` COO). The
/// declared `nnz` in an untrusted stream is a *claim*, not a measurement:
/// capping the speculative reservation bounds the damage a tiny malicious
/// stream with a huge header can do, while streams that really carry more
/// entries grow the vector amortized as the entries arrive.
const MAX_TRUSTED_PREALLOC: usize = 1 << 20;

/// Value field declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarketField {
    /// `real` (or `double`): one floating-point value per entry.
    #[default]
    Real,
    /// `integer`: one integer value per entry, parsed through
    /// [`Scalar::from_f64`].
    Integer,
    /// `pattern`: positions only; entries read as `1.0` and write no value.
    Pattern,
}

impl MarketField {
    /// The header token of this field.
    pub fn token(&self) -> &'static str {
        match self {
            MarketField::Real => "real",
            MarketField::Integer => "integer",
            MarketField::Pattern => "pattern",
        }
    }
}

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarketSymmetry {
    /// `general`: every entry is stored explicitly.
    #[default]
    General,
    /// `symmetric`: off-diagonal entries mirror across the diagonal.
    Symmetric,
    /// `skew-symmetric`: off-diagonals mirror negated; the diagonal is
    /// implicitly zero and explicit diagonal entries are rejected.
    SkewSymmetric,
}

impl MarketSymmetry {
    /// The header token of this symmetry.
    pub fn token(&self) -> &'static str {
        match self {
            MarketSymmetry::General => "general",
            MarketSymmetry::Symmetric => "symmetric",
            MarketSymmetry::SkewSymmetric => "skew-symmetric",
        }
    }
}

/// The `%%MatrixMarket` header of a coordinate stream, as returned by
/// [`read_coo_with`] and consumed by [`write_coo_as`] for lossless
/// round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarketHeader {
    /// Value field of the stream.
    pub field: MarketField,
    /// Symmetry of the stream.
    pub symmetry: MarketSymmetry,
}

/// Reads a Matrix Market coordinate stream into a [`Coo`] matrix.
///
/// A `&mut R` can be passed for readers that must remain usable afterwards.
/// Duplicate coordinates are **summed** (see the [module docs](self)).
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] for malformed content and
/// [`MatrixError::Io`] for underlying reader failures.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
/// let m = smash_matrix::market::read_coo::<f64, _>(text.as_bytes())?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.entries()[1], (2, 1, -2.0));
/// # Ok(())
/// # }
/// ```
pub fn read_coo<T: Scalar, R: Read>(reader: R) -> Result<Coo<T>> {
    read_coo_with(reader).map(|(coo, _)| coo)
}

/// Reads a Matrix Market coordinate stream into a [`Coo`] matrix, returning
/// the parsed [`MarketHeader`] alongside it so the caller can write the
/// matrix back out in the same field/symmetry (see [`write_coo_as`]).
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] for malformed content and
/// [`MatrixError::Io`] for underlying reader failures.
pub fn read_coo_with<T: Scalar, R: Read>(reader: R) -> Result<(Coo<T>, MarketHeader)> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    let header = loop {
        match lines.next() {
            Some(l) => {
                line_no += 1;
                let l = l?;
                if line_no == 1 {
                    break l;
                }
            }
            None => {
                return Err(MatrixError::Parse {
                    line: 0,
                    message: "empty stream".into(),
                })
            }
        }
    };

    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 4 || !head[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(MatrixError::Parse {
            line: 1,
            message: "expected %%MatrixMarket header".into(),
        });
    }
    if !head[1].eq_ignore_ascii_case("matrix") || !head[2].eq_ignore_ascii_case("coordinate") {
        return Err(MatrixError::Parse {
            line: 1,
            message: format!("unsupported object/format: {} {}", head[1], head[2]),
        });
    }
    let field = match head[3].to_ascii_lowercase().as_str() {
        "real" | "double" => MarketField::Real,
        "integer" => MarketField::Integer,
        "pattern" => MarketField::Pattern,
        other => {
            return Err(MatrixError::Parse {
                line: 1,
                message: format!("unsupported field type: {other}"),
            })
        }
    };
    let pattern = field == MarketField::Pattern;
    let symmetry = match head.get(4).map(|s| s.to_ascii_lowercase()) {
        None => MarketSymmetry::General,
        Some(s) if s == "general" => MarketSymmetry::General,
        Some(s) if s == "symmetric" => MarketSymmetry::Symmetric,
        Some(s) if s == "skew-symmetric" => MarketSymmetry::SkewSymmetric,
        Some(other) => {
            return Err(MatrixError::Parse {
                line: 1,
                message: format!("unsupported symmetry: {other}"),
            })
        }
    };

    // Skip comments, find size line.
    let size_line = loop {
        let l = lines.next().ok_or(MatrixError::Parse {
            line: line_no,
            message: "missing size line".into(),
        })?;
        line_no += 1;
        let l = l?;
        let t = l.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break l;
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(MatrixError::Parse {
            line: line_no,
            message: "size line must have rows cols nnz".into(),
        });
    }
    let parse_usize = |s: &str, line: usize| -> Result<usize> {
        s.parse().map_err(|_| MatrixError::Parse {
            line,
            message: format!("invalid integer `{s}`"),
        })
    };
    let rows = parse_usize(dims[0], line_no)?;
    let cols = parse_usize(dims[1], line_no)?;
    let nnz = parse_usize(dims[2], line_no)?;
    // An impossible count is rejected before anything is allocated, and a
    // merely huge one is only *trusted* for pre-allocation up to a cap: a
    // 30-byte stream must not be able to reserve gigabytes by declaring
    // `usize::MAX` entries. Past the cap the entry vector grows amortized
    // as real entries actually arrive, so honest large files still load.
    if nnz > rows.saturating_mul(cols) {
        return Err(MatrixError::Parse {
            line: line_no,
            message: format!("declared {nnz} entries exceed a {rows}x{cols} matrix"),
        });
    }

    let mut coo = Coo::with_capacity(rows, cols, nnz.min(MAX_TRUSTED_PREALLOC));
    let mut seen = 0usize;
    for l in lines {
        line_no += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        let want = if pattern { 2 } else { 3 };
        if fields.len() < want {
            return Err(MatrixError::Parse {
                line: line_no,
                message: format!("expected {want} fields, found {}", fields.len()),
            });
        }
        let r = parse_usize(fields[0], line_no)?;
        let c = parse_usize(fields[1], line_no)?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(MatrixError::Parse {
                line: line_no,
                message: format!("entry ({r}, {c}) outside 1..={rows} x 1..={cols}"),
            });
        }
        let v = if pattern {
            T::ONE
        } else {
            let raw: f64 = fields[2].parse().map_err(|_| MatrixError::Parse {
                line: line_no,
                message: format!("invalid value `{}`", fields[2]),
            })?;
            T::from_f64(raw)
        };
        if symmetry == MarketSymmetry::SkewSymmetric && r == c {
            return Err(MatrixError::Parse {
                line: line_no,
                message: format!(
                    "skew-symmetric stream stores an explicit diagonal entry ({r}, {c})"
                ),
            });
        }
        coo.push(r - 1, c - 1, v);
        match symmetry {
            MarketSymmetry::General => {}
            MarketSymmetry::Symmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, v);
                }
            }
            MarketSymmetry::SkewSymmetric => coo.push(c - 1, r - 1, -v),
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MatrixError::Parse {
            line: line_no,
            message: format!("header declared {nnz} entries, found {seen}"),
        });
    }
    // Pinned semantics: duplicate coordinates (within the file, or created
    // by symmetry mirroring) are *summed* here.
    coo.compress();
    Ok((coo, MarketHeader { field, symmetry }))
}

/// Writes a [`Coo`] matrix as `matrix coordinate real general` — shorthand
/// for [`write_coo_as`] with the default [`MarketHeader`].
///
/// A `&mut W` can be passed for writers that must remain usable afterwards.
///
/// # Errors
///
/// Returns [`MatrixError::Io`] if the writer fails.
pub fn write_coo<T: Scalar, W: Write>(writer: W, coo: &Coo<T>) -> Result<()> {
    write_coo_as(writer, coo, MarketHeader::default())
}

/// Writes a [`Coo`] matrix with an explicit [`MarketHeader`], so a file
/// parsed with [`read_coo_with`] round-trips losslessly: a `pattern` stream
/// stays positions-only (no fabricated `1.0` values) and a `symmetric` /
/// `skew-symmetric` stream stores only its lower triangle (no doubling).
///
/// For [`MarketSymmetry::Symmetric`] the matrix must equal its transpose
/// (checked exactly, entry by entry); only entries with `row >= col` are
/// emitted. For [`MarketSymmetry::SkewSymmetric`] the matrix must equal the
/// negated transpose and have an empty diagonal; only `row > col` entries
/// are emitted. Violations are reported instead of silently writing a file
/// that would parse back as a different matrix.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidStructure`] if the matrix does not satisfy
/// the declared symmetry or field (a `pattern` write requires every stored
/// value to be exactly `1` — a summed duplicate would silently read back as
/// `1.0` — and an `integer` write rejects fractional values, which strict
/// Matrix Market parsers refuse), and [`MatrixError::Io`] if the writer
/// fails.
pub fn write_coo_as<T: Scalar, W: Write>(
    mut writer: W,
    coo: &Coo<T>,
    header: MarketHeader,
) -> Result<()> {
    // The symmetry checks binary-search mirror entries and the pattern
    // check must see summed duplicates, so those paths need the compressed
    // (sorted, duplicate-summed) form. A valued `general` write streams the
    // entries as-is with no copy: duplicate coordinates on disk re-sum on
    // read to the same matrix.
    let needs_compressed =
        header.symmetry != MarketSymmetry::General || header.field == MarketField::Pattern;
    let compressed;
    let m = if !needs_compressed || coo.is_compressed() {
        coo
    } else {
        let mut c = coo.clone();
        c.compress();
        compressed = c;
        &compressed
    };
    let entries = m.entries();
    for &(r, c, v) in entries {
        match header.field {
            MarketField::Pattern if v != T::ONE => {
                return Err(MatrixError::InvalidStructure(format!(
                    "pattern write would lose value {v} at ({}, {})",
                    r + 1,
                    c + 1
                )));
            }
            MarketField::Integer if v.to_f64().fract() != 0.0 => {
                return Err(MatrixError::InvalidStructure(format!(
                    "integer write cannot represent fractional value {v} at ({}, {})",
                    r + 1,
                    c + 1
                )));
            }
            _ => {}
        }
    }
    let mirror_of = |r: u32, c: u32| -> Option<T> {
        entries
            .binary_search_by_key(&((c as u64) << 32 | r as u64), |&(er, ec, _)| {
                (er as u64) << 32 | ec as u64
            })
            .ok()
            .map(|k| entries[k].2)
    };
    match header.symmetry {
        MarketSymmetry::General => {}
        MarketSymmetry::Symmetric => {
            for &(r, c, v) in entries {
                if r != c && mirror_of(r, c) != Some(v) {
                    return Err(MatrixError::InvalidStructure(format!(
                        "matrix is not symmetric: entry ({}, {}) has no equal mirror",
                        r + 1,
                        c + 1
                    )));
                }
            }
        }
        MarketSymmetry::SkewSymmetric => {
            for &(r, c, v) in entries {
                if r == c {
                    return Err(MatrixError::InvalidStructure(format!(
                        "matrix is not skew-symmetric: non-zero diagonal entry ({}, {})",
                        r + 1,
                        c + 1
                    )));
                }
                if mirror_of(r, c) != Some(-v) {
                    return Err(MatrixError::InvalidStructure(format!(
                        "matrix is not skew-symmetric: entry ({}, {}) has no negated mirror",
                        r + 1,
                        c + 1
                    )));
                }
            }
        }
    }
    let keep = |r: u32, c: u32| match header.symmetry {
        MarketSymmetry::General => true,
        MarketSymmetry::Symmetric => r >= c,
        MarketSymmetry::SkewSymmetric => r > c,
    };
    let stored = entries.iter().filter(|&&(r, c, _)| keep(r, c)).count();
    writeln!(
        writer,
        "%%MatrixMarket matrix coordinate {} {}",
        header.field.token(),
        header.symmetry.token()
    )?;
    writeln!(writer, "{} {} {stored}", m.rows(), m.cols())?;
    for &(r, c, v) in entries.iter().filter(|&&(r, c, _)| keep(r, c)) {
        match header.field {
            MarketField::Pattern => writeln!(writer, "{} {}", r + 1, c + 1)?,
            MarketField::Real | MarketField::Integer => {
                writeln!(writer, "{} {} {}", r + 1, c + 1, v.to_f64())?
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut coo = Coo::<f64>::new(3, 4);
        coo.push(0, 0, 1.25);
        coo.push(2, 3, -7.0);
        coo.compress();
        let mut buf = Vec::new();
        write_coo(&mut buf, &coo).unwrap();
        let back = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn pattern_entries_read_as_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 1.0), (1, 1, 1.0)]);
    }

    #[test]
    fn symmetric_mirrors_off_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense().get(0, 1), 5.0);
        assert_eq!(m.to_dense().get(1, 0), 5.0);
    }

    #[test]
    fn comments_are_skipped() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% more\n1 2 3.5\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 1, 3.5)]);
    }

    #[test]
    fn parse_write_parse_roundtrip() {
        // Start from text (not from an in-memory Coo) so the 1-based index
        // translation is exercised in both directions.
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    4 5 4\n1 1 1.5\n2 4 -2.25\n4 5 0.5\n3 2 8.0\n";
        let first = read_coo::<f64, _>(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_coo(&mut buf, &first).unwrap();
        let second = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(first, second);
        assert_eq!(second.rows(), 4);
        assert_eq!(second.cols(), 5);
        assert_eq!(second.nnz(), 4);
    }

    #[test]
    fn symmetric_roundtrips_through_general_writer() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let sym = read_coo::<f64, _>(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_coo(&mut buf, &sym).unwrap();
        // The writer emits `general`, so mirrored entries are written out
        // explicitly and survive the round-trip.
        let back = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, sym);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_coo::<f64, _>("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_coo::<f64, _>("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_malformed_header_variants() {
        // Wrong object.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket vector coordinate real general\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Unsupported field type.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Unsupported symmetry.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Truncated header line.
        assert!(read_coo::<f64, _>("%%MatrixMarket matrix\n1 1 0\n".as_bytes()).is_err());
        // Empty stream and missing size line.
        assert!(read_coo::<f64, _>("".as_bytes()).is_err());
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n% only comments\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_size_and_entries() {
        // Size line with too few fields.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2\n".as_bytes()
        )
        .is_err());
        // Non-numeric size.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 x 1\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // Entry missing its value field.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n".as_bytes()
        )
        .is_err());
        // Non-numeric value.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n".as_bytes()
        )
        .is_err());
        // 0-based index (Matrix Market is 1-based).
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn integer_field_parses_through_from_f64() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n2 1 -7\n";
        let (m, header) = read_coo_with::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 3.0), (1, 0, -7.0)]);
        assert_eq!(header.field, MarketField::Integer);
        assert_eq!(header.symmetry, MarketSymmetry::General);
    }

    #[test]
    fn integer_symmetric_header_parses() {
        let text = "%%MatrixMarket matrix coordinate integer symmetric\n2 2 1\n2 1 4\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 1, 4.0), (1, 0, 4.0)]);
    }

    #[test]
    fn skew_symmetric_mirrors_negated() {
        let text =
            "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n2 1 5.0\n3 1 -2.5\n";
        let (m, header) = read_coo_with::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(header.symmetry, MarketSymmetry::SkewSymmetric);
        assert_eq!(
            m.entries(),
            &[(0, 1, -5.0), (0, 2, 2.5), (1, 0, 5.0), (2, 0, -2.5)]
        );
    }

    #[test]
    fn skew_symmetric_rejects_explicit_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 2 1.0\n";
        assert!(read_coo::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_entries_are_summed() {
        // Pinned semantics: the parser feeds duplicates through
        // `Coo::compress`, which *sums* them (and drops exact cancels).
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 4\n1 1 1.5\n1 1 2.5\n2 1 3.0\n2 1 -3.0\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 4.0)]);
    }

    #[test]
    fn pattern_write_preserves_field() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 3 2\n1 1\n2 3\n";
        let (m, header) = read_coo_with::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(header.field, MarketField::Pattern);
        let mut buf = Vec::new();
        write_coo_as(&mut buf, &m, header).unwrap();
        // Round-trip is byte-lossless: no fabricated `1` values appear.
        assert_eq!(std::str::from_utf8(&buf).unwrap(), text);
    }

    #[test]
    fn symmetric_write_stores_lower_triangle_only() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 2.0\n2 1 5.0\n3 2 -1.0\n";
        let (m, header) = read_coo_with::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 5); // mirrored in memory
        let mut buf = Vec::new();
        write_coo_as(&mut buf, &m, header).unwrap();
        let out = std::str::from_utf8(&buf).unwrap();
        assert!(out.starts_with("%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n"));
        // And the round-trip reproduces the mirrored matrix exactly.
        let (back, back_header) = read_coo_with::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, m);
        assert_eq!(back_header, header);
    }

    #[test]
    fn skew_symmetric_write_roundtrips() {
        let text =
            "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n2 1 5.0\n3 1 -2.5\n";
        let (m, header) = read_coo_with::<f64, _>(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_coo_as(&mut buf, &m, header).unwrap();
        let out = std::str::from_utf8(&buf).unwrap();
        // Strict lower triangle only: 2 stored entries, not 4.
        assert!(
            out.starts_with("%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n"),
            "{out}"
        );
        let (back, back_header) = read_coo_with::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, m);
        assert_eq!(back_header, header);
    }

    #[test]
    fn symmetric_write_rejects_asymmetric_matrix() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(1, 0, 5.0); // no (0, 1) mirror
        coo.compress();
        let header = MarketHeader {
            field: MarketField::Real,
            symmetry: MarketSymmetry::Symmetric,
        };
        assert!(write_coo_as(Vec::new(), &coo, header).is_err());
        // Same matrix, skew declaration: mirror must be *negated*.
        let skew = MarketHeader {
            symmetry: MarketSymmetry::SkewSymmetric,
            ..header
        };
        assert!(write_coo_as(Vec::new(), &coo, skew).is_err());
        // A diagonal entry also violates skew symmetry.
        let mut diag = Coo::<f64>::new(2, 2);
        diag.push(0, 0, 1.0);
        diag.compress();
        assert!(write_coo_as(Vec::new(), &diag, skew).is_err());
    }

    #[test]
    fn general_write_streams_duplicates_that_resum_on_read() {
        // A valued `general` write streams uncompressed entries as-is (no
        // copy, no sort); the on-disk duplicates re-sum on read to the
        // same semantic matrix.
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(1, 1, 2.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 3.0);
        let mut buf = Vec::new();
        write_coo_as(&mut buf, &coo, MarketHeader::default()).unwrap();
        let out = std::str::from_utf8(&buf).unwrap();
        assert!(out.contains("\n2 2 3\n"), "3 entries stored as-is: {out}");
        let back = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back.entries(), &[(0, 0, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn pattern_write_rejects_non_unit_values() {
        // A duplicated pattern position sums to 2.0 on read; writing it
        // back as `pattern` would silently read as 1.0 — error instead.
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n1 1\n";
        let (m, header) = read_coo_with::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 2.0)]);
        assert!(write_coo_as(Vec::new(), &m, header).is_err());
        // A genuinely 0/1 matrix still writes fine.
        let mut ones = Coo::<f64>::new(2, 2);
        ones.push(0, 1, 1.0);
        assert!(write_coo_as(Vec::new(), &ones, header).is_ok());
    }

    #[test]
    fn integer_write_rejects_fractional_values() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 0, 2.5);
        let header = MarketHeader {
            field: MarketField::Integer,
            symmetry: MarketSymmetry::General,
        };
        assert!(write_coo_as(Vec::new(), &coo, header).is_err());
        let mut whole = Coo::<f64>::new(2, 2);
        whole.push(0, 0, -7.0);
        assert!(write_coo_as(Vec::new(), &whole, header).is_ok());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_coo::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_coo::<f64, _>(text.as_bytes()).is_err());
    }
}
