//! Minimal Matrix Market (`.mtx`) coordinate-format reader and writer.
//!
//! Supports the subset needed to exchange the workloads of this workspace:
//! `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` (pattern entries read as
//! `1.0`). Indices are 1-based on disk, 0-based in memory.

use crate::{Coo, MatrixError, Result, Scalar};
use std::io::{BufRead, BufReader, Read, Write};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market coordinate stream into a [`Coo`] matrix.
///
/// A `&mut R` can be passed for readers that must remain usable afterwards.
///
/// # Errors
///
/// Returns [`MatrixError::Parse`] for malformed content and
/// [`MatrixError::Io`] for underlying reader failures.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
/// let m = smash_matrix::market::read_coo::<f64, _>(text.as_bytes())?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.entries()[1], (2, 1, -2.0));
/// # Ok(())
/// # }
/// ```
pub fn read_coo<T: Scalar, R: Read>(reader: R) -> Result<Coo<T>> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    let header = loop {
        match lines.next() {
            Some(l) => {
                line_no += 1;
                let l = l?;
                if line_no == 1 {
                    break l;
                }
            }
            None => {
                return Err(MatrixError::Parse {
                    line: 0,
                    message: "empty stream".into(),
                })
            }
        }
    };

    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 4 || !head[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(MatrixError::Parse {
            line: 1,
            message: "expected %%MatrixMarket header".into(),
        });
    }
    if !head[1].eq_ignore_ascii_case("matrix") || !head[2].eq_ignore_ascii_case("coordinate") {
        return Err(MatrixError::Parse {
            line: 1,
            message: format!("unsupported object/format: {} {}", head[1], head[2]),
        });
    }
    let pattern = match head[3].to_ascii_lowercase().as_str() {
        "real" | "integer" | "double" => false,
        "pattern" => true,
        other => {
            return Err(MatrixError::Parse {
                line: 1,
                message: format!("unsupported field type: {other}"),
            })
        }
    };
    let symmetry = match head.get(4).map(|s| s.to_ascii_lowercase()) {
        None => Symmetry::General,
        Some(s) if s == "general" => Symmetry::General,
        Some(s) if s == "symmetric" => Symmetry::Symmetric,
        Some(other) => {
            return Err(MatrixError::Parse {
                line: 1,
                message: format!("unsupported symmetry: {other}"),
            })
        }
    };

    // Skip comments, find size line.
    let size_line = loop {
        let l = lines.next().ok_or(MatrixError::Parse {
            line: line_no,
            message: "missing size line".into(),
        })?;
        line_no += 1;
        let l = l?;
        let t = l.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break l;
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(MatrixError::Parse {
            line: line_no,
            message: "size line must have rows cols nnz".into(),
        });
    }
    let parse_usize = |s: &str, line: usize| -> Result<usize> {
        s.parse().map_err(|_| MatrixError::Parse {
            line,
            message: format!("invalid integer `{s}`"),
        })
    };
    let rows = parse_usize(dims[0], line_no)?;
    let cols = parse_usize(dims[1], line_no)?;
    let nnz = parse_usize(dims[2], line_no)?;

    let mut coo = Coo::with_capacity(rows, cols, nnz);
    let mut seen = 0usize;
    for l in lines {
        line_no += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        let want = if pattern { 2 } else { 3 };
        if fields.len() < want {
            return Err(MatrixError::Parse {
                line: line_no,
                message: format!("expected {want} fields, found {}", fields.len()),
            });
        }
        let r = parse_usize(fields[0], line_no)?;
        let c = parse_usize(fields[1], line_no)?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(MatrixError::Parse {
                line: line_no,
                message: format!("entry ({r}, {c}) outside 1..={rows} x 1..={cols}"),
            });
        }
        let v = if pattern {
            T::ONE
        } else {
            let raw: f64 = fields[2].parse().map_err(|_| MatrixError::Parse {
                line: line_no,
                message: format!("invalid value `{}`", fields[2]),
            })?;
            T::from_f64(raw)
        };
        coo.push(r - 1, c - 1, v);
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MatrixError::Parse {
            line: line_no,
            message: format!("header declared {nnz} entries, found {seen}"),
        });
    }
    coo.compress();
    Ok(coo)
}

/// Writes a [`Coo`] matrix as `matrix coordinate real general`.
///
/// A `&mut W` can be passed for writers that must remain usable afterwards.
///
/// # Errors
///
/// Returns [`MatrixError::Io`] if the writer fails.
pub fn write_coo<T: Scalar, W: Write>(mut writer: W, coo: &Coo<T>) -> Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", coo.rows(), coo.cols(), coo.nnz())?;
    for &(r, c, v) in coo.entries() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut coo = Coo::<f64>::new(3, 4);
        coo.push(0, 0, 1.25);
        coo.push(2, 3, -7.0);
        coo.compress();
        let mut buf = Vec::new();
        write_coo(&mut buf, &coo).unwrap();
        let back = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn pattern_entries_read_as_one() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 0, 1.0), (1, 1, 1.0)]);
    }

    #[test]
    fn symmetric_mirrors_off_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense().get(0, 1), 5.0);
        assert_eq!(m.to_dense().get(1, 0), 5.0);
    }

    #[test]
    fn comments_are_skipped() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% more\n1 2 3.5\n";
        let m = read_coo::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(m.entries(), &[(0, 1, 3.5)]);
    }

    #[test]
    fn parse_write_parse_roundtrip() {
        // Start from text (not from an in-memory Coo) so the 1-based index
        // translation is exercised in both directions.
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    4 5 4\n1 1 1.5\n2 4 -2.25\n4 5 0.5\n3 2 8.0\n";
        let first = read_coo::<f64, _>(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_coo(&mut buf, &first).unwrap();
        let second = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(first, second);
        assert_eq!(second.rows(), 4);
        assert_eq!(second.cols(), 5);
        assert_eq!(second.nnz(), 4);
    }

    #[test]
    fn symmetric_roundtrips_through_general_writer() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let sym = read_coo::<f64, _>(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_coo(&mut buf, &sym).unwrap();
        // The writer emits `general`, so mirrored entries are written out
        // explicitly and survive the round-trip.
        let back = read_coo::<f64, _>(&buf[..]).unwrap();
        assert_eq!(back, sym);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_coo::<f64, _>("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_coo::<f64, _>("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_malformed_header_variants() {
        // Wrong object.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket vector coordinate real general\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Unsupported field type.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Unsupported symmetry.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n".as_bytes()
        )
        .is_err());
        // Truncated header line.
        assert!(read_coo::<f64, _>("%%MatrixMarket matrix\n1 1 0\n".as_bytes()).is_err());
        // Empty stream and missing size line.
        assert!(read_coo::<f64, _>("".as_bytes()).is_err());
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n% only comments\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_size_and_entries() {
        // Size line with too few fields.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2\n".as_bytes()
        )
        .is_err());
        // Non-numeric size.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 x 1\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // Entry missing its value field.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n".as_bytes()
        )
        .is_err());
        // Non-numeric value.
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n".as_bytes()
        )
        .is_err());
        // 0-based index (Matrix Market is 1-based).
        assert!(read_coo::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_coo::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_coo::<f64, _>(text.as_bytes()).is_err());
    }
}
