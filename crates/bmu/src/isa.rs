//! Assembly-level representation of the five SMASH instructions (paper
//! Table 1), useful for printing the instruction sequences the examples and
//! experiments execute.

use std::fmt;

/// One SMASH ISA instruction with its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `matinfo row, col, grp` — load matrix dimensions into the BMU.
    Matinfo {
        /// Number of matrix rows.
        rows: u32,
        /// Number of matrix columns.
        cols: u32,
        /// BMU group selector.
        grp: u8,
    },
    /// `bmapinfo comp, lvl, grp` — load one level's compression ratio.
    Bmapinfo {
        /// Compression ratio.
        comp: u32,
        /// Bitmap level.
        lvl: u8,
        /// BMU group selector.
        grp: u8,
    },
    /// `rdbmap [mem], buf, grp` — load a bitmap block into an SRAM buffer.
    Rdbmap {
        /// Source memory address.
        mem: u64,
        /// Destination buffer (= bitmap level).
        buf: u8,
        /// BMU group selector.
        grp: u8,
    },
    /// `pbmap grp` — scan for the next non-zero block.
    Pbmap {
        /// BMU group selector.
        grp: u8,
    },
    /// `rdind rd1, rd2, grp` — read the row/column output registers.
    Rdind {
        /// Destination register for the row index.
        rd1: u8,
        /// Destination register for the column index.
        rd2: u8,
        /// BMU group selector.
        grp: u8,
    },
}

impl Instruction {
    /// Mnemonic without operands.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Matinfo { .. } => "matinfo",
            Instruction::Bmapinfo { .. } => "bmapinfo",
            Instruction::Rdbmap { .. } => "rdbmap",
            Instruction::Pbmap { .. } => "pbmap",
            Instruction::Rdind { .. } => "rdind",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Matinfo { rows, cols, grp } => {
                write!(f, "matinfo {rows}, {cols}, {grp}")
            }
            Instruction::Bmapinfo { comp, lvl, grp } => {
                write!(f, "bmapinfo {comp}, {lvl}, {grp}")
            }
            Instruction::Rdbmap { mem, buf, grp } => {
                write!(f, "rdbmap [{mem:#x}], {buf}, {grp}")
            }
            Instruction::Pbmap { grp } => write!(f, "pbmap {grp}"),
            Instruction::Rdind { rd1, rd2, grp } => {
                write!(f, "rdind r{rd1}, r{rd2}, {grp}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table1_shapes() {
        assert_eq!(
            Instruction::Matinfo {
                rows: 4,
                cols: 4,
                grp: 0
            }
            .to_string(),
            "matinfo 4, 4, 0"
        );
        assert_eq!(
            Instruction::Rdbmap {
                mem: 0x1000,
                buf: 2,
                grp: 0
            }
            .to_string(),
            "rdbmap [0x1000], 2, 0"
        );
        assert_eq!(Instruction::Pbmap { grp: 1 }.to_string(), "pbmap 1");
    }

    #[test]
    fn mnemonics_cover_all_five() {
        let all = [
            Instruction::Matinfo {
                rows: 0,
                cols: 0,
                grp: 0,
            },
            Instruction::Bmapinfo {
                comp: 0,
                lvl: 0,
                grp: 0,
            },
            Instruction::Rdbmap {
                mem: 0,
                buf: 0,
                grp: 0,
            },
            Instruction::Pbmap { grp: 0 },
            Instruction::Rdind {
                rd1: 0,
                rd2: 0,
                grp: 0,
            },
        ];
        let mut names: Vec<_> = all.iter().map(|i| i.mnemonic()).collect();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
