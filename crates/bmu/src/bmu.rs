//! The Bitmap Management Unit and its five-instruction ISA (paper §4.2–4.3,
//! Table 1).

use crate::group::{BmuGroup, ScanStep, BUFFER_BITS};
use crate::{BUFFER_BYTES, MAX_HW_LEVELS, NUM_GROUPS};
use smash_core::BitmapHierarchy;
use smash_sim::{Engine, UopId};

/// Scan/pbmap latency when the next set bit is already buffered, in cycles
/// (a single-cycle priority encode over the SRAM buffer).
const SCAN_LATENCY: u32 = 1;

/// Register-read latency of `rdind`/`matinfo`/`bmapinfo`, in cycles.
const REG_LATENCY: u32 = 1;

/// Binding of a BMU group to the in-memory image of a compressed matrix:
/// the hierarchy to scan plus the base address of each stored bitmap level
/// (for refill traffic addressing).
#[derive(Debug, Clone, Copy)]
pub struct BmuBinding<'a> {
    /// The bitmap hierarchy being scanned.
    pub hierarchy: &'a BitmapHierarchy,
    /// Base address of each level's stored bitmap in the simulated address
    /// space, level 0 first.
    pub level_addrs: [u64; MAX_HW_LEVELS],
}

/// Outcome of a `pbmap` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pbmap {
    /// Uop whose completion publishes the output registers.
    pub uop: UopId,
    /// Logical Bitmap-0 index of the block found (`None` once exhausted).
    pub block: Option<usize>,
}

/// Outcome of an `rdind` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rdind {
    /// Uop producing the two destination registers.
    pub uop: UopId,
    /// Row index of the current non-zero block.
    pub row: u64,
    /// Column index (of the block's first element) in the original matrix.
    pub col: u64,
}

/// The Bitmap Management Unit: [`NUM_GROUPS`] groups, each with
/// [`MAX_HW_LEVELS`] 256-byte SRAM bitmap buffers, parameter registers and
/// row/column output registers (paper Fig. 6).
///
/// Every architectural operation is exposed as one of the five SMASH ISA
/// instructions. Each takes the [`Engine`] so that the instruction itself
/// and any memory traffic it triggers are accounted in the simulation.
///
/// # Example
///
/// ```
/// use smash_bmu::{Bmu, BmuBinding};
/// use smash_core::{SmashConfig, SmashMatrix};
/// use smash_matrix::generators;
/// use smash_sim::CountEngine;
///
/// let a = generators::uniform(32, 32, 64, 5);
/// let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap());
///
/// let mut e = CountEngine::new();
/// let mut bmu = Bmu::new();
/// let binding = BmuBinding { hierarchy: sm.hierarchy(), level_addrs: [0x1000, 0x2000, 0] };
/// bmu.matinfo(&mut e, 0, 32, 32);
/// bmu.bmapinfo(&mut e, 0, 0, 2);
/// bmu.bmapinfo(&mut e, 0, 1, 4);
/// bmu.rdbmap(&mut e, 0, 1, 0x2000, &binding);
/// bmu.rdbmap(&mut e, 0, 0, 0x1000, &binding);
/// let p = bmu.pbmap(&mut e, 0, &binding);
/// assert!(p.block.is_some());
/// let ind = bmu.rdind(&mut e, 0);
/// let (row, col) = sm.block_row_col(p.block.unwrap());
/// assert_eq!((ind.row, ind.col), (row as u64, col as u64));
/// ```
#[derive(Debug, Clone)]
pub struct Bmu {
    groups: Vec<BmuGroup>,
    /// Last pbmap's uop per group, so consecutive scans serialize on the
    /// unit's internal state.
    last_scan: Vec<UopId>,
    /// Statistics: pbmap count, refill count.
    pub stats: BmuStats,
}

/// Aggregate BMU activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BmuStats {
    /// `pbmap` instructions executed.
    pub pbmaps: u64,
    /// SRAM buffer refills (each moves [`BUFFER_BYTES`] bytes).
    pub refills: u64,
    /// `rdbmap` instructions executed.
    pub rdbmaps: u64,
}

impl Bmu {
    /// A BMU with all groups idle.
    pub fn new() -> Self {
        Bmu {
            groups: vec![BmuGroup::default(); NUM_GROUPS],
            last_scan: vec![UopId::NONE; NUM_GROUPS],
            stats: BmuStats::default(),
        }
    }

    /// Read-only view of a group's architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `grp >= NUM_GROUPS`.
    pub fn group(&self, grp: usize) -> &BmuGroup {
        &self.groups[grp]
    }

    /// `matinfo row, col, grp` — loads the matrix dimensions into the
    /// group's parameter registers.
    ///
    /// # Panics
    ///
    /// Panics if `grp >= NUM_GROUPS`.
    pub fn matinfo<E: Engine>(&mut self, e: &mut E, grp: usize, rows: u32, cols: u32) -> UopId {
        let g = &mut self.groups[grp];
        g.rows = rows;
        g.cols = cols;
        e.coproc(REG_LATENCY, &[])
    }

    /// `bmapinfo comp, lvl, grp` — loads the compression ratio of bitmap
    /// level `lvl`.
    ///
    /// # Panics
    ///
    /// Panics if `grp >= NUM_GROUPS` or `lvl >= MAX_HW_LEVELS`.
    pub fn bmapinfo<E: Engine>(&mut self, e: &mut E, grp: usize, lvl: usize, comp: u32) -> UopId {
        assert!(lvl < MAX_HW_LEVELS, "bitmap level {lvl} out of range");
        let g = &mut self.groups[grp];
        g.ratios[lvl] = comp;
        g.ratio_set[lvl] = true;
        e.coproc(REG_LATENCY, &[])
    }

    /// `rdbmap [mem], buf, grp` — loads one 256-byte bitmap block starting
    /// at `addr` into SRAM buffer `buf`. Loading the *top* level's buffer
    /// (re)arms the scan at the bit offset `addr` implies; loading lower
    /// buffers only pre-fills their windows.
    ///
    /// # Panics
    ///
    /// Panics if `grp`/`buf` are out of range, if `addr` precedes the bound
    /// level's base address, or if a non-zero offset is used on a
    /// multi-level hierarchy (see [`BmuGroup::reset_scan`]).
    pub fn rdbmap<E: Engine>(
        &mut self,
        e: &mut E,
        grp: usize,
        buf: usize,
        addr: u64,
        binding: &BmuBinding<'_>,
    ) -> UopId {
        assert!(buf < MAX_HW_LEVELS, "buffer {buf} out of range");
        self.stats.rdbmaps += 1;
        let base = binding.level_addrs[buf];
        assert!(addr >= base, "rdbmap address below level base");
        let bit = ((addr - base) * 8) as usize;
        let top = binding.hierarchy.num_levels() - 1;
        // Tag check: if the SRAM buffer already holds the requested window
        // (common when SpMM re-scans nearby lines), skip the memory fetch.
        let already_buffered = self.groups[grp].windows[buf].covers(bit);
        if !already_buffered {
            let g = &mut self.groups[grp];
            g.windows[buf] = crate::group::Window {
                start_bit: (bit / BUFFER_BITS) * BUFFER_BITS,
                valid: true,
            };
        }
        if buf == top {
            self.groups[grp].reset_scan(binding.hierarchy, bit);
            self.last_scan[grp] = UopId::NONE;
        }
        let isa = e.coproc(REG_LATENCY, &[]);
        if already_buffered {
            isa
        } else {
            // The buffer fill moves 256 bytes through the memory hierarchy.
            let window_byte = (bit / BUFFER_BITS) * BUFFER_BYTES;
            e.coproc_mem(base + window_byte as u64, BUFFER_BYTES as u32, &[isa])
        }
    }

    /// `pbmap grp` — scans the buffers for the next non-zero block and
    /// latches its row/column indices into the output registers. Buffer
    /// window crossings refill from memory through the engine.
    ///
    /// # Panics
    ///
    /// Panics if `grp >= NUM_GROUPS` or if the scan was never armed with a
    /// top-level `rdbmap`.
    pub fn pbmap<E: Engine>(&mut self, e: &mut E, grp: usize, binding: &BmuBinding<'_>) -> Pbmap {
        self.stats.pbmaps += 1;
        let step: ScanStep = self.groups[grp].scan_step(binding.hierarchy);
        // Refill traffic: each window move fetches 256 bytes; the scan
        // depends on all of them.
        let mut deps = vec![self.last_scan[grp]];
        for &(level, start_bit) in &step.refills {
            self.stats.refills += 1;
            let addr = binding.level_addrs[level] + (start_bit / 8) as u64;
            let dep = self.last_scan[grp];
            let fill = e.coproc_mem(addr, BUFFER_BYTES as u32, &[dep]);
            deps.push(fill);
            // The scan walks each level sequentially, so the BMU prefetches
            // the next window while the core consumes the current one.
            let level_bytes = binding.hierarchy.stored_level(level).len().div_ceil(8) as u64;
            let next = (start_bit / 8 + BUFFER_BYTES) as u64;
            if next < level_bytes {
                e.prefetch_hint(binding.level_addrs[level] + next, BUFFER_BYTES as u32);
            }
        }
        let uop = e.coproc(SCAN_LATENCY, &deps);
        self.last_scan[grp] = uop;
        if let Some(block) = step.block {
            self.groups[grp].latch_indices(block);
        }
        Pbmap {
            uop,
            block: step.block,
        }
    }

    /// `rdind rd1, rd2, grp` — reads the row/column output registers into
    /// two destination registers.
    ///
    /// # Panics
    ///
    /// Panics if `grp >= NUM_GROUPS`.
    pub fn rdind<E: Engine>(&mut self, e: &mut E, grp: usize) -> Rdind {
        let dep = self.last_scan[grp];
        let uop = e.coproc(REG_LATENCY, &[dep]);
        let g = &self.groups[grp];
        Rdind {
            uop,
            row: g.row_index,
            col: g.col_index,
        }
    }
}

impl Default for Bmu {
    fn default() -> Self {
        Bmu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_core::{SmashConfig, SmashMatrix};
    use smash_matrix::generators;
    use smash_sim::{CountEngine, SimEngine, SystemConfig};

    fn encode(ratios: &[u32]) -> SmashMatrix<f64> {
        let a = generators::uniform(48, 48, 300, 7);
        SmashMatrix::encode(&a, SmashConfig::row_major(ratios).unwrap())
    }

    fn binding(sm: &SmashMatrix<f64>) -> BmuBinding<'_> {
        BmuBinding {
            hierarchy: sm.hierarchy(),
            level_addrs: [0x1_0000, 0x2_0000, 0x3_0000],
        }
    }

    /// Drives the full ISA sequence of Algorithm 1 and collects all indices.
    fn scan_all(sm: &SmashMatrix<f64>) -> Vec<(u64, u64)> {
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        let b = binding(sm);
        bmu.matinfo(&mut e, 0, sm.rows() as u32, sm.cols() as u32);
        for (lvl, &r) in sm.config().ratios().iter().enumerate() {
            bmu.bmapinfo(&mut e, 0, lvl, r);
        }
        let top = sm.hierarchy().num_levels() - 1;
        for lvl in (0..=top).rev() {
            bmu.rdbmap(&mut e, 0, lvl, b.level_addrs[lvl], &b);
        }
        let mut out = Vec::new();
        loop {
            let p = bmu.pbmap(&mut e, 0, &b);
            if p.block.is_none() {
                break;
            }
            let ind = bmu.rdind(&mut e, 0);
            out.push((ind.row, ind.col));
        }
        out
    }

    #[test]
    fn indices_match_software_cursor() {
        for ratios in [&[2u32][..], &[2, 4], &[2, 4, 16], &[8, 4, 2]] {
            let sm = encode(ratios);
            let got = scan_all(&sm);
            let want: Vec<(u64, u64)> = sm
                .hierarchy()
                .blocks()
                .map(|b| {
                    let (r, c) = sm.block_row_col(b);
                    (r as u64, c as u64)
                })
                .collect();
            assert_eq!(got, want, "ratios {ratios:?}");
        }
    }

    #[test]
    fn pbmap_counts_and_refills() {
        let sm = encode(&[2, 4]);
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        let b = binding(&sm);
        bmu.matinfo(&mut e, 0, 48, 48);
        bmu.bmapinfo(&mut e, 0, 0, 2);
        bmu.bmapinfo(&mut e, 0, 1, 4);
        bmu.rdbmap(&mut e, 0, 1, b.level_addrs[1], &b);
        bmu.rdbmap(&mut e, 0, 0, b.level_addrs[0], &b);
        let mut n = 0;
        while bmu.pbmap(&mut e, 0, &b).block.is_some() {
            n += 1;
        }
        assert_eq!(n, sm.num_blocks());
        assert_eq!(bmu.stats.pbmaps as usize, n + 1);
    }

    #[test]
    fn groups_are_independent() {
        let sm_a = encode(&[2, 4]);
        let a2 = generators::clustered(48, 48, 200, 4, 9);
        let sm_b = SmashMatrix::encode(&a2, SmashConfig::row_major(&[2, 4]).unwrap());
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        let ba = binding(&sm_a);
        let bb = BmuBinding {
            hierarchy: sm_b.hierarchy(),
            level_addrs: [0x9_0000, 0xA_0000, 0xB_0000],
        };
        bmu.matinfo(&mut e, 0, 48, 48);
        bmu.matinfo(&mut e, 1, 48, 48);
        for lvl in [1usize, 0] {
            bmu.bmapinfo(&mut e, 0, lvl, sm_a.config().ratios()[lvl]);
            bmu.bmapinfo(&mut e, 1, lvl, sm_b.config().ratios()[lvl]);
            bmu.rdbmap(&mut e, 0, lvl, ba.level_addrs[lvl], &ba);
            bmu.rdbmap(&mut e, 1, lvl, bb.level_addrs[lvl], &bb);
        }
        // Interleave the two scans; both must stay correct.
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        loop {
            let pa = bmu.pbmap(&mut e, 0, &ba);
            let pb = bmu.pbmap(&mut e, 1, &bb);
            if let Some(x) = pa.block {
                got_a.push(x);
            }
            if let Some(x) = pb.block {
                got_b.push(x);
            }
            if pa.block.is_none() && pb.block.is_none() {
                break;
            }
        }
        assert_eq!(got_a, sm_a.hierarchy().blocks().collect::<Vec<_>>());
        assert_eq!(got_b, sm_b.hierarchy().blocks().collect::<Vec<_>>());
    }

    #[test]
    fn refill_traffic_reaches_memory_hierarchy() {
        // Wide sparse matrix so the top bitmap exceeds one 256 B buffer.
        let a = generators::uniform(256, 1024, 4000, 3);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let mut e = SimEngine::new(SystemConfig::paper_table2());
        let bits = sm.hierarchy().stored_level(0).len();
        assert!(bits > BUFFER_BITS, "test needs multiple windows");
        let addr = e.alloc(bits.div_ceil(8), 64);
        let mut bmu = Bmu::new();
        let b = BmuBinding {
            hierarchy: sm.hierarchy(),
            level_addrs: [addr, 0, 0],
        };
        bmu.matinfo(&mut e, 0, 256, 1024);
        bmu.bmapinfo(&mut e, 0, 0, 2);
        bmu.rdbmap(&mut e, 0, 0, addr, &b);
        while bmu.pbmap(&mut e, 0, &b).block.is_some() {}
        let expected_refills = (bits - 1) / BUFFER_BITS; // first window via rdbmap
        assert_eq!(bmu.stats.refills as usize, expected_refills);
        let s = e.finish();
        // Each 256-byte window fill touches 4 lines; with the BMU's
        // next-window prefetcher most arrive as prefetch fills, the rest as
        // demand misses — together they must cover every window line.
        assert!(
            s.l1.misses + s.l1.prefetch_fills >= 4 * (expected_refills as u64),
            "misses {} + prefetch fills {}",
            s.l1.misses,
            s.l1.prefetch_fills
        );
        assert!(s.l1.prefetch_fills > 0, "next-window prefetch never fired");
    }

    #[test]
    fn spmm_style_row_rescan() {
        // 1-level row-major matrix; scan row 2 twice via rdbmap offsets.
        let a = generators::uniform(16, 64, 200, 11);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
        let bpl = sm.blocks_per_line();
        assert_eq!(bpl % 8, 0, "row offset must be byte-aligned");
        let mut e = CountEngine::new();
        let mut bmu = Bmu::new();
        let base = 0x5_0000u64;
        let b = BmuBinding {
            hierarchy: sm.hierarchy(),
            level_addrs: [base, 0, 0],
        };
        bmu.matinfo(&mut e, 0, 16, 64);
        bmu.bmapinfo(&mut e, 0, 0, 2);
        let row = 2usize;
        let row_addr = base + (row * bpl / 8) as u64;
        let collect = |bmu: &mut Bmu, e: &mut CountEngine| {
            bmu.rdbmap(e, 0, 0, row_addr, &b);
            let mut v = Vec::new();
            loop {
                let p = bmu.pbmap(e, 0, &b);
                match p.block {
                    Some(blk) if blk < (row + 1) * bpl => v.push(blk),
                    _ => break,
                }
            }
            v
        };
        let first = collect(&mut bmu, &mut e);
        let second = collect(&mut bmu, &mut e);
        assert_eq!(first, second);
        let want: Vec<usize> = sm
            .hierarchy()
            .blocks()
            .filter(|&blk| blk / bpl == row)
            .collect();
        assert_eq!(first, want);
    }
}
