//! The Bitmap Management Unit (BMU) — the hardware half of the SMASH
//! paper's contribution (§4.2) — together with the five-instruction SMASH
//! ISA (§4.3, Table 1) and the §7.6 area model.
//!
//! The BMU buffers 256-byte blocks of the stored bitmap hierarchy in
//! per-group SRAM buffers, walks them depth-first to find set Bitmap-0 bits,
//! computes each non-zero block's row/column indices with the §4.2.3 index
//! equation and publishes them in output registers. Software drives it with
//! `matinfo` / `bmapinfo` / `rdbmap` / `pbmap` / `rdind`.
//!
//! The model is *functional + timing*: scans return real indices (checked
//! against the software cursor in `smash-core`), while every ISA instruction
//! and every buffer refill is charged to the `smash-sim` engine so kernels
//! see realistic instruction counts and memory traffic.
//!
//! # Example
//!
//! ```
//! use smash_bmu::{Bmu, BmuBinding};
//! use smash_core::{SmashConfig, SmashMatrix};
//! use smash_matrix::generators;
//! use smash_sim::CountEngine;
//!
//! let a = generators::banded(32, 32, 2, 100, 1);
//! let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).unwrap());
//!
//! let mut e = CountEngine::new();
//! let mut bmu = Bmu::new();
//! let b = BmuBinding { hierarchy: sm.hierarchy(), level_addrs: [0x1000, 0, 0] };
//! bmu.matinfo(&mut e, 0, 32, 32);
//! bmu.bmapinfo(&mut e, 0, 0, 2);
//! bmu.rdbmap(&mut e, 0, 0, 0x1000, &b);
//! let mut blocks = 0;
//! while bmu.pbmap(&mut e, 0, &b).block.is_some() {
//!     blocks += 1;
//! }
//! assert_eq!(blocks, sm.num_blocks());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
mod bmu;
mod group;
mod isa;

pub use area::AreaModel;
pub use bmu::{Bmu, BmuBinding, BmuStats, Pbmap, Rdind};
pub use group::{BmuGroup, ScanStep, Window, BUFFER_BITS};
pub use isa::Instruction;

/// Number of BMU groups (concurrent sparse operands, §7.6: "a BMU with 4
/// groups of 3 bitmap buffers").
pub const NUM_GROUPS: usize = 4;

/// Bitmap levels the hardware can buffer per group (3 SRAM buffers).
pub const MAX_HW_LEVELS: usize = 3;

/// Size of one SRAM bitmap buffer in bytes (§4.2.1).
pub const BUFFER_BYTES: usize = 256;
