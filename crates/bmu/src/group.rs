//! One BMU group: parameter registers, SRAM bitmap-buffer windows, scan
//! state and output registers (paper Fig. 6).

use crate::{BUFFER_BYTES, MAX_HW_LEVELS};
use smash_core::BitmapHierarchy;

/// Bits held by one SRAM bitmap buffer (256 bytes, §4.2.1).
pub const BUFFER_BITS: usize = BUFFER_BYTES * 8;

/// A buffered window of one level's *stored* bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First stored-bit index covered by the buffer.
    pub start_bit: usize,
    /// Whether the buffer holds valid data.
    pub valid: bool,
}

impl Window {
    const INVALID: Window = Window {
        start_bit: 0,
        valid: false,
    };

    /// Whether stored bit `bit` is inside this window.
    pub fn covers(&self, bit: usize) -> bool {
        self.valid && bit >= self.start_bit && bit < self.start_bit + BUFFER_BITS
    }
}

/// One in-flight group scan frame of the depth-first traversal (the saved
/// "bit's index within the bitmap" of §4.2.3).
#[derive(Debug, Clone, Copy)]
struct Frame {
    level: usize,
    logical_base: usize,
    storage_base: usize,
    pos: usize,
    group_len: usize,
}

/// Result of advancing the scan by one non-zero block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanStep {
    /// Logical Bitmap-0 index of the found block (`None` when exhausted).
    pub block: Option<usize>,
    /// SRAM buffer refills triggered, as `(level, new_window_start_bit)`.
    pub refills: Vec<(usize, usize)>,
}

/// Per-group architectural and micro-architectural state.
#[derive(Debug, Clone)]
pub struct BmuGroup {
    /// Matrix rows (set by `matinfo`).
    pub rows: u32,
    /// Matrix columns (set by `matinfo`).
    pub cols: u32,
    /// Per-level compression ratios (set by `bmapinfo`), level 0 first.
    pub ratios: [u32; MAX_HW_LEVELS],
    /// Which levels have been configured.
    pub ratio_set: [bool; MAX_HW_LEVELS],
    /// Buffered window per level.
    pub windows: [Window; MAX_HW_LEVELS],
    /// Output register: row index of the current non-zero block.
    pub row_index: u64,
    /// Output register: column index of the current non-zero block.
    pub col_index: u64,
    /// Whether the scan has consumed every non-zero block.
    pub done: bool,
    /// NZA block ordinal of the current block since the last scan reset.
    pub blocks_found: u64,

    stack: Vec<Frame>,
    consumed: [usize; MAX_HW_LEVELS],
    armed: bool,
}

impl Default for BmuGroup {
    fn default() -> Self {
        BmuGroup {
            rows: 0,
            cols: 0,
            ratios: [0; MAX_HW_LEVELS],
            ratio_set: [false; MAX_HW_LEVELS],
            windows: [Window::INVALID; MAX_HW_LEVELS],
            row_index: 0,
            col_index: 0,
            done: false,
            blocks_found: 0,
            stack: Vec::new(),
            consumed: [0; MAX_HW_LEVELS],
            armed: false,
        }
    }
}

impl BmuGroup {
    /// Resets the scan to start from stored top-level bit `start_bit`
    /// (non-zero starts require a single-level hierarchy, as in the paper's
    /// SpMM example where `rdbmap [bitmapA + rowOffset]` repositions the
    /// scan).
    ///
    /// # Panics
    ///
    /// Panics if `start_bit != 0` on a multi-level hierarchy.
    pub fn reset_scan(&mut self, hierarchy: &BitmapHierarchy, start_bit: usize) {
        let levels = hierarchy.num_levels();
        assert!(
            start_bit == 0 || levels == 1,
            "mid-bitmap scan starts require a 1-level hierarchy"
        );
        let top = levels - 1;
        self.stack.clear();
        self.stack.push(Frame {
            level: top,
            logical_base: 0,
            storage_base: 0,
            pos: start_bit,
            group_len: hierarchy.stored_level(top).len(),
        });
        self.consumed = [0; MAX_HW_LEVELS];
        self.done = false;
        self.blocks_found = 0;
        self.armed = true;
    }

    /// Whether [`BmuGroup::reset_scan`] has armed the scan.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Ensures stored bit `bit` of `level` is buffered; records a refill
    /// into `refills` if the window must move.
    fn touch(&mut self, level: usize, bit: usize, refills: &mut Vec<(usize, usize)>) {
        if !self.windows[level].covers(bit) {
            let start = (bit / BUFFER_BITS) * BUFFER_BITS;
            self.windows[level] = Window {
                start_bit: start,
                valid: true,
            };
            refills.push((level, start));
        }
    }

    /// Advances the depth-first scan to the next set Bitmap-0 bit — the
    /// hardware logic behind `pbmap` (§4.2.2 step 1). Returns the logical
    /// block index plus any buffer refills performed on the way.
    pub fn scan_step(&mut self, hierarchy: &BitmapHierarchy) -> ScanStep {
        assert!(self.armed, "pbmap before rdbmap armed the scan");
        let mut refills = Vec::new();
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return ScanStep {
                    block: None,
                    refills,
                };
            };
            let bitmap = hierarchy.stored_level(frame.level);
            let from = frame.storage_base + frame.pos;
            let limit = frame.storage_base + frame.group_len;
            let found = bitmap.next_one(from).filter(|&i| i < limit);
            match found {
                None => {
                    self.stack.pop();
                }
                Some(idx) => {
                    let level = frame.level;
                    let offset = idx - frame.storage_base;
                    frame.pos = offset + 1;
                    let logical = frame.logical_base + offset;
                    self.touch(level, idx, &mut refills);
                    if level == 0 {
                        self.blocks_found += 1;
                        return ScanStep {
                            block: Some(logical),
                            refills,
                        };
                    }
                    let child = level - 1;
                    let g = hierarchy.ratios()[level] as usize;
                    let storage_base = self.consumed[child] * g;
                    self.consumed[child] += 1;
                    self.stack.push(Frame {
                        level: child,
                        logical_base: logical * g,
                        storage_base,
                        pos: 0,
                        group_len: g,
                    });
                }
            }
        }
    }

    /// Computes the paper's index equation for a found block and latches the
    /// output registers:
    /// `Index = Σᵢ (Πⱼ₌₀..ᵢ comp(j)) · index_bit(i)` reduces, for a block at
    /// logical Bitmap-0 index `b`, to `Index = comp(0) · b`; the row/column
    /// split uses the padded row stride the software encoder lays out.
    pub fn latch_indices(&mut self, block_logical: usize) {
        let b0 = self.ratios[0].max(1) as u64;
        let padded_cols = (self.cols as u64).div_ceil(b0) * b0;
        let index = block_logical as u64 * b0;
        self.row_index = index / padded_cols.max(1);
        self.col_index = index % padded_cols.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_core::Bitmap;

    fn hierarchy(bits: &[usize], len: usize, ratios: &[u32]) -> BitmapHierarchy {
        let mut b = Bitmap::zeros(len);
        for &i in bits {
            b.set(i, true);
        }
        BitmapHierarchy::from_level0(&b, ratios).unwrap()
    }

    #[test]
    fn scan_matches_hierarchy_iterator() {
        let h = hierarchy(&[0, 5, 130, 131, 2040, 4095], 4096, &[2, 4, 16]);
        let mut g = BmuGroup {
            ratios: [2, 4, 16],
            ..Default::default()
        };
        g.reset_scan(&h, 0);
        let mut got = Vec::new();
        loop {
            let step = g.scan_step(&h);
            match step.block {
                Some(b) => got.push(b),
                None => break,
            }
        }
        assert_eq!(got, h.blocks().collect::<Vec<_>>());
        assert!(g.done);
    }

    #[test]
    fn refills_occur_on_window_crossings() {
        // A top-level bitmap wider than one 2048-bit buffer forces refills.
        let bits: Vec<usize> = (0..8192).step_by(512).collect();
        let h = hierarchy(&bits, 8192, &[2]);
        let mut g = BmuGroup::default();
        g.ratios[0] = 2;
        g.reset_scan(&h, 0);
        let mut refills = 0;
        while g.scan_step(&h).block.is_some() {
            // count below
        }
        // Re-run counting refills.
        g.reset_scan(&h, 0);
        loop {
            let step = g.scan_step(&h);
            refills += step.refills.len();
            if step.block.is_none() {
                break;
            }
        }
        assert_eq!(refills, 8192 / BUFFER_BITS); // 4 windows
    }

    #[test]
    fn buffered_scan_has_no_repeat_refills() {
        let h = hierarchy(&[1, 2, 3, 4, 5], 1024, &[2]);
        let mut g = BmuGroup::default();
        g.ratios[0] = 2;
        g.reset_scan(&h, 0);
        let first = g.scan_step(&h);
        assert_eq!(first.refills.len(), 1);
        let second = g.scan_step(&h);
        assert!(second.refills.is_empty(), "window already buffered");
    }

    #[test]
    fn latch_indices_uses_padded_stride() {
        let mut g = BmuGroup {
            rows: 4,
            cols: 5, // pads to 6 with b0 = 2
            ..Default::default()
        };
        g.ratios[0] = 2;
        g.latch_indices(0);
        assert_eq!((g.row_index, g.col_index), (0, 0));
        g.latch_indices(3); // bit 3 = element 6 = row 1, col 0
        assert_eq!((g.row_index, g.col_index), (1, 0));
        g.latch_indices(4); // element 8 = row 1, col 2
        assert_eq!((g.row_index, g.col_index), (1, 2));
    }

    #[test]
    fn mid_bitmap_start_scans_one_row() {
        // 1-level bitmap, 4 bits per row; start at row 1's bits.
        let h = hierarchy(&[0, 5, 6, 9], 16, &[2]);
        let mut g = BmuGroup::default();
        g.ratios[0] = 2;
        g.reset_scan(&h, 4);
        assert_eq!(g.scan_step(&h).block, Some(5));
        assert_eq!(g.scan_step(&h).block, Some(6));
        assert_eq!(g.scan_step(&h).block, Some(9));
        assert_eq!(g.scan_step(&h).block, None);
    }

    #[test]
    #[should_panic(expected = "1-level")]
    fn mid_start_rejected_for_multilevel() {
        let h = hierarchy(&[0], 64, &[2, 4]);
        BmuGroup::default().reset_scan(&h, 8);
    }

    #[test]
    #[should_panic(expected = "before rdbmap")]
    fn scan_without_arm_panics() {
        let h = hierarchy(&[0], 16, &[2]);
        BmuGroup::default().scan_step(&h);
    }
}
