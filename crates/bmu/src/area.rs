//! Analytic area model for the BMU (paper §7.6).
//!
//! The paper evaluates the BMU's area with CACTI 6.5 and reports "an area
//! overhead of at most 0.076%" of an Intel Xeon E5-2698 core (32 KiB L1,
//! 256 KiB L2, 2.5 MiB L3 slice). CACTI is not available offline, so this
//! module reproduces the estimate from first principles using published
//! density figures; the constants are documented and overridable.

use crate::{BUFFER_BYTES, MAX_HW_LEVELS, NUM_GROUPS};

/// Process/implementation constants of the area estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// 6T SRAM bitcell area in um^2 (Intel 14 nm: ~0.0588 um^2).
    pub sram_bitcell_um2: f64,
    /// Array overhead multiplier (decoders, sense amps, margins) on top of
    /// raw bitcells for small SRAM arrays.
    pub sram_array_overhead: f64,
    /// Flip-flop (register) area per bit in um^2, including local routing.
    pub register_bit_um2: f64,
    /// Fixed combinational-logic budget (priority encoders, index adders,
    /// control) in um^2.
    pub logic_um2: f64,
    /// Reference CPU core area in mm^2 (Xeon E5-2698-class core with its
    /// private L1/L2 and L3 slice, as in the paper's §7.6).
    pub core_area_mm2: f64,
}

impl AreaModel {
    /// Constants calibrated to the paper's setting.
    pub fn paper_default() -> Self {
        AreaModel {
            sram_bitcell_um2: 0.0588,
            sram_array_overhead: 2.5,
            register_bit_um2: 1.0,
            logic_um2: 2_000.0,
            core_area_mm2: 13.0,
        }
    }

    /// Total BMU SRAM capacity in bytes: all groups' bitmap buffers
    /// (the paper's "3 KB": 4 groups x 3 buffers x 256 B).
    pub fn sram_bytes(&self) -> usize {
        NUM_GROUPS * MAX_HW_LEVELS * BUFFER_BYTES
    }

    /// Register capacity in bytes (the paper's "140 bytes"): per group, the
    /// matrix dimension registers (2 x 8 B), per-level compression ratios
    /// (3 x 4 B), row/column output registers (2 x 8 B), and a scan-state
    /// descriptor (~3 B).
    pub fn register_bytes(&self) -> usize {
        NUM_GROUPS * (16 + 12 + 4 + 3)
    }

    /// BMU area in mm^2.
    pub fn bmu_area_mm2(&self) -> f64 {
        let sram_bits = (self.sram_bytes() * 8) as f64;
        let reg_bits = (self.register_bytes() * 8) as f64;
        let um2 = sram_bits * self.sram_bitcell_um2 * self.sram_array_overhead
            + reg_bits * self.register_bit_um2
            + self.logic_um2;
        um2 / 1e6
    }

    /// BMU area as a percentage of the reference core.
    pub fn overhead_percent(&self) -> f64 {
        100.0 * self.bmu_area_mm2() / self.core_area_mm2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_paper() {
        let m = AreaModel::paper_default();
        assert_eq!(m.sram_bytes(), 3 * 1024); // "3KB"
        assert_eq!(m.register_bytes(), 140); // "140 bytes"
    }

    #[test]
    fn overhead_is_at_most_paper_bound() {
        let m = AreaModel::paper_default();
        let pct = m.overhead_percent();
        assert!(pct <= 0.076 + 1e-3, "overhead {pct}%");
        assert!(pct > 0.01, "overhead {pct}% suspiciously small");
    }

    #[test]
    fn area_scales_with_sram_density() {
        let mut m = AreaModel::paper_default();
        let base = m.bmu_area_mm2();
        m.sram_bitcell_um2 *= 2.0;
        assert!(m.bmu_area_mm2() > base);
    }
}
