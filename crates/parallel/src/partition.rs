//! Deterministic load-balanced partitioning of row ranges.
//!
//! The parallel kernels split a matrix into contiguous line ranges, one
//! per worker, weighted by non-zero count so a skewed matrix does not
//! leave most workers idle. The split depends only on the weights and the
//! part count — never on thread timing — which is one half of the
//! bit-for-bit determinism guarantee (the other half being that each line
//! is computed exactly as the serial kernel computes it).

use std::ops::Range;

/// Splits `0..n` into at most `parts` contiguous ranges whose summed
/// weights are approximately equal. Every item carries an implicit extra
/// weight of one so that zero-weight items (empty rows) still spread
/// across the ranges.
///
/// The result always covers `0..n` exactly, in order, with no empty
/// ranges (fewer than `parts` ranges are returned when `n < parts`).
///
/// # Example
///
/// ```
/// use smash_parallel::partition_by_weight;
///
/// // Heavily skewed weights: the first range holds just the heavy item.
/// let ranges = partition_by_weight(4, 2, |i| if i == 0 { 100 } else { 1 });
/// assert_eq!(ranges, vec![0..1, 1..4]);
/// ```
pub fn partition_by_weight(
    n: usize,
    parts: usize,
    weight: impl Fn(usize) -> u64,
) -> Vec<Range<usize>> {
    // For n == 0 the loop body never runs and the single range 0..0 falls
    // out of the final push.
    let parts = parts.max(1).min(n.max(1));
    let total: u64 = (0..n).map(|i| weight(i) + 1).sum();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    for i in 0..n {
        acc += weight(i) + 1;
        // Close the current range once it reaches its pro-rata share, but
        // keep enough items for the remaining ranges to be non-empty.
        let k = ranges.len() as u64 + 1;
        let remaining_parts = parts - ranges.len() - 1;
        if ranges.len() + 1 < parts
            && acc * parts as u64 >= total * k
            && n - (i + 1) >= remaining_parts
        {
            ranges.push(start..i + 1);
            start = i + 1;
        }
    }
    ranges.push(start..n);
    ranges
}

/// Partitions CSR-style rows by their non-zero counts, as read from a
/// `row_ptr` array of length `rows + 1`.
pub fn partition_rows(row_ptr: &[u32], parts: usize) -> Vec<Range<usize>> {
    let rows = row_ptr.len().saturating_sub(1);
    partition_by_weight(rows, parts, |i| u64::from(row_ptr[i + 1] - row_ptr[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_covers(ranges: &[Range<usize>], n: usize) {
        let mut next = 0usize;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must tile contiguously");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..{n}");
    }

    #[test]
    fn covers_exactly_for_various_shapes() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = partition_by_weight(n, parts, |_| 1);
                assert_covers(&ranges, n);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn no_empty_ranges_when_fewer_items_than_parts() {
        let ranges = partition_by_weight(3, 8, |_| 5);
        assert_covers(&ranges, 3);
        assert!(ranges.iter().all(|r| !r.is_empty()));
        assert_eq!(ranges.len(), 3);
    }

    #[test]
    fn balances_skewed_weights() {
        // One huge row followed by many tiny ones: the huge row must not
        // drag half of the tiny rows into its range.
        let weights: Vec<u64> = std::iter::once(10_000)
            .chain(std::iter::repeat_n(10, 99))
            .collect();
        let ranges = partition_by_weight(100, 4, |i| weights[i]);
        assert_covers(&ranges, 100);
        assert_eq!(ranges[0], 0..1, "heavy head isolated: {ranges:?}");
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let w = |i: usize| (i as u64 * 7919) % 97;
        let a = partition_by_weight(500, 8, w);
        let b = partition_by_weight(500, 8, w);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_rows_uses_nnz_weights() {
        // row_ptr for rows with nnz [8, 0, 0, 0, 8]: the empty middle
        // spreads between the two heavy ends.
        let row_ptr = [0u32, 8, 8, 8, 8, 16];
        let ranges = partition_rows(&row_ptr, 2);
        assert_covers(&ranges, 5);
        assert_eq!(ranges.len(), 2);
        assert!(ranges[0].end >= 1 && ranges[0].end <= 4, "{ranges:?}");
    }
}
