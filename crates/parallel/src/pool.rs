//! A small scoped thread pool built on `std::thread` and channels.
//!
//! The build environment has no registry access, so this vendored-style
//! module replaces `rayon`/`scoped_threadpool` with the few hundred lines
//! the parallel kernels actually need: a fixed set of workers fed through
//! an `mpsc` channel, a scoped spawn API that can borrow from the caller's
//! stack, panic propagation back to the caller, clean shutdown on drop and
//! a `SMASH_THREADS` environment override.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "SMASH_THREADS";

/// Worker count used when none is given explicitly: the `SMASH_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => hardware_threads(),
        },
        Err(_) => hardware_threads(),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads with a scoped execution API.
///
/// A pool of one thread spawns no workers at all: every job runs inline on
/// the calling thread, so `SMASH_THREADS=1` degenerates to fully serial
/// execution.
///
/// # Example
///
/// ```
/// use smash_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let mut parts = [0u64; 4];
/// pool.scoped(|scope| {
///     for (i, slot) in parts.iter_mut().enumerate() {
///         scope.execute(move || *slot = i as u64 + 1);
///     }
/// });
/// assert_eq!(parts.iter().sum::<u64>(), 10);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers. `0` means "use
    /// [`default_threads`]" (which honours `SMASH_THREADS`).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        if threads == 1 {
            return ThreadPool {
                sender: None,
                workers: Vec::new(),
                threads: 1,
            };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("smash-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing, not
                        // while running the job.
                        let job = {
                            let guard = lock(&receiver);
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped: shut down
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            threads,
        }
    }

    /// Creates a pool sized by [`default_threads`] (`SMASH_THREADS` if set,
    /// else the machine's available parallelism).
    pub fn with_default_threads() -> Self {
        Self::new(default_threads())
    }

    /// Number of threads jobs may run on (including the inline-serial case
    /// of a 1-thread pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which borrowing jobs can be spawned.
    ///
    /// Returns only after every spawned job has completed, which is what
    /// makes lending stack data to the workers sound. If any job panicked,
    /// the first panic payload is re-raised on the calling thread after all
    /// jobs have finished — a worker panic surfaces as a propagated panic,
    /// never as a hang or a poisoned pool.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::new()),
            _marker: PhantomData,
        };
        // The wait must also happen when `f` itself panics: the guard's
        // drop runs during unwinding, so in-flight jobs finish before the
        // caller's stack frame (and the borrows they capture) is popped.
        struct WaitGuard<'a>(&'a ScopeState);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait_all();
            }
        }
        let result = {
            let _guard = WaitGuard(&scope.state);
            f(&scope)
        };
        if let Some(payload) = lock(&scope.state.panic).take() {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every idle worker's `recv` fail, so
        // they drain outstanding jobs and exit; then join them all.
        self.sender = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Synchronisation shared between a [`Scope`] and its in-flight jobs.
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl std::fmt::Debug for ScopeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeState")
            .field("pending", &*lock(&self.pending))
            .field("panicked", &lock(&self.panic).is_some())
            .finish()
    }
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Marks one job finished, recording its panic payload if any.
    fn complete(&self, payload: Option<Box<dyn Any + Send>>) {
        if let Some(p) = payload {
            lock(&self.panic).get_or_insert(p);
        }
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks until every spawned job has completed.
    fn wait_all(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = self
                .all_done
                .wait(pending)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Locks a mutex, ignoring poisoning: jobs run under `catch_unwind`, so a
/// panicking job never leaves shared state half-updated.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle for spawning jobs that may borrow data outliving the scope.
///
/// Created by [`ThreadPool::scoped`]; `'scope` is the lifetime of the
/// borrows the jobs are allowed to capture.
#[derive(Debug)]
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Spawns one job on the pool. On a 1-thread pool the job runs
    /// immediately on the calling thread.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *lock(&self.state.pending) += 1;
        let state = Arc::clone(&self.state);
        let task = move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            state.complete(result.err());
        };
        match &self.pool.sender {
            Some(sender) => {
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
                // SAFETY: `ThreadPool::scoped` blocks in `wait_all` until
                // every job spawned on this scope has completed before it
                // returns — on the normal path and, via its wait guard's
                // drop, when the scope closure unwinds — so all `'scope`
                // borrows captured by `f` outlive the job even though the
                // channel requires `'static`.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                if let Err(send_error) = sender.send(job) {
                    // Unreachable while the pool is alive (workers hold the
                    // receiver), but run inline rather than losing the job.
                    (send_error.0)();
                }
            }
            None => task(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_jobs_borrow_and_mutate_stack_data() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        pool.scoped(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.execute(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 16 + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let pool = ThreadPool::new(3);
        let completed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                s.execute(|| panic!("boom in worker"));
                for _ in 0..8 {
                    s.execute(|| {
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload preserved");
        assert_eq!(msg, "boom in worker");
        // All sibling jobs still ran to completion before the propagation.
        assert_eq!(completed.load(Ordering::SeqCst), 8);
        // And the pool is still usable afterwards.
        let mut x = 0u32;
        pool.scoped(|s| s.execute(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn panic_in_scope_closure_still_waits_for_jobs() {
        // The scope closure itself panics after spawning borrowing jobs:
        // the wait guard must let every job finish before the unwind pops
        // the caller's frame (otherwise workers would write freed stack).
        let pool = ThreadPool::new(4);
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                for _ in 0..16 {
                    s.execute(|| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("scope closure panics");
            });
        }));
        assert!(caught.is_err());
        assert_eq!(
            finished.load(Ordering::SeqCst),
            16,
            "all jobs must complete before the unwind escapes scoped()"
        );
    }

    #[test]
    fn serial_pool_panic_also_propagates() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| s.execute(|| panic!("serial boom")));
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn pool_drops_cleanly_after_work() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            pool.scoped(|s| {
                for _ in 0..32 {
                    let ran = Arc::clone(&ran);
                    s.execute(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        } // drop joins all workers
        assert_eq!(ran.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn one_thread_pool_runs_inline_on_caller() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let mut seen = None;
        pool.scoped(|s| s.execute(|| seen = Some(std::thread::current().id())));
        assert_eq!(seen, Some(caller), "1-thread pool must be serial");
    }

    /// Serializes every test that writes or reads `SMASH_THREADS`:
    /// concurrent `setenv`/`getenv` is undefined behaviour on glibc, and
    /// libtest runs tests on parallel threads.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn env_override_controls_default_thread_count() {
        let _guard = lock(&ENV_LOCK);
        std::env::set_var(THREADS_ENV, "1");
        assert_eq!(default_threads(), 1);
        let pool = ThreadPool::with_default_threads();
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty(), "serial pool spawns no threads");

        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(default_threads(), 3);

        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(default_threads(), hardware_threads());
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(default_threads(), hardware_threads());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(default_threads(), hardware_threads());
    }

    #[test]
    fn zero_requested_threads_falls_back_to_default() {
        // `new(0)` reads SMASH_THREADS via default_threads().
        let _guard = lock(&ENV_LOCK);
        let pool = ThreadPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn many_more_jobs_than_workers() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..200 {
                s.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }
}
